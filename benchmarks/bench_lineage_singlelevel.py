"""Lineage bench — the single-level Maximum Reuse story (§3 recap).

Reproduces the comparison the multicore paper inherits from [7]:
Maximum Reuse vs Toledo's equal thirds on one bounded memory, CCR
against the ``√(27/8M)`` bound.  Artifact: out/lineage_singlelevel.txt.
"""

from repro.experiments.io import render_rows
from repro.singlelevel.runner import run_single_level
from repro.store.atomic import atomic_write_text

MEMORY = 91  # mu = 9 (1+9+81), t = 5 (3*25 = 75)
ORDER = 45  # divisible by both tile sides


def bench_single_level_ccr(benchmark, out_dir):
    def run():
        rows = []
        for name in ("single-max-reuse", "single-equal"):
            r = run_single_level(name, MEMORY, ORDER, ORDER, ORDER)
            rows.append(
                {
                    "schedule": name,
                    "M": MEMORY,
                    "loads": r.loads,
                    "CCR": round(r.ccr, 4),
                    "CCR bound": round(r.ccr_lower_bound(), 4),
                    "peak": r.peak,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    atomic_write_text(out_dir / "lineage_singlelevel.txt", render_rows(rows))
    max_reuse, equal = rows
    # [7]'s claim: max reuse beats the equal split and nears the bound
    assert max_reuse["loads"] < equal["loads"]
    assert max_reuse["CCR"] < 2.0 * max_reuse["CCR bound"]
