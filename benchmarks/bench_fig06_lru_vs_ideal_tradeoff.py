"""Figure 6 — Tdata of Tradeoff under LRU vs the closed form.

Regenerates the paper's Fig. 6 (CS = 977, CD = 21).
"""

from benchmarks.conftest import save_figure
from repro.experiments.figures import figure6


def bench_figure6(benchmark, orders, out_dir):
    fig = benchmark.pedantic(
        figure6, kwargs={"orders": tuple(orders)}, rounds=1, iterations=1
    )
    save_figure(fig, out_dir)
    panel = fig.panels[0]
    assert panel.series["tradeoff LRU (2C)"][-1] <= panel.series["2x Formula (C)"][-1]
