"""Ablation — parameter rounding (DESIGN.md choice #4, paper §4.3.3).

The paper blames Tradeoff's losses at q ∈ {64, 80} on the rounding of
α to a multiple of ``√p·µ`` dividing the matrix order: "parameters λ
and α can be significantly lower than their optimal numerical value."
This bench quantifies the gap between the rounded α actually used and
the unconstrained α_num on each preset.
"""

from repro.analysis.tradeoff_opt import alpha_num, optimal_parameters
from repro.model.machine import PRESETS, preset
from repro.sim.runner import run_experiment
from repro.store.atomic import atomic_write_text

ORDER = 32


def bench_rounding_gap_table(benchmark, out_dir):
    def run():
        rows = []
        for key in PRESETS:
            machine = preset(key)
            params = optimal_parameters(machine)
            rows.append(
                (key, machine.cs, machine.cd, round(params.alpha_num, 2), params.alpha)
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["preset  CS  CD  alpha_num  alpha_used"]
    lines += ["  ".join(str(x) for x in row) for row in rows]
    atomic_write_text(out_dir / "ablation_rounding.txt", "\n".join(lines) + "\n")
    # The used α never exceeds the feasibility cap and always loses
    # something to rounding on these presets (α_used < α_num would be
    # an equality only if α_num were itself a multiple of √p·µ).
    for _key, cs, _cd, _a_num, a_used in rows:
        assert a_used * (a_used + 2) <= cs
    gaps = {row[0]: row[4] / row[3] for row in rows}
    assert all(g <= 1.0 for g in gaps.values())


def bench_tradeoff_with_vs_without_rounding(benchmark, out_dir):
    """Tdata of Tradeoff with the rounded α vs an α free of the
    multiple-of-√pµ constraint (µ=1 lets any integer α through)."""
    machine = preset("q80")

    def run():
        rounded = run_experiment(
            "tradeoff", machine, ORDER, ORDER, ORDER, "ideal", engine="replay"
        )
        # free α: the integer closest to alpha_num (still capacity-legal)
        free_alpha = int(alpha_num(machine))
        free = run_experiment(
            "tradeoff",
            machine,
            ORDER,
            ORDER,
            ORDER,
            "ideal",
            alpha=free_alpha - free_alpha % 2,  # still multiple of sqrt(p)=2 (µ=1)
            mu=1,
            engine="replay",
        )
        return rounded, free

    rounded, free = benchmark.pedantic(run, rounds=1, iterations=1)
    atomic_write_text(out_dir / "ablation_rounding_tdata.txt",
        f"alpha rounded={rounded.parameters['alpha']} tdata={rounded.tdata}\n"
        f"alpha free={free.parameters['alpha']} tdata={free.tdata}\n"
    )
    assert rounded.tdata > 0 and free.tdata > 0
