"""Simulator scaling — evidence for the scale-reduction argument.

DESIGN.md §4 reduces the paper's matrix orders because pure-Python LRU
simulation costs Θ(mnz) block touches.  This bench measures the
constant: touches per second of a full Shared Opt. LRU run across
orders, and checks the cost is indeed linear in the touch count (so
results at order 96 extrapolate to the paper's 1100 — only wall-clock,
never shape, changes).  Artifact: out/scaling_simulator.txt.
"""

import time

from repro.experiments.io import render_rows
from repro.model.machine import preset
from repro.sim.runner import run_experiment

ORDERS = (16, 32, 48)


def bench_lru_scaling(benchmark, out_dir):
    machine = preset("q32")

    def run():
        rows = []
        for order in ORDERS:
            start = time.perf_counter()
            result = run_experiment(
                "shared-opt", machine, order, order, order, "lru-50"
            )
            elapsed = time.perf_counter() - start
            touches = 3 * order**3
            rows.append(
                {
                    "order": order,
                    "touches": touches,
                    "seconds": round(elapsed, 4),
                    "touches/s": int(touches / elapsed),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    (out_dir / "scaling_simulator.txt").write_text(render_rows(rows))
    # linearity: throughput varies by < 4x across a 27x work range
    rates = [r["touches/s"] for r in rows]
    assert max(rates) < 4 * min(rates)
    # and it is fast enough for the shipped sweeps (>= 0.5M touches/s)
    assert rates[-1] > 500_000
