"""Simulator scaling — evidence for the scale-reduction argument.

DESIGN.md §4 reduces the paper's matrix orders because pure-Python LRU
simulation costs Θ(mnz) block touches.  This bench measures the
constant: touches per second of a full Shared Opt. LRU run across
orders, and checks the cost is indeed linear in the touch count (so
results at order 96 extrapolate to the paper's 1100 — only wall-clock,
never shape, changes).  Artifact: out/scaling_simulator.txt.

The step engine is pinned explicitly: the default replay engine
memoizes traces and results across runs (and across benches in the
same session), which is exactly what a scaling measurement must not
see.  The companion ``bench_replay_scaling`` measures the replay
engine's cold-cache cost per order — the constant that now binds the
shipped sweeps — clearing the trace cache each round.
"""

import time

from repro.cache.replay import clear_trace_cache
from repro.experiments.io import render_rows
from repro.model.machine import preset
from repro.sim.runner import run_experiment
from repro.store.atomic import atomic_write_text

ORDERS = (16, 32, 48)


def _scaling_rows(engine):
    machine = preset("q32")
    rows = []
    for order in ORDERS:
        clear_trace_cache()
        start = time.perf_counter()
        run_experiment(
            "shared-opt", machine, order, order, order, "lru-50", engine=engine
        )
        elapsed = time.perf_counter() - start
        touches = 3 * order**3
        rows.append(
            {
                "order": order,
                "touches": touches,
                "seconds": round(elapsed, 4),
                "touches/s": int(touches / elapsed),
            }
        )
    return rows


def bench_lru_scaling(benchmark, out_dir):
    rows = benchmark.pedantic(lambda: _scaling_rows("step"), rounds=1, iterations=1)
    atomic_write_text(out_dir / "scaling_simulator.txt", render_rows(rows))
    # linearity: throughput varies by < 4x across a 27x work range
    rates = [r["touches/s"] for r in rows]
    assert max(rates) < 4 * min(rates)
    # and it is fast enough for the shipped sweeps (>= 0.5M touches/s)
    assert rates[-1] > 500_000


def bench_replay_scaling(benchmark, out_dir):
    rows = benchmark.pedantic(
        lambda: _scaling_rows("replay"), rounds=1, iterations=1
    )
    atomic_write_text(
        out_dir / "scaling_simulator_replay.txt", render_rows(rows)
    )
    # compile+replay is linear in the touch count too
    rates = [r["touches/s"] for r in rows]
    assert max(rates) < 4 * min(rates)
    assert rates[-1] > 500_000
