"""Extension bench — rectangular matrices (the paper evaluates squares only).

The §3 formulas are general in (m, n, z); this bench exercises the
schedules on skewed shapes at constant work ``mnz`` and checks the
formulas' structural predictions:

* Shared Opt.'s ``MS = mn + 2mnz/λ``: at fixed work, a *long common
  dimension* (small ``mn``) minimizes shared misses;
* Distributed Opt.'s ``MD = mn/p + 2mnz/(µp)``: likewise;
* outer-dimension-heavy shapes (large ``mn``, small ``z``) pay the
  compulsory ``mn`` term instead.

Artifact: out/extension_rectangular.txt.
"""

from repro.experiments.io import render_rows
from repro.model.machine import preset
from repro.sim.runner import run_experiment
from repro.store.atomic import atomic_write_text

#: Shapes of identical work mnz = 32768.
SHAPES = [
    (32, 32, 32),  # cube
    (16, 16, 128),  # long common dimension
    (128, 16, 16),  # tall C
    (64, 64, 8),  # outer-heavy (large C, short k)
]


def bench_rectangular_shapes(benchmark, out_dir):
    machine = preset("q32")

    def run():
        rows = []
        for m, n, z in SHAPES:
            so = run_experiment(
                "shared-opt", machine, m, n, z, "ideal", engine="replay"
            )
            do = run_experiment(
                "distributed-opt", machine, m, n, z, "ideal", engine="replay"
            )
            rows.append(
                {
                    "m": m,
                    "n": n,
                    "z": z,
                    "MS shared-opt": so.ms,
                    "MS pred": round(so.predicted.ms),
                    "MD dist-opt": do.md,
                    "MD pred": round(do.predicted.md),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    atomic_write_text(out_dir / "extension_rectangular.txt", render_rows(rows))
    by_shape = {(r["m"], r["n"], r["z"]): r for r in rows}
    # long-z shape beats the cube at both levels (same work, smaller mn)
    assert (
        by_shape[(16, 16, 128)]["MS shared-opt"]
        < by_shape[(32, 32, 32)]["MS shared-opt"]
    )
    assert (
        by_shape[(16, 16, 128)]["MD dist-opt"]
        < by_shape[(64, 64, 8)]["MD dist-opt"]
    )
    # predictions stay within 2x even on skewed (ragged-tile) shapes
    for row in rows:
        assert row["MS shared-opt"] <= 2 * row["MS pred"]
