"""Policy-gap bench — how much of LRU's loss could a better policy fix?

For each Maximum-Reuse algorithm, records the reference stream once and
compares, per distributed cache: compulsory misses (no policy avoids),
Belady-OPT misses (best any reactive policy can do) and LRU misses.
The remaining gap between OPT and the paper's IDEAL counts is what only
explicit (prefetching) cache control recovers — the quantitative
justification for the paper's ideal-cache model.
Artifact: out/policy_gap.txt.
"""

from repro.analysis.policies import replacement_gap
from repro.experiments.io import render_rows
from repro.model.machine import preset
from repro.store.atomic import atomic_write_text

ORDER = 16


def bench_policy_gap(benchmark, out_dir):
    machine = preset("q32")

    def run():
        rows = []
        for name in ("shared-opt", "distributed-opt", "tradeoff"):
            gap = replacement_gap(name, machine, ORDER, ORDER, ORDER)
            core0 = gap[0]
            rows.append(
                {
                    "algorithm": name,
                    "cache": core0["cache"],
                    "cold": core0["cold"],
                    "opt": core0["opt"],
                    "lru": core0["lru"],
                    "lru/opt": round(core0["lru"] / core0["opt"], 2),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    atomic_write_text(out_dir / "policy_gap.txt", render_rows(rows))
    for row in rows:
        assert row["cold"] <= row["opt"] <= row["lru"]
    # Distributed Opt. plans its µ² block to *fill* the cache, so plain
    # LRU thrashes it badly (the Fig. 5 effect that motivates the
    # LRU-50 setting); Shared Opt.'s 3-block distributed working set
    # leaves LRU close to OPT.
    by_name = {r["algorithm"]: r for r in rows}
    assert by_name["distributed-opt"]["lru/opt"] >= by_name["shared-opt"]["lru/opt"]
