"""Bound-gap table — §2.3 lower bounds vs every algorithm's IDEAL counts.

Produces the table behind the paper's "close to the lower bound"
statements: for each algorithm, the ratio of its IDEAL MS/MD to the
corresponding Loomis–Whitney bound.  Artifact: out/bounds_gap.txt.
"""

from repro.algorithms.registry import ALGORITHMS
from repro.experiments.io import render_rows
from repro.model.bounds import (
    distributed_misses_lower_bound,
    shared_misses_lower_bound,
)
from repro.model.machine import preset
from repro.sim.runner import run_experiment
from repro.store.atomic import atomic_write_text

ORDER = 60  # 2x lambda for exact tiling on q32


def bench_bounds_gap(benchmark, out_dir):
    machine = preset("q32")

    def run():
        ms_bound = shared_misses_lower_bound(machine, ORDER, ORDER, ORDER)
        md_bound = distributed_misses_lower_bound(machine, ORDER, ORDER, ORDER)
        rows = []
        for name in ALGORITHMS:
            r = run_experiment(
                name, machine, ORDER, ORDER, ORDER, "ideal", engine="replay"
            )
            rows.append(
                {
                    "algorithm": name,
                    "MS/bound": round(r.ms / ms_bound, 2),
                    "MD/bound": round(r.md / md_bound, 2),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    atomic_write_text(out_dir / "bounds_gap.txt", render_rows(rows))
    by_name = {row["algorithm"]: row for row in rows}
    # the paper's two near-bound results
    assert by_name["shared-opt"]["MS/bound"] < 2.0
    assert by_name["distributed-opt"]["MD/bound"] < 1.5
    # and the baselines are nowhere near
    assert by_name["outer-product"]["MS/bound"] > 10.0
