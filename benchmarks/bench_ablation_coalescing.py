"""Ablation — adjacent-duplicate trace coalescing (DESIGN.md choice #2).

Replaying a coalesced trace must produce identical miss counts at lower
cost; this bench measures both sides of that claim on a synthetic trace
with heavy immediate reuse (the pattern Algorithm 1's inner loop
produces, where the element of ``A`` is touched once per multiply-add).
"""

from repro.cache.block import block_key, MAT_A, MAT_B, MAT_C
from repro.cache.hierarchy import LRUHierarchy
from repro.cache.trace import AccessTrace
from repro.store.atomic import atomic_write_text


def _trace() -> AccessTrace:
    t = AccessTrace()
    for step in range(2000):
        core = step & 3
        a = block_key(MAT_A, step % 17, 0)
        for j in range(4):
            t.record(core, a)  # re-touched per inner iteration
            t.record(core, block_key(MAT_B, step % 13, j))
            t.record(core, block_key(MAT_C, step % 11, j), write=True)
    return t


def bench_replay_full(benchmark):
    trace = _trace()

    def run():
        h = LRUHierarchy(p=4, cs=64, cd=5)
        trace.replay(h)
        return h.snapshot().ms

    benchmark(run)


def bench_replay_coalesced(benchmark):
    coalesced = _trace().coalesced()

    def run():
        h = LRUHierarchy(p=4, cs=64, cd=5)
        coalesced.replay(h)
        return h.snapshot().ms

    benchmark(run)


def bench_counts_identical(benchmark, out_dir):
    trace = _trace()
    coalesced = trace.coalesced()

    def run():
        h1 = LRUHierarchy(p=4, cs=64, cd=5)
        h2 = LRUHierarchy(p=4, cs=64, cd=5)
        trace.replay(h1)
        coalesced.replay(h2)
        return h1.snapshot(), h2.snapshot()

    s1, s2 = benchmark.pedantic(run, rounds=1, iterations=1)
    atomic_write_text(out_dir / "ablation_coalescing.txt",
        f"entries full={len(trace)} coalesced={len(coalesced)}\n"
        f"MS full={s1.ms} coalesced={s2.ms}\n"
        f"MD full={s1.md_per_core} coalesced={s2.md_per_core}\n"
    )
    assert s1.ms == s2.ms
    assert s1.md_per_core == s2.md_per_core
