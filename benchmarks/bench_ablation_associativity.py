"""Ablation — full associativity vs realistic set-associative caches.

The paper's model assumes fully associative caches.  This bench runs
Shared Opt. through the same LRU-50 setting with hardware-realistic
replacements: 8-way and 4-way set-associative LRU, and 8-way with tree
pseudo-LRU per set.  The gap quantifies how much of the Maximum-Reuse
layout's benefit survives real cache organizations.
Artifact: out/ablation_associativity.txt.
"""

from repro.experiments.io import render_rows
from repro.model.machine import MulticoreMachine
from repro.sim.runner import run_experiment
from repro.store.atomic import atomic_write_text

# A q32-like machine with way-friendly capacities (multiples of 8).
MACHINE = MulticoreMachine(p=4, cs=976, cd=16, q=32, name="assoc-ablation")
ORDER = 32

POLICIES = ("lru", "assoc8", "assoc4", "assoc8-plru")


def bench_associativity(benchmark, out_dir):
    def run():
        rows = []
        for policy in POLICIES:
            r = run_experiment(
                "shared-opt",
                MACHINE,
                ORDER,
                ORDER,
                ORDER,
                "lru-50",
                policy=policy,
                engine="replay",
            )
            rows.append({"policy": policy, "MS": r.ms, "MD": r.md})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    atomic_write_text(out_dir / "ablation_associativity.txt", render_rows(rows))
    by_policy = {r["policy"]: r for r in rows}
    compulsory = 3 * ORDER * ORDER
    for row in rows:
        assert row["MS"] >= compulsory
    # lower associativity generally costs conflict misses on this
    # tile-reuse-heavy pattern
    assert by_policy["assoc4"]["MS"] >= by_policy["lru"]["MS"] * 0.95


def bench_plru_vs_lru(benchmark):
    def run():
        lru = run_experiment(
            "shared-opt",
            MACHINE,
            ORDER,
            ORDER,
            ORDER,
            "lru-50",
            policy="assoc8",
            engine="replay",
        )
        plru = run_experiment(
            "shared-opt",
            MACHINE,
            ORDER,
            ORDER,
            ORDER,
            "lru-50",
            policy="assoc8-plru",
            engine="replay",
        )
        return lru.ms, plru.ms

    lru_ms, plru_ms = benchmark.pedantic(run, rounds=1, iterations=1)
    # the heuristic stays within 2x of exact per-set LRU
    assert plru_ms <= 2 * lru_ms
