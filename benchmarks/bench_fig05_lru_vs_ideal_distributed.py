"""Figure 5 — distributed misses of Distributed Opt.: LRU vs formula.

Regenerates the paper's Fig. 5 (CD = 21): Distributed Opt. under LRU(C)
and LRU(2C) against the closed form and its double.
"""

from benchmarks.conftest import save_figure
from repro.experiments.figures import figure5


def bench_figure5(benchmark, orders, out_dir):
    fig = benchmark.pedantic(
        figure5, kwargs={"orders": tuple(orders)}, rounds=1, iterations=1
    )
    save_figure(fig, out_dir)
    panel = fig.panels[0]
    assert (
        panel.series["distributed-opt LRU (2C)"][-1]
        <= panel.series["2x Formula (C)"][-1]
    )
