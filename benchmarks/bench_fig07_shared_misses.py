"""Figure 7 — shared misses MS across algorithms, three cache configs.

Regenerates the paper's Fig. 7(a–c): Shared Opt. (LRU-50 and IDEAL),
Shared Equal (LRU-50), Outer Product and the lower bound, for
(CS, q) ∈ {(977, 32), (245, 64), (157, 80)}.
"""

from benchmarks.conftest import save_figure
from repro.experiments.figures import figure7


def bench_figure7(benchmark, orders, out_dir):
    fig = benchmark.pedantic(
        figure7, kwargs={"orders": tuple(orders)}, rounds=1, iterations=1
    )
    save_figure(fig, out_dir)
    for panel in fig.panels:
        # the paper's ranking at the largest swept order
        assert (
            panel.series["Shared Opt. LRU-50"][-1]
            < panel.series["Outer Product"][-1]
        )
        assert (
            panel.series["Lower Bound"][-1]
            <= panel.series["Shared Opt. IDEAL"][-1]
        )
