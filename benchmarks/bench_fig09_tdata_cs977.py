"""Figure 9 — Tdata of all six algorithms, CS = 977, CD ∈ {21, 16}.

Regenerates the paper's Fig. 9(a–d): LRU-50 and IDEAL settings over the
optimistic and pessimistic distributed-cache capacities at q = 32.
"""

from benchmarks.conftest import save_figure
from repro.experiments.figures import figure9


def bench_figure9(benchmark, orders, out_dir):
    fig = benchmark.pedantic(
        figure9, kwargs={"orders": tuple(orders)}, rounds=1, iterations=1
    )
    save_figure(fig, out_dir)
    for panel in fig.panels:
        if "IDEAL" in panel.title:
            # Fig. 9(b)/(d): Tradeoff outperforms everything under IDEAL.
            t = panel.series["tradeoff IDEAL"][-1]
            for label, values in panel.series.items():
                if label not in ("tradeoff IDEAL", "Lower Bound"):
                    assert t <= values[-1]
