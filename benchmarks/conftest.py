"""Shared infrastructure for the benchmark harness.

Every ``bench_figNN`` module regenerates one figure of the paper: the
benchmarked callable *is* the full figure computation, and the rendered
series (the same rows/curves the paper plots) are written to
``benchmarks/out/<figid>.txt`` plus one CSV per panel, so a benchmark
run leaves the complete reproduction artifacts behind.

Scale is controlled by ``REPRO_BENCH_SCALE``:

* ``quick`` (default) — orders up to 32, a couple of minutes for the
  whole suite;
* ``full``  — orders up to 96 (and order 96 for the ratio sweep),
  closer to the paper's sweep shape; expect tens of minutes;
* ``paper`` — a sparse geometric axis reaching the paper's true
  x-axis bound, matrix order 1100 (in blocks) — only feasible on the
  bulk replay kernels; used by the nightly full-figures CI pipeline.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Sequence

import pytest

#: Square matrix orders (blocks) swept by the figure benches.
QUICK_ORDERS: Sequence[int] = (8, 16, 24, 32)
FULL_ORDERS: Sequence[int] = (16, 32, 48, 64, 80, 96)
#: The paper's Figs. 7-11 x-axis tops out at matrix order 1100; the
#: nightly sweep samples it geometrically and lands on the true bound.
PAPER_ORDERS: Sequence[int] = (64, 128, 256, 512, 1100)

QUICK_RATIO_ORDER = 24
FULL_RATIO_ORDER = 48
PAPER_RATIO_ORDER = 96

OUT_DIR = Path(__file__).parent / "out"


def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "quick")


@pytest.fixture(scope="session")
def orders() -> Sequence[int]:
    """Matrix orders for the order sweeps, per REPRO_BENCH_SCALE."""
    scale = bench_scale()
    if scale == "paper":
        return PAPER_ORDERS
    return FULL_ORDERS if scale == "full" else QUICK_ORDERS


@pytest.fixture(scope="session")
def ratio_order() -> int:
    """Matrix order for the Fig. 12 bandwidth sweep."""
    scale = bench_scale()
    if scale == "paper":
        return PAPER_RATIO_ORDER
    return FULL_RATIO_ORDER if scale == "full" else QUICK_RATIO_ORDER


@pytest.fixture(scope="session")
def out_dir() -> Path:
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    return OUT_DIR


def save_figure(figure, directory: Path) -> None:
    """Persist a regenerated figure: ASCII tables + per-panel CSV."""
    from repro.experiments.io import figure_to_csv, render_figure
    from repro.store.atomic import atomic_write_text

    atomic_write_text(directory / f"{figure.id}.txt", render_figure(figure))
    figure_to_csv(figure, directory)


def save_manifest(sweep, directory: Path, name: str) -> None:
    """Persist a sweep's engine run manifest next to the figure output.

    No-op for serial sweeps (they carry no manifest); for engine runs
    the JSON lands at ``<out>/<name>.manifest.json`` so a benchmark run
    leaves its telemetry (attempts, wall times, worker utilization)
    behind with the artifacts.
    """
    if getattr(sweep, "manifest", None) is not None:
        sweep.manifest.write(directory / f"{name}.manifest.json")
