"""Figure 8 — distributed misses MD across algorithms.

Regenerates the paper's Fig. 8(a–c): Distributed Opt. (LRU-50, IDEAL),
Distributed Equal (LRU-50), Outer Product and the lower bound, for
CD ∈ {21, 16, 6}.  Panel (c) shows the µ=1 collapse at q=64.
"""

from benchmarks.conftest import save_figure
from repro.experiments.figures import figure8


def bench_figure8(benchmark, orders, out_dir):
    fig = benchmark.pedantic(
        figure8, kwargs={"orders": tuple(orders)}, rounds=1, iterations=1
    )
    save_figure(fig, out_dir)
    a, b, c = fig.panels
    # q=32 panels: Distributed Opt. wins at the distributed level.
    for panel in (a, b):
        assert (
            panel.series["Distributed Opt. LRU-50"][-1]
            < panel.series["Distributed Equal LRU-50"][-1]
        )
    # q=64 panel: advantage gone (µ = 1).
    assert (
        c.series["Distributed Opt. LRU-50"][-1]
        >= 0.95 * c.series["Distributed Equal LRU-50"][-1]
    )
