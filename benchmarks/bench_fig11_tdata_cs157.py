"""Figure 11 — Tdata of all six algorithms, CS = 157, CD ∈ {4, 3}.

Regenerates the paper's Fig. 11(a–d) at q = 80, the configuration where
parameter rounding hurts Tradeoff and Shared Opt. catches up.
"""

from benchmarks.conftest import save_figure
from repro.experiments.figures import figure11


def bench_figure11(benchmark, orders, out_dir):
    fig = benchmark.pedantic(
        figure11, kwargs={"orders": tuple(orders)}, rounds=1, iterations=1
    )
    save_figure(fig, out_dir)
    for panel in fig.panels:
        so_label = [k for k in panel.series if k.startswith("shared-opt")][0]
        to_label = [k for k in panel.series if k.startswith("tradeoff")][0]
        # Tradeoff no longer clearly dominates Shared Opt. here.
        assert panel.series[so_label][-1] <= 1.6 * panel.series[to_label][-1]
