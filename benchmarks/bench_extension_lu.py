"""Extension bench — blocked LU on the cache model (paper future work §6).

Sweeps the matrix order for the eager (right-looking) and lazy
(left-looking) LU schedules under the LRU-50 setting and records the
shared-miss crossover: the lazy schedule wins while the active block
column plus its history panels fit in the shared cache, and the two
converge once nothing fits.  Artifact: out/extension_lu.txt.
"""

from repro.experiments.io import render_rows
from repro.lu.runner import run_lu
from repro.model.machine import preset
from repro.store.atomic import atomic_write_text

ORDERS = (16, 32, 40, 48)


def bench_lu_schedules(benchmark, out_dir):
    machine = preset("q32")

    def run():
        rows = []
        for n in ORDERS:
            rl = run_lu("right-looking-lu", machine, n, "lru-50")
            ll = run_lu("left-looking-lu", machine, n, "lru-50")
            rows.append(
                {
                    "order": n,
                    "MS right-looking": rl.ms,
                    "MS left-looking": ll.ms,
                    "MD right-looking": rl.md,
                    "MD left-looking": ll.md,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    atomic_write_text(out_dir / "extension_lu.txt", render_rows(rows))
    by_order = {r["order"]: r for r in rows}
    # below capacity: identical compulsory misses
    assert by_order[16]["MS right-looking"] == by_order[16]["MS left-looking"]
    # in the sweet spot: the lazy schedule wins clearly
    assert by_order[40]["MS left-looking"] < 0.5 * by_order[40]["MS right-looking"]
