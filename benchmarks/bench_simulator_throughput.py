"""Micro-benchmarks of the simulator substrate itself.

These measure the raw cost of the hot operations — block touches in LRU
mode and explicit loads in IDEAL mode — which determine how large a
matrix order the harness can sweep.  They are the scaling ablation
called out in DESIGN.md.

The ``*_step`` / ``*_replay`` pairs compare the two simulation engines
on identical workloads (same schedule, machine, counters):

* ``mdcurve`` — an 8-point distributed-capacity curve: the step engine
  runs one full hierarchy simulation per capacity; the replay engine
  runs one bounded Mattson stack-distance pass total.  This is the
  structural win (≥5×, grows with the number of capacity points).
* ``fifo`` — a single FIFO cell: step's generic per-touch policy path
  vs the replay sliding-window pass over a precompiled trace.
* ``ideal_cell`` — re-evaluating an IDEAL cell end-to-end through
  ``run_experiment``: the replay engine memoizes both the compiled
  trace and its (capacity-independent) counters, so warm cells — the
  common case in sweep resumes, conformance re-checks and figure
  regeneration — cost a dict probe.  The step engine re-simulates.
"""

import dataclasses

import pytest

from repro.algorithms.registry import get_algorithm
from repro.cache import replay
from repro.cache.block import block_key, MAT_A, MAT_B, MAT_C
from repro.cache.hierarchy import IdealHierarchy, LRUHierarchy
from repro.model.machine import PRESETS
from repro.sim.runner import run_experiment

N = 4096

MACHINE = PRESETS["q32"]
CURVE_ORDER = 16
CURVE_CAPACITIES = (6, 9, 12, 15, 18, 21, 24, 27)
CELL_ORDER = 24


def _fma_keys(n):
    keys = []
    for t in range(n):
        i, j, k = (t * 7) % 64, (t * 11) % 64, (t * 13) % 64
        keys.append(
            (
                block_key(MAT_A, i, k),
                block_key(MAT_B, k, j),
                block_key(MAT_C, i, j),
            )
        )
    return keys


def bench_lru_compute_touches(benchmark):
    """Throughput of the inlined LRU fast path (3 touches per call)."""
    keys = _fma_keys(N)

    def run():
        h = LRUHierarchy(p=4, cs=977, cd=21)
        touches = h.compute_touches
        for idx, (ka, kb, kc) in enumerate(keys):
            touches(idx & 3, ka, kb, kc)
        return h.snapshot().ms

    assert benchmark(run) > 0


def bench_lru_generic_touch(benchmark):
    """Throughput of the generic (policy-agnostic) touch path."""
    keys = _fma_keys(N)

    def run():
        h = LRUHierarchy(p=4, cs=977, cd=21, policy="fifo")  # generic path
        for idx, (ka, kb, kc) in enumerate(keys):
            h.compute_touches(idx & 3, ka, kb, kc)
        return h.snapshot().ms

    assert benchmark(run) > 0


def bench_ideal_load_evict(benchmark):
    """Throughput of checked IDEAL load/evict pairs."""
    keys = [block_key(MAT_A, t % 64, t // 64) for t in range(N)]

    def run():
        h = IdealHierarchy(p=4, cs=977, cd=21, check=True)
        for key in keys:
            h.load_shared(key)
            h.load_distributed(0, key)
            h.evict_distributed(0, key)
            h.evict_shared(key)
        return h.ms

    assert benchmark(run) == N


# ----------------------------------------------------------------------
# Engine comparison pairs (step vs replay)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def curve_trace():
    """Compiled shared-opt trace for the capacity-curve benches."""
    alg = get_algorithm("shared-opt")(
        MACHINE, CURVE_ORDER, CURVE_ORDER, CURVE_ORDER
    )
    return replay.compile_trace(alg, directives=False)


@pytest.fixture(scope="module")
def cell_trace():
    """Compiled shared-opt trace (with directives) for the cell benches."""
    alg = get_algorithm("shared-opt")(MACHINE, CELL_ORDER, CELL_ORDER, CELL_ORDER)
    return replay.compile_trace(alg, directives=True)


def bench_mdcurve_step(benchmark):
    """8-point distributed-capacity curve, one step simulation per point."""

    def run():
        curve = {}
        for cap in CURVE_CAPACITIES:
            result = run_experiment(
                "shared-opt",
                dataclasses.replace(MACHINE, cd=cap),
                CURVE_ORDER,
                CURVE_ORDER,
                CURVE_ORDER,
                "lru",
                engine="step",
            )
            curve[cap] = result.stats.md_per_core
        return curve

    curve = benchmark(run)
    assert len(curve) == len(CURVE_CAPACITIES)


def bench_mdcurve_replay(benchmark, curve_trace):
    """Same 8-point curve from one bounded stack-distance pass."""

    def run():
        return replay.distributed_miss_curves(curve_trace, CURVE_CAPACITIES)

    curve = benchmark(run)
    assert len(curve) == len(CURVE_CAPACITIES)


def bench_fifo_step(benchmark):
    """One FIFO cell through the step engine's generic policy path."""

    def run():
        return run_experiment(
            "shared-opt",
            MACHINE,
            CELL_ORDER,
            CELL_ORDER,
            CELL_ORDER,
            "lru",
            policy="fifo",
            engine="step",
        ).stats.ms

    assert benchmark(run) > 0


def bench_fifo_replay(benchmark, cell_trace):
    """Same FIFO cell as a sliding-window replay of the compiled trace.

    Calls the single-``CD`` kernel directly so every round measures the
    pass itself, not the result memo on the trace.
    """

    def run():
        out = replay._bulk_fifo_cd(cell_trace, MACHINE.cd, [MACHINE.cs])
        return out[(MACHINE.cs, MACHINE.cd)].ms

    assert benchmark(run) > 0


def bench_ideal_cell_step(benchmark):
    """Re-evaluating an IDEAL cell with the step engine (re-simulates)."""

    def run():
        return run_experiment(
            "shared-opt",
            MACHINE,
            CELL_ORDER,
            CELL_ORDER,
            CELL_ORDER,
            "ideal",
            engine="step",
        ).stats.ms

    assert benchmark(run) > 0


def bench_ideal_cell_replay(benchmark):
    """Re-evaluating the same IDEAL cell with the replay engine.

    After the first evaluation the compiled trace and its
    capacity-independent counters are memoized, so warm cells — sweep
    resumes, conformance re-checks, figure regeneration — cost a dict
    probe plus result packaging.
    """
    run_experiment(
        "shared-opt",
        MACHINE,
        CELL_ORDER,
        CELL_ORDER,
        CELL_ORDER,
        "ideal",
        engine="replay",
    )  # warm the trace + result memo

    def run():
        return run_experiment(
            "shared-opt",
            MACHINE,
            CELL_ORDER,
            CELL_ORDER,
            CELL_ORDER,
            "ideal",
            engine="replay",
        ).stats.ms

    assert benchmark(run) > 0
