"""Micro-benchmarks of the simulator substrate itself.

These measure the raw cost of the hot operations — block touches in LRU
mode and explicit loads in IDEAL mode — which determine how large a
matrix order the harness can sweep.  They are the scaling ablation
called out in DESIGN.md.
"""

from repro.cache.block import block_key, MAT_A, MAT_B, MAT_C
from repro.cache.hierarchy import IdealHierarchy, LRUHierarchy

N = 4096


def _fma_keys(n):
    keys = []
    for t in range(n):
        i, j, k = (t * 7) % 64, (t * 11) % 64, (t * 13) % 64
        keys.append(
            (
                block_key(MAT_A, i, k),
                block_key(MAT_B, k, j),
                block_key(MAT_C, i, j),
            )
        )
    return keys


def bench_lru_compute_touches(benchmark):
    """Throughput of the inlined LRU fast path (3 touches per call)."""
    keys = _fma_keys(N)

    def run():
        h = LRUHierarchy(p=4, cs=977, cd=21)
        touches = h.compute_touches
        for idx, (ka, kb, kc) in enumerate(keys):
            touches(idx & 3, ka, kb, kc)
        return h.snapshot().ms

    assert benchmark(run) > 0


def bench_lru_generic_touch(benchmark):
    """Throughput of the generic (policy-agnostic) touch path."""
    keys = _fma_keys(N)

    def run():
        h = LRUHierarchy(p=4, cs=977, cd=21, policy="fifo")  # generic path
        for idx, (ka, kb, kc) in enumerate(keys):
            h.compute_touches(idx & 3, ka, kb, kc)
        return h.snapshot().ms

    assert benchmark(run) > 0


def bench_ideal_load_evict(benchmark):
    """Throughput of checked IDEAL load/evict pairs."""
    keys = [block_key(MAT_A, t % 64, t // 64) for t in range(N)]

    def run():
        h = IdealHierarchy(p=4, cs=977, cd=21, check=True)
        for key in keys:
            h.load_shared(key)
            h.load_distributed(0, key)
            h.evict_distributed(0, key)
            h.evict_shared(key)
        return h.ms

    assert benchmark(run) == N
