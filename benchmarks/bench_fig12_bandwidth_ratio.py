"""Figure 12 — Tdata vs the bandwidth ratio r = σS/(σS+σD).

Regenerates the paper's Fig. 12(a–f): all six algorithms under the
IDEAL setting across the bandwidth range, for every cache
configuration.  Tradeoff re-plans (α, β) at each point and must track
the lower envelope of Shared Opt. / Distributed Opt., meeting each of
them at the corresponding extreme.
"""

from benchmarks.conftest import save_figure
from repro.experiments.figures import figure12


def bench_figure12(benchmark, ratio_order, out_dir):
    fig = benchmark.pedantic(
        figure12, kwargs={"order": ratio_order}, rounds=1, iterations=1
    )
    save_figure(fig, out_dir)
    panel = fig.panels[0]  # q32 optimistic
    trade = panel.series["tradeoff IDEAL"]
    shared = panel.series["shared-opt IDEAL"]
    dist = panel.series["distributed-opt IDEAL"]
    # extremes: tie Shared Opt. at r->0, Distributed Opt. at r->1
    assert trade[0] <= 1.1 * shared[0]
    assert trade[-1] <= 1.001 * dist[-1]
    # the parents cross somewhere inside the sweep
    diffs = [s - d for s, d in zip(shared, dist)]
    assert min(diffs) < 0 < max(diffs)
