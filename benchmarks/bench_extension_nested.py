"""Extension bench — nested tiling on a three-level hierarchy (§6 outlook).

Compares the flat Distributed Opt. schedule with the socket-aware
nested Maximum Reuse schedule on a 16-core, 4-socket cache tree, per
level.  LLC and per-core traffic are identical by construction; the
socket level shows the placement win.
Artifact: out/extension_nested.txt.
"""

from repro.algorithms.distributed_opt import DistributedOpt
from repro.algorithms.nested import NestedMaxReuse
from repro.experiments.io import render_rows
from repro.model.machine import MulticoreMachine
from repro.sim.contexts import MultiLevelContext
from repro.store.atomic import atomic_write_text

MACHINE = MulticoreMachine(p=16, cs=400, cd=21, q=8)
ORDERS = (16, 32)


def bench_nested_vs_flat(benchmark, out_dir):
    def run():
        rows = []
        for order in ORDERS:
            nest = NestedMaxReuse(MACHINE, order, order, order)
            for alg in (nest, DistributedOpt(MACHINE, order, order, order)):
                tree = nest.default_tree()
                alg.run(MultiLevelContext(tree))
                rows.append(
                    {
                        "order": order,
                        "schedule": alg.name,
                        "LLC": tree.level_misses(0),
                        "socket": tree.level_misses(1),
                        "core": tree.level_misses(2),
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    atomic_write_text(out_dir / "extension_nested.txt", render_rows(rows))
    for order in ORDERS:
        nested, flat = [r for r in rows if r["order"] == order]
        assert nested["LLC"] == flat["LLC"]
        assert nested["core"] == flat["core"]
        assert nested["socket"] < flat["socket"]
