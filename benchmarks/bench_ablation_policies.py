"""Ablation — LRU vs FIFO replacement (DESIGN.md, simulator extension).

The paper simulates LRU only; FIFO is the classic cheaper-but-weaker
alternative.  This bench shows how much of the Maximum-Reuse layout's
benefit survives a FIFO hierarchy.
"""

from repro.model.machine import preset
from repro.sim.runner import run_experiment
from repro.store.atomic import atomic_write_text

ORDER = 32


def bench_shared_opt_lru(benchmark):
    # This cell is memo-warm by the time the suite reaches it, so the
    # measured path is tens of microseconds; a single round would gate
    # on scheduler noise.  Median over many rounds is stable.
    r = benchmark.pedantic(
        run_experiment,
        args=("shared-opt", preset("q32"), ORDER, ORDER, ORDER, "lru-50"),
        kwargs={"policy": "lru", "engine": "replay"},
        rounds=25,
        iterations=4,
        warmup_rounds=1,
    )
    assert r.ms > 0


def bench_shared_opt_fifo(benchmark, out_dir):
    r = benchmark.pedantic(
        run_experiment,
        args=("shared-opt", preset("q32"), ORDER, ORDER, ORDER, "lru-50"),
        kwargs={"policy": "fifo", "engine": "replay"},
        rounds=1,
        iterations=1,
    )
    lru = run_experiment(
        "shared-opt",
        preset("q32"),
        ORDER,
        ORDER,
        ORDER,
        "lru-50",
        policy="lru",
        engine="replay",
    )
    atomic_write_text(out_dir / "ablation_policies.txt",
        f"policy  MS  MD\nlru  {lru.ms}  {lru.md}\nfifo  {r.ms}  {r.md}\n"
    )
    # FIFO cannot beat LRU on this reuse-heavy access pattern by much.
    assert r.ms >= 0.9 * lru.ms
