"""Ablation — enforcing inclusivity in LRU mode (DESIGN.md choice #1).

The paper assumes inclusive caches; a straightforward two-level LRU is
not inclusive.  This bench quantifies both the miss-count and the
simulation-time impact of back-invalidation on a full Shared Opt. run.
"""

from repro.model.machine import preset
from repro.sim.runner import run_experiment
from repro.store.atomic import atomic_write_text

ORDER = 32


def bench_lru_non_inclusive(benchmark):
    result = benchmark.pedantic(
        run_experiment,
        args=("shared-opt", preset("q32"), ORDER, ORDER, ORDER, "lru-50"),
        kwargs={"inclusive": False},
        rounds=1,
        iterations=1,
    )
    assert result.ms > 0


def bench_lru_inclusive(benchmark):
    result = benchmark.pedantic(
        run_experiment,
        args=("shared-opt", preset("q32"), ORDER, ORDER, ORDER, "lru-50"),
        kwargs={"inclusive": True},
        rounds=1,
        iterations=1,
    )
    assert result.ms > 0


def bench_inclusion_miss_count_effect(benchmark, out_dir):
    """Record the count deltas (artifact: out/ablation_inclusion.txt)."""

    def run():
        rows = []
        for inclusive in (False, True):
            r = run_experiment(
                "shared-opt",
                preset("q32"),
                ORDER,
                ORDER,
                ORDER,
                "lru-50",
                inclusive=inclusive,
                engine="replay",
            )
            rows.append((inclusive, r.ms, r.md))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["inclusive  MS  MD"] + [f"{i}  {ms}  {md}" for i, ms, md in rows]
    atomic_write_text(out_dir / "ablation_inclusion.txt", "\n".join(lines) + "\n")
    # back-invalidation can only add distributed misses
    assert rows[1][2] >= rows[0][2]
