"""Micro-benchmarks of the batched and streaming replay kernels.

The batched kernels are what make multi-cell sweeps cheap: one bounded
stack-distance pass serves every LRU ``(CS, CD)`` cell at once, and one
insertion-ring pass per ``CD`` serves every FIFO shared capacity.  The
pairs here measure exactly that structural claim on identical
workloads:

* ``bulk_batched`` — one :func:`repro.cache.replay.replay_bulk` call
  evaluating the whole cell grid over one compiled trace;
* ``bulk_percell`` — the same grid, one kernel invocation per cell
  (what a naive per-configuration replay would cost);
* ``bulk_streaming`` — the same grid off the running schedule with no
  materialized trace (:func:`replay_bulk_streaming`); this includes
  the schedule run itself, which is the memory-bounded configuration
  the nightly order-1100 pipeline uses.

Memos are cleared inside each round so the rounds measure the passes,
not the result cache.
"""

import pytest

from repro.algorithms.registry import get_algorithm
from repro.cache import replay
from repro.model.machine import PRESETS

MACHINE = PRESETS["q32"]
ORDER = 16

#: The cell grid every pair evaluates: both policies across a spread of
#: shared/distributed capacities (12 cells — a figure panel's worth).
CELLS = [
    (policy, cs, cd)
    for policy in ("lru", "fifo")
    for cs in (245, 488, 977)
    for cd in (6, 21)
]


@pytest.fixture(scope="module")
def grid_trace():
    """Compiled shared-opt trace shared by the bulk benches."""
    alg = get_algorithm("shared-opt")(MACHINE, ORDER, ORDER, ORDER)
    return replay.compile_trace(alg, directives=False)


def bench_bulk_batched(benchmark, grid_trace):
    """All cells from one batched call (shared distributed passes)."""

    def run():
        grid_trace._replays.clear()
        return replay.replay_bulk(grid_trace, CELLS)

    assert len(benchmark(run)) == len(CELLS)


def bench_bulk_percell(benchmark, grid_trace):
    """The same cells one kernel invocation at a time."""

    def run():
        out = []
        for policy, cs, cd in CELLS:
            if policy == "lru":
                out.append(replay._bulk_lru(grid_trace, [(cs, cd)])[(cs, cd)])
            else:
                out.append(
                    replay._bulk_fifo_cd(grid_trace, cd, [cs])[(cs, cd)]
                )
        return out

    assert len(benchmark(run)) == len(CELLS)


def bench_bulk_streaming(benchmark):
    """The same cells streamed off the schedule, no materialized trace."""

    def run():
        alg = get_algorithm("shared-opt")(MACHINE, ORDER, ORDER, ORDER)
        stats, _ = replay.replay_bulk_streaming(alg, CELLS)
        return stats

    assert len(benchmark(run)) == len(CELLS)
