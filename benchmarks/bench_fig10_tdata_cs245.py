"""Figure 10 — Tdata of all six algorithms, CS = 245, CD ∈ {6, 4}.

Regenerates the paper's Fig. 10(a–d) at q = 64, where µ = 1 and the
Maximum-Reuse advantage at the distributed level disappears.
"""

from benchmarks.conftest import save_figure
from repro.experiments.figures import figure10


def bench_figure10(benchmark, orders, out_dir):
    fig = benchmark.pedantic(
        figure10, kwargs={"orders": tuple(orders)}, rounds=1, iterations=1
    )
    save_figure(fig, out_dir)
    for panel in fig.panels:
        # Shared Opt. and Tradeoff lead; Outer Product trails badly.
        lead = min(
            v[-1]
            for k, v in panel.series.items()
            if k != "Lower Bound"
        )
        op_label = [k for k in panel.series if k.startswith("outer-product")][0]
        assert panel.series[op_label][-1] > 1.5 * lead
