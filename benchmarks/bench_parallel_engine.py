"""Sweep engine overhead and telemetry artifact.

The fault-tolerant engine (:mod:`repro.sim.parallel`) adds machinery —
chunked submission, deadline tracking, per-cell records — on top of the
embarrassingly parallel sweep.  This bench measures what that costs on
a healthy pool and leaves the run manifest behind as an artifact
(``out/parallel_engine.manifest.json``), so a benchmark run documents
its own worker utilization and per-cell wall times.

Correctness is asserted inline: the engine run must be complete and
bit-identical to the serial sweep it parallelizes.
"""

from benchmarks.conftest import save_manifest

from repro.model.machine import preset
from repro.sim.parallel import parallel_order_sweep
from repro.sim.sweep import order_sweep

ENTRIES = [("shared-opt", "lru-50"), ("distributed-opt", "lru-50")]
ORDERS = (8, 16, 24)


def bench_engine_vs_serial(benchmark, out_dir):
    machine = preset("q32")
    serial = order_sweep(ENTRIES, machine, ORDERS)

    def run():
        return parallel_order_sweep(ENTRIES, machine, ORDERS, workers=2)

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    assert sweep.complete
    for label in serial.labels():
        for ppoint, spoint in zip(sweep.series[label], serial.series[label]):
            assert ppoint.stats == spoint.stats
    save_manifest(sweep, out_dir, "parallel_engine")
