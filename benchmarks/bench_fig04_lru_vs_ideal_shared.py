"""Figure 4 — shared misses of Shared Opt.: LRU(C)/LRU(2C) vs formula.

Regenerates the four curves of the paper's Fig. 4 (CS = 977): Shared
Opt. under plain LRU, under LRU with doubled capacity, the closed-form
prediction and twice the prediction.  The benchmark time is the cost of
the full sweep; the series land in ``benchmarks/out/fig4*``.
"""

from benchmarks.conftest import save_figure
from repro.experiments.figures import figure4


def bench_figure4(benchmark, orders, out_dir):
    fig = benchmark.pedantic(
        figure4, kwargs={"orders": tuple(orders)}, rounds=1, iterations=1
    )
    save_figure(fig, out_dir)
    panel = fig.panels[0]
    # Frigo et al. factor-of-two envelope, checked on the largest order.
    assert panel.series["shared-opt LRU (2C)"][-1] <= panel.series["2x Formula (C)"][-1]
