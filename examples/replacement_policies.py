#!/usr/bin/env python3
"""How much of LRU's loss could any replacement policy recover?

Records the reference stream of each Maximum-Reuse algorithm once and
decomposes its distributed-cache misses into three exact layers:

* **cold** — compulsory misses no policy avoids;
* **OPT** — Belady's offline-optimal replacement, the floor for every
  *reactive* policy;
* **LRU** — what the real hierarchy pays.

The remaining distance from OPT down to the paper's IDEAL counts is
what only explicit cache control (prefetching/pinning — the ideal cache
model) can recover, which is the quantitative case for the paper's
model choice.  Also prints the full LRU/OPT miss curve from a single
stack-distance pass.

Usage::

    python examples/replacement_policies.py [order]
"""

import sys

from repro.analysis.policies import miss_curve_rows, replacement_gap
from repro.model.machine import preset


def main() -> None:
    order = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    machine = preset("q32")
    print(f"machine: {machine.name}   order: {order} blocks\n")

    header = f"{'algorithm':18s} {'cache':>15s} {'cold':>7s} {'OPT':>7s} {'LRU':>7s} {'LRU/OPT':>8s}"
    print(header)
    print("-" * len(header))
    for name in ("shared-opt", "distributed-opt", "tradeoff"):
        rows = replacement_gap(name, machine, order, order, order)
        for row in (rows[0], rows[-1]):  # core 0 + shared-alone view
            ratio = row["lru"] / row["opt"] if row["opt"] else 1.0
            print(
                f"{name:18s} {row['cache']:>15s} {row['cold']:7d} "
                f"{row['opt']:7d} {row['lru']:7d} {ratio:7.2f}x"
            )

    print("\nLRU vs OPT miss curve (shared-opt trace, one stack-distance pass):")
    print(f"{'capacity':>9s} {'LRU':>9s} {'OPT':>9s}")
    for row in miss_curve_rows("shared-opt", machine, order, order, order):
        print(f"{row['capacity']:9d} {row['lru']:9d} {row['opt']:9d}")
    print(
        "\nDistributed Opt. sizes its tile to fill the cache, so plain LRU"
        "\nthrashes it (the Fig. 5 effect) — exactly why the paper evaluates"
        "\nunder the LRU-50 setting, leaving half the cache to the policy."
    )


if __name__ == "__main__":
    main()
