#!/usr/bin/env python3
"""LRU vs the ideal cache model — the factor-of-two envelope.

Reproduces the experiment behind the paper's Figs. 4–6 and §4.2: an
algorithm designed for the ideal cache model, run against a real LRU
hierarchy, pays more misses — but an LRU cache of *twice* the size
stays within 2x the ideal-model formula (Frigo et al.), and declaring
only half of the capacity to the algorithm (the LRU-50 setting) leaves
the other half to LRU as "kind of an automatic prefetching buffer".

Usage::

    python examples/lru_vs_ideal.py [max_order]
"""

import sys

from repro import preset, run_experiment


def main() -> None:
    max_order = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    machine = preset("q32")
    orders = [o for o in range(16, max_order + 1, 16)]
    print(f"machine: {machine.name}   algorithm: shared-opt\n")
    header = (
        f"{'order':>6s} {'formula':>10s} {'IDEAL':>10s} {'LRU(C)':>10s} "
        f"{'LRU(2C)':>10s} {'LRU-50':>10s} {'LRU(2C)/formula':>16s}"
    )
    print(header)
    print("-" * len(header))
    for order in orders:
        ideal = run_experiment("shared-opt", machine, order, order, order, "ideal")
        lru = run_experiment("shared-opt", machine, order, order, order, "lru")
        lru2 = run_experiment("shared-opt", machine, order, order, order, "lru-2x")
        lru50 = run_experiment("shared-opt", machine, order, order, order, "lru-50")
        formula = ideal.predicted.ms
        print(
            f"{order:6d} {formula:10.0f} {ideal.ms:10d} {lru.ms:10d} "
            f"{lru2.ms:10d} {lru50.ms:10d} {lru2.ms / formula:15.2f}x"
        )
    print("\nThe last column stays below 2.00x, as predicted by the")
    print("ideal-cache/LRU simulation theorem the paper relies on.")


if __name__ == "__main__":
    main()
