#!/usr/bin/env python3
"""Quickstart — simulate one matrix product on the paper's quad-core.

Runs the paper's three Multicore Maximum Reuse algorithms on the q=32
cache configuration (CS=977, CD=21 blocks) under the LRU-50 setting and
prints the headline quantities: shared misses MS, distributed misses
MD, and the data access time Tdata = MS/σS + MD/σD.

Usage::

    python examples/quickstart.py [order]
"""

import sys

from repro import preset, run_experiment

def main() -> None:
    order = int(sys.argv[1]) if len(sys.argv) > 1 else 48
    machine = preset("q32")
    print(f"machine: {machine.name}, p={machine.p} cores")
    print(f"matrix:  {order} x {order} x {order} blocks\n")

    header = f"{'algorithm':18s} {'MS':>10s} {'MD':>10s} {'Tdata':>12s}  parameters"
    print(header)
    print("-" * len(header))
    for name in ("shared-opt", "distributed-opt", "tradeoff"):
        result = run_experiment(name, machine, order, order, order, "lru-50")
        params = ", ".join(f"{k}={v}" for k, v in result.parameters.items())
        print(
            f"{name:18s} {result.ms:10d} {result.md:10d} "
            f"{result.tdata:12.0f}  {params}"
        )

    print(
        "\nEach algorithm favours a different cache level; 'tradeoff'"
        "\nbalances both according to the bandwidth ratio (here 1:1)."
    )


if __name__ == "__main__":
    main()
