#!/usr/bin/env python3
"""How the Tradeoff algorithm adapts to the cache bandwidth ratio.

Sweeps r = σS/(σS+σD) like the paper's Fig. 12 and shows (i) the (α, β)
parameters Tradeoff picks at each point and (ii) that its Tdata tracks
the better of Shared Opt. and Distributed Opt. across the whole range,
tying each of them at the extremes.

Usage::

    python examples/bandwidth_tradeoff.py [order]
"""

import sys

from repro import preset, run_experiment


def main() -> None:
    order = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    base = preset("q32")
    print(f"machine: {base.name}   matrix order: {order} blocks   setting: IDEAL\n")
    header = (
        f"{'r':>5s} {'alpha':>6s} {'beta':>5s} "
        f"{'Tdata(tradeoff)':>16s} {'Tdata(shared)':>14s} {'Tdata(dist)':>12s}  winner"
    )
    print(header)
    print("-" * len(header))
    for i in range(1, 20, 2):
        r = i / 20
        machine = base.with_bandwidth_ratio(r)
        trade = run_experiment("tradeoff", machine, order, order, order, "ideal")
        shared = run_experiment("shared-opt", machine, order, order, order, "ideal")
        dist = run_experiment(
            "distributed-opt", machine, order, order, order, "ideal"
        )
        best = min(
            (trade.tdata, "tradeoff"),
            (shared.tdata, "shared-opt"),
            (dist.tdata, "distributed-opt"),
        )
        print(
            f"{r:5.2f} {trade.parameters['alpha']:6d} "
            f"{trade.parameters['beta']:5d} {trade.tdata:16.0f} "
            f"{shared.tdata:14.0f} {dist.tdata:12.0f}  {best[1]}"
        )
    print(
        "\nSmall r (slow shared cache) pushes alpha up toward the Shared"
        "\nOpt. tile; large r (slow distributed caches) collapses alpha to"
        "\nsqrt(p)*mu, i.e. exactly Distributed Opt."
    )


if __name__ == "__main__":
    main()
