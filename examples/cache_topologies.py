#!/usr/bin/env python3
"""Extension — deeper hierarchies and realistic cache organizations.

Two outlook experiments beyond the paper's two-level fully associative
model:

1. A *three-level* topology (memory → shared LLC → per-socket cache →
   per-core cache), the "clusters of multicores" structure the paper's
   conclusion anticipates.  The mid-level cache converts sibling-core
   reuse into cheap local fills.
2. *Set-associative* and *pseudo-LRU* replacements: how much of the
   Maximum-Reuse benefit survives hardware-realistic caches.

Usage::

    python examples/cache_topologies.py [order]
"""

import sys

from repro.algorithms.shared_opt import SharedOpt
from repro.cache.hierarchy import LRUHierarchy
from repro.cache.multilevel import LevelSpec, MultiLevelHierarchy
from repro.model.machine import MulticoreMachine
from repro.sim.contexts import LRUContext, MultiLevelContext
from repro.sim.runner import run_experiment


def main() -> None:
    order = int(sys.argv[1]) if len(sys.argv) > 1 else 24
    machine = MulticoreMachine(p=4, cs=976, cd=16, q=32, name="topo-demo")

    print(f"=== three-level tree vs flat two-level (order {order}) ===")
    flat = LRUHierarchy(4, cs=976, cd=16)
    flat_ctx = LRUContext(flat)
    SharedOpt(machine, order, order, order).run(flat_ctx)
    tree = MultiLevelHierarchy(
        4,
        [
            LevelSpec(1, 976, name="LLC"),
            LevelSpec(2, 64, name="socket"),
            LevelSpec(4, 16, name="core"),
        ],
    )
    SharedOpt(machine, order, order, order).run(MultiLevelContext(tree))
    print(f"flat:  LLC misses = {flat.snapshot().ms}")
    print(
        f"tree:  LLC misses = {tree.level_misses(0)}, socket misses = "
        f"{tree.level_misses(1)}, core misses = {tree.level_misses(2)}"
    )
    print("(socket caches absorb part of the traffic the flat model sends")
    print(" to the LLC — the extra level the paper's conclusion predicts)\n")

    print("=== replacement realism (shared-opt, LRU-50 setting) ===")
    for policy in ("lru", "assoc8", "assoc4", "assoc8-plru"):
        r = run_experiment(
            "shared-opt", machine, order, order, order, "lru-50", policy=policy
        )
        print(f"{policy:12s} MS = {r.ms:8d}   MD = {r.md:8d}")
    print("\nLower associativity and the PLRU heuristic add conflict misses")
    print("on top of the fully associative model the paper analyses.")


if __name__ == "__main__":
    main()
