#!/usr/bin/env python3
"""Prove every schedule computes the right product — while counting misses.

The same schedule object drives three interpreters at once via a
ChainContext: a numeric executor (real block arithmetic on numpy
arrays), a fully *checked* IDEAL hierarchy (capacity, inclusion and
presence verified at every step) and an LRU hierarchy.  The example
shows the product is exact and the two simulators agree with the
closed-form prediction.

Usage::

    python examples/numeric_verification.py [m] [n] [z]
"""

import sys

import numpy as np

from repro import ALGORITHMS, predict, preset
from repro.cache.hierarchy import IdealHierarchy, LRUHierarchy
from repro.numerics.blockmatrix import BlockMatrix
from repro.numerics.executor import NumericContext
from repro.sim.contexts import ChainContext, IdealContext, LRUContext


def main() -> None:
    m = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    n = int(sys.argv[2]) if len(sys.argv) > 2 else 10
    z = int(sys.argv[3]) if len(sys.argv) > 3 else 8
    machine = preset("q32")
    q = 4  # numeric block side (kept small so the demo is instant)

    a = BlockMatrix.random(m, z, q, seed=1)
    b = BlockMatrix.random(z, n, q, seed=2)
    reference = a @ b

    print(f"C = A({m}x{z}) x B({z}x{n}) blocks of {q}x{q} on {machine.name}\n")
    header = (
        f"{'algorithm':18s} {'product':>8s} {'checks':>7s} "
        f"{'MS ideal':>9s} {'MS pred':>9s} {'MS lru':>8s}"
    )
    print(header)
    print("-" * len(header))
    for name, cls in ALGORITHMS.items():
        alg = cls(machine, m, n, z)
        numeric = NumericContext(machine.p, a, b)
        ideal_h = IdealHierarchy(machine.p, machine.cs, machine.cd, check=True)
        lru_h = LRUHierarchy(machine.p, machine.cs, machine.cd)
        ctx = ChainContext(
            [numeric, IdealContext(ideal_h), LRUContext(lru_h)]
        )
        alg.run(ctx)  # raises on any schedule bug
        numeric.assert_complete()
        exact = np.allclose(numeric.c.data, reference.data)
        print(
            f"{name:18s} {'exact' if exact else 'WRONG':>8s} {'pass':>7s} "
            f"{ideal_h.ms:9d} {predict(alg).ms:9.0f} "
            f"{lru_h.snapshot().ms:8d}"
        )
        assert exact

    print("\nEvery schedule computed A x B exactly under full capacity,")
    print("inclusion and presence checking.")


if __name__ == "__main__":
    main()
