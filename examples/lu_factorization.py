#!/usr/bin/env python3
"""Extension — blocked LU factorization on the cache model.

The paper's future work names LU factorization as the next kernel; this
example runs the two shipped LU schedules (eager right-looking vs lazy
left-looking) through the LRU-50 cache model, verifies both numerically
(``L·U = A`` on a diagonally dominant random matrix) and shows the
shared-miss crossover: the lazy schedule wins while the active block
column and its history panels fit in the shared cache.

Usage::

    python examples/lu_factorization.py [max_order]
"""

import sys

from repro.lu import LU_SCHEDULES, run_lu, verify_lu_schedule
from repro.model.machine import preset


def main() -> None:
    max_order = int(sys.argv[1]) if len(sys.argv) > 1 else 48
    machine = preset("q32")

    print("numeric verification (n=6 blocks of 4x4):")
    for name, cls in LU_SCHEDULES.items():
        verify_lu_schedule(cls(machine, 6), q=4)
        print(f"  {name}: L*U = A exact")

    print(f"\ncache behaviour on {machine.name} (LRU-50):")
    header = (
        f"{'order':>6s} {'MS right-looking':>17s} {'MS left-looking':>16s} "
        f"{'ratio':>6s} {'MD right':>9s} {'MD left':>8s}"
    )
    print(header)
    print("-" * len(header))
    order = 16
    while order <= max_order:
        rl = run_lu("right-looking-lu", machine, order, "lru-50")
        ll = run_lu("left-looking-lu", machine, order, "lru-50")
        ratio = rl.ms / ll.ms if ll.ms else float("inf")
        print(
            f"{order:6d} {rl.ms:17d} {ll.ms:16d} {ratio:5.1f}x "
            f"{rl.md:9d} {ll.md:8d}"
        )
        order += 8
    print(
        "\nThe lazy (left-looking) schedule pins each block column while"
        "\nabsorbing all its pending updates — the Maximum-Reuse idea"
        "\ntransposed to LU.  Its advantage peaks while column + history"
        "\npanels fit in the shared cache and fades once nothing fits."
    )


if __name__ == "__main__":
    main()
