#!/usr/bin/env python3
"""Compare all six algorithms against the communication lower bounds.

Reproduces, at one matrix order, the comparison behind the paper's
Figs. 7–9: every algorithm is run under both the LRU-50 and the IDEAL
settings, and its misses are put side by side with the Loomis–Whitney
lower bounds of §2.3.

Usage::

    python examples/compare_algorithms.py [order] [preset]
"""

import sys

from repro import (
    ALGORITHMS,
    distributed_misses_lower_bound,
    preset,
    run_experiment,
    shared_misses_lower_bound,
    tdata_lower_bound,
)


def main() -> None:
    order = int(sys.argv[1]) if len(sys.argv) > 1 else 48
    machine = preset(sys.argv[2] if len(sys.argv) > 2 else "q32")
    print(f"machine: {machine.name}   matrix order: {order} blocks\n")

    ms_bound = shared_misses_lower_bound(machine, order, order, order)
    md_bound = distributed_misses_lower_bound(machine, order, order, order)

    for setting in ("lru-50", "ideal"):
        print(f"--- setting: {setting} ---")
        header = (
            f"{'algorithm':18s} {'MS':>10s} {'vs bound':>9s} "
            f"{'MD':>10s} {'vs bound':>9s} {'Tdata':>12s}"
        )
        print(header)
        rows = []
        for name in ALGORITHMS:
            r = run_experiment(name, machine, order, order, order, setting)
            rows.append((r.tdata, name, r))
        for _, name, r in sorted(rows):
            print(
                f"{name:18s} {r.ms:10d} {r.ms / ms_bound:8.2f}x "
                f"{r.md:10d} {r.md / md_bound:8.2f}x {r.tdata:12.0f}"
            )
        print(
            f"{'(lower bound)':18s} {ms_bound:10.0f} {'1.00x':>9s} "
            f"{md_bound:10.0f} {'1.00x':>9s} "
            f"{tdata_lower_bound(machine, order, order, order):12.0f}\n"
        )


if __name__ == "__main__":
    main()
