"""Batched and streaming replay: bit-identity, batching, write-backs.

:func:`repro.cache.replay.replay_bulk` evaluates many ``(policy, CS,
CD)`` cells over one trace; :func:`replay_bulk_streaming` evaluates
them off the running schedule with no materialized trace at all.  The
contract of both is the same as the single-cell path: every counter is
bit-identical to the step simulator.  These tests prove that property
on hypothesis-generated cell *batches* (mixed policies and capacities
over one shared pass), on the real algorithms at ragged shapes, and on
a fixture designed so the dirty-victim write-back propagation path can
never be silently lost (mutating it flips asserted-nonzero counters).
"""

import pytest
from hypothesis import given, settings as hsettings, strategies as st

from repro.algorithms.registry import algorithm_names, get_algorithm
from repro.cache import replay
from repro.cache.block import MAT_A, MAT_B, MAT_C, block_key
from repro.cache.hierarchy import LRUHierarchy
from repro.cache.replay import (
    CompiledTrace,
    clear_trace_cache,
    compile_trace,
    replay_bulk,
    replay_bulk_streaming,
    should_stream,
    stream_threshold,
)
from repro.exceptions import ConfigurationError
from repro.model.machine import PRESETS

MACHINE = PRESETS["q32"]


@pytest.fixture(autouse=True)
def _fresh_trace_cache():
    clear_trace_cache()
    yield
    clear_trace_cache()


def _step_reference(p, cs, cd, policy, fmas):
    hierarchy = LRUHierarchy(p, cs, cd, policy=policy)
    for core, akey, bkey, ckey in fmas:
        hierarchy.compute_touches(core, akey, bkey, ckey)
    return hierarchy.snapshot()


_fma_stream = st.lists(
    st.tuples(
        st.integers(0, 2),  # core
        st.integers(0, 3),
        st.integers(0, 3),  # A index pair
        st.integers(0, 3),
        st.integers(0, 3),  # B index pair
        st.integers(0, 3),
        st.integers(0, 3),  # C index pair
    ),
    min_size=1,
    max_size=100,
)

#: Random cell batches: mixed policies, shared and repeated capacities.
_cell_batch = st.lists(
    st.tuples(
        st.sampled_from(["lru", "fifo"]),
        st.integers(min_value=1, max_value=24),
        st.integers(min_value=1, max_value=10),
    ),
    min_size=1,
    max_size=8,
)


def _build_fmas(raw):
    return [
        (
            core,
            block_key(MAT_A, ai, aj),
            block_key(MAT_B, bi, bj),
            block_key(MAT_C, ci, cj),
        )
        for core, ai, aj, bi, bj, ci, cj in raw
    ]


class TestBatchedBitIdentity:
    @given(_fma_stream, _cell_batch)
    @hsettings(max_examples=100, deadline=None)
    def test_batch_equals_per_cell_step(self, raw, cells):
        """Every cell of a mixed batch matches its own step simulation."""
        fmas = _build_fmas(raw)
        p = 3
        comp = [0] * p
        for core, *_ in fmas:
            comp[core] += 1
        trace = CompiledTrace(p, fmas, comp, None)
        got = replay_bulk(trace, cells)
        for (policy, cs, cd), stats in zip(cells, got):
            assert stats == _step_reference(p, cs, cd, policy, fmas)

    @pytest.mark.parametrize("algorithm", algorithm_names())
    @pytest.mark.parametrize("shape", [(6, 6, 6), (7, 5, 9)])
    def test_batch_on_real_schedules(self, algorithm, shape):
        m, n, z = shape
        alg = get_algorithm(algorithm)(MACHINE, m, n, z)
        trace = compile_trace(alg, directives=False)
        cells = [
            (policy, cs, cd)
            for policy in ("lru", "fifo")
            for cs in (7, 64)
            for cd in (3, 8)
        ]
        got = replay_bulk(trace, cells)
        for (policy, cs, cd), stats in zip(cells, got):
            assert stats == _step_reference(
                trace.p, cs, cd, policy, trace.fmas
            )


class TestStreaming:
    @pytest.mark.parametrize("algorithm", algorithm_names())
    def test_streaming_equals_bulk(self, algorithm):
        """Chunk-fed passes produce the materialized path's counters."""
        cells = [
            (policy, cs, cd)
            for policy in ("lru", "fifo")
            for cs in (2, 16)
            for cd in (1, 6)
        ]
        alg = get_algorithm(algorithm)(MACHINE, 7, 5, 9)
        trace = compile_trace(alg, directives=False)
        want = replay_bulk(trace, cells)
        got, comp = replay_bulk_streaming(
            get_algorithm(algorithm)(MACHINE, 7, 5, 9), cells
        )
        assert got == want
        assert comp == list(trace.comp)

    def test_streaming_crosses_chunk_boundaries(self, monkeypatch):
        """Kernel state carries across flushes (tiny chunk size)."""
        monkeypatch.setattr(replay, "_CHUNK_FMAS", 7)
        cells = [("lru", 8, 3), ("fifo", 8, 3)]
        alg = get_algorithm("shared-opt")(MACHINE, 6, 6, 6)
        got, _ = replay_bulk_streaming(alg, cells)
        trace = compile_trace(
            get_algorithm("shared-opt")(MACHINE, 6, 6, 6), directives=False
        )
        assert got == replay_bulk(trace, cells)

    def test_streaming_rejects_unsupported_policy(self):
        alg = get_algorithm("shared-opt")(MACHINE, 4, 4, 4)
        with pytest.raises(ConfigurationError, match="policy"):
            replay_bulk_streaming(alg, [("plru", 8, 3)])
        with pytest.raises(ConfigurationError, match="positive"):
            replay_bulk_streaming(alg, [("lru", 0, 3)])

    def test_threshold_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_STREAM_FMAS", "123")
        assert stream_threshold() == 123
        assert should_stream(124)
        assert not should_stream(123)
        monkeypatch.setenv("REPRO_STREAM_FMAS", "nope")
        with pytest.raises(ConfigurationError, match="REPRO_STREAM_FMAS"):
            stream_threshold()
        monkeypatch.setenv("REPRO_STREAM_FMAS", "-5")
        with pytest.raises(ConfigurationError, match="REPRO_STREAM_FMAS"):
            stream_threshold()


# ----------------------------------------------------------------------
# Dirty-victim write-back coverage (mutation fixture)
# ----------------------------------------------------------------------
#: A hand-built stream that forces the full dirty-victim cascade at
#: CS=2, CD=1 on one core: every C block is evicted from the
#: distributed cache while dirty (distributed write-back), its mark
#: lands on a resident shared copy, and the shared copy is later
#: evicted dirty (shared write-back).  Silencing any leg of the
#: propagation (victim detection, mark interleaving, dirty-set
#: transfer) zeroes a counter this fixture asserts to be positive.
_WB_FMAS = [
    (0, block_key(MAT_A, 0, 0), block_key(MAT_B, 0, 0), block_key(MAT_C, 0, 0)),
    (0, block_key(MAT_A, 0, 1), block_key(MAT_B, 1, 0), block_key(MAT_C, 1, 1)),
    (0, block_key(MAT_A, 0, 2), block_key(MAT_B, 2, 0), block_key(MAT_C, 2, 2)),
    (0, block_key(MAT_A, 0, 3), block_key(MAT_B, 3, 0), block_key(MAT_C, 3, 3)),
]


class TestDirtyVictimCoverage:
    @pytest.mark.parametrize("policy", ["lru", "fifo"])
    def test_writeback_counters_are_exercised_and_exact(self, policy):
        p = 1
        trace = CompiledTrace(p, _WB_FMAS, [len(_WB_FMAS)], None)
        got = replay_bulk(trace, [(policy, 2, 1)])[0]
        want = _step_reference(p, 2, 1, policy, _WB_FMAS)
        assert got == want
        # The fixture must actually walk the propagation path — a
        # workload with zero write-backs would vacuously "match".
        assert got.distributed[0].writebacks > 0
        assert got.shared.writebacks > 0

    @pytest.mark.parametrize("policy", ["lru", "fifo"])
    def test_writeback_coverage_survives_streaming(self, policy):
        """The streamed kernels walk the same propagation path."""
        p = 1
        trace = CompiledTrace(p, _WB_FMAS, [len(_WB_FMAS)], None)
        want = replay_bulk(trace, [(policy, 2, 1)])[0]

        class _FixtureAlg:
            class machine:  # noqa: N801 - duck-typed attribute access
                p = 1

            def run(self, ctx):
                for core, akey, bkey, ckey in _WB_FMAS:
                    ctx.compute(core, ckey, akey, bkey)

        got, comp = replay_bulk_streaming(_FixtureAlg(), [(policy, 2, 1)])
        assert got[0] == want
        assert comp == [len(_WB_FMAS)]
