"""Tests for access traces and coalescing."""

from hypothesis import given, settings, strategies as st

from repro.cache.block import block_key, MAT_A
from repro.cache.hierarchy import LRUHierarchy
from repro.cache.trace import AccessTrace, coalesce


def key(i):
    return block_key(MAT_A, i, 0)


class TestRecordReplay:
    def test_record_and_len(self):
        t = AccessTrace()
        t.record(0, key(1))
        t.record(1, key(2), write=True)
        assert len(t) == 2
        assert t.entries[1] == (1, key(2), True)

    def test_replay_reproduces_counts(self):
        t = AccessTrace()
        for i in [1, 2, 1, 3, 1, 2]:
            t.record(0, key(i))
        h1 = LRUHierarchy(p=1, cs=8, cd=2)
        h2 = LRUHierarchy(p=1, cs=8, cd=2)
        t.replay(h1)
        t.replay(h2)
        assert h1.snapshot().ms == h2.snapshot().ms

    def test_per_core_split(self):
        t = AccessTrace()
        t.record(0, key(1))
        t.record(1, key(2))
        t.record(0, key(3))
        parts = t.per_core()
        assert len(parts) == 2
        assert [k for _, k, _ in parts[0]] == [key(1), key(3)]
        assert [k for _, k, _ in parts[1]] == [key(2)]


class TestCoalescing:
    def test_adjacent_duplicates_dropped(self):
        t = AccessTrace()
        for i in [1, 1, 1, 2, 2, 1]:
            t.record(0, key(i))
        c = t.coalesced()
        assert [k for _, k, _ in c] == [key(1), key(2), key(1)]

    def test_write_flag_sticky(self):
        t = AccessTrace()
        t.record(0, key(1), write=False)
        t.record(0, key(1), write=True)  # dropped, but dirtiness kept
        c = t.coalesced()
        assert c.entries == [(0, key(1), True)]

    def test_interleaved_cores_not_coalesced(self):
        # Same key on different cores touches different caches.
        t = AccessTrace()
        t.record(0, key(1))
        t.record(1, key(1))
        t.record(0, key(1))  # adjacent for core 0 -> dropped
        c = t.coalesced()
        assert len(c) == 2

    def test_functional_form(self):
        entries = [(0, key(1), False), (0, key(1), False)]
        assert coalesce(entries) == [(0, key(1), False)]

    @given(
        st.data(),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=2, max_value=12),
    )
    @settings(max_examples=60, deadline=None)
    def test_interleaved_repeats_preserve_miss_counts(self, data, cd, cs):
        """Interleaving other cores between a core's immediate repeats
        must not change what coalescing preserves.

        Per-core streams are built with *guaranteed* immediate repeats
        (each reference duplicated 1-3 times), then merged in a drawn
        interleaving — so every example exercises both the dropping
        path and the cross-core adjacency that must NOT be dropped.
        """
        streams = []
        for core in range(3):
            refs = data.draw(
                st.lists(
                    st.tuples(st.integers(0, 6), st.booleans()),
                    max_size=12,
                ),
                label=f"core{core}",
            )
            stream = []
            for i, w in refs:
                repeats = data.draw(st.integers(1, 3), label="repeats")
                stream += [(core, key(i), w)] * repeats
            streams.append(stream)
        merged = []
        while any(streams):
            alive = [s for s in streams if s]
            pick = data.draw(st.integers(0, len(alive) - 1), label="pick")
            merged.append(alive[pick].pop(0))
        t = AccessTrace(merged)
        full = LRUHierarchy(p=3, cs=cs, cd=cd)
        compact = LRUHierarchy(p=3, cs=cs, cd=cd)
        t.replay(full)
        t.coalesced().replay(compact)
        fs, ms = full.snapshot(), compact.snapshot()
        assert fs.ms == ms.ms
        assert fs.md_per_core == ms.md_per_core
        assert [c.writebacks for c in fs.distributed] == [
            c.writebacks for c in ms.distributed
        ]

    @given(
        st.lists(
            st.tuples(
                st.integers(0, 2),
                st.integers(0, 6),
                st.booleans(),
            ),
            max_size=200,
        ),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=2, max_value=12),
    )
    @settings(max_examples=60, deadline=None)
    def test_coalescing_preserves_miss_counts(self, raw, cd, cs):
        """Dropping per-core adjacent re-references never changes misses.

        The dropped reference is necessarily a distributed-cache hit on
        the MRU block, which leaves every cache state unchanged.
        """
        t = AccessTrace([(core, key(i), w) for core, i, w in raw])
        full = LRUHierarchy(p=3, cs=cs, cd=cd)
        merged = LRUHierarchy(p=3, cs=cs, cd=cd)
        t.replay(full)
        t.coalesced().replay(merged)
        fs, ms = full.snapshot(), merged.snapshot()
        assert fs.ms == ms.ms
        assert fs.md_per_core == ms.md_per_core
        assert [c.writebacks for c in fs.distributed] == [
            c.writebacks for c in ms.distributed
        ]
