"""Tests for Belady's OPT trace analysis."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.lru import FIFOCache, LRUCache
from repro.cache.opt import next_use_indices, opt_miss_curve, opt_misses
from repro.exceptions import ConfigurationError


def lru_misses(trace, capacity):
    c = LRUCache(capacity)
    return sum(0 if c.access(k)[0] else 1 for k in trace)


class TestNextUse:
    def test_simple(self):
        assert next_use_indices([1, 2, 1]) == [2, float("inf"), float("inf")]

    def test_empty(self):
        assert next_use_indices([]) == []

    def test_repeated(self):
        assert next_use_indices([5, 5, 5]) == [1, 2, float("inf")]


class TestOptMisses:
    def test_cold_only_when_fits(self):
        trace = [1, 2, 3, 1, 2, 3]
        assert opt_misses(trace, 3) == 3

    def test_classic_belady_example(self):
        # the textbook sequence: OPT beats LRU on a looping scan
        trace = [1, 2, 3, 4, 1, 2, 3, 4, 1, 2, 3, 4]
        assert opt_misses(trace, 3) < lru_misses(trace, 3)

    def test_capacity_one(self):
        trace = [1, 1, 2, 2, 1]
        assert opt_misses(trace, 1) == 3

    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            opt_misses([1], 0)

    def test_miss_curve(self):
        trace = [1, 2, 3, 1, 2, 3, 4, 1]
        curve = opt_miss_curve(trace, [1, 2, 3, 4])
        values = [curve[z] for z in (1, 2, 3, 4)]
        assert values == sorted(values, reverse=True)
        assert curve[4] == 4  # distinct keys only


class TestOptimality:
    @given(
        st.lists(st.integers(0, 8), max_size=250),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=100, deadline=None)
    def test_never_worse_than_lru_or_fifo(self, trace, capacity):
        opt = opt_misses(trace, capacity)
        assert opt <= lru_misses(trace, capacity)
        fifo = FIFOCache(capacity)
        fifo_misses = sum(0 if fifo.access(k)[0] else 1 for k in trace)
        assert opt <= fifo_misses

    @given(st.lists(st.integers(0, 8), max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_lower_bounded_by_cold_misses(self, trace):
        assert opt_misses(trace, 4) >= len(set(trace)) if trace else True

    @given(st.lists(st.integers(0, 5), max_size=150))
    @settings(max_examples=60, deadline=None)
    def test_equals_cold_misses_when_everything_fits(self, trace):
        assert opt_misses(trace, 6) == len(set(trace))

    @given(
        st.lists(st.integers(0, 8), max_size=200),
        st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_capacity(self, trace, capacity):
        assert opt_misses(trace, capacity + 1) <= opt_misses(trace, capacity)


class TestAgainstAlgorithmTraces:
    def test_opt_between_ideal_plan_and_lru(self):
        """On a Shared Opt. trace: IDEAL-planned misses <= OPT <= LRU.

        (IDEAL can prefetch; OPT is demand-fetch, one compulsory miss
        per first touch is unavoidable.)
        """
        from repro.algorithms.shared_opt import SharedOpt
        from repro.cache.trace import AccessTrace
        from repro.model.machine import MulticoreMachine
        from repro.algorithms.base import ExecutionContext

        machine = MulticoreMachine(p=1, cs=30, cd=3, q=8)

        class Recorder(ExecutionContext):
            explicit = False

            def __init__(self):
                super().__init__(1)
                self.trace = AccessTrace()

            def compute(self, core, ckey, akey, bkey):
                self.trace.record(core, akey)
                self.trace.record(core, bkey)
                self.trace.record(core, ckey, write=True)
                self.comp[core] += 1

        rec = Recorder()
        SharedOpt(machine, 10, 10, 10).run(rec)
        keys = [k for _, k, _ in rec.trace]
        opt = opt_misses(keys, 30)
        lru = lru_misses(keys, 30)
        assert opt <= lru
        assert opt >= 3 * 100  # compulsory: every block of A, B, C
