"""Tests for the LRU and FIFO replacement policies."""

import pytest
from hypothesis import given, strategies as st

from repro.cache.lru import FIFOCache, LRUCache, make_policy
from repro.exceptions import ConfigurationError


class TestLRUBasics:
    def test_miss_then_hit(self):
        c = LRUCache(2)
        hit, victim = c.access(1)
        assert (hit, victim) == (False, None)
        hit, victim = c.access(1)
        assert (hit, victim) == (True, None)

    def test_eviction_order_is_lru(self):
        c = LRUCache(2)
        c.access(1)
        c.access(2)
        c.access(1)  # refresh 1 -> 2 becomes LRU
        hit, victim = c.access(3)
        assert not hit and victim == 2
        assert 1 in c and 3 in c and 2 not in c

    def test_capacity_respected(self):
        c = LRUCache(3)
        for k in range(10):
            c.access(k)
        assert len(c) == 3
        assert set(c) == {7, 8, 9}

    def test_mru_lru_helpers(self):
        c = LRUCache(3)
        assert c.mru_key() is None and c.lru_key() is None
        c.access(1)
        c.access(2)
        c.access(3)
        c.access(1)
        assert c.mru_key() == 1
        assert c.lru_key() == 2

    def test_discard(self):
        c = LRUCache(2)
        c.access(1)
        assert c.discard(1)
        assert not c.discard(1)
        assert 1 not in c

    def test_clear(self):
        c = LRUCache(2)
        c.access(1)
        c.access(2)
        c.clear()
        assert len(c) == 0

    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigurationError):
            LRUCache(0)

    def test_capacity_one(self):
        c = LRUCache(1)
        c.access(1)
        hit, victim = c.access(2)
        assert not hit and victim == 1
        hit, _ = c.access(2)
        assert hit


class TestFIFO:
    def test_hit_does_not_refresh(self):
        c = FIFOCache(2)
        c.access(1)
        c.access(2)
        c.access(1)  # hit, but 1 stays oldest
        hit, victim = c.access(3)
        assert not hit and victim == 1

    def test_lru_vs_fifo_differ_on_refresh_pattern(self):
        lru, fifo = LRUCache(2), FIFOCache(2)
        trace = [1, 2, 1, 3, 1]
        lru_misses = sum(0 if lru.access(k)[0] else 1 for k in trace)
        fifo_misses = sum(0 if fifo.access(k)[0] else 1 for k in trace)
        # LRU keeps 1 alive across the 3; FIFO evicts it.
        assert lru_misses == 3
        assert fifo_misses == 4


class TestRegistry:
    def test_make_policy(self):
        assert isinstance(make_policy("lru", 4), LRUCache)
        assert isinstance(make_policy("fifo", 4), FIFOCache)

    def test_unknown_policy(self):
        with pytest.raises(ConfigurationError):
            make_policy("belady", 4)


class TestLRUProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=20), max_size=300),
        st.integers(min_value=1, max_value=10),
    )
    def test_never_exceeds_capacity(self, trace, capacity):
        c = LRUCache(capacity)
        for key in trace:
            c.access(key)
            assert len(c) <= capacity

    @given(
        st.lists(st.integers(min_value=0, max_value=20), max_size=300),
        st.integers(min_value=1, max_value=10),
    )
    def test_inclusion_monotonicity(self, trace, capacity):
        """A bigger LRU cache never misses where the smaller one hits.

        Classic stack property of LRU (Mattson et al.): the resident set
        of an LRU cache of size k is a subset of that of size k+1.
        """
        small = LRUCache(capacity)
        big = LRUCache(capacity + 3)
        for key in trace:
            small_hit, _ = small.access(key)
            big_hit, _ = big.access(key)
            assert not (small_hit and not big_hit)

    @given(st.lists(st.integers(min_value=0, max_value=8), max_size=200))
    def test_resident_set_is_most_recent_distinct(self, trace):
        capacity = 4
        c = LRUCache(capacity)
        for key in trace:
            c.access(key)
        # Compute the expected resident set: last `capacity` distinct keys.
        expected = []
        for key in reversed(trace):
            if key not in expected:
                expected.append(key)
            if len(expected) == capacity:
                break
        assert set(c) == set(expected)
