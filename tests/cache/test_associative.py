"""Tests for set-associative caches and tree pseudo-LRU."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.associative import SetAssociativeCache, TreePLRU, _set_index
from repro.cache.lru import LRUCache, make_policy
from repro.exceptions import ConfigurationError


class TestTreePLRU:
    def test_requires_power_of_two(self):
        with pytest.raises(ConfigurationError):
            TreePLRU(3)
        with pytest.raises(ConfigurationError):
            TreePLRU(0)

    def test_capacity_one(self):
        c = TreePLRU(1)
        assert c.access(1) == (False, None)
        assert c.access(1) == (True, None)
        hit, victim = c.access(2)
        assert not hit and victim == 1

    def test_two_ways_is_exact_lru(self):
        """With 2 ways one bit tracks recency exactly."""
        plru, lru = TreePLRU(2), LRUCache(2)
        trace = [1, 2, 1, 3, 2, 3, 1, 1, 4, 2]
        for key in trace:
            assert plru.access(key)[0] == lru.access(key)[0]

    def test_fills_free_ways_before_evicting(self):
        c = TreePLRU(4)
        for key in (1, 2, 3, 4):
            _, victim = c.access(key)
            assert victim is None
        assert len(c) == 4

    def test_victim_is_not_most_recent(self):
        c = TreePLRU(4)
        for key in (1, 2, 3, 4):
            c.access(key)
        c.access(4)  # refresh
        _, victim = c.access(5)
        assert victim != 4

    def test_discard_frees_way(self):
        c = TreePLRU(2)
        c.access(1)
        c.access(2)
        assert c.discard(1)
        _, victim = c.access(3)
        assert victim is None  # reused the freed way
        assert set(c) == {2, 3}

    def test_clear(self):
        c = TreePLRU(4)
        c.access(1)
        c.clear()
        assert len(c) == 0
        assert 1 not in c

    @given(st.lists(st.integers(0, 15), max_size=300), st.sampled_from([2, 4, 8]))
    @settings(max_examples=60, deadline=None)
    def test_never_exceeds_capacity_and_stays_consistent(self, trace, ways):
        c = TreePLRU(ways)
        for key in trace:
            c.access(key)
            assert len(c) <= ways
            assert len(set(c)) == len(c)

    @given(st.lists(st.integers(0, 10), min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_plru_close_to_lru(self, trace):
        """PLRU is a heuristic: never better than 0 misses of course,
        and empirically within 2x of true LRU on small traces."""
        plru, lru = TreePLRU(4), LRUCache(4)
        plru_misses = sum(0 if plru.access(k)[0] else 1 for k in trace)
        lru_misses = sum(0 if lru.access(k)[0] else 1 for k in trace)
        assert plru_misses >= len(set(trace)) * 0  # sanity
        assert plru_misses <= 2 * lru_misses + 4


class TestSetAssociative:
    def test_geometry_validation(self):
        with pytest.raises(ConfigurationError):
            SetAssociativeCache(10, 4)  # not a multiple
        with pytest.raises(ConfigurationError):
            SetAssociativeCache(8, 0)

    def test_keys_isolated_per_set(self):
        c = SetAssociativeCache(8, 2)
        # find 3 keys in the same set: conflict evictions despite 5 free ways
        keys = []
        target = _set_index(0, c.n_sets)
        k = 0
        while len(keys) < 3:
            if _set_index(k, c.n_sets) == target:
                keys.append(k)
            k += 1
        c.access(keys[0])
        c.access(keys[1])
        hit, victim = c.access(keys[2])
        assert not hit and victim == keys[0]
        assert len(c) == 2  # 6 other ways unused: conflict miss

    def test_fully_associative_degenerate(self):
        """ways == capacity: identical to plain LRU."""
        assoc = SetAssociativeCache(4, 4)
        lru = LRUCache(4)
        trace = [1, 2, 3, 4, 5, 1, 2, 6, 3, 3, 7]
        for key in trace:
            assert assoc.access(key)[0] == lru.access(key)[0]

    def test_iter_len_discard(self):
        c = SetAssociativeCache(8, 2)
        for key in range(5):
            c.access(key)
        assert len(c) == 5
        assert set(c) == set(range(5))
        assert c.discard(3)
        assert not c.discard(3)
        assert len(c) == 4

    def test_clear(self):
        c = SetAssociativeCache(8, 2)
        c.access(1)
        c.clear()
        assert len(c) == 0

    @given(
        st.lists(st.integers(0, 30), max_size=300),
        st.sampled_from([(8, 2), (8, 4), (16, 4)]),
    )
    @settings(max_examples=50, deadline=None)
    def test_equals_partitioned_lru(self, trace, geometry):
        """Defining invariant: an s-set, w-way LRU cache behaves exactly
        like s independent w-entry LRU caches over the hash-partitioned
        subtraces.  (Note: set-associativity does NOT uniformly increase
        misses over full associativity — hypothesis finds traces where a
        block survives in its quiet set while full LRU evicts it.)"""
        capacity, ways = geometry
        assoc = SetAssociativeCache(capacity, ways)
        shadows = [LRUCache(ways) for _ in range(assoc.n_sets)]
        for key in trace:
            expected = shadows[_set_index(key, assoc.n_sets)].access(key)[0]
            assert assoc.access(key)[0] == expected


class TestPolicySpecs:
    def test_make_policy_specs(self):
        assert isinstance(make_policy("plru", 8), TreePLRU)
        assoc = make_policy("assoc4", 16)
        assert isinstance(assoc, SetAssociativeCache) and assoc.ways == 4
        plru_assoc = make_policy("assoc2-plru", 8)
        assert isinstance(plru_assoc, SetAssociativeCache)

    def test_bad_specs(self):
        with pytest.raises(ConfigurationError):
            make_policy("assoc", 8)
        with pytest.raises(ConfigurationError):
            make_policy("assocx", 8)
        with pytest.raises(ConfigurationError):
            make_policy("optimal", 8)

    def test_hierarchy_accepts_assoc_policy(self):
        from repro.cache.hierarchy import LRUHierarchy
        from repro.cache.block import block_key, MAT_A

        h = LRUHierarchy(p=2, cs=16, cd=4, policy="assoc2")
        assert not h._fast  # generic path
        h.touch(0, block_key(MAT_A, 0, 0))
        assert h.shared.misses == 1

    def test_run_experiment_with_assoc(self):
        from repro.model.machine import MulticoreMachine
        from repro.sim.runner import run_experiment

        # capacities divisible by the way count (assoc caches require it)
        machine = MulticoreMachine(p=4, cs=96, cd=20, q=8)
        assoc = run_experiment(
            "shared-opt", machine, 12, 12, 12, "lru", policy="assoc4"
        )
        # plumbing check: the run completes and sees at least the
        # compulsory shared traffic (every block of A, B, C once)
        assert assoc.ms >= 3 * 12 * 12
