"""Tests for the LRU-mode two-level hierarchy."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.block import block_key, MAT_A, MAT_B, MAT_C
from repro.cache.hierarchy import LRUHierarchy
from repro.exceptions import ConfigurationError


def ka(i, j=0):
    return block_key(MAT_A, i, j)


def kb(i, j=0):
    return block_key(MAT_B, i, j)


def kc(i, j=0):
    return block_key(MAT_C, i, j)


class TestPropagation:
    def test_distributed_hit_does_not_touch_shared(self):
        h = LRUHierarchy(p=2, cs=16, cd=4)
        h.touch(0, ka(1))
        shared_before = h.shared.misses + h.shared.hits
        h.touch(0, ka(1))  # distributed hit
        assert h.shared.misses + h.shared.hits == shared_before

    def test_distributed_miss_propagates(self):
        h = LRUHierarchy(p=2, cs=16, cd=4)
        h.touch(0, ka(1))
        assert h.shared.misses == 1
        # Another core misses in its own cache but hits in shared.
        h.touch(1, ka(1))
        assert h.shared.misses == 1
        assert h.shared.hits == 1
        assert h.distributed[1].misses == 1

    def test_per_core_isolation(self):
        h = LRUHierarchy(p=2, cs=16, cd=4)
        h.touch(0, ka(1))
        assert 0 == len(h.distributed[1].policy)

    def test_md_is_max_across_cores(self):
        h = LRUHierarchy(p=2, cs=64, cd=4)
        for i in range(5):
            h.touch(0, ka(i))
        h.touch(1, ka(0))
        stats = h.snapshot()
        assert stats.md == 5
        assert stats.md_per_core == [5, 1]
        assert stats.md_total == 6

    def test_rejects_zero_cores(self):
        with pytest.raises(ConfigurationError):
            LRUHierarchy(p=0, cs=4, cd=2)


class TestWritebacks:
    def test_dirty_eviction_at_distributed_level(self):
        h = LRUHierarchy(p=1, cs=16, cd=1)
        h.touch(0, kc(0), write=True)
        h.touch(0, kc(1))  # evicts dirty kc(0)
        assert h.distributed[0].writebacks == 1

    def test_distributed_writeback_dirties_shared_copy(self):
        # Mirrors IdealHierarchy.evict_distributed: a dirty victim
        # written back from a distributed cache makes the shared copy
        # dirty, so its later shared eviction counts a shared
        # write-back.
        h = LRUHierarchy(p=1, cs=16, cd=1)
        h.touch(0, kc(0), write=True)
        h.touch(0, kc(1))  # evicts dirty kc(0) -> shared copy dirty
        assert kc(0) in h.shared.dirty
        assert h.distributed[0].writebacks == 1

    def test_shared_eviction_after_propagation_counts_writeback(self):
        h = LRUHierarchy(p=1, cs=2, cd=1)
        h.touch(0, kc(0), write=True)
        h.touch(0, ka(0))  # evicts dirty kc(0) from distributed
        assert kc(0) in h.shared.dirty
        h.touch(0, kb(0))  # shared (cs=2) evicts kc(0): dirty -> write-back
        assert kc(0) not in h.shared.dirty
        assert h.shared.writebacks == 1

    def test_writeback_to_memory_when_shared_copy_gone(self):
        # If the shared cache already dropped the block, the distributed
        # write-back goes straight to memory: counted once at the
        # distributed level, no shared dirtiness appears.
        h = LRUHierarchy(p=1, cs=1, cd=2)
        h.touch(0, kc(0), write=True)
        h.touch(0, ka(0))  # shared (cs=1) evicts kc(0); core keeps both
        h.touch(0, kb(0))  # distributed evicts dirty kc(0); not in shared
        assert h.distributed[0].writebacks == 1
        assert kc(0) not in h.shared.dirty
        assert h.shared.writebacks == 0

    def test_matches_ideal_dirty_propagation_semantics(self):
        # The same load/evict story expressed against IdealHierarchy
        # must yield the same shared write-back count.
        from repro.cache.hierarchy import IdealHierarchy

        ideal = IdealHierarchy(p=1, cs=4, cd=1)
        ideal.load_shared(kc(0))
        ideal.load_distributed(0, kc(0))
        ideal.mark_distributed_dirty(0, kc(0))
        ideal.evict_distributed(0, kc(0))  # dirty -> shared copy dirty
        ideal.evict_shared(kc(0))  # dirty shared eviction -> write-back
        assert ideal.shared_writebacks == 1

        lru = LRUHierarchy(p=1, cs=2, cd=1)
        lru.touch(0, kc(0), write=True)
        lru.touch(0, ka(0))  # distributed evicts dirty kc(0)
        lru.touch(0, kb(0))  # shared evicts kc(0)
        assert lru.shared.writebacks == ideal.shared_writebacks


class TestInclusiveMode:
    def test_back_invalidation(self):
        # Shared of 2 blocks, distributed of 2: filling shared evicts
        # older blocks, which must leave the distributed caches too.
        h = LRUHierarchy(p=1, cs=2, cd=2, inclusive=True)
        h.touch(0, ka(1))
        h.touch(0, ka(2))
        h.touch(0, ka(3))  # shared evicts ka(1)
        assert ka(1) not in h.distributed[0].policy
        assert h.check_inclusion()

    def test_non_inclusive_can_violate(self):
        h = LRUHierarchy(p=1, cs=2, cd=2, inclusive=False)
        h.touch(0, ka(1))
        h.touch(0, ka(2))
        h.touch(0, ka(3))
        # ka(1) survives in the distributed cache (cd=2 holds 2,3? No:
        # the distributed cache also evicted ka(1) here; use a case
        # where it survives: touch ka(1) again to refresh distributed
        # ordering).
        h2 = LRUHierarchy(p=2, cs=2, cd=2, inclusive=False)
        h2.touch(0, ka(1))
        h2.touch(1, ka(2))
        h2.touch(1, ka(3))  # shared evicts ka(1); core 0 still holds it
        assert not h2.check_inclusion()

    def test_inclusive_holds_under_random_traffic(self):
        h = LRUHierarchy(p=2, cs=8, cd=4, inclusive=True)
        keys = [ka(i % 11) for i in range(200)]
        for idx, key in enumerate(keys):
            h.touch(idx % 2, key)
        assert h.check_inclusion()


class TestFastPathEquivalence:
    """compute_touches must equal three generic touch() calls."""

    @given(
        st.lists(
            st.tuples(
                st.integers(0, 1),  # core
                st.integers(0, 5),  # i
                st.integers(0, 5),  # j
                st.integers(0, 5),  # k
            ),
            min_size=1,
            max_size=150,
        ),
        st.integers(min_value=3, max_value=9),
        st.integers(min_value=6, max_value=24),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_generic_path(self, fmas, cd, cs):
        fast = LRUHierarchy(p=2, cs=cs, cd=cd)
        slow = LRUHierarchy(p=2, cs=cs, cd=cd)
        assert fast._fast
        for core, i, j, k in fmas:
            fast.compute_touches(core, ka(i, k), kb(k, j), kc(i, j))
            slow.touch(core, ka(i, k))
            slow.touch(core, kb(k, j))
            slow.touch(core, kc(i, j), write=True)
        fs, ss = fast.snapshot(), slow.snapshot()
        assert fs.ms == ss.ms
        assert fs.md_per_core == ss.md_per_core
        assert fs.shared.hits == ss.shared.hits
        assert fs.shared.misses_by_matrix == ss.shared.misses_by_matrix
        assert [c.writebacks for c in fs.distributed] == [
            c.writebacks for c in ss.distributed
        ]
        # Write-back accounting and dirtiness must agree everywhere:
        # shared write-backs only match if distributed dirty evictions
        # propagate identically on both paths.
        assert fs.shared.writebacks == ss.shared.writebacks
        assert fast.shared.dirty == slow.shared.dirty
        for fdc, sdc in zip(fast.distributed, slow.distributed):
            assert fdc.dirty == sdc.dirty
        assert set(fast.shared.policy) == set(slow.shared.policy)

    def test_fifo_uses_generic_path(self):
        h = LRUHierarchy(p=1, cs=8, cd=3, policy="fifo")
        assert not h._fast
        h.compute_touches(0, ka(0), kb(0), kc(0))
        assert h.distributed[0].misses == 3

    def test_reset(self):
        h = LRUHierarchy(p=2, cs=8, cd=3)
        h.compute_touches(0, ka(0), kb(0), kc(0))
        h.reset()
        stats = h.snapshot()
        assert stats.ms == 0 and stats.md == 0
