"""Tests for the explicitly-controlled IDEAL hierarchy."""

import pytest

from repro.cache.block import block_key, MAT_A, MAT_B, MAT_C
from repro.cache.hierarchy import IdealHierarchy
from repro.exceptions import CapacityError, InclusionError, PresenceError


def ka(i, j=0):
    return block_key(MAT_A, i, j)


def kc(i, j=0):
    return block_key(MAT_C, i, j)


class TestCounting:
    def test_load_shared_counts_ms(self):
        h = IdealHierarchy(p=1, cs=4, cd=3)
        h.load_shared(ka(0))
        h.load_shared(ka(1))
        assert h.ms == 2
        assert h.ms_by_matrix == [2, 0, 0]

    def test_redundant_shared_load_not_counted(self):
        h = IdealHierarchy(p=1, cs=4, cd=3)
        h.load_shared(ka(0))
        h.load_shared(ka(0))
        assert h.ms == 1
        assert h.redundant_loads == 1

    def test_load_distributed_counts_md(self):
        h = IdealHierarchy(p=2, cs=8, cd=3)
        h.load_shared(ka(0))
        h.load_distributed(0, ka(0))
        h.load_distributed(1, ka(0))
        assert h.md == [1, 1]

    def test_snapshot(self):
        h = IdealHierarchy(p=2, cs=8, cd=3)
        h.load_shared(ka(0))
        h.load_distributed(1, ka(0))
        stats = h.snapshot()
        assert stats.ms == 1
        assert stats.md == 1
        assert stats.md_per_core == [0, 1]

    def test_peak_tracking(self):
        h = IdealHierarchy(p=1, cs=4, cd=3)
        for i in range(3):
            h.load_shared(ka(i))
        h.evict_shared(ka(0))
        assert h.peak_shared == 3
        assert h.resident_shared() == 2


class TestCapacityChecks:
    def test_shared_overflow_raises(self):
        h = IdealHierarchy(p=1, cs=2, cd=3)
        h.load_shared(ka(0))
        h.load_shared(ka(1))
        with pytest.raises(CapacityError):
            h.load_shared(ka(2))

    def test_distributed_overflow_raises(self):
        h = IdealHierarchy(p=1, cs=8, cd=3)
        for i in range(4):
            h.load_shared(ka(i))
        for i in range(3):
            h.load_distributed(0, ka(i))
        with pytest.raises(CapacityError):
            h.load_distributed(0, ka(3))

    def test_unchecked_mode_allows_overflow(self):
        h = IdealHierarchy(p=1, cs=1, cd=3, check=False)
        h.load_shared(ka(0))
        h.load_shared(ka(1))  # over capacity, tolerated
        assert h.ms == 2


class TestInclusionChecks:
    def test_distributed_load_requires_shared_copy(self):
        h = IdealHierarchy(p=1, cs=4, cd=3)
        with pytest.raises(InclusionError):
            h.load_distributed(0, ka(0))

    def test_shared_evict_blocked_while_core_holds(self):
        h = IdealHierarchy(p=1, cs=4, cd=3)
        h.load_shared(ka(0))
        h.load_distributed(0, ka(0))
        with pytest.raises(InclusionError):
            h.evict_shared(ka(0))
        h.evict_distributed(0, ka(0))
        h.evict_shared(ka(0))  # now fine
        assert h.resident_shared() == 0

    def test_check_inclusion_helper(self):
        h = IdealHierarchy(p=1, cs=4, cd=3, check=False)
        h.load_distributed(0, ka(0))  # tolerated unchecked
        assert not h.check_inclusion()


class TestDirtyAndWritebacks:
    def test_distributed_dirty_propagates_on_evict(self):
        h = IdealHierarchy(p=1, cs=4, cd=3)
        h.load_shared(kc(0))
        h.load_distributed(0, kc(0))
        h.mark_distributed_dirty(0, kc(0))
        h.evict_distributed(0, kc(0))
        assert h.dist_updates[0] == 1
        assert kc(0) in h.shared_dirty
        h.evict_shared(kc(0))
        assert h.shared_writebacks == 1

    def test_clean_eviction_no_writeback(self):
        h = IdealHierarchy(p=1, cs=4, cd=3)
        h.load_shared(ka(0))
        h.evict_shared(ka(0))
        assert h.shared_writebacks == 0

    def test_mark_dirty_requires_presence_when_checked(self):
        h = IdealHierarchy(p=1, cs=4, cd=3)
        with pytest.raises(PresenceError):
            h.mark_shared_dirty(kc(0))
        with pytest.raises(PresenceError):
            h.mark_distributed_dirty(0, kc(0))


class TestPresence:
    def test_assert_present(self):
        h = IdealHierarchy(p=1, cs=8, cd=3)
        for key in (ka(0), block_key(MAT_B, 0, 0), kc(0)):
            h.load_shared(key)
            h.load_distributed(0, key)
        h.assert_present(0, ka(0), block_key(MAT_B, 0, 0), kc(0))
        h.evict_distributed(0, ka(0))
        with pytest.raises(PresenceError):
            h.assert_present(0, ka(0), block_key(MAT_B, 0, 0), kc(0))

    def test_reset(self):
        h = IdealHierarchy(p=2, cs=8, cd=3)
        h.load_shared(ka(0))
        h.reset()
        assert h.ms == 0
        assert h.resident_shared() == 0
