"""Tests for the trace-compile/replay fast path.

The replay engine's contract is *bit-identity*: every counter it
produces (``ms``, ``md``, write-backs, per-matrix splits, hits) must
equal the step simulator's on the same workload.  These tests prove it
on the full algorithms × settings × policies × ragged-shape matrix and
on adversarial random traces (hypothesis), and pin the engine's other
behaviors: trace memoization, result memoization, fallback coverage.
"""

import dataclasses

import pytest
from hypothesis import given, settings as hsettings, strategies as st

from repro.algorithms.registry import algorithm_names, get_algorithm
from repro.cache import replay
from repro.cache.block import MAT_A, MAT_B, MAT_C, block_key
from repro.cache.hierarchy import LRUHierarchy
from repro.cache.replay import (
    CompiledTrace,
    clear_trace_cache,
    compile_trace,
    compiled_trace_for,
    distributed_miss_curves,
    replay_bulk,
    replay_fifo,
    replay_ideal,
    replay_lru,
    supports,
    trace_cache_info,
    trace_fingerprint,
)
from repro.exceptions import ConfigurationError
from repro.model.machine import PRESETS
from repro.sim.runner import run_experiment

MACHINE = PRESETS["q32"]
SHAPES = [(6, 6, 6), (7, 5, 9)]


@pytest.fixture(autouse=True)
def _fresh_trace_cache():
    clear_trace_cache()
    yield
    clear_trace_cache()


# ----------------------------------------------------------------------
# Bit-identity on the real matrix
# ----------------------------------------------------------------------
class TestBitIdentity:
    @pytest.mark.parametrize("algorithm", algorithm_names())
    @pytest.mark.parametrize("shape", SHAPES)
    def test_ideal_matches_step(self, algorithm, shape):
        m, n, z = shape
        rep = run_experiment(algorithm, MACHINE, m, n, z, "ideal")
        step = run_experiment(algorithm, MACHINE, m, n, z, "ideal", engine="step")
        assert rep.stats == step.stats
        assert rep.comp == step.comp

    @pytest.mark.parametrize("algorithm", algorithm_names())
    @pytest.mark.parametrize("setting", ["lru", "lru-2x", "lru-50"])
    @pytest.mark.parametrize("policy", ["lru", "fifo"])
    def test_lru_family_matches_step(self, algorithm, setting, policy):
        m, n, z = 7, 5, 9
        rep = run_experiment(algorithm, MACHINE, m, n, z, setting, policy=policy)
        step = run_experiment(
            algorithm, MACHINE, m, n, z, setting, policy=policy, engine="step"
        )
        assert rep.stats == step.stats
        assert rep.comp == step.comp

    def test_capacity_curve_matches_step_per_point(self):
        capacities = (3, 5, 8, 13, 21)
        alg = get_algorithm("shared-opt")(MACHINE, 8, 8, 8)
        trace = compile_trace(alg, directives=False)
        curves = distributed_miss_curves(trace, capacities)
        for cap in capacities:
            step = run_experiment(
                "shared-opt",
                dataclasses.replace(MACHINE, cd=cap),
                8,
                8,
                8,
                "lru",
                engine="step",
            )
            assert curves[cap] == step.stats.md_per_core

    def test_fifo_cold_start_block_zero(self):
        # Regression: block key 0 (A[0,0]) touched during the cold-start
        # window, when a naive "-1 = never inserted" sentinel satisfies
        # the residency test `ins.get(key, -1) >= m - cd` and fakes a hit.
        fmas = [(0, block_key(MAT_A, 0, 0), block_key(MAT_B, 0, 0),
                 block_key(MAT_C, 0, 0))]
        trace = CompiledTrace(1, fmas, [1], None)
        stats = replay_fifo(trace, [(16, 4)])[0]
        assert stats.distributed[0].misses == 3
        assert stats.distributed[0].hits == 0


# ----------------------------------------------------------------------
# Random traces (hypothesis) — including the dirty-victim path
# ----------------------------------------------------------------------
def _step_reference(p, cs, cd, policy, fmas):
    hierarchy = LRUHierarchy(p, cs, cd, policy=policy)
    for core, akey, bkey, ckey in fmas:
        hierarchy.compute_touches(core, akey, bkey, ckey)
    return hierarchy.snapshot()


#: Random FMA streams over a small block universe (collisions and
#: evictions guaranteed); indices include (0, 0) so block key 0 appears.
_fma_stream = st.lists(
    st.tuples(
        st.integers(0, 2),  # core
        st.integers(0, 3),
        st.integers(0, 3),  # A index pair
        st.integers(0, 3),
        st.integers(0, 3),  # B index pair
        st.integers(0, 3),
        st.integers(0, 3),  # C index pair
    ),
    min_size=1,
    max_size=120,
)


class TestRandomTraces:
    @given(
        _fma_stream,
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=2, max_value=24),
        st.sampled_from(["lru", "fifo"]),
    )
    @hsettings(max_examples=120, deadline=None)
    def test_replay_equals_step_on_random_traces(self, raw, cd, cs, policy):
        fmas = [
            (
                core,
                block_key(MAT_A, ai, aj),
                block_key(MAT_B, bi, bj),
                block_key(MAT_C, ci, cj),
            )
            for core, ai, aj, bi, bj, ci, cj in raw
        ]
        p = 3
        comp = [0] * p
        for core, *_ in fmas:
            comp[core] += 1
        trace = CompiledTrace(p, fmas, comp, None)
        got = replay_bulk(trace, [(policy, cs, cd)])[0]
        assert got == _step_reference(p, cs, cd, policy, fmas)

    @given(
        st.sampled_from(["shared-opt", "distributed-opt"]),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=8),
    )
    @hsettings(max_examples=25, deadline=None)
    def test_ideal_replay_equals_step_on_random_shapes(self, algorithm, m, n, z):
        rep = run_experiment(algorithm, MACHINE, m, n, z, "ideal")
        step = run_experiment(algorithm, MACHINE, m, n, z, "ideal", engine="step")
        assert rep.stats == step.stats

    @given(
        _fma_stream,
        st.lists(
            st.integers(min_value=1, max_value=12),
            min_size=1,
            max_size=4,
            unique=True,
        ),
    )
    @hsettings(max_examples=60, deadline=None)
    def test_capacity_curves_equal_per_capacity_step(self, raw, capacities):
        fmas = [
            (
                core,
                block_key(MAT_A, ai, aj),
                block_key(MAT_B, bi, bj),
                block_key(MAT_C, ci, cj),
            )
            for core, ai, aj, bi, bj, ci, cj in raw
        ]
        p = 3
        trace = CompiledTrace(p, fmas, [0] * p, None)
        curves = distributed_miss_curves(trace, capacities)
        for cap in capacities:
            expected = _step_reference(p, 10_000, cap, "lru", fmas)
            assert curves[cap] == expected.md_per_core


# ----------------------------------------------------------------------
# Coverage predicate + engine knob
# ----------------------------------------------------------------------
class TestCoverage:
    def test_supports_matrix(self):
        assert supports("ideal", "lru", False, False)
        assert not supports("ideal", "lru", False, True)  # checked: oracle
        assert supports("lru", "lru", False, False)
        assert supports("lru", "fifo", False, False)
        assert not supports("lru", "lru", True, False)  # inclusive
        assert not supports("lru", "plru", False, False)
        assert not supports("lru", "assoc", False, False)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown engine"):
            run_experiment("shared-opt", MACHINE, 4, 4, 4, "lru", engine="warp")

    def test_uncovered_config_falls_back_to_step(self):
        # inclusive hierarchies aren't replayable; the default engine
        # must still produce correct (step) results rather than fail
        rep = run_experiment(
            "shared-opt", MACHINE, 5, 5, 5, "lru", inclusive=True
        )
        step = run_experiment(
            "shared-opt", MACHINE, 5, 5, 5, "lru", inclusive=True, engine="step"
        )
        assert rep.stats == step.stats


# ----------------------------------------------------------------------
# Trace memoization
# ----------------------------------------------------------------------
class TestTraceCache:
    def test_lru_family_shares_one_trace(self):
        # lru and lru-2x declare the same machine -> same fingerprint;
        # lru-50 plans against halved capacities -> different trace
        run_experiment("shared-opt", MACHINE, 6, 6, 6, "lru")
        assert trace_cache_info()["entries"] == 1
        run_experiment("shared-opt", MACHINE, 6, 6, 6, "lru-2x")
        assert trace_cache_info()["entries"] == 1
        run_experiment("shared-opt", MACHINE, 6, 6, 6, "lru-50")
        assert trace_cache_info()["entries"] == 2

    def test_fingerprint_distinguishes_shapes(self):
        a1 = get_algorithm("shared-opt")(MACHINE, 6, 6, 6)
        a2 = get_algorithm("shared-opt")(MACHINE, 6, 6, 7)
        assert trace_fingerprint(a1) != trace_fingerprint(a2)
        assert trace_fingerprint(a1) == trace_fingerprint(
            get_algorithm("shared-opt")(MACHINE, 6, 6, 6)
        )

    def test_compute_only_trace_upgraded_for_ideal(self):
        alg = get_algorithm("shared-opt")(MACHINE, 6, 6, 6)
        first = compiled_trace_for(alg, directives=False)
        assert not first.has_directives
        upgraded = compiled_trace_for(alg, directives=True)
        assert upgraded.has_directives
        # the upgraded trace replaces the cached entry and now serves
        # compute-only requests as-is
        assert compiled_trace_for(alg, directives=False) is upgraded

    def test_budget_evicts_oldest(self, monkeypatch):
        alg1 = get_algorithm("shared-opt")(MACHINE, 6, 6, 6)
        alg2 = get_algorithm("shared-opt")(MACHINE, 5, 5, 5)
        monkeypatch.setattr(replay, "_TRACE_CACHE_BUDGET", 1)
        compiled_trace_for(alg1)
        compiled_trace_for(alg2)
        info = trace_cache_info()
        assert info["entries"] == 1
        assert info["fmas"] == 125

    def test_clear(self):
        compiled_trace_for(get_algorithm("shared-opt")(MACHINE, 4, 4, 4))
        clear_trace_cache()
        assert trace_cache_info() == {"entries": 0, "fmas": 0}


# ----------------------------------------------------------------------
# Result memoization
# ----------------------------------------------------------------------
class TestResultMemo:
    def test_warm_replays_equal_and_isolated(self):
        alg = get_algorithm("shared-opt")(MACHINE, 6, 6, 6)
        trace = compiled_trace_for(alg, directives=True)
        for fn in (
            lambda: replay_ideal(trace),
            lambda: replay_lru(trace, [(MACHINE.cs, MACHINE.cd)])[0],
            lambda: replay_fifo(trace, [(MACHINE.cs, MACHINE.cd)])[0],
        ):
            first = fn()
            second = fn()
            assert first == second
            assert first is not second
            # mutating a returned result must not poison the memo
            second.shared.misses_by_matrix[0] += 1000
            assert fn() == first

    def test_memo_distinguishes_configs_and_policies(self):
        alg = get_algorithm("shared-opt")(MACHINE, 6, 6, 6)
        trace = compiled_trace_for(alg, directives=False)
        lru_small, lru_big = replay_lru(trace, [(50, 4), (977, 21)])
        assert lru_small != lru_big
        fifo_small = replay_fifo(trace, [(50, 4)])[0]
        assert fifo_small != lru_small
