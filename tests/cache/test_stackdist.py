"""Tests for the stack-distance analyzer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.lru import LRUCache
from repro.cache.stackdist import (
    COLD,
    DEEP,
    FenwickTree,
    bounded_stack_distances,
    distance_histogram,
    miss_counts_multi,
    miss_curve,
    misses_for_capacity,
    stack_distances,
    stack_distances_fenwick,
)


class TestStackDistances:
    def test_cold_references(self):
        assert stack_distances([1, 2, 3]) == [COLD, COLD, COLD]

    def test_immediate_reuse_distance_zero(self):
        assert stack_distances([1, 1]) == [COLD, 0]

    def test_classic_example(self):
        # trace a b c a: distance of the second a is 2 (b and c between)
        assert stack_distances([1, 2, 3, 1]) == [COLD, COLD, COLD, 2]

    def test_refresh_changes_distance(self):
        # a b a b: each reuse skips exactly one distinct key
        assert stack_distances([1, 2, 1, 2]) == [COLD, COLD, 1, 1]

    def test_histogram(self):
        hist = distance_histogram([1, 2, 1, 1])
        assert hist[COLD] == 2
        assert hist[1] == 1
        assert hist[0] == 1


class TestMissCounts:
    def test_misses_for_capacity(self):
        hist = distance_histogram([1, 2, 3, 1, 2, 3])
        # capacity 3: distances are 2 -> all reuses hit
        assert misses_for_capacity(hist, 3) == 3
        # capacity 2: distance-2 reuses miss
        assert misses_for_capacity(hist, 2) == 6

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            misses_for_capacity(distance_histogram([1]), 0)

    def test_miss_curve_monotone(self):
        trace = [1, 2, 3, 4, 1, 2, 5, 1, 3, 2, 4]
        curve = miss_curve(trace, range(1, 8))
        values = [curve[z] for z in range(1, 8)]
        assert values == sorted(values, reverse=True)

    @given(
        st.lists(st.integers(0, 10), min_size=1, max_size=300),
        st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_direct_lru_simulation(self, trace, capacity):
        """Mattson equivalence: histogram count == simulated LRU misses."""
        cache = LRUCache(capacity)
        simulated = sum(0 if cache.access(k)[0] else 1 for k in trace)
        assert misses_for_capacity(distance_histogram(trace), capacity) == simulated

    @given(st.lists(st.integers(0, 6), max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_cold_misses_equal_distinct_keys(self, trace):
        assert distance_histogram(trace)[COLD] == len(set(trace))


class TestBulkPasses:
    """The replay engine's bulk primitives: Fenwick, bounded, multi."""

    def test_fenwick_tree_prefix_sums(self):
        tree = FenwickTree(8)
        tree.add(0, 1)
        tree.add(3, 2)
        tree.add(7, 5)
        assert tree.prefix_sum(0) == 1
        assert tree.prefix_sum(2) == 1
        assert tree.prefix_sum(3) == 3
        assert tree.total() == 8
        tree.add(3, -2)
        assert tree.total() == 6

    def test_fenwick_tree_rejects_empty(self):
        with pytest.raises(ValueError):
            FenwickTree(0)

    @given(st.lists(st.integers(0, 12), max_size=250))
    @settings(max_examples=80, deadline=None)
    def test_fenwick_equals_list_based(self, trace):
        assert stack_distances_fenwick(trace) == stack_distances(trace)

    @given(
        st.lists(st.integers(0, 12), max_size=250),
        st.integers(min_value=1, max_value=14),
    )
    @settings(max_examples=80, deadline=None)
    def test_bounded_saturates_exactly_at_bound(self, trace, bound):
        full = stack_distances(trace)
        bounded = bounded_stack_distances(trace, bound)
        for exact, capped in zip(full, bounded):
            if exact != COLD and exact < bound:
                assert capped == exact
            else:
                # cold and deep reuses are indistinguishable to any
                # capacity <= bound: both miss everywhere
                assert capped == DEEP

    def test_bounded_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            bounded_stack_distances([1, 2], 0)

    @given(
        st.lists(st.integers(0, 10), min_size=1, max_size=300),
        st.lists(
            st.integers(min_value=1, max_value=12),
            min_size=1,
            max_size=5,
            unique=True,
        ),
    )
    @settings(max_examples=80, deadline=None)
    def test_multi_equals_one_simulation_per_capacity(self, trace, capacities):
        counts = miss_counts_multi(trace, capacities)
        for capacity in capacities:
            cache = LRUCache(capacity)
            simulated = sum(0 if cache.access(k)[0] else 1 for k in trace)
            assert counts[capacity] == simulated

    def test_multi_empty_inputs(self):
        assert miss_counts_multi([1, 2, 3], []) == {}
        assert miss_counts_multi([], [2, 4]) == {2: 0, 4: 0}

    def test_multi_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            miss_counts_multi([1], [0, 2])
