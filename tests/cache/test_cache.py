"""Tests for the Cache wrapper (policy + statistics + dirty tracking)."""

import pytest

from repro.cache.block import block_key, MAT_A, MAT_B, MAT_C
from repro.cache.cache import Cache


def k(mat, i, j=0):
    return block_key(mat, i, j)


class TestCounters:
    def test_hits_and_misses(self):
        c = Cache("t", 4)
        c.access(k(MAT_A, 0))
        c.access(k(MAT_A, 0))
        c.access(k(MAT_B, 1))
        assert c.hits == 1
        assert c.misses == 2

    def test_misses_by_matrix(self):
        c = Cache("t", 8)
        c.access(k(MAT_A, 0))
        c.access(k(MAT_B, 0))
        c.access(k(MAT_B, 1))
        c.access(k(MAT_C, 0))
        assert c.misses_by_matrix == [1, 2, 1]

    def test_stats_snapshot(self):
        c = Cache("t", 4)
        c.access(k(MAT_A, 0))
        c.access(k(MAT_A, 0))
        stats = c.stats()
        assert stats.hits == 1 and stats.misses == 1
        assert stats.accesses == 2
        assert stats.miss_rate == pytest.approx(0.5)
        # snapshot is decoupled from live counters
        c.access(k(MAT_B, 0))
        assert stats.misses == 1

    def test_reset(self):
        c = Cache("t", 4)
        c.access(k(MAT_A, 0), write=True)
        c.reset()
        assert c.hits == c.misses == c.writebacks == 0
        assert len(c) == 0
        assert not c.dirty


class TestDirtyTracking:
    def test_write_marks_dirty(self):
        c = Cache("t", 4)
        c.access(k(MAT_C, 0), write=True)
        assert k(MAT_C, 0) in c.dirty

    def test_dirty_eviction_counts_writeback(self):
        c = Cache("t", 1)
        c.access(k(MAT_C, 0), write=True)
        c.access(k(MAT_C, 1))  # evicts the dirty block
        assert c.writebacks == 1
        assert not c.dirty

    def test_dirty_eviction_reported_to_caller(self):
        # The hierarchy needs to know the victim was dirty to land the
        # write-back in the level below.
        c = Cache("t", 1)
        c.access(k(MAT_C, 0), write=True)
        hit, victim, victim_dirty = c.access(k(MAT_C, 1))
        assert not hit
        assert victim == k(MAT_C, 0)
        assert victim_dirty

    def test_clean_eviction_no_writeback(self):
        c = Cache("t", 1)
        c.access(k(MAT_A, 0))
        c.access(k(MAT_A, 1))
        assert c.writebacks == 0

    def test_invalidate_dirty_counts_writeback(self):
        c = Cache("t", 4)
        key = k(MAT_C, 0)
        c.access(key, write=True)
        assert c.invalidate(key)
        assert c.writebacks == 1
        assert key not in c

    def test_invalidate_absent(self):
        c = Cache("t", 4)
        assert not c.invalidate(k(MAT_A, 9))


class TestPolicyIntegration:
    def test_fifo_policy_by_name(self):
        c = Cache("t", 2, policy="fifo")
        c.access(1)
        c.access(2)
        c.access(1)  # FIFO: no refresh
        _, victim, victim_dirty = c.access(3)
        assert victim == 1
        assert not victim_dirty

    def test_policy_instance(self):
        from repro.cache.lru import LRUCache

        c = Cache("t", 2, policy=LRUCache(2))
        c.access(1)
        assert 1 in c
