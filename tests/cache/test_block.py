"""Tests for compact block addressing."""

import pytest
from hypothesis import given, strategies as st

from repro.cache.block import (
    A_BASE,
    B_BASE,
    C_BASE,
    MAT_A,
    MAT_B,
    MAT_C,
    ROW_SHIFT,
    block_key,
    decode_key,
    key_name,
    matrix_of,
)


class TestEncoding:
    def test_roundtrip_simple(self):
        key = block_key(MAT_B, 3, 7)
        assert decode_key(key) == (MAT_B, 3, 7)
        assert matrix_of(key) == MAT_B

    def test_distinct_matrices_distinct_keys(self):
        assert block_key(MAT_A, 1, 2) != block_key(MAT_B, 1, 2)
        assert block_key(MAT_B, 1, 2) != block_key(MAT_C, 1, 2)

    def test_bases_match_block_key(self):
        assert A_BASE | (5 << ROW_SHIFT) | 9 == block_key(MAT_A, 5, 9)
        assert B_BASE | (5 << ROW_SHIFT) | 9 == block_key(MAT_B, 5, 9)
        assert C_BASE | (5 << ROW_SHIFT) | 9 == block_key(MAT_C, 5, 9)

    def test_key_name(self):
        assert key_name(block_key(MAT_C, 2, 4)) == "C[2,4]"

    def test_rejects_bad_matrix(self):
        with pytest.raises(ValueError):
            block_key(3, 0, 0)
        with pytest.raises(ValueError):
            block_key(-1, 0, 0)

    def test_rejects_out_of_range_coords(self):
        with pytest.raises(ValueError):
            block_key(MAT_A, -1, 0)
        with pytest.raises(ValueError):
            block_key(MAT_A, 1 << 28, 0)

    @given(
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=(1 << 28) - 1),
        st.integers(min_value=0, max_value=(1 << 28) - 1),
    )
    def test_roundtrip_property(self, mat, row, col):
        assert decode_key(block_key(mat, row, col)) == (mat, row, col)

    @given(
        st.tuples(
            st.integers(0, 2), st.integers(0, 10**6), st.integers(0, 10**6)
        ),
        st.tuples(
            st.integers(0, 2), st.integers(0, 10**6), st.integers(0, 10**6)
        ),
    )
    def test_injective(self, t1, t2):
        if t1 != t2:
            assert block_key(*t1) != block_key(*t2)
