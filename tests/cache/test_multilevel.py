"""Tests for the N-level hierarchy generalization."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.block import block_key, MAT_A, MAT_B, MAT_C
from repro.cache.hierarchy import LRUHierarchy
from repro.cache.multilevel import LevelSpec, MultiLevelHierarchy, two_level
from repro.exceptions import ConfigurationError


def ka(i):
    return block_key(MAT_A, i, 0)


class TestTopologyValidation:
    def test_leaf_level_must_match_cores(self):
        with pytest.raises(ConfigurationError):
            MultiLevelHierarchy(4, [LevelSpec(1, 8), LevelSpec(2, 4)])

    def test_counts_must_nest(self):
        with pytest.raises(ConfigurationError):
            MultiLevelHierarchy(
                12, [LevelSpec(1, 64), LevelSpec(5, 16), LevelSpec(12, 4)]
            )

    def test_counts_must_divide_p(self):
        with pytest.raises(ConfigurationError):
            MultiLevelHierarchy(4, [LevelSpec(3, 8), LevelSpec(4, 4)])

    def test_empty_levels(self):
        with pytest.raises(ConfigurationError):
            MultiLevelHierarchy(1, [])

    def test_bad_spec(self):
        with pytest.raises(ConfigurationError):
            LevelSpec(0, 4)
        with pytest.raises(ConfigurationError):
            LevelSpec(1, 0)
        with pytest.raises(ConfigurationError):
            LevelSpec(1, 4, bandwidth=0)

    def test_three_level_topology(self):
        h = MultiLevelHierarchy(
            8,
            [LevelSpec(1, 64), LevelSpec(2, 16), LevelSpec(8, 4)],
        )
        # cores 0-3 share socket cache 0; cores 4-7 share socket cache 1
        assert h.cache_of(1, 0) is h.cache_of(1, 3)
        assert h.cache_of(1, 3) is not h.cache_of(1, 4)
        assert h.cache_of(2, 5) is not h.cache_of(2, 6)


class TestTouchSemantics:
    def test_miss_depth(self):
        h = two_level(2, cs=8, cd=2)
        assert h.touch(0, ka(1)) == 2  # cold: missed both levels
        assert h.touch(0, ka(1)) == 0  # leaf hit
        assert h.touch(1, ka(1)) == 1  # sibling: leaf miss, shared hit

    def test_fill_is_inclusive(self):
        h = MultiLevelHierarchy(
            4, [LevelSpec(1, 64), LevelSpec(2, 16), LevelSpec(4, 4)]
        )
        h.touch(2, ka(7))
        assert ka(7) in h.cache_of(0, 2)
        assert ka(7) in h.cache_of(1, 2)
        assert ka(7) in h.cache_of(2, 2)
        assert h.check_inclusion()

    def test_level_miss_counters(self):
        h = two_level(2, cs=8, cd=2)
        h.touch(0, ka(1))
        h.touch(0, ka(1))
        assert h.level_misses(1) == 1
        assert h.level_misses(0) == 1
        assert h.total_misses(1) == 1

    def test_tdata_weighs_bandwidths(self):
        h = MultiLevelHierarchy(
            1, [LevelSpec(1, 8, bandwidth=2.0), LevelSpec(1, 2, bandwidth=0.5)]
        )
        h.touch(0, ka(1))
        assert h.tdata() == pytest.approx(1 / 2.0 + 1 / 0.5)

    def test_reset(self):
        h = two_level(2, cs=8, cd=2)
        h.touch(0, ka(1))
        h.reset()
        assert h.level_misses(0) == 0


class TestTwoLevelEquivalence:
    """The tree with one root + p leaves must equal LRUHierarchy."""

    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 12), st.booleans()),
            max_size=250,
        ),
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=6, max_value=30),
    )
    @settings(max_examples=60, deadline=None)
    def test_bit_for_bit(self, refs, cd, cs):
        tree = two_level(4, cs=cs, cd=cd)
        flat = LRUHierarchy(p=4, cs=cs, cd=cd)
        for core, i, write in refs:
            tree.touch(core, ka(i), write)
            flat.touch(core, ka(i), write)
        flat_stats = flat.snapshot()
        assert tree.level_misses(0) == flat_stats.ms
        assert [c.misses for c in tree.level_stats(1)] == flat_stats.md_per_core
        assert [c.hits for c in tree.level_stats(1)] == [
            c.hits for c in flat_stats.distributed
        ]


class TestThreeLevelBehaviour:
    def test_socket_cache_captures_cross_core_reuse(self):
        """A mid-level cache turns sibling reuse into cheap fills."""
        three = MultiLevelHierarchy(
            4, [LevelSpec(1, 64), LevelSpec(2, 16), LevelSpec(4, 2)]
        )
        # cores 0 and 1 share the level-1 cache; 0 and 2 do not.
        three.touch(0, ka(1))
        depth_sibling = three.touch(1, ka(1))
        three.touch(0, ka(2))
        depth_foreign = three.touch(2, ka(2))
        assert depth_sibling == 1  # found in the shared socket cache
        assert depth_foreign == 2  # had to go to the root
