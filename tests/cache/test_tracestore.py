"""On-disk trace tier: round-trips, crash consistency, telemetry.

The tier's contract is "a valid entry or a miss, never an exception":
torn writes, stale formats and corrupt files must all degrade to cache
misses, and a loaded trace must replay bit-identically to the
in-memory one it was stored from (the kernels run off the read-only
memmap).  These tests also pin the integration surface —
:func:`repro.cache.replay.compiled_trace_for` promoting compiled
traces to disk and reporting ``origin`` telemetry — and the scan/
counter helpers behind ``repro-mmm traces stats``.
"""

import json

import numpy as np
import pytest

from repro.algorithms.registry import get_algorithm
from repro.cache import replay, tracestore
from repro.cache.replay import (
    clear_trace_cache,
    compile_trace,
    compiled_trace_for,
    configure_trace_tier,
    replay_bulk,
    replay_ideal,
    trace_fingerprint,
)
from repro.model.machine import PRESETS

MACHINE = PRESETS["q32"]


@pytest.fixture(autouse=True)
def _fresh_state():
    clear_trace_cache()
    configure_trace_tier(None)
    tracestore.reset_tier_counters()
    yield
    clear_trace_cache()
    configure_trace_tier(None)
    tracestore.reset_tier_counters()


def _alg(m=6, n=6, z=6, name="shared-opt"):
    return get_algorithm(name)(MACHINE, m, n, z)


class TestRoundTrip:
    def test_store_load_preserves_trace(self, tmp_path):
        alg = _alg()
        trace = compile_trace(alg, directives=True)
        fp = trace_fingerprint(alg)
        assert tracestore.store(tmp_path, fp, trace)
        loaded = tracestore.load(tmp_path, fp)
        assert loaded is not None
        assert loaded.p == trace.p
        assert list(loaded.comp) == list(trace.comp)
        assert loaded.has_directives
        assert np.array_equal(loaded.fma_array, trace.fma_array)

    def test_loaded_trace_replays_bit_identically(self, tmp_path):
        alg = _alg(7, 5, 9)
        trace = compile_trace(alg, directives=True)
        fp = trace_fingerprint(alg)
        tracestore.store(tmp_path, fp, trace)
        loaded = tracestore.load(tmp_path, fp)
        cells = [("lru", 16, 3), ("fifo", 16, 3)]
        assert replay_bulk(loaded, cells) == replay_bulk(trace, cells)
        assert replay_ideal(loaded) == replay_ideal(trace)

    def test_loaded_fma_array_is_readonly_memmap(self, tmp_path):
        alg = _alg()
        trace = compile_trace(alg, directives=False)
        fp = trace_fingerprint(alg)
        tracestore.store(tmp_path, fp, trace)
        loaded = tracestore.load(tmp_path, fp)
        assert isinstance(loaded.fma_array, np.memmap)
        assert not loaded.fma_array.flags.writeable

    def test_compute_only_store_has_no_directives(self, tmp_path):
        alg = _alg()
        trace = compile_trace(alg, directives=False)
        fp = trace_fingerprint(alg)
        tracestore.store(tmp_path, fp, trace)
        loaded = tracestore.load(tmp_path, fp)
        assert loaded is not None
        assert not loaded.has_directives


class TestCrashConsistency:
    def test_absent_entry_is_a_miss(self, tmp_path):
        assert tracestore.load(tmp_path, ("nope",)) is None
        assert tracestore.tier_counters()["misses"] == 1

    def test_torn_write_without_meta_is_a_miss(self, tmp_path):
        """Arrays on disk but no meta.json — the pre-crash window."""
        alg = _alg()
        trace = compile_trace(alg, directives=False)
        fp = trace_fingerprint(alg)
        tracestore.store(tmp_path, fp, trace)
        (tracestore.entry_dir(tmp_path, fp) / "meta.json").unlink()
        assert tracestore.load(tmp_path, fp) is None

    def test_corrupt_meta_is_a_miss(self, tmp_path):
        alg = _alg()
        trace = compile_trace(alg, directives=False)
        fp = trace_fingerprint(alg)
        tracestore.store(tmp_path, fp, trace)
        (tracestore.entry_dir(tmp_path, fp) / "meta.json").write_text("{oops")
        assert tracestore.load(tmp_path, fp) is None

    def test_truncated_array_is_a_miss_not_an_exception(self, tmp_path):
        alg = _alg()
        trace = compile_trace(alg, directives=False)
        fp = trace_fingerprint(alg)
        tracestore.store(tmp_path, fp, trace)
        entry = tracestore.entry_dir(tmp_path, fp)
        # shrink the array under an unchanged meta.json
        arr = np.load(entry / "fmas.npy")
        np.save(entry / "fmas.npy", arr[:1])
        assert tracestore.load(tmp_path, fp) is None
        assert tracestore.tier_counters()["errors"] >= 1

    def test_foreign_format_version_is_a_miss(self, tmp_path):
        alg = _alg()
        trace = compile_trace(alg, directives=False)
        fp = trace_fingerprint(alg)
        tracestore.store(tmp_path, fp, trace)
        meta_path = tracestore.entry_dir(tmp_path, fp) / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["format"] = tracestore.FORMAT_VERSION + 1
        meta_path.write_text(json.dumps(meta))
        assert tracestore.load(tmp_path, fp) is None


class TestTierIntegration:
    def test_compiled_trace_promoted_to_disk_then_shared(self, tmp_path):
        configure_trace_tier(str(tmp_path))
        first = compiled_trace_for(_alg(), directives=False)
        assert first.origin == "compiled"
        # a second *process* would miss the memory LRU; simulate it
        clear_trace_cache()
        second = compiled_trace_for(_alg(), directives=False)
        assert second.origin == "disk"
        assert np.array_equal(second.fma_array, first.fma_array)
        # within the process the memory LRU answers first
        third = compiled_trace_for(_alg(), directives=False)
        assert third.origin in ("memory", "disk")

    def test_directive_upgrade_recompiles_and_restores(self, tmp_path):
        configure_trace_tier(str(tmp_path))
        compiled_trace_for(_alg(), directives=False)
        clear_trace_cache()
        upgraded = compiled_trace_for(_alg(), directives=True)
        assert upgraded.origin == "compiled"
        assert upgraded.has_directives
        clear_trace_cache()
        assert compiled_trace_for(_alg(), directives=True).origin == "disk"

    def test_counters_and_tier_info(self, tmp_path):
        configure_trace_tier(str(tmp_path))
        tracestore.reset_tier_counters()
        compiled_trace_for(_alg(), directives=False)
        clear_trace_cache()
        compiled_trace_for(_alg(), directives=False)
        counters = tracestore.tier_counters()
        assert counters["stores"] >= 1
        assert counters["hits"] >= 1
        info = tracestore.tier_info(tmp_path)
        assert info["entries"] == 1
        assert info["fmas"] == len(compile_trace(_alg(), directives=False))
        assert info["bytes"] > 0
        assert info["directive_entries"] == 0

    def test_tier_info_on_missing_dir(self, tmp_path):
        info = tracestore.tier_info(tmp_path / "nothing")
        assert info == {
            "entries": 0,
            "fmas": 0,
            "bytes": 0,
            "directive_entries": 0,
        }

    def test_content_key_is_stable_and_distinct(self):
        fp_a = trace_fingerprint(_alg())
        fp_b = trace_fingerprint(_alg(7, 5, 9))
        assert tracestore.content_key(fp_a) == tracestore.content_key(fp_a)
        assert tracestore.content_key(fp_a) != tracestore.content_key(fp_b)
