"""Cross-validation properties tying the independent substrates together.

Each test checks an identity that holds between two *independently
implemented* components — the strongest kind of correctness evidence a
simulator can self-provide:

* the two-level hierarchy with unit distributed caches vs LRU
  stack-distance analysis of the coalesced trace;
* the hierarchy's distributed level vs stack distance on per-core
  subtraces;
* LRU simulation vs the Mattson miss curve at *every* capacity.
"""

from hypothesis import given, settings, strategies as st

from repro.cache.block import block_key, MAT_A
from repro.cache.hierarchy import LRUHierarchy
from repro.cache.stackdist import distance_histogram, misses_for_capacity
from repro.cache.trace import AccessTrace

refs = st.lists(
    st.tuples(st.integers(0, 2), st.integers(0, 14)), max_size=250
)


def key(i):
    return block_key(MAT_A, i, 0)


class TestHierarchyVsStackDistance:
    @given(refs, st.integers(min_value=2, max_value=20))
    @settings(max_examples=60, deadline=None)
    def test_unit_leaf_caches_expose_coalesced_trace_to_shared(self, raw, cs):
        """With capacity-1 distributed caches, the shared cache sees
        exactly the per-core-coalesced reference stream, so its misses
        must equal single-cache LRU misses of that stream."""
        h = LRUHierarchy(p=3, cs=cs, cd=1)
        trace = AccessTrace([(core, key(i), False) for core, i in raw])
        trace.replay(h)
        coalesced_keys = [k for _, k, _ in trace.coalesced()]
        hist = distance_histogram(coalesced_keys)
        assert h.snapshot().ms == misses_for_capacity(hist, cs)

    @given(refs, st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_distributed_level_equals_per_core_stackdist(self, raw, cd):
        """Each distributed cache is an independent LRU over its core's
        subtrace: simulation must equal the Mattson count."""
        h = LRUHierarchy(p=3, cs=64, cd=cd)
        trace = AccessTrace([(core, key(i), False) for core, i in raw])
        trace.replay(h)
        stats = h.snapshot()
        for core, sub in enumerate(trace.per_core()):
            keys = [k for _, k, _ in sub]
            expected = misses_for_capacity(distance_histogram(keys), cd)
            if core < len(stats.md_per_core):
                assert stats.md_per_core[core] == expected

    @given(st.lists(st.integers(0, 12), max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_miss_curve_consistent_at_every_capacity(self, keys_raw):
        """One histogram, many capacities, each equal to a fresh
        single-cache simulation."""
        from repro.cache.lru import LRUCache

        keys = [key(i) for i in keys_raw]
        hist = distance_histogram(keys)
        for capacity in (1, 2, 3, 5, 8, 13):
            cache = LRUCache(capacity)
            simulated = sum(0 if cache.access(k)[0] else 1 for k in keys)
            assert misses_for_capacity(hist, capacity) == simulated
