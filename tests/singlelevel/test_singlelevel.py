"""Tests for the single-level (master-worker) lineage package."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import (
    CapacityError,
    ConfigurationError,
    ParameterError,
    PresenceError,
    ScheduleError,
)
from repro.singlelevel.memory import BoundedMemory
from repro.singlelevel.runner import (
    run_single_level,
    verify_single_level,
)
from repro.singlelevel.schedules import (
    SINGLE_LEVEL_SCHEDULES,
    SingleLevelEqual,
    SingleLevelMaxReuse,
)


class TestBoundedMemory:
    def test_load_counts_once(self):
        mem = BoundedMemory(4)
        mem.load(1)
        mem.load(1)
        assert mem.loads == 1

    def test_capacity_enforced(self):
        mem = BoundedMemory(3)
        for key in (1, 2, 3):
            mem.load(key)
        with pytest.raises(CapacityError):
            mem.load(4)

    def test_dirty_eviction_writes_back(self):
        mem = BoundedMemory(3)
        mem.load(1)
        mem.mark_dirty(1)
        mem.evict(1)
        assert mem.writebacks == 1

    def test_mark_dirty_requires_residency(self):
        mem = BoundedMemory(3)
        with pytest.raises(PresenceError):
            mem.mark_dirty(7)

    def test_assert_resident(self):
        mem = BoundedMemory(3)
        mem.load(1)
        mem.assert_resident(1)
        with pytest.raises(PresenceError):
            mem.assert_resident(1, 2)

    def test_too_small_memory(self):
        with pytest.raises(ConfigurationError):
            BoundedMemory(2)

    def test_peak_tracking(self):
        mem = BoundedMemory(5)
        for key in (1, 2, 3):
            mem.load(key)
        mem.evict(1)
        mem.load(4)
        assert mem.peak == 3


class TestMaxReuse:
    def test_mu_default(self):
        sched = SingleLevelMaxReuse(21, 8, 8, 8)
        assert sched.mu == 4

    def test_exact_load_formula(self):
        # mu=4 divides 8: loads = mn + 2mnz/mu
        r = run_single_level("single-max-reuse", 21, 8, 8, 8)
        assert r.loads == 64 + 2 * 512 // 4
        assert r.loads == r.predicted_loads

    def test_c_written_back_once(self):
        r = run_single_level("single-max-reuse", 21, 8, 8, 8)
        assert r.writebacks == 64  # each C block exactly once

    def test_peak_respects_split(self):
        r = run_single_level("single-max-reuse", 21, 8, 8, 8)
        assert r.peak <= 21
        assert r.peak == 1 + 4 + 16  # the 1 + µ + µ² split, fully used

    def test_ccr_approaches_two_over_root_m(self):
        # large matrices: CCR -> 2/µ ~ 2/sqrt(M)
        r = run_single_level("single-max-reuse", 21, 16, 16, 64)
        assert r.ccr == pytest.approx(1 / 64 + 2 / 4, rel=1e-6)

    def test_mu_override_validation(self):
        with pytest.raises(ParameterError):
            SingleLevelMaxReuse(21, 4, 4, 4, mu=5)

    @pytest.mark.parametrize("dims", [(8, 8, 8), (7, 5, 9), (1, 1, 1)])
    def test_numeric(self, dims):
        verify_single_level(SingleLevelMaxReuse(21, *dims), q=3)


class TestEqual:
    def test_t_default(self):
        assert SingleLevelEqual(27, 6, 6, 6).t == 3

    def test_exact_load_formula(self):
        r = run_single_level("single-equal", 27, 6, 6, 6)
        assert r.loads == 36 + 2 * 216 // 3
        assert r.loads == r.predicted_loads

    def test_worse_than_max_reuse(self):
        """[7]'s point: the thirds split wastes memory (t=2 vs µ=4, M=21)."""
        eq = run_single_level("single-equal", 21, 8, 8, 8)
        mr = run_single_level("single-max-reuse", 21, 8, 8, 8)
        assert mr.loads < eq.loads

    def test_t_override_validation(self):
        with pytest.raises(ParameterError):
            SingleLevelEqual(11, 4, 4, 4, t=2)

    @pytest.mark.parametrize("dims", [(6, 6, 6), (7, 5, 9), (2, 3, 1)])
    def test_numeric(self, dims):
        verify_single_level(SingleLevelEqual(27, *dims), q=3)


class TestRunner:
    def test_unknown_schedule(self):
        with pytest.raises(ConfigurationError):
            run_single_level("strassen", 21, 4, 4, 4)

    def test_ccr_lower_bound(self):
        r = run_single_level("single-max-reuse", 21, 8, 8, 8)
        assert r.ccr_lower_bound() == pytest.approx(math.sqrt(27 / (8 * 21)))
        assert r.ccr >= r.ccr_lower_bound()

    @given(
        st.integers(min_value=1, max_value=9),
        st.integers(min_value=1, max_value=9),
        st.integers(min_value=1, max_value=9),
    )
    @settings(max_examples=25, deadline=None)
    def test_all_schedules_respect_bound_and_capacity(self, m, n, z):
        for name in SINGLE_LEVEL_SCHEDULES:
            r = run_single_level(name, 21, m, n, z)
            assert r.peak <= 21
            # compulsory floor: every block loaded at least once
            assert r.loads >= m * n + m * z + z * n
