"""Tests for the numeric schedule executor and its discipline checks."""

import pytest

from repro.algorithms.base import MatmulAlgorithm
from repro.algorithms.shared_opt import SharedOpt
from repro.cache.block import block_key, MAT_A, MAT_B, MAT_C
from repro.exceptions import ScheduleError
from repro.numerics.blockmatrix import BlockMatrix
from repro.numerics.executor import NumericContext, execute_numeric, verify_schedule


def _ctx(m=2, n=2, z=2, p=1):
    a = BlockMatrix.random(m, z, q=2, seed=0)
    b = BlockMatrix.random(z, n, q=2, seed=1)
    return NumericContext(p, a, b)


class TestDiscipline:
    def test_wrong_matrix_roles_rejected(self):
        ctx = _ctx()
        with pytest.raises(ScheduleError):
            ctx.compute(
                0,
                block_key(MAT_A, 0, 0),  # C operand from matrix A
                block_key(MAT_A, 0, 0),
                block_key(MAT_B, 0, 0),
            )

    def test_inconsistent_coordinates_rejected(self):
        ctx = _ctx()
        with pytest.raises(ScheduleError):
            ctx.compute(
                0,
                block_key(MAT_C, 0, 1),
                block_key(MAT_A, 0, 0),
                block_key(MAT_B, 0, 0),  # j mismatch: B col 0, C col 1
            )

    def test_double_emission_rejected(self):
        ctx = _ctx()
        args = (
            0,
            block_key(MAT_C, 0, 0),
            block_key(MAT_A, 0, 0),
            block_key(MAT_B, 0, 0),
        )
        ctx.compute(*args)
        with pytest.raises(ScheduleError):
            ctx.compute(*args)

    def test_completeness_check(self):
        ctx = _ctx(m=1, n=1, z=2)
        ctx.compute(
            0, block_key(MAT_C, 0, 0), block_key(MAT_A, 0, 0), block_key(MAT_B, 0, 0)
        )
        with pytest.raises(ScheduleError):
            ctx.assert_complete()  # k=1 update missing

    def test_incompatible_operands(self):
        a = BlockMatrix(2, 3, q=2)
        b = BlockMatrix(2, 2, q=2)
        with pytest.raises(ScheduleError):
            NumericContext(1, a, b)


class TestExecution:
    def test_execute_numeric_returns_product(self, quad):
        a = BlockMatrix.random(6, 4, q=2, seed=3)
        b = BlockMatrix.random(4, 6, q=2, seed=4)
        alg = SharedOpt(quad, 6, 6, 4)
        c = execute_numeric(alg, a, b)
        assert c.allclose(a @ b)

    def test_verify_schedule_passes_for_correct(self, quad):
        verify_schedule(SharedOpt(quad, 4, 4, 4), q=2)

    def test_verify_schedule_catches_incomplete(self, quad):
        class Broken(MatmulAlgorithm):
            """Skips the final k contribution of every block."""

            name = "broken"

            def run(self, ctx):
                for i in range(self.m):
                    for j in range(self.n):
                        for k in range(self.z - 1):  # bug: z-1
                            ctx.compute(
                                0,
                                block_key(MAT_C, i, j),
                                block_key(MAT_A, i, k),
                                block_key(MAT_B, k, j),
                            )

        with pytest.raises(ScheduleError):
            verify_schedule(Broken(quad, 3, 3, 3), q=2)

    def test_verify_schedule_catches_wrong_operand(self, quad):
        class Twisted(MatmulAlgorithm):
            """Transposes the A access pattern (classic index bug)."""

            name = "twisted"

            def run(self, ctx):
                for i in range(self.m):
                    for j in range(self.n):
                        for k in range(self.z):
                            ctx.compute(
                                0,
                                block_key(MAT_C, i, j),
                                block_key(MAT_A, k, i),  # bug: (k, i)
                                block_key(MAT_B, k, j),
                            )

        with pytest.raises(ScheduleError):
            verify_schedule(Twisted(quad, 3, 3, 3), q=2)
