"""Tests for the block compute kernels."""

import numpy as np
import pytest

from repro.exceptions import ScheduleError
from repro.numerics.blockmatrix import BlockMatrix
from repro.numerics.kernels import block_fma, blocked_reference_product


class TestBlockFMA:
    def test_accumulates(self):
        c = np.ones((2, 2))
        a = np.eye(2)
        b = np.full((2, 2), 3.0)
        block_fma(c, a, b)
        assert np.allclose(c, 1 + 3 * np.eye(2) @ np.ones((2, 2)))

    def test_in_place(self):
        c = np.zeros((2, 2))
        ref = c
        block_fma(c, np.eye(2), np.eye(2))
        assert ref is c
        assert np.allclose(c, np.eye(2))

    def test_shape_mismatch(self):
        with pytest.raises(ScheduleError):
            block_fma(np.zeros((2, 2)), np.zeros((2, 3)), np.zeros((2, 3)))

    def test_rectangular_inner(self):
        c = np.zeros((2, 4))
        block_fma(c, np.ones((2, 3)), np.ones((3, 4)))
        assert np.allclose(c, 3.0)


class TestReferenceProduct:
    def test_matches_numpy(self):
        a = BlockMatrix.random(3, 2, q=3, seed=5)
        b = BlockMatrix.random(2, 4, q=3, seed=6)
        c = blocked_reference_product(a, b)
        assert np.allclose(c.data, a.data @ b.data)

    def test_incompatible(self):
        with pytest.raises(ScheduleError):
            blocked_reference_product(BlockMatrix(2, 2, q=2), BlockMatrix(3, 2, q=2))

    def test_single_block(self):
        a = BlockMatrix.random(1, 1, q=4, seed=7)
        b = BlockMatrix.random(1, 1, q=4, seed=8)
        c = blocked_reference_product(a, b)
        assert np.allclose(c.data, a.data @ b.data)
