"""Tests for the block-partitioned matrix wrapper."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.numerics.blockmatrix import BlockMatrix


class TestConstruction:
    def test_zero_initialized(self):
        bm = BlockMatrix(2, 3, q=4)
        assert bm.shape == (8, 12)
        assert bm.shape_blocks == (2, 3)
        assert np.all(bm.data == 0)

    def test_wraps_existing_array_without_copy(self):
        data = np.ones((8, 8))
        bm = BlockMatrix(2, 2, q=4, data=data)
        bm.block(0, 0)[:] = 5
        assert data[0, 0] == 5  # shared storage

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            BlockMatrix(2, 2, q=4, data=np.zeros((8, 9)))

    def test_invalid_geometry(self):
        with pytest.raises(ConfigurationError):
            BlockMatrix(0, 2, q=4)

    def test_random_deterministic(self):
        a = BlockMatrix.random(2, 2, q=3, seed=42)
        b = BlockMatrix.random(2, 2, q=3, seed=42)
        assert a.allclose(b)


class TestBlockAccess:
    def test_block_is_view(self):
        bm = BlockMatrix(2, 2, q=4)
        bm.block(1, 0)[:] = 7
        assert np.all(bm.data[4:8, 0:4] == 7)
        assert np.all(bm.data[0:4, 0:4] == 0)

    def test_block_out_of_range(self):
        bm = BlockMatrix(2, 2, q=4)
        with pytest.raises(IndexError):
            bm.block(2, 0)
        with pytest.raises(IndexError):
            bm.block(0, -1)


class TestOps:
    def test_matmul_matches_numpy(self):
        a = BlockMatrix.random(3, 4, q=2, seed=1)
        b = BlockMatrix.random(4, 2, q=2, seed=2)
        c = a @ b
        assert np.allclose(c.data, a.data @ b.data)
        assert c.shape_blocks == (3, 2)

    def test_matmul_incompatible(self):
        a = BlockMatrix(2, 3, q=2)
        b = BlockMatrix(2, 2, q=2)
        with pytest.raises(ConfigurationError):
            a @ b

    def test_matmul_q_mismatch(self):
        a = BlockMatrix(2, 2, q=2)
        b = BlockMatrix(2, 2, q=3)
        with pytest.raises(ConfigurationError):
            a @ b

    def test_copy_detached(self):
        a = BlockMatrix.random(2, 2, q=2, seed=0)
        b = a.copy()
        b.block(0, 0)[:] = 0
        assert not a.allclose(b)

    def test_allclose_geometry_sensitive(self):
        assert not BlockMatrix(2, 2, q=2).allclose(BlockMatrix(2, 2, q=3))
        assert not BlockMatrix(2, 2, q=2).allclose(BlockMatrix(2, 3, q=2))
