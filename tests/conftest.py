"""Shared fixtures: small machines and dimension sets used across tests."""

from __future__ import annotations

import pytest

from repro.model.machine import MulticoreMachine, preset


@pytest.fixture
def quad() -> MulticoreMachine:
    """A small quad-core machine: tiles stay tiny, runs stay fast.

    CS=100 -> lambda=9, CD=21 -> mu=4, equal tiles t=5 (shared) / 2
    (distributed).
    """
    return MulticoreMachine(p=4, cs=100, cd=21, q=8, name="test-quad")


@pytest.fixture
def paper_q32() -> MulticoreMachine:
    """The paper's q=32 preset (CS=977, CD=21)."""
    return preset("q32")


@pytest.fixture
def unicore() -> MulticoreMachine:
    """Single-core edge-case machine."""
    return MulticoreMachine(p=1, cs=30, cd=7, q=8, name="test-uni")


@pytest.fixture
def nine_core() -> MulticoreMachine:
    """3x3 grid machine (square but not power of two)."""
    return MulticoreMachine(p=9, cs=200, cd=13, q=8, name="test-nine")
