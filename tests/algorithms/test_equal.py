"""Tests for the Shared Equal / Distributed Equal baselines."""

import pytest

from repro.algorithms.equal import DistributedEqual, SharedEqual, equal_tile
from repro.exceptions import ParameterError
from repro.model.machine import MulticoreMachine
from repro.numerics.executor import verify_schedule
from repro.sim.runner import run_experiment


class TestEqualTile:
    @pytest.mark.parametrize(
        "capacity,expected",
        [(3, 1), (11, 1), (12, 2), (27, 3), (977, 18), (21, 2), (16, 2), (6, 1)],
    )
    def test_values(self, capacity, expected):
        assert equal_tile(capacity) == expected

    def test_too_small(self):
        with pytest.raises(ParameterError):
            equal_tile(2)

    def test_defining_property(self):
        for capacity in range(3, 2000, 7):
            t = equal_tile(capacity)
            assert 3 * t * t <= capacity or t == 1
            assert 3 * (t + 1) ** 2 > capacity


class TestSharedEqual:
    def test_default_tile(self, paper_q32):
        assert SharedEqual(paper_q32, 18, 18, 18).t == 18

    def test_tile_capacity_check(self, quad):
        with pytest.raises(ParameterError):
            SharedEqual(quad, 10, 10, 10, t=6)  # 3*36 = 108 > 100

    def test_exact_formulas(self, quad):
        # t=5 divides 10: MS = mn + 2mnz/t
        r = run_experiment("shared-equal", quad, 10, 10, 10, "ideal", check=True, t=5)
        assert r.ms == 100 + 2 * 1000 // 5
        assert r.ms == r.predicted.ms
        assert r.md == r.predicted.md

    def test_worse_than_shared_opt(self, quad):
        """The equal-thirds split wastes shared capacity: t=5 < λ=9.

        Order 45 divides evenly by both tile sides, so the comparison
        is free of ragged-edge noise.
        """
        eq = run_experiment("shared-equal", quad, 45, 45, 45, "ideal")
        so = run_experiment("shared-opt", quad, 45, 45, 45, "ideal")
        assert eq.ms > so.ms

    @pytest.mark.parametrize("dims", [(10, 10, 10), (7, 5, 9), (1, 4, 2)])
    def test_numeric(self, quad, dims):
        verify_schedule(SharedEqual(quad, *dims), q=3)


class TestDistributedEqual:
    def test_default_tile(self, paper_q32):
        assert DistributedEqual(paper_q32, 8, 8, 8).t == 2  # CD=21 -> t=2

    def test_tile_capacity_check(self, quad):
        with pytest.raises(ParameterError):
            DistributedEqual(quad, 8, 8, 8, t=3)  # 27 > 21

    def test_exact_formulas(self, quad):
        # t=2, p=4: n/t = 8 tiles per row, divisible by p
        r = run_experiment(
            "distributed-equal", quad, 16, 16, 16, "ideal", check=True, t=2
        )
        m = n = z = 16
        p = 4
        t = 2
        assert r.md == m * n // p + 2 * m * n * z // (p * t)
        assert r.ms == m * n + (1 + p) * m * n * z // (p * t)
        assert r.md == r.predicted.md

    def test_worse_than_distributed_opt(self, paper_q32):
        """t=2 from the equal split vs µ=4 from maximum reuse (CD=21)."""
        eq = run_experiment("distributed-equal", paper_q32, 16, 16, 16, "ideal")
        do = run_experiment("distributed-opt", paper_q32, 16, 16, 16, "ideal")
        assert eq.md > do.md

    def test_round_robin_balances_work(self, quad):
        r = run_experiment("distributed-equal", quad, 16, 16, 16, "ideal", t=2)
        assert len(set(r.comp)) == 1

    def test_last_partial_round(self, quad):
        # 9 tiles over 4 cores: final round has a single tile.
        run_experiment("distributed-equal", quad, 6, 6, 4, "ideal", check=True, t=2)

    @pytest.mark.parametrize("dims", [(16, 16, 16), (7, 5, 9), (3, 3, 3)])
    def test_numeric(self, quad, dims):
        verify_schedule(DistributedEqual(quad, *dims), q=3)
