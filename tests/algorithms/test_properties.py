"""Cross-algorithm property tests (hypothesis).

These are the heavy guns: for *every* registered algorithm and random
(small) dimensions,

1. the schedule numerically computes ``A @ B`` exactly, emitting every
   elementary update exactly once;
2. the checked IDEAL run never violates capacity, inclusion or
   presence, drains both cache levels and counts ``mnz`` computes;
3. the IDEAL shared misses are at least the compulsory traffic
   ``mn + mz + zn`` minus reuse... (we assert the universal compulsory
   floor: every block of every matrix must enter the shared cache at
   least once, so ``MS >= mn + mz + zn`` can fail only if a block is
   never loaded — it cannot, thanks to presence checking);
4. LRU simulation of the same schedule touches exactly ``3·mnz``
   distributed references.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.registry import ALGORITHMS
from repro.cache.hierarchy import IdealHierarchy, LRUHierarchy
from repro.model.machine import MulticoreMachine
from repro.numerics.executor import verify_schedule
from repro.sim.contexts import IdealContext, LRUContext

MACHINE = MulticoreMachine(p=4, cs=100, cd=21, q=8, name="prop-quad")

dims = st.tuples(
    st.integers(min_value=1, max_value=10),
    st.integers(min_value=1, max_value=10),
    st.integers(min_value=1, max_value=10),
)


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
class TestEveryAlgorithm:
    @given(dims=dims)
    @settings(max_examples=12, deadline=None)
    def test_numeric_correctness(self, name, dims):
        m, n, z = dims
        alg = ALGORITHMS[name](MACHINE, m, n, z)
        verify_schedule(alg, q=2)

    @given(dims=dims)
    @settings(max_examples=12, deadline=None)
    def test_checked_ideal_invariants(self, name, dims):
        m, n, z = dims
        alg = ALGORITHMS[name](MACHINE, m, n, z)
        h = IdealHierarchy(MACHINE.p, MACHINE.cs, MACHINE.cd, check=True)
        ctx = IdealContext(h)
        alg.run(ctx)  # raises on any capacity/inclusion/presence bug
        assert ctx.comp_total == m * n * z
        assert h.resident_shared() == 0
        assert all(h.resident_distributed(c) == 0 for c in range(MACHINE.p))
        # compulsory-traffic floor: every block enters the shared cache
        assert h.ms >= m * n + m * z + z * n

    @given(dims=dims)
    @settings(max_examples=8, deadline=None)
    def test_lru_touch_volume(self, name, dims):
        m, n, z = dims
        alg = ALGORITHMS[name](MACHINE, m, n, z)
        h = LRUHierarchy(MACHINE.p, MACHINE.cs, MACHINE.cd)
        ctx = LRUContext(h)
        alg.run(ctx)
        stats = h.snapshot()
        total_refs = sum(c.hits + c.misses for c in stats.distributed)
        assert total_refs == 3 * m * n * z
        assert ctx.comp_total == m * n * z

    @given(dims=dims)
    @settings(max_examples=8, deadline=None)
    def test_ideal_md_dominates_compulsory(self, name, dims):
        """Each core must load at least its distinct working set once."""
        m, n, z = dims
        alg = ALGORITHMS[name](MACHINE, m, n, z)
        h = IdealHierarchy(MACHINE.p, MACHINE.cs, MACHINE.cd, check=True)
        ctx = IdealContext(h)
        alg.run(ctx)
        # the busiest core performs >= mnz/p computes (pigeonhole), and
        # each compute involves 3 resident blocks that entered its cache
        # at least once; a very weak but universal sanity bound:
        assert h.snapshot().md_total >= (m * n * z) ** (1 / 3)
