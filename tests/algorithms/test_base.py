"""Tests for the algorithm/context base layer."""

import pytest

from repro.algorithms.base import MatmulAlgorithm, NullContext
from repro.algorithms.shared_opt import SharedOpt
from repro.exceptions import ConfigurationError
from repro.model.machine import MulticoreMachine


class TestNullContext:
    def test_counts_computes(self):
        ctx = NullContext(p=2)
        ctx.compute(0, 0, 0, 0)
        ctx.compute(1, 0, 0, 0)
        ctx.compute(1, 0, 0, 0)
        assert ctx.comp == [1, 2]
        assert ctx.comp_total == 3

    def test_directives_are_noops(self):
        ctx = NullContext(p=1)
        ctx.load_shared(0)
        ctx.evict_shared(0)
        ctx.load_dist(0, 0)
        ctx.evict_dist(0, 0)
        assert ctx.comp_total == 0

    def test_rejects_zero_cores(self):
        with pytest.raises(ConfigurationError):
            NullContext(p=0)


class TestSplitEvenly:
    def test_even_split(self):
        chunks = MatmulAlgorithm.split_evenly(0, 8, 4)
        assert [list(c) for c in chunks] == [[0, 1], [2, 3], [4, 5], [6, 7]]

    def test_remainder_front_loaded(self):
        chunks = MatmulAlgorithm.split_evenly(0, 7, 3)
        assert [len(c) for c in chunks] == [3, 2, 2]

    def test_empty_chunks_possible(self):
        chunks = MatmulAlgorithm.split_evenly(5, 7, 4)
        assert [len(c) for c in chunks] == [1, 1, 0, 0]

    def test_offset_range(self):
        chunks = MatmulAlgorithm.split_evenly(10, 16, 2)
        assert list(chunks[0]) == [10, 11, 12]
        assert list(chunks[1]) == [13, 14, 15]

    def test_covers_range_exactly(self):
        for total in range(0, 20):
            for parts in range(1, 6):
                chunks = MatmulAlgorithm.split_evenly(0, total, parts)
                flattened = [i for c in chunks for i in c]
                assert flattened == list(range(total))


class TestAlgorithmValidation:
    def test_rejects_bad_dimensions(self, quad):
        with pytest.raises(ConfigurationError):
            SharedOpt(quad, 0, 4, 4)

    def test_square_grid_requirement(self):
        from repro.algorithms.distributed_opt import DistributedOpt

        machine = MulticoreMachine(p=6, cs=100, cd=16)
        with pytest.raises(ConfigurationError):
            DistributedOpt(machine, 4, 4, 4)

    def test_comp_total(self, quad):
        alg = SharedOpt(quad, 3, 4, 5)
        assert alg.comp_total == 60

    def test_key_helpers_roundtrip(self):
        from repro.cache.block import decode_key, MAT_A, MAT_B, MAT_C

        assert decode_key(MatmulAlgorithm.a_key(3, 7)) == (MAT_A, 3, 7)
        assert decode_key(MatmulAlgorithm.b_key(3, 7)) == (MAT_B, 3, 7)
        assert decode_key(MatmulAlgorithm.c_key(3, 7)) == (MAT_C, 3, 7)
