"""Tests for the nested three-level Maximum Reuse extension."""

import pytest

from repro.algorithms.distributed_opt import DistributedOpt
from repro.algorithms.nested import NestedMaxReuse
from repro.exceptions import ConfigurationError, ParameterError
from repro.model.machine import MulticoreMachine
from repro.numerics.executor import verify_schedule
from repro.sim.contexts import MultiLevelContext

#: 16 cores = 4 sockets of 4 cores: both grids square.
MACHINE = MulticoreMachine(p=16, cs=400, cd=21, q=8)


class TestParameters:
    def test_defaults(self):
        alg = NestedMaxReuse(MACHINE, 16, 16, 16)
        params = alg.parameters()
        assert params == {"mu": 4, "nu": 8, "tile": 16, "sockets": 4}

    def test_tile_nesting_invariant(self):
        alg = NestedMaxReuse(MACHINE, 16, 16, 16)
        assert alg.nu == alg.s_c * alg.mu
        assert alg.tile == alg.s_g * alg.nu

    def test_sockets_must_divide_p(self):
        with pytest.raises(ConfigurationError):
            NestedMaxReuse(MACHINE, 8, 8, 8, sockets=3)

    def test_sockets_must_be_square(self):
        machine = MulticoreMachine(p=8, cs=200, cd=21, q=8)
        with pytest.raises(ConfigurationError):
            NestedMaxReuse(machine, 8, 8, 8, sockets=2)

    def test_mu_capacity_check(self):
        with pytest.raises(ParameterError):
            NestedMaxReuse(MACHINE, 8, 8, 8, mu=5)

    def test_core_ownership_partitions_tile(self):
        alg = NestedMaxReuse(MACHINE, 16, 16, 16)
        owners = [
            alg._core_of(bi, bj)
            for bi in range(alg.tile // alg.mu)
            for bj in range(alg.tile // alg.mu)
        ]
        assert sorted(owners) == list(range(16))  # one µ-block per core

    def test_socket_regions_contiguous(self):
        alg = NestedMaxReuse(MACHINE, 16, 16, 16)
        # blocks (0,0), (0,1), (1,0), (1,1) belong to socket 0's cores
        sockets = {
            alg._core_of(bi, bj) // 4 for bi in range(2) for bj in range(2)
        }
        assert sockets == {0}


class TestCounting:
    def test_default_tree_topology(self):
        alg = NestedMaxReuse(MACHINE, 16, 16, 16)
        tree = alg.default_tree()
        assert [spec.count for spec in tree.levels] == [1, 4, 16]
        # hierarchy-consistent capacities: each level holds its children
        assert tree.levels[0].capacity >= 4 * tree.levels[1].capacity
        assert tree.levels[1].capacity >= 4 * tree.levels[2].capacity

    def test_same_llc_and_core_volumes_as_flat(self):
        """Nested changes placement, not per-core or LLC volumes."""
        nest = NestedMaxReuse(MACHINE, 16, 16, 16)
        tree_n = nest.default_tree()
        nest.run(MultiLevelContext(tree_n))
        flat = DistributedOpt(MACHINE, 16, 16, 16)
        tree_f = nest.default_tree()
        flat.run(MultiLevelContext(tree_f))
        assert tree_n.level_misses(0) == tree_f.level_misses(0)
        assert tree_n.level_misses(2) == tree_f.level_misses(2)

    def test_socket_aware_placement_reduces_socket_misses(self):
        """The headline claim of the extension: topology-aware block
        ownership captures A *and* B sharing inside each socket."""
        nest = NestedMaxReuse(MACHINE, 32, 32, 32)
        tree_n = nest.default_tree()
        nest.run(MultiLevelContext(tree_n))
        flat = DistributedOpt(MACHINE, 32, 32, 32)
        tree_f = nest.default_tree()
        flat.run(MultiLevelContext(tree_f))
        assert tree_n.level_misses(1) < tree_f.level_misses(1)

    def test_work_balanced(self):
        alg = NestedMaxReuse(MACHINE, 16, 16, 16)
        ctx = MultiLevelContext(alg.default_tree())
        alg.run(ctx)
        assert len(set(ctx.comp)) == 1
        assert ctx.comp_total == 16**3


class TestNumeric:
    @pytest.mark.parametrize("dims", [(16, 16, 16), (7, 5, 9), (3, 3, 3), (20, 12, 4)])
    def test_computes_product(self, dims):
        verify_schedule(NestedMaxReuse(MACHINE, *dims), q=2)

    def test_four_core_machine_single_socket_fallback(self, quad):
        # p=4: no 1 < g < p with square factors exists -> sockets=1
        alg = NestedMaxReuse(quad, 8, 8, 8)
        assert alg.sockets == 1
        verify_schedule(alg, q=2)
