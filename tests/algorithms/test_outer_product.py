"""Tests for the Outer Product baseline."""

import pytest

from repro.algorithms.outer_product import OuterProduct
from repro.exceptions import ConfigurationError
from repro.model.machine import MulticoreMachine
from repro.numerics.executor import verify_schedule
from repro.sim.runner import run_experiment


class TestStructure:
    def test_requires_square_grid(self):
        machine = MulticoreMachine(p=8, cs=200, cd=21)
        with pytest.raises(ConfigurationError):
            OuterProduct(machine, 8, 8, 8)

    def test_tiles_partition_c(self, quad):
        alg = OuterProduct(quad, 10, 10, 4)
        tiles = alg._tiles()
        cells = set()
        for rlo, rhi, clo, chi in tiles:
            for i in range(rlo, rhi):
                for j in range(clo, chi):
                    assert (i, j) not in cells
                    cells.add((i, j))
        assert len(cells) == 100


class TestIdealCounts:
    def test_exact_formulas(self, quad):
        r = run_experiment("outer-product", quad, 8, 8, 8, "ideal", check=True)
        m = n = z = 8
        s = 2
        assert r.ms == z * (s * m + 2 * m * n)
        assert r.md == z * ((m // s) * (1 + 2 * (n // s)))
        assert r.ms == r.predicted.ms

    def test_ms_linear_in_z(self, quad):
        r1 = run_experiment("outer-product", quad, 8, 8, 4, "ideal")
        r2 = run_experiment("outer-product", quad, 8, 8, 8, "ideal")
        assert r2.ms == 2 * r1.ms

    def test_streaming_never_exceeds_tiny_caches(self):
        # The whole point of the streaming schedule: it fits anywhere.
        machine = MulticoreMachine(p=4, cs=12, cd=3)
        run_experiment("outer-product", machine, 10, 10, 10, "ideal", check=True)

    def test_much_worse_than_shared_opt_at_shared_level(self, paper_q32):
        op = run_experiment("outer-product", paper_q32, 24, 24, 24, "ideal")
        so = run_experiment("shared-opt", paper_q32, 24, 24, 24, "ideal")
        assert op.ms > 5 * so.ms


class TestLRUInsensitivity:
    def test_policy_insensitive(self, quad):
        """Paper: 'Outer Product is insensitive to cache policies'.

        Its streaming pattern has no temporal locality for LRU to
        exploit beyond the current element of A, so LRU and FIFO see
        nearly identical miss counts.
        """
        lru = run_experiment("outer-product", quad, 12, 12, 12, "lru", policy="lru")
        fifo = run_experiment("outer-product", quad, 12, 12, 12, "lru", policy="fifo")
        assert lru.ms == pytest.approx(fifo.ms, rel=0.05)


class TestNumeric:
    @pytest.mark.parametrize("dims", [(8, 8, 8), (7, 5, 9), (2, 2, 2), (9, 3, 6)])
    def test_computes_product(self, quad, dims):
        verify_schedule(OuterProduct(quad, *dims), q=3)

    def test_nine_cores(self, nine_core):
        verify_schedule(OuterProduct(nine_core, 9, 9, 3), q=2)
