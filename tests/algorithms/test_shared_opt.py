"""Tests for Algorithm 1 (Shared Opt.)."""

import pytest

from repro.algorithms.shared_opt import SharedOpt
from repro.exceptions import ParameterError
from repro.model.machine import MulticoreMachine
from repro.numerics.executor import verify_schedule
from repro.sim.runner import run_experiment


class TestParameters:
    def test_default_lambda(self, paper_q32):
        alg = SharedOpt(paper_q32, 60, 60, 60)
        assert alg.lam == 30
        assert alg.parameters() == {"lambda": 30}

    def test_lambda_override(self, quad):
        alg = SharedOpt(quad, 12, 12, 12, lam=6)
        assert alg.lam == 6

    def test_lambda_capacity_check(self, quad):
        # 1 + 10 + 100 = 111 > CS=100
        with pytest.raises(ParameterError):
            SharedOpt(quad, 12, 12, 12, lam=10)

    def test_round_to_divisor(self, paper_q32):
        # lambda=30 does not divide 40; rounding picks a divisor <= 30.
        alg = SharedOpt(paper_q32, 40, 40, 40, round_to_divisor=True)
        assert 40 % alg.lam == 0
        assert alg.lam <= 30

    def test_rejects_nonpositive_lambda(self, quad):
        with pytest.raises(ParameterError):
            SharedOpt(quad, 4, 4, 4, lam=0)


class TestIdealCounts:
    def test_exact_formula_divisible(self, quad):
        # lam=6 divides 12: MS = mn + 2mnz/lam, MD = mnz/lam*(1+2*lam/p)
        r = run_experiment("shared-opt", quad, 12, 12, 12, "ideal", check=True, lam=6)
        assert r.ms == 12 * 12 + 2 * 12**3 // 6
        # busiest core gets ceil(lam/p) = 2 of the 6 columns
        assert r.md == (12**3 // 6) * (1 + 2 * 2)
        assert r.ms == r.predicted.ms
        assert r.md == r.predicted.md

    def test_rectangular_dims(self, quad):
        r = run_experiment("shared-opt", quad, 6, 12, 18, "ideal", check=True, lam=6)
        assert r.ms == 6 * 12 + 2 * 6 * 12 * 18 // 6
        assert r.comp_total == 6 * 12 * 18

    def test_capacity_and_inclusion_clean(self, quad):
        # check=True raises on any capacity/inclusion violation.
        run_experiment("shared-opt", quad, 13, 11, 7, "ideal", check=True, lam=6)

    def test_ideal_caches_drained_at_end(self, quad):
        from repro.algorithms.shared_opt import SharedOpt as Cls
        from repro.cache.hierarchy import IdealHierarchy
        from repro.sim.contexts import IdealContext

        h = IdealHierarchy(quad.p, quad.cs, quad.cd, check=True)
        Cls(quad, 12, 12, 12, lam=6).run(IdealContext(h))
        assert h.resident_shared() == 0
        assert all(h.resident_distributed(c) == 0 for c in range(quad.p))

    def test_c_writebacks_counted(self, quad):
        from repro.cache.hierarchy import IdealHierarchy
        from repro.sim.contexts import IdealContext

        h = IdealHierarchy(quad.p, quad.cs, quad.cd, check=True)
        SharedOpt(quad, 12, 12, 12, lam=6).run(IdealContext(h))
        # every block of C written back to memory exactly once
        assert h.shared_writebacks == 12 * 12


class TestWorkDistribution:
    def test_compute_balanced_when_divisible(self, quad):
        r = run_experiment("shared-opt", quad, 8, 8, 8, "ideal", lam=4)
        assert len(set(r.comp)) == 1  # perfectly balanced

    def test_all_cores_used(self, quad):
        r = run_experiment("shared-opt", quad, 12, 12, 12, "ideal", lam=6)
        assert all(c > 0 for c in r.comp)

    def test_single_core_machine(self, unicore):
        r = run_experiment("shared-opt", unicore, 10, 10, 10, "ideal", check=True)
        assert r.comp == [1000]


class TestNumeric:
    @pytest.mark.parametrize("dims", [(12, 12, 12), (7, 5, 9), (1, 1, 1), (2, 13, 4)])
    def test_computes_product(self, quad, dims):
        verify_schedule(SharedOpt(quad, *dims), q=3)

    def test_lambda_larger_than_matrix(self, paper_q32):
        # tile bigger than the whole matrix: single ragged tile
        verify_schedule(SharedOpt(paper_q32, 5, 5, 5), q=2)
