"""Tests for Algorithm 3 (Tradeoff)."""

import pytest

from repro.algorithms.tradeoff import Tradeoff
from repro.exceptions import ParameterError
from repro.model.machine import MulticoreMachine
from repro.numerics.executor import verify_schedule
from repro.sim.runner import run_experiment


class TestParameters:
    def test_defaults_from_bandwidths(self, paper_q32):
        alg = Tradeoff(paper_q32, 48, 48, 48)
        params = alg.parameters()
        # alpha_num(q32, sigmaS=sigmaD=1, p=4) ~ 23.02 -> alpha = 16
        assert params["alpha"] == 16
        assert params["mu"] == 4
        assert params["alpha_num"] == pytest.approx(23.02, abs=0.01)
        # capacity constraint holds
        a, b = params["alpha"], params["beta"]
        assert a * a + 2 * a * b <= paper_q32.cs

    def test_alpha_must_be_multiple_of_grid_mu(self, quad):
        with pytest.raises(ParameterError):
            Tradeoff(quad, 8, 8, 8, alpha=6, mu=4)  # 6 not multiple of 8

    def test_capacity_constraint_enforced(self, quad):
        # CS=100: alpha=8, beta=4, mu=4 -> 64 + 64 = 128 > 100
        with pytest.raises(ParameterError):
            Tradeoff(quad, 8, 8, 8, alpha=8, beta=4, mu=4)

    def test_mu_capacity_check(self, quad):
        with pytest.raises(ParameterError):
            Tradeoff(quad, 8, 8, 8, alpha=10, beta=1, mu=5)

    def test_beta_default_maximal(self, paper_q32):
        alg = Tradeoff(paper_q32, 16, 16, 16, alpha=16)
        # beta = floor((977 - 256) / 32) = 22
        assert alg.beta == 22

    def test_single_subblock_flag(self, paper_q32):
        assert Tradeoff(paper_q32, 8, 8, 8, alpha=8, beta=4, mu=4).single_subblock
        assert not Tradeoff(paper_q32, 16, 16, 16, alpha=16, beta=4, mu=4).single_subblock


class TestIdealCounts:
    def test_general_case_formulas(self, paper_q32):
        # alpha=16 > sqrt(p)*mu=8; beta=4 divides z=16
        r = run_experiment(
            "tradeoff", paper_q32, 16, 16, 16, "ideal", check=True,
            alpha=16, beta=4, mu=4,
        )
        m = n = z = 16
        assert r.ms == m * n + 2 * m * n * z // 16
        assert r.md == (m * n // 4) * (z // 4) + 2 * m * n * z // (4 * 4)
        assert r.md == r.predicted.md

    def test_degenerate_case_matches_distributed_opt(self, paper_q32):
        # alpha = sqrt(p)*mu: C term falls to mn/p
        r = run_experiment(
            "tradeoff", paper_q32, 16, 16, 16, "ideal", check=True,
            alpha=8, beta=8, mu=4,
        )
        d = run_experiment(
            "distributed-opt", paper_q32, 16, 16, 16, "ideal", check=True, mu=4
        )
        assert r.md == d.md

    def test_beta_not_dividing_z(self, paper_q32):
        # z=10, beta=4 -> ceil(10/4)=3 substeps; MS stays exact.
        r = run_experiment(
            "tradeoff", paper_q32, 16, 16, 10, "ideal", check=True,
            alpha=16, beta=4, mu=4,
        )
        assert r.ms == 16 * 16 + 2 * 16 * 16 * 10 // 16
        assert r.md == r.predicted.md

    def test_ragged_all_dims_checked(self, paper_q32):
        run_experiment(
            "tradeoff", paper_q32, 13, 11, 7, "ideal", check=True,
            alpha=16, beta=4, mu=4,
        )


class TestBandwidthAdaptation:
    def test_fast_distributed_gives_shared_like_alpha(self, paper_q32):
        # sigma_d >> sigma_s: alpha grows toward alpha_max
        m = paper_q32.with_bandwidth_ratio(0.01)
        fast_d = Tradeoff(m, 48, 48, 48)
        slow_d = Tradeoff(paper_q32.with_bandwidth_ratio(0.99), 48, 48, 48)
        assert fast_d.alpha > slow_d.alpha
        # Extreme slow distributed cache: minimal tile sqrt(p)*mu
        assert slow_d.alpha == 2 * slow_d.mu

    def test_equal_bandwidths_alpha_num(self, paper_q32):
        from repro.analysis.tradeoff_opt import alpha_num

        # rho = p = 4 here (sigma equal), not the singular case
        assert alpha_num(paper_q32) == pytest.approx(23.02, abs=0.01)


class TestNumeric:
    @pytest.mark.parametrize(
        "dims", [(16, 16, 16), (8, 8, 8), (7, 5, 9), (20, 12, 6)]
    )
    def test_computes_product(self, paper_q32, dims):
        verify_schedule(Tradeoff(paper_q32, *dims, alpha=8, beta=8, mu=4), q=3)

    def test_computes_product_general_case(self, paper_q32):
        verify_schedule(Tradeoff(paper_q32, 16, 16, 16, alpha=16, beta=4, mu=4), q=3)

    def test_single_core(self, unicore):
        verify_schedule(Tradeoff(unicore, 6, 6, 6), q=2)
