"""Tests for the Cannon's-algorithm extension baseline."""

import pytest

from repro.algorithms.cannon import Cannon
from repro.algorithms.registry import (
    ALGORITHMS,
    EXTRA_ALGORITHMS,
    get_algorithm,
)
from repro.exceptions import ConfigurationError
from repro.model.machine import MulticoreMachine
from repro.numerics.executor import verify_schedule
from repro.sim.runner import run_experiment


class TestRegistration:
    def test_extra_not_in_paper_registry(self):
        assert "cannon" not in ALGORITHMS
        assert EXTRA_ALGORITHMS["cannon"] is Cannon

    def test_lookup_by_name(self):
        assert get_algorithm("cannon") is Cannon


class TestStructure:
    def test_requires_square_grid(self):
        with pytest.raises(ConfigurationError):
            Cannon(MulticoreMachine(p=8, cs=200, cd=21), 8, 8, 8)

    def test_skewing_covers_all_bands_per_row(self, quad):
        """At every step, the cores of one torus row consume pairwise
        distinct k-bands (and hence disjoint tiles of A and B) — the
        defining property of Cannon's skewing."""
        alg = Cannon(quad, 8, 8, 8)
        s = alg.grid
        for t in range(s):
            for u in range(s):
                bands = {(u + v + t) % s for v in range(s)}
                assert len(bands) == s

    def test_exact_formula_divisible(self, quad):
        r = run_experiment("cannon", quad, 8, 8, 8, "ideal", check=True)
        m = n = z = 8
        s = 2
        assert r.ms == z * (s * m + 2 * m * n)
        assert r.ms == r.predicted.ms
        assert r.md == r.predicted.md

    def test_same_counts_as_outer_product(self, quad):
        """Skewing changes order, not volume: IDEAL counts coincide."""
        cn = run_experiment("cannon", quad, 8, 8, 8, "ideal", check=True)
        op = run_experiment("outer-product", quad, 8, 8, 8, "ideal", check=True)
        assert cn.ms == op.ms
        assert cn.md == op.md

    def test_lru_banding_beats_outer_product(self, quad):
        """Under LRU the skewed k-bands give Cannon better shared-cache
        locality than the globally-synchronized Outer Product: each core
        finishes a whole k-band against its C tile before moving on,
        instead of revisiting the tile once per global k."""
        cn = run_experiment("cannon", quad, 12, 12, 12, "lru")
        op = run_experiment("outer-product", quad, 12, 12, 12, "lru")
        assert cn.ms <= op.ms


class TestNumeric:
    @pytest.mark.parametrize("dims", [(8, 8, 8), (7, 5, 9), (2, 2, 2), (6, 10, 3)])
    def test_computes_product(self, quad, dims):
        verify_schedule(Cannon(quad, *dims), q=3)

    def test_nine_cores(self, nine_core):
        verify_schedule(Cannon(nine_core, 9, 6, 12), q=2)
