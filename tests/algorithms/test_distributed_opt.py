"""Tests for Algorithm 2 (Distributed Opt.)."""

import pytest

from repro.algorithms.distributed_opt import DistributedOpt
from repro.exceptions import ConfigurationError, ParameterError
from repro.model.machine import MulticoreMachine
from repro.numerics.executor import verify_schedule
from repro.sim.runner import run_experiment


class TestParameters:
    def test_default_mu(self, paper_q32):
        alg = DistributedOpt(paper_q32, 16, 16, 16)
        assert alg.mu == 4  # 1 + 4 + 16 = 21 = CD
        assert alg.parameters()["tile"] == 8  # sqrt(p)*mu

    def test_mu_capacity_check(self, quad):
        with pytest.raises(ParameterError):
            DistributedOpt(quad, 8, 8, 8, mu=5)  # 1+5+25 = 31 > 21

    def test_requires_square_grid(self):
        machine = MulticoreMachine(p=8, cs=200, cd=21)
        with pytest.raises(ConfigurationError):
            DistributedOpt(machine, 8, 8, 8)

    def test_mu_one_on_tiny_cache(self):
        machine = MulticoreMachine(p=4, cs=245, cd=6, q=64)
        alg = DistributedOpt(machine, 8, 8, 8)
        assert alg.mu == 1


class TestIdealCounts:
    def test_exact_formulas(self, quad):
        # mu=4, grid 2 -> tile 8 divides 16
        r = run_experiment(
            "distributed-opt", quad, 16, 16, 16, "ideal", check=True, mu=4
        )
        m = n = z = 16
        p = 4
        assert r.ms == m * n + 2 * m * n * z // (4 * 2)
        assert r.md == m * n // p + 2 * m * n * z // (4 * p)
        assert r.ms == r.predicted.ms
        assert r.md == r.predicted.md

    def test_md_balanced_across_cores(self, quad):
        r = run_experiment("distributed-opt", quad, 16, 16, 16, "ideal", mu=4)
        assert len(set(r.stats.md_per_core)) == 1

    def test_ragged_dims_run_checked(self, quad):
        run_experiment("distributed-opt", quad, 13, 9, 5, "ideal", check=True, mu=4)

    def test_c_loaded_once_per_core(self, quad):
        # Each core's C sub-blocks are loaded exactly once overall:
        # per-core C misses == mn/p for divisible dims.
        from repro.cache.hierarchy import IdealHierarchy
        from repro.sim.contexts import IdealContext
        from repro.cache.block import MAT_C

        h = IdealHierarchy(quad.p, quad.cs, quad.cd, check=True)
        DistributedOpt(quad, 16, 16, 16, mu=4).run(IdealContext(h))
        for core in range(quad.p):
            assert h.md_by_matrix[core][MAT_C] == 16 * 16 // 4

    def test_2d_cyclic_layout_shares_a_and_b(self, quad):
        """Cores on one grid row share A, on one grid column share B."""
        from repro.cache.hierarchy import IdealHierarchy
        from repro.sim.contexts import IdealContext
        from repro.cache.block import MAT_A, MAT_B

        h = IdealHierarchy(quad.p, quad.cs, quad.cd, check=True)
        DistributedOpt(quad, 8, 8, 8, mu=4).run(IdealContext(h))
        # Every element of A is loaded into shared once per k-use: the
        # shared A misses must be z * tile-rows per tile = m*z total
        # divided among... simply: with tile = matrix, A loads = z*m/...
        # Use the aggregate identity MS_A = m*z (every A element once).
        assert h.ms_by_matrix[MAT_A] == 8 * 8
        assert h.ms_by_matrix[MAT_B] == 8 * 8

    def test_single_core(self, unicore):
        r = run_experiment("distributed-opt", unicore, 4, 4, 4, "ideal", check=True)
        assert r.comp == [64]


class TestNumeric:
    @pytest.mark.parametrize("dims", [(16, 16, 16), (7, 5, 9), (3, 3, 3), (8, 2, 10)])
    def test_computes_product(self, quad, dims):
        verify_schedule(DistributedOpt(quad, *dims), q=3)

    def test_nine_cores(self, nine_core):
        verify_schedule(DistributedOpt(nine_core, 12, 12, 6), q=2)
