"""Tests for the algorithm registry."""

import pytest

from repro.algorithms.base import MatmulAlgorithm
from repro.algorithms.registry import (
    ALGORITHMS,
    BASELINES,
    MAXIMUM_REUSE,
    algorithm_names,
    get_algorithm,
)
from repro.exceptions import ConfigurationError


class TestRegistry:
    def test_six_algorithms(self):
        assert len(ALGORITHMS) == 6

    def test_names_match_classes(self):
        for name, cls in ALGORITHMS.items():
            assert cls.name == name
            assert issubclass(cls, MatmulAlgorithm)

    def test_families_partition_registry(self):
        assert set(MAXIMUM_REUSE) | set(BASELINES) == set(ALGORITHMS)
        assert not set(MAXIMUM_REUSE) & set(BASELINES)

    def test_get_algorithm(self):
        assert get_algorithm("tradeoff").label == "Tradeoff"

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError, match="valid names"):
            get_algorithm("strassen")

    def test_extras_resolvable(self):
        from repro.algorithms.registry import EXTRA_ALGORITHMS

        for name in EXTRA_ALGORITHMS:
            assert get_algorithm(name).name == name

    def test_algorithm_names_with_extras(self):
        from repro.algorithms.registry import algorithm_names

        assert "cannon" in algorithm_names(include_extras=True)
        assert "cannon" not in algorithm_names()

    def test_algorithm_names_order(self):
        names = algorithm_names()
        assert names[0] == "shared-opt"
        assert names[:3] == list(MAXIMUM_REUSE)

    def test_labels_unique(self):
        labels = [cls.label for cls in ALGORITHMS.values()]
        assert len(set(labels)) == len(labels)
