"""Tests for the checkpoint log: checksums, torn tails, quarantine."""

import json

from repro.model.machine import MulticoreMachine
from repro.store.checkpoint import (
    CHECKPOINT_SCHEMA,
    CheckpointWriter,
    cell_fingerprint,
    load_checkpoint,
    record_intact,
    seal_record,
)

MACHINE = MulticoreMachine(p=4, cs=100, cd=21, q=8)


def _fp(**overrides):
    base = dict(
        algorithm="shared-opt",
        setting="ideal",
        kwargs={},
        machine=MACHINE,
        variable="order",
        x=8,
        m=8,
        n=8,
        z=8,
    )
    base.update(overrides)
    return cell_fingerprint(**base)


class TestCellFingerprint:
    def test_deterministic(self):
        assert _fp() == _fp()

    def test_sensitive_to_result_inputs(self):
        base = _fp()
        assert _fp(algorithm="outer-product") != base
        assert _fp(setting="lru") != base
        assert _fp(x=12, m=12, n=12, z=12) != base
        assert _fp(kwargs={"lam": 4}) != base
        bigger = MulticoreMachine(p=4, cs=200, cd=21, q=8)
        assert _fp(machine=bigger) != base

    def test_machine_name_is_cosmetic(self):
        named = MulticoreMachine(p=4, cs=100, cd=21, q=8, name="my box")
        assert _fp(machine=named) == _fp()


class TestSealRecord:
    def test_sealed_record_is_intact(self):
        record = seal_record({"schema": CHECKPOINT_SCHEMA, "fp": "abc", "x": 1})
        assert record_intact(record)

    def test_tampering_detected(self):
        record = seal_record({"schema": CHECKPOINT_SCHEMA, "fp": "abc", "x": 1})
        record["x"] = 2
        assert not record_intact(record)

    def test_missing_checksum_detected(self):
        assert not record_intact({"schema": CHECKPOINT_SCHEMA, "fp": "abc"})


class TestWriterAndLoader:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "checkpoint.jsonl"
        with CheckpointWriter(path) as writer:
            writer.append({"fp": "a", "status": "ok", "value": 1})
            writer.append({"fp": "b", "status": "failed"})
        loaded = load_checkpoint(path)
        assert loaded.total_lines == 2
        assert not loaded.torn_tail
        assert loaded.quarantined == []
        assert loaded.records["a"]["value"] == 1
        assert set(loaded.ok_records()) == {"a"}

    def test_missing_file_is_empty(self, tmp_path):
        loaded = load_checkpoint(tmp_path / "nope.jsonl")
        assert loaded.records == {}
        assert loaded.total_lines == 0

    def test_torn_tail_dropped_with_warning(self, tmp_path):
        path = tmp_path / "checkpoint.jsonl"
        with CheckpointWriter(path) as writer:
            writer.append({"fp": "a", "status": "ok"})
            writer.append({"fp": "b", "status": "ok"})
        # Simulate a SIGKILL mid-append: chop the final record in half.
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 10])
        loaded = load_checkpoint(path)
        assert loaded.torn_tail
        assert set(loaded.records) == {"a"}
        assert loaded.quarantined == []
        assert any("torn" in w for w in loaded.warnings)

    def test_interior_corruption_quarantined(self, tmp_path):
        path = tmp_path / "checkpoint.jsonl"
        with CheckpointWriter(path) as writer:
            writer.append({"fp": "a", "status": "ok"})
            writer.append({"fp": "b", "status": "ok"})
            writer.append({"fp": "c", "status": "ok"})
        lines = path.read_text().splitlines()
        middle = json.loads(lines[1])
        middle["status"] = "failed"  # flip a field without resealing
        lines[1] = json.dumps(middle, separators=(",", ":"))
        path.write_text("\n".join(lines) + "\n")
        loaded = load_checkpoint(path)
        assert not loaded.torn_tail
        assert [q.line for q in loaded.quarantined] == [2]
        assert loaded.quarantined[0].reason == "content checksum mismatch"
        assert loaded.quarantined[0].fingerprint == "b"
        assert set(loaded.records) == {"a", "c"}

    def test_terminated_garbage_tail_is_still_torn(self, tmp_path):
        # A final line that is complete garbage (even newline-terminated)
        # reads as a torn tail only when unparseable; a checksum-mismatch
        # final record with a clean newline is interior-style corruption.
        path = tmp_path / "checkpoint.jsonl"
        with CheckpointWriter(path) as writer:
            writer.append({"fp": "a", "status": "ok"})
        with open(path, "ab") as fh:
            fh.write(b"{not json\n")
        loaded = load_checkpoint(path)
        assert loaded.torn_tail
        assert set(loaded.records) == {"a"}

    def test_duplicate_fingerprints_ok_takes_precedence(self, tmp_path):
        path = tmp_path / "checkpoint.jsonl"
        with CheckpointWriter(path) as writer:
            writer.append({"fp": "a", "status": "failed", "attempt": 1})
            writer.append({"fp": "a", "status": "ok", "attempt": 2})
            writer.append({"fp": "a", "status": "failed", "attempt": 3})
        loaded = load_checkpoint(path)
        # The ok record survives a later failure record for the same cell.
        assert loaded.records["a"]["status"] == "ok"
        assert loaded.records["a"]["attempt"] == 2

    def test_writer_repairs_torn_tail_before_appending(self, tmp_path):
        path = tmp_path / "checkpoint.jsonl"
        with CheckpointWriter(path) as writer:
            writer.append({"fp": "a", "status": "ok"})
            writer.append({"fp": "b", "status": "ok"})
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 7])  # torn tail
        with CheckpointWriter(path) as writer:  # reopen: repairs, then appends
            writer.append({"fp": "b", "status": "ok"})
        loaded = load_checkpoint(path)
        # No interior corruption: the torn line was truncated, not skipped.
        assert loaded.quarantined == []
        assert not loaded.torn_tail
        assert set(loaded.records) == {"a", "b"}
