"""The order-preserving sealed-log loader and live-run auditing.

``load_sealed_lines`` is the event-log view of the checkpoint line
grammar: no dedup, append order preserved — the fabric journal depends
on both.  The audit tests pin the ``runs verify`` semantics the fabric
relies on: a torn tail on a *live* run is a writer mid-append, not
corruption.
"""

import json

from repro.store import RunStore, seal_record
from repro.store.checkpoint import CHECKPOINT_SCHEMA, CheckpointWriter
from repro.store.checkpoint import load_sealed_lines


def _append_sealed(path, payload):
    record = seal_record({"schema": CHECKPOINT_SCHEMA, **payload})
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(record) + "\n")


class TestLoadSealedLines:
    def test_missing_file_is_empty(self, tmp_path):
        log = load_sealed_lines(tmp_path / "none.jsonl")
        assert log.records == [] and not log.torn_tail and log.total_lines == 0

    def test_order_preserved_no_dedup(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with CheckpointWriter(path) as writer:
            writer.append({"fp": "aaa", "event": "grant", "attempt": 1})
            writer.append({"fp": "aaa", "event": "expire", "attempt": 1})
            writer.append({"fp": "aaa", "event": "grant", "attempt": 2})
        log = load_sealed_lines(path)
        assert [r["event"] for r in log.records] == ["grant", "expire", "grant"]
        assert [r["fp"] for r in log.records] == ["aaa"] * 3
        assert log.total_lines == 3

    def test_torn_tail_dropped_and_flagged(self, tmp_path):
        path = tmp_path / "log.jsonl"
        _append_sealed(path, {"fp": "aaa", "event": "grant"})
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"schema": 1, "fp": "bbb", "ev')  # crash mid-append
        log = load_sealed_lines(path)
        assert [r["fp"] for r in log.records] == ["aaa"]
        assert log.torn_tail
        assert not log.quarantined

    def test_interior_corruption_quarantined(self, tmp_path):
        path = tmp_path / "log.jsonl"
        _append_sealed(path, {"fp": "aaa", "event": "grant"})
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("not json at all\n")
        _append_sealed(path, {"fp": "bbb", "event": "grant"})
        log = load_sealed_lines(path)
        assert [r["fp"] for r in log.records] == ["aaa", "bbb"]
        assert not log.torn_tail
        assert len(log.quarantined) == 1
        assert log.quarantined[0].line == 2

    def test_tampered_record_quarantined(self, tmp_path):
        path = tmp_path / "log.jsonl"
        record = seal_record(
            {"schema": CHECKPOINT_SCHEMA, "fp": "aaa", "event": "grant"}
        )
        record["event"] = "terminal"  # bit-flip after sealing
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(record) + "\n")
        _append_sealed(path, {"fp": "bbb", "event": "grant"})
        log = load_sealed_lines(path)
        assert [r["fp"] for r in log.records] == ["bbb"]
        assert log.quarantined[0].reason == "content checksum mismatch"


class TestLiveRunAudit:
    def _seed(self, tmp_path, status):
        store = RunStore(tmp_path / "run")
        store.initialize({"variable": "order"})
        with store.checkpoint_writer() as writer:
            writer.append({"fp": "aaa", "status": "ok", "attempts": 1})
        store.update_meta(status=status)
        return store

    def test_running_status_marks_in_progress(self, tmp_path):
        store = self._seed(tmp_path, "running")
        audit = store.audit()
        assert audit.in_progress and audit.ok

    def test_torn_tail_on_live_run_is_mid_append(self, tmp_path):
        store = self._seed(tmp_path, "running")
        with open(store.checkpoint_path, "a", encoding="utf-8") as fh:
            fh.write('{"schema": 1, "fp": "bbb"')  # writer mid-append
        audit = store.audit()
        assert audit.ok  # not corruption
        assert any("mid-append" in w for w in audit.warnings)
        assert not any("crash" in w for w in audit.warnings)

    def test_torn_tail_on_finished_run_is_a_crash(self, tmp_path):
        store = self._seed(tmp_path, "complete")
        with open(store.checkpoint_path, "a", encoding="utf-8") as fh:
            fh.write('{"schema": 1, "fp": "bbb"')
        audit = store.audit()
        assert audit.ok
        assert not audit.in_progress
        assert any("crash mid-append" in w for w in audit.warnings)

    def test_journal_is_audited(self, tmp_path):
        store = self._seed(tmp_path, "complete")
        with CheckpointWriter(store.journal_path) as writer:
            writer.append({"fp": "-", "event": "start"})
            writer.append({"fp": "aaa", "event": "terminal", "status": "ok"})
        audit = store.audit()
        assert audit.journal is not None
        assert len(audit.journal.records) == 2
        assert audit.ok

    def test_corrupt_journal_interior_is_an_error(self, tmp_path):
        store = self._seed(tmp_path, "complete")
        with CheckpointWriter(store.journal_path) as writer:
            writer.append({"fp": "-", "event": "start"})
        with open(store.journal_path, "a", encoding="utf-8") as fh:
            fh.write("garbage\n")
        with CheckpointWriter(store.journal_path) as writer:
            writer.append({"fp": "-", "event": "stop"})
        audit = store.audit()
        assert not audit.ok
        assert any("corrupt journal record" in e for e in audit.errors)

    def test_cli_verify_reports_in_progress(self, tmp_path, capsys):
        from repro.cli import main

        store = self._seed(tmp_path, "running")
        assert main(["runs", "verify", str(store.root)]) == 0
        out = capsys.readouterr().out
        assert "in progress" in out
        assert "CORRUPT" not in out
