"""Tests for RunStore metadata, audits and run discovery."""

from repro.store import (
    RUN_KIND,
    STATUS_COMPLETE,
    STATUS_RUNNING,
    RunStore,
    list_runs,
)


class TestRunStoreMeta:
    def test_initialize_and_load(self, tmp_path):
        store = RunStore(tmp_path / "run")
        meta = store.initialize({"variable": "order", "xs": [4, 8]})
        assert meta["kind"] == RUN_KIND
        assert meta["status"] == STATUS_RUNNING
        assert meta["resumes"] == 0
        loaded = store.load_meta()
        assert loaded is not None
        assert loaded["xs"] == [4, 8]

    def test_update_merges(self, tmp_path):
        store = RunStore(tmp_path / "run")
        store.initialize({})
        store.update_meta(status=STATUS_COMPLETE, resumes=3)
        meta = store.load_meta()
        assert meta is not None
        assert meta["status"] == STATUS_COMPLETE
        assert meta["resumes"] == 3

    def test_load_meta_rejects_foreign_json(self, tmp_path):
        store = RunStore(tmp_path)
        store.run_path.parent.mkdir(parents=True, exist_ok=True)
        store.run_path.write_text('{"kind": "something-else"}')
        assert store.load_meta() is None

    def test_missing_is_not_a_run(self, tmp_path):
        assert not RunStore(tmp_path / "nope").exists()
        assert RunStore(tmp_path / "nope").load_meta() is None


class TestAudit:
    def _seed_run(self, root):
        store = RunStore(root)
        store.initialize({})
        with store.checkpoint_writer() as writer:
            writer.append({"fp": "a", "status": "ok"})
            writer.append({"fp": "b", "status": "ok"})
        return store

    def test_clean_finished_run(self, tmp_path):
        store = self._seed_run(tmp_path / "run")
        store.update_meta(status=STATUS_COMPLETE)
        store.manifest_path.write_text("{}")
        audit = store.audit()
        assert audit.ok
        assert audit.warnings == []
        assert audit.counts() == {"ok": 2}

    def test_missing_run_json_is_an_error(self, tmp_path):
        audit = RunStore(tmp_path / "void").audit()
        assert not audit.ok
        assert any("run.json is missing" in e for e in audit.errors)

    def test_running_status_warns(self, tmp_path):
        store = self._seed_run(tmp_path / "run")
        audit = store.audit()
        assert audit.ok  # warning, not error: resume recovers it
        assert any("running" in w for w in audit.warnings)

    def test_corrupt_record_is_an_error(self, tmp_path):
        store = self._seed_run(tmp_path / "run")
        store.update_meta(status=STATUS_COMPLETE)
        store.manifest_path.write_text("{}")
        lines = store.checkpoint_path.read_text().splitlines()
        lines[0] = lines[0].replace('"ok"', '"OK"')  # break the checksum
        store.checkpoint_path.write_text("\n".join(lines) + "\n")
        audit = store.audit()
        assert not audit.ok
        assert any("checksum mismatch" in e for e in audit.errors)

    def test_torn_tail_warns(self, tmp_path):
        store = self._seed_run(tmp_path / "run")
        store.update_meta(status=STATUS_COMPLETE)
        store.manifest_path.write_text("{}")
        raw = store.checkpoint_path.read_bytes()
        store.checkpoint_path.write_bytes(raw[:-5])
        audit = store.audit()
        assert audit.ok
        assert any("torn tail" in w for w in audit.warnings)


class TestListRuns:
    def test_finds_children_and_skips_noise(self, tmp_path):
        RunStore(tmp_path / "run-a").initialize({})
        RunStore(tmp_path / "run-b").initialize({})
        (tmp_path / "not-a-run").mkdir()
        runs = list_runs(tmp_path)
        assert [p.name for p, _ in runs] == ["run-a", "run-b"]

    def test_root_itself_counts(self, tmp_path):
        RunStore(tmp_path / "solo").initialize({})
        runs = list_runs(tmp_path / "solo")
        assert [p.name for p, _ in runs] == ["solo"]

    def test_empty(self, tmp_path):
        assert list_runs(tmp_path) == []
