"""Tests for the atomic tmp-file + fsync + rename writer."""

import os

import pytest

from repro.store.atomic import atomic_write_bytes, atomic_write_text


class TestAtomicWrite:
    def test_writes_content(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_text(path, '{"a": 1}\n')
        assert path.read_text(encoding="utf-8") == '{"a": 1}\n'

    def test_overwrites_existing(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("old")
        atomic_write_text(path, "new")
        assert path.read_text() == "new"

    def test_bytes_roundtrip(self, tmp_path):
        path = tmp_path / "blob.bin"
        atomic_write_bytes(path, b"\x00\xff\x01")
        assert path.read_bytes() == b"\x00\xff\x01"

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "a" / "b" / "out.txt"
        atomic_write_text(path, "x")
        assert path.read_text() == "x"

    def test_no_temp_file_left_behind(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "x")
        assert sorted(os.listdir(tmp_path)) == ["out.txt"]

    def test_failed_write_leaves_target_intact(self, tmp_path, monkeypatch):
        path = tmp_path / "out.txt"
        path.write_text("original")

        def boom(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError):
            atomic_write_text(path, "replacement")
        # Target untouched, and the temp file was cleaned up.
        assert path.read_text() == "original"
        assert sorted(os.listdir(tmp_path)) == ["out.txt"]

    def test_returns_path(self, tmp_path):
        path = tmp_path / "out.txt"
        assert atomic_write_text(path, "x") == path
