"""Integration tests of the paper's headline claims, at scaled orders.

Each test corresponds to a statement in the paper's §3–§4; EXPERIMENTS.md
cross-references them.  Orders are scaled down from the paper's (≤1100)
to keep pure-Python simulation fast, which preserves every claim tested
here (all are about rankings, ratios and crossovers, not absolute
counts).
"""

import math

import pytest

from repro.model.bounds import (
    ccr_lower_bound,
    distributed_misses_lower_bound,
    shared_misses_lower_bound,
    tdata_lower_bound,
)
from repro.model.machine import preset
from repro.sim.runner import run_experiment

Q32 = preset("q32")
Q64 = preset("q64")
Q80 = preset("q80")


class TestSection31SharedOpt:
    """§3.1: Shared Opt. is near the shared bound, far from the distributed."""

    def test_ccr_s_matches_formula(self):
        # order 60 = 2*λ(CS=977): exact tiling
        r = run_experiment("shared-opt", Q32, 60, 60, 60, "ideal")
        lam = r.parameters["lambda"]
        assert r.ccr_s == pytest.approx(1 / 60 + 2 / lam)

    def test_ccr_s_close_to_lower_bound(self):
        r = run_experiment("shared-opt", Q32, 60, 60, 60, "ideal")
        bound = ccr_lower_bound(Q32.cs)
        # 2/λ vs sqrt(27/(8 CS)): within ~2x of the bound, and in the
        # large-z limit within sqrt(32/27) ≈ 1.09
        assert r.ccr_s < 2 * bound

    def test_ccr_d_far_from_bound(self):
        """CCR_D = 2 + p/λ: independent of the matrix size, far off.

        λ is pinned to 24 (a multiple of p dividing the order) so the
        column deal is perfectly even and the formula is exact.
        """
        r = run_experiment("shared-opt", Q32, 48, 48, 48, "ideal", lam=24)
        assert r.ccr_d == pytest.approx(2 + Q32.p / 24)
        assert r.ccr_d > 4 * ccr_lower_bound(Q32.cd)


class TestSection32DistributedOpt:
    """§3.2: Distributed Opt. is near the distributed bound."""

    def test_ccr_d_matches_formula(self):
        r = run_experiment("distributed-opt", Q32, 64, 64, 64, "ideal")
        mu = r.parameters["mu"]
        assert r.ccr_d == pytest.approx(1 / 64 + 2 / mu)

    def test_ccr_d_close_to_lower_bound(self):
        r = run_experiment("distributed-opt", Q32, 64, 64, 64, "ideal")
        # 2/µ = sqrt(32/(8 CD))-ish vs sqrt(27/(8 CD)): ratio ~ 1.09
        assert r.ccr_d < 1.25 * ccr_lower_bound(Q32.cd) + 1 / 64

    def test_ccr_s_far_from_bound(self):
        r = run_experiment("distributed-opt", Q32, 64, 64, 64, "ideal")
        assert r.ccr_s > 2 * ccr_lower_bound(Q32.cs)


class TestFrigoFactorTwo:
    """Figs. 4–6: LRU with doubled capacity stays within 2x the formula."""

    @pytest.mark.parametrize("order", [40, 64])
    def test_shared_opt_ms(self, order):
        r = run_experiment("shared-opt", Q32, order, order, order, "lru-2x")
        assert r.ms <= 2 * r.predicted.ms

    @pytest.mark.parametrize("order", [40, 64])
    def test_distributed_opt_md(self, order):
        r = run_experiment("distributed-opt", Q32, order, order, order, "lru-2x")
        assert r.md <= 2 * r.predicted.md

    @pytest.mark.parametrize("order", [40, 64])
    def test_tradeoff_tdata(self, order):
        r = run_experiment("tradeoff", Q32, order, order, order, "lru-2x")
        assert r.tdata <= 2 * r.predicted.tdata(Q32)


class TestFigure7SharedMisses:
    """Fig. 7: Shared Opt. < Shared Equal < Outer Product on MS."""

    @pytest.mark.parametrize("machine", [Q32, Q64, Q80], ids=["q32", "q64", "q80"])
    def test_ranking(self, machine):
        order = 60
        so = run_experiment("shared-opt", machine, order, order, order, "lru-50")
        eq = run_experiment("shared-equal", machine, order, order, order, "lru-50")
        op = run_experiment("outer-product", machine, order, order, order, "lru-50")
        assert so.ms <= eq.ms * 1.02
        assert eq.ms < op.ms

    def test_ideal_between_bound_and_lru(self):
        order = 60
        ideal = run_experiment("shared-opt", Q32, order, order, order, "ideal")
        lru = run_experiment("shared-opt", Q32, order, order, order, "lru-50")
        bound = shared_misses_lower_bound(Q32, order, order, order)
        assert bound <= ideal.ms <= lru.ms * 1.001


class TestFigure8DistributedMisses:
    """Fig. 8: Distributed Opt. wins at q=32 but collapses at q=64 (µ=1)."""

    @pytest.mark.parametrize(
        "machine", [Q32, preset("q32-pessimistic")], ids=["cd21", "cd16"]
    )
    def test_q32_ranking(self, machine):
        order = 48
        do = run_experiment("distributed-opt", machine, order, order, order, "lru-50")
        eq = run_experiment("distributed-equal", machine, order, order, order, "lru-50")
        op = run_experiment("outer-product", machine, order, order, order, "lru-50")
        assert do.md < eq.md
        assert do.md < op.md

    def test_q64_collapse(self):
        """With CD=6 the declared µ is 1: no advantage left."""
        order = 48
        do = run_experiment("distributed-opt", Q64, order, order, order, "lru-50")
        eq = run_experiment("distributed-equal", Q64, order, order, order, "lru-50")
        op = run_experiment("outer-product", Q64, order, order, order, "lru-50")
        assert do.md >= 0.95 * min(eq.md, op.md)  # no longer better

    def test_ideal_close_to_bound(self):
        order = 48
        ideal = run_experiment("distributed-opt", Q32, order, order, order, "ideal")
        bound = distributed_misses_lower_bound(Q32, order, order, order)
        assert bound <= ideal.md <= 1.35 * bound


class TestFigure9Tdata:
    """Fig. 9 (q=32): Tradeoff best overall, Shared Opt. very close."""

    ORDER = 60

    def _tdata(self, name, setting, machine=Q32):
        return run_experiment(
            name, machine, self.ORDER, self.ORDER, self.ORDER, setting
        ).tdata

    def test_lru50_tradeoff_among_best(self):
        six = [
            "shared-opt",
            "distributed-opt",
            "tradeoff",
            "outer-product",
            "shared-equal",
            "distributed-equal",
        ]
        tdatas = {name: self._tdata(name, "lru-50") for name in six}
        best = min(tdatas.values())
        # Tradeoff and Shared Opt. are the two leaders, within 10%.
        assert tdatas["tradeoff"] <= 1.10 * best
        assert tdatas["shared-opt"] <= 1.10 * best
        # The baselines trail far behind.
        assert tdatas["outer-product"] > 2.5 * best
        assert tdatas["distributed-equal"] > 2.5 * best

    def test_ideal_tradeoff_wins_outright(self):
        for rival in ("shared-opt", "distributed-opt", "shared-equal",
                      "outer-product", "distributed-equal"):
            assert self._tdata("tradeoff", "ideal") < self._tdata(rival, "ideal")

    def test_above_lower_bound(self):
        bound = tdata_lower_bound(Q32, self.ORDER, self.ORDER, self.ORDER)
        assert self._tdata("tradeoff", "ideal") >= bound


class TestFigure11RoundingPenalty:
    """Fig. 11 (q=80): parameter rounding costs Tradeoff its lead."""

    def test_shared_opt_competitive_at_q80(self):
        order = 48
        so = run_experiment("shared-opt", Q80, order, order, order, "ideal")
        to = run_experiment("tradeoff", Q80, order, order, order, "ideal")
        # The paper finds Shared Opt. ties or beats Tradeoff here; we
        # only require that Tradeoff has lost its clear q32-style win.
        assert so.tdata <= 1.6 * to.tdata


class TestFigure12BandwidthSweep:
    """Fig. 12: Tradeoff tracks the best algorithm across r."""

    ORDER = 48

    def _tdata(self, name, r):
        machine = Q32.with_bandwidth_ratio(r)
        return run_experiment(
            name, machine, self.ORDER, self.ORDER, self.ORDER, "ideal"
        ).tdata

    def test_r_to_zero_ties_shared_opt(self):
        assert self._tdata("tradeoff", 0.02) <= 1.05 * self._tdata("shared-opt", 0.02)

    def test_r_to_one_ties_distributed_opt(self):
        assert self._tdata("tradeoff", 0.98) == pytest.approx(
            self._tdata("distributed-opt", 0.98), rel=1e-9
        )

    @pytest.mark.parametrize("r", [0.1, 0.3, 0.5, 0.7, 0.9])
    def test_never_worse_than_either_parent(self, r):
        t = self._tdata("tradeoff", r)
        assert t <= 1.05 * self._tdata("shared-opt", r)
        assert t <= 1.05 * self._tdata("distributed-opt", r)

    def test_parents_cross_over(self):
        """Shared Opt. and Distributed Opt. swap ranks across the sweep."""
        s_lo, d_lo = self._tdata("shared-opt", 0.1), self._tdata("distributed-opt", 0.1)
        s_hi, d_hi = self._tdata("shared-opt", 0.9), self._tdata("distributed-opt", 0.9)
        assert (s_lo - d_lo) * (s_hi - d_hi) < 0


class TestLoadBalance:
    """All paper algorithms distribute work and misses evenly (§2.3.4)."""

    @pytest.mark.parametrize(
        "name,params",
        [
            # λ pinned to a multiple of p that divides the order, so the
            # column deal of Algorithm 1 is perfectly even.
            ("shared-opt", {"lam": 24}),
            ("distributed-opt", {}),
            ("tradeoff", {}),
            ("outer-product", {}),
        ],
    )
    def test_balanced_at_divisible_order(self, name, params):
        r = run_experiment(name, Q32, 48, 48, 48, "ideal", **params)
        assert r.stats.imbalance() <= 1.05
        comp = r.comp
        assert max(comp) <= 1.05 * (sum(comp) / len(comp))
