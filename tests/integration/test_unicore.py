"""Degenerate-machine sweeps: every algorithm on a single core.

With ``p = 1`` the grid collapses to 1×1, "parallel" loops have one
iterant, and several formulas lose their ``p`` terms — historically the
richest source of off-by-one bugs in tiled codes, hence a dedicated
suite.
"""

import pytest

from repro.algorithms.registry import ALGORITHMS, EXTRA_ALGORITHMS, get_algorithm
from repro.model.machine import MulticoreMachine
from repro.numerics.executor import verify_schedule
from repro.sim.runner import run_experiment

UNICORE = MulticoreMachine(p=1, cs=50, cd=7, q=8, name="unicore")

ALL_NAMES = sorted(ALGORITHMS) + sorted(EXTRA_ALGORITHMS)


@pytest.mark.parametrize("name", ALL_NAMES)
class TestUnicore:
    def test_numeric(self, name):
        verify_schedule(get_algorithm(name)(UNICORE, 5, 4, 6), q=2)

    def test_checked_ideal(self, name):
        cls = get_algorithm(name)
        if not cls.supports_ideal:
            from repro.exceptions import ConfigurationError

            with pytest.raises(ConfigurationError, match="compute-only"):
                run_experiment(name, UNICORE, 6, 6, 6, "ideal")
            return
        r = run_experiment(name, UNICORE, 6, 6, 6, "ideal", check=True)
        assert r.comp == [216]
        assert r.stats.imbalance() == 1.0

    def test_lru(self, name):
        r = run_experiment(name, UNICORE, 6, 6, 6, "lru")
        # single core: MD is the only distributed counter and the
        # compulsory floor applies at both levels
        assert r.ms >= 3 * 36
        assert r.md >= 3 * 36


class TestUnicoreRelations:
    def test_shared_and_distributed_opt_collapse_sensibly(self):
        """On one core both Maximum-Reuse variants keep their own tile
        parameter (λ from CS, µ from CD) and λ > µ ⇒ Shared Opt. still
        wins the shared level."""
        so = run_experiment("shared-opt", UNICORE, 12, 12, 12, "ideal")
        do = run_experiment("distributed-opt", UNICORE, 12, 12, 12, "ideal")
        assert so.ms < do.ms
        assert do.md < so.md

    def test_outer_product_equals_cannon_on_one_core(self):
        """With a 1×1 torus there is no skew: identical schedules."""
        op = run_experiment("outer-product", UNICORE, 8, 8, 8, "ideal")
        cn = run_experiment("cannon", UNICORE, 8, 8, 8, "ideal")
        assert op.ms == cn.ms
        assert op.md == cn.md
