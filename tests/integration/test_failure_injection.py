"""Failure injection: the checked simulator must catch broken schedules.

Each test plants a specific, realistic bug into a schedule (an
over-sized tile, a forgotten eviction, a missing load, a skipped
write-back path) and asserts the corresponding guard —
:class:`CapacityError`, :class:`InclusionError`, :class:`PresenceError`
or the numeric discipline — fires rather than silently producing wrong
counts.
"""

import pytest

from repro.algorithms.base import MatmulAlgorithm
from repro.algorithms.shared_opt import SharedOpt
from repro.cache.block import block_key, MAT_A, MAT_B, MAT_C
from repro.cache.hierarchy import IdealHierarchy
from repro.exceptions import (
    CapacityError,
    InclusionError,
    PresenceError,
    ScheduleError,
)
from repro.model.machine import MulticoreMachine
from repro.sim.contexts import IdealContext
from repro.sim.runner import run_experiment

MACHINE = MulticoreMachine(p=4, cs=40, cd=6, q=8)


class OversizedTile(MatmulAlgorithm):
    """Plans a C tile bigger than the shared cache."""

    name = "oversized"

    def run(self, ctx):
        for i in range(self.m):
            for j in range(self.n):
                ctx.load_shared(block_key(MAT_C, i, j))  # never evicts


class ForgetsEviction(MatmulAlgorithm):
    """Streams A through the shared cache without freeing it."""

    name = "leaky"

    def run(self, ctx):
        for k in range(self.z):
            for i in range(self.m):
                ctx.load_shared(block_key(MAT_A, i, k))


class SkipsSharedLevel(MatmulAlgorithm):
    """Loads straight into a distributed cache (inclusion violation)."""

    name = "non-inclusive"

    def run(self, ctx):
        ctx.load_dist(0, block_key(MAT_A, 0, 0))


class ComputesWithoutLoading(MatmulAlgorithm):
    """Emits a multiply-add on blocks never placed in the core's cache."""

    name = "phantom"

    def run(self, ctx):
        ctx.compute(
            0, block_key(MAT_C, 0, 0), block_key(MAT_A, 0, 0), block_key(MAT_B, 0, 0)
        )


class EvictsWhileCoreHolds(MatmulAlgorithm):
    """Evicts a shared block still resident in a distributed cache."""

    name = "early-evict"

    def run(self, ctx):
        key = block_key(MAT_A, 0, 0)
        ctx.load_shared(key)
        ctx.load_dist(0, key)
        ctx.evict_shared(key)


def _run_checked(cls):
    hierarchy = IdealHierarchy(MACHINE.p, MACHINE.cs, MACHINE.cd, check=True)
    cls(MACHINE, 8, 8, 8).run(IdealContext(hierarchy))


class TestCheckedIdealCatchesBugs:
    def test_capacity_overflow_shared(self):
        with pytest.raises(CapacityError):
            _run_checked(OversizedTile)

    def test_leaked_residency(self):
        with pytest.raises(CapacityError):
            _run_checked(ForgetsEviction)

    def test_inclusion_violation_on_load(self):
        with pytest.raises(InclusionError):
            _run_checked(SkipsSharedLevel)

    def test_presence_violation_on_compute(self):
        with pytest.raises(PresenceError):
            _run_checked(ComputesWithoutLoading)

    def test_inclusion_violation_on_evict(self):
        with pytest.raises(InclusionError):
            _run_checked(EvictsWhileCoreHolds)

    def test_unchecked_mode_tolerates_for_speed(self):
        """check=False trades the guards for throughput, by design."""
        hierarchy = IdealHierarchy(MACHINE.p, MACHINE.cs, MACHINE.cd, check=False)
        SkipsSharedLevel(MACHINE, 8, 8, 8).run(IdealContext(hierarchy))
        assert hierarchy.md[0] == 1


class TestRunnerGuards:
    def test_wrong_compute_count_caught(self):
        class HalfWork(SharedOpt):
            name = "half"

            def run(self, ctx):
                # only the first k layer: comp_total = mn instead of mnz
                full = SharedOpt(self.machine, self.m, self.n, 1, lam=self.lam)
                full.run(ctx)

        with pytest.raises(ScheduleError, match="multiply-adds"):
            run_experiment(HalfWork, MACHINE, 4, 4, 4, "lru")

    def test_verify_comp_can_be_disabled(self):
        class HalfWork(SharedOpt):
            name = "half"

            def run(self, ctx):
                full = SharedOpt(self.machine, self.m, self.n, 1, lam=self.lam)
                full.run(ctx)

        result = run_experiment(
            HalfWork, MACHINE, 4, 4, 4, "lru", verify_comp=False
        )
        assert result.comp_total == 16
