"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestList:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "shared-opt" in out
        assert "q32" in out
        assert "fig12" in out


class TestParams:
    def test_preset(self, capsys):
        assert main(["params", "--preset", "q32"]) == 0
        out = capsys.readouterr().out
        assert "lambda (Shared Opt.):      30" in out
        assert "mu (Distributed Opt.):     4" in out
        assert "alpha=16" in out

    def test_custom_machine(self, capsys):
        assert main(["params", "--cores", "4", "--cs", "100", "--cd", "21"]) == 0
        assert "lambda (Shared Opt.):      9" in capsys.readouterr().out

    def test_non_square_cores(self, capsys):
        assert main(["params", "--cores", "6", "--cs", "100", "--cd", "16"]) == 0
        assert "n/a" in capsys.readouterr().out


class TestRun:
    def test_run_basic(self, capsys):
        code = main(
            ["run", "shared-opt", "-m", "8", "--preset", "q32", "--setting", "ideal"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "MS" in out and "shared-opt" in out

    def test_run_rectangular(self, capsys):
        code = main(
            [
                "run", "outer-product", "-m", "4", "-n", "6", "-z", "8",
                "--preset", "q32", "--setting", "lru",
            ]
        )
        assert code == 0

    def test_error_exit_code(self, capsys):
        # distributed-opt on a non-square core count -> clean error
        code = main(
            ["run", "distributed-opt", "-m", "4", "--cores", "6", "--cs", "100",
             "--cd", "16"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestSweep:
    def test_sweep(self, capsys):
        code = main(
            [
                "sweep", "shared-opt", "outer-product",
                "--orders", "4", "8", "--preset", "q32", "--setting", "ideal",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("shared-opt") == 2  # one row per order

    def test_sweep_run_dir_and_resume(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        base = [
            "sweep", "shared-opt", "--orders", "4", "6", "--preset", "q32",
            "--setting", "ideal", "--workers", "1", "--run-dir", str(run_dir),
        ]
        assert main(base) == 0
        captured = capsys.readouterr()
        assert (run_dir / "checkpoint.jsonl").exists()
        assert (run_dir / "manifest.json").exists()
        assert "run dir:" in captured.err

        assert main(base + ["--resume"]) == 0
        captured = capsys.readouterr()
        assert "(2 resumed from checkpoint)" in captured.err

    def test_resume_without_run_dir_rejected(self, capsys):
        code = main(
            ["sweep", "shared-opt", "--orders", "4", "--preset", "q32",
             "--workers", "1", "--resume"]
        )
        assert code == 2
        assert "resume" in capsys.readouterr().err


class TestRuns:
    def _make_run(self, run_dir):
        return main(
            ["sweep", "shared-opt", "--orders", "4", "6", "--preset", "q32",
             "--setting", "ideal", "--workers", "1", "--run-dir", str(run_dir)]
        )

    def test_runs_list(self, tmp_path, capsys):
        assert self._make_run(tmp_path / "run-a") == 0
        capsys.readouterr()
        assert main(["runs", "list", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "run-a" in out and "complete" in out

    def test_runs_list_empty(self, tmp_path, capsys):
        assert main(["runs", "list", str(tmp_path)]) == 0
        assert "no run directories" in capsys.readouterr().out

    def test_runs_show(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        assert self._make_run(run_dir) == 0
        capsys.readouterr()
        assert main(["runs", "show", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "status: complete" in out
        assert "checkpoint: 2 ok" in out
        assert "manifest: present" in out

    def test_runs_show_rejects_non_run(self, tmp_path, capsys):
        assert main(["runs", "show", str(tmp_path)]) == 2
        assert "not a run directory" in capsys.readouterr().err

    def test_runs_verify_clean_and_corrupt(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        assert self._make_run(run_dir) == 0
        capsys.readouterr()
        assert main(["runs", "verify", str(run_dir)]) == 0
        assert "ok" in capsys.readouterr().out

        checkpoint = run_dir / "checkpoint.jsonl"
        lines = checkpoint.read_text().splitlines()
        lines[0] = lines[0].replace('"ok"', '"OK"')  # break the checksum
        checkpoint.write_text("\n".join(lines) + "\n")
        assert main(["runs", "verify", str(run_dir)]) == 1
        out = capsys.readouterr().out
        assert "CORRUPT" in out
        assert "checksum mismatch" in out

    def test_runs_verify_detects_truncation(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        assert self._make_run(run_dir) == 0
        capsys.readouterr()
        checkpoint = run_dir / "checkpoint.jsonl"
        raw = checkpoint.read_bytes()
        checkpoint.write_bytes(raw[:-9])  # SIGKILL-style torn tail
        assert main(["runs", "verify", str(run_dir)]) == 0  # warning, not error
        out = capsys.readouterr().out
        assert "torn tail" in out


class TestFigure:
    def test_figure_fig4(self, capsys):
        assert main(["figure", "fig4", "--orders", "8", "16"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out and "Formula" in out

    def test_figure_csv_output(self, tmp_path, capsys):
        code = main(
            ["figure", "fig4", "--orders", "8", "--csv", str(tmp_path)]
        )
        assert code == 0
        assert (tmp_path / "fig4a.csv").exists()


class TestVerify:
    def test_verify(self, capsys):
        assert main(["verify", "tradeoff", "--preset", "q32", "-m", "8"]) == 0
        assert "passed" in capsys.readouterr().out


class TestTables:
    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "977" in out and "lambda" in out


class TestAnalyze:
    def test_analyze_basic(self, capsys):
        assert main(["analyze", "shared-opt", "--preset", "q32", "-m", "8"]) == 0
        out = capsys.readouterr().out
        assert "distributed[0]" in out
        assert "shared (alone)" in out

    def test_analyze_curve(self, capsys):
        assert main(
            ["analyze", "shared-opt", "--preset", "q32", "-m", "6", "--curve"]
        ) == 0
        assert "miss curve" in capsys.readouterr().out

    def test_analyze_extra_algorithm(self, capsys):
        assert main(["analyze", "cannon", "--preset", "q32", "-m", "6"]) == 0


class TestCheck:
    def test_single_cell_clean(self, capsys):
        code = main(["check", "--algorithm", "shared-opt", "--machine", "q32"])
        assert code == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out and "clean" in out

    def test_filters_multiply(self, capsys):
        code = main(
            [
                "check",
                "--algorithm", "shared-opt", "--algorithm", "cannon",
                "--machine", "q32", "--machine", "q64",
            ]
        )
        assert code == 0

    def test_explicit_orders(self, capsys):
        code = main(
            ["check", "--algorithm", "cannon", "--machine", "q32",
             "--orders", "4", "6"]
        )
        assert code == 0
        assert "2 schedule cells" in capsys.readouterr().out

    def test_lint_flag(self, capsys):
        code = main(
            ["check", "--algorithm", "shared-opt", "--machine", "q32", "--lint"]
        )
        assert code == 0
        assert (
            "source scan (lint/determinism/purity): 0 finding(s)"
            in capsys.readouterr().out
        )

    def test_json_output(self, capsys):
        code = main(
            ["check", "--algorithm", "tradeoff", "--machine", "q32",
             "--lint", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 0
        assert payload["lint"] == []
        report = payload["reports"][0]
        assert report["algorithm"] == "tradeoff"
        assert report["findings"] == []
        assert report["computes"] == report["m"] * report["n"] * report["z"]

    def test_unknown_algorithm_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["check", "--algorithm", "nope"])

    def test_json_schema_versioned_with_cell_accounting(self, capsys):
        code = main(
            ["check", "--algorithm", "cannon", "--machine", "q32",
             "--orders", "4", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == 3
        assert payload["checker_version"] == 4
        assert payload["cells"] == {"analyzed": 1, "skipped": 0, "cached": 0}
        assert payload["suppressed"] == 0
        assert payload["elapsed_s"] > 0
        report = payload["reports"][0]
        assert report["status"] == "analyzed"
        assert report["elapsed_s"] > 0

    def test_json_cell_accounting_consistent_on_full_matrix(self, capsys):
        # analyzed + skipped must partition the reports, and skipped
        # entries must carry a reason and no findings.
        code = main(["check", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        cells = payload["cells"]
        assert cells["analyzed"] + cells["skipped"] == len(payload["reports"])
        for report in payload["reports"]:
            if report["status"] == "skipped":
                assert report["skip_reason"]
                assert report["findings"] == []

    def test_sarif_export(self, capsys, tmp_path):
        out = tmp_path / "check.sarif"
        code = main(
            ["check", "--algorithm", "cannon", "--machine", "q64",
             "--sarif", str(out)]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["version"] == "2.1.0"
        assert payload["runs"][0]["tool"]["driver"]["name"] == "repro-mmm-check"
        assert payload["runs"][0]["results"] == []  # clean matrix

    def test_baseline_write_and_apply(self, capsys, tmp_path):
        base = tmp_path / "baseline.json"
        code = main(
            ["check", "--algorithm", "cannon", "--machine", "q64",
             "--write-baseline", str(base)]
        )
        assert code == 0
        assert "wrote 0 suppression(s)" in capsys.readouterr().out
        payload = json.loads(base.read_text())
        assert payload == {"schema": 1, "suppressions": []}
        code = main(
            ["check", "--algorithm", "cannon", "--machine", "q64",
             "--baseline", str(base)]
        )
        assert code == 0

    def test_incremental_cache_round_trip(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        argv = ["check", "--algorithm", "shared-equal", "--machine", "q64",
                "--incremental", "--cache-dir", str(cache_dir), "--json"]
        assert main(argv) == 0
        cold = json.loads(capsys.readouterr().out)
        assert cold["cells"]["cached"] == 0
        assert main(argv) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["cells"]["cached"] == warm["cells"]["analyzed"] > 0
        assert warm["errors"] == cold["errors"] == 0

    def test_gap_certificate_in_summary_and_json(self, capsys):
        code = main(
            ["check", "--algorithm", "shared-opt", "--machine", "q32",
             "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        (gap,) = payload["gap"]
        assert gap["algorithm"] == "shared-opt"
        assert gap["cells"] > 0
        assert gap["ms_gap"]["min"] >= 1.0
        assert isinstance(gap["certified_shared"], bool)

    def test_gap_report_written(self, capsys, tmp_path):
        out = tmp_path / "gap-report.json"
        code = main(
            ["check", "--algorithm", "shared-opt", "--machine", "q32",
             "--gap-report", str(out)]
        )
        assert code == 0
        assert "gap certificate:" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert {a["algorithm"] for a in payload["algorithms"]} == {"shared-opt"}
        assert all("ms_gap" in c for c in payload["cells"])

    def test_write_gap_baseline(self, capsys, tmp_path):
        base = tmp_path / "gap-baseline.json"
        code = main(
            ["check", "--algorithm", "shared-opt", "--machine", "q32",
             "--write-gap-baseline", str(base)]
        )
        assert code == 0
        assert "wrote gap baseline" in capsys.readouterr().out
        assert json.loads(base.read_text())["algorithms"]

    def test_gap_baseline_comparison_skipped_on_filtered_run(
        self, capsys, tmp_path
    ):
        base = tmp_path / "gap-baseline.json"
        assert main(
            ["check", "--algorithm", "shared-opt", "--machine", "q32",
             "--write-gap-baseline", str(base)]
        ) == 0
        capsys.readouterr()
        # A filtered run sees only a slice of the matrix; comparing it
        # against the full-matrix baseline would fabricate regressions.
        code = main(
            ["check", "--algorithm", "shared-opt", "--machine", "q32",
             "--gap-baseline", str(base)]
        )
        assert code == 0
        assert "skipped (filtered run)" in capsys.readouterr().out

    def test_committed_gap_baseline_matches_full_matrix(self, capsys):
        # The ratchet the CI job enforces: the committed baseline must
        # stay in sync with the schedule matrix.
        code = main(["check", "--gap-baseline", "check-gap-baseline.json"])
        assert code == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out
        assert "gap certificate:" in out


class TestStrictEngine:
    def test_run_strict_engine_rejects_fallback(self, capsys):
        code = main(
            ["run", "shared-opt", "-m", "4", "--preset", "q32",
             "--setting", "ideal", "--check", "--strict-engine"]
        )
        assert code == 2
        assert "strict_engine" in capsys.readouterr().err

    def test_run_strict_engine_accepts_supported(self, capsys):
        code = main(
            ["run", "shared-opt", "-m", "4", "--preset", "q32",
             "--setting", "lru-50", "--strict-engine"]
        )
        assert code == 0


class TestLU:
    def test_lu_counts(self, capsys):
        assert main(["lu", "--preset", "q32", "-n", "12"]) == 0
        out = capsys.readouterr().out
        assert "right-looking-lu" in out and "left-looking-lu" in out

    def test_lu_verify(self, capsys):
        assert main(["lu", "--preset", "q32", "-n", "8", "--verify"]) == 0
        assert "verification passed" in capsys.readouterr().out


class TestBench:
    @staticmethod
    def _fake_report(path, median):
        import json

        path.write_text(
            json.dumps(
                {
                    "benchmarks": [
                        {
                            "fullname": "bench_x.py::bench_one",
                            "stats": {
                                "median": median,
                                "iqr": median / 10,
                                "mean": median,
                                "stddev": median / 8,
                                "rounds": 10,
                            },
                        }
                    ]
                }
            )
        )

    def test_from_json_records(self, tmp_path, capsys):
        report = tmp_path / "report.json"
        self._fake_report(report, 0.1)
        out = tmp_path / "BENCH_test.json"
        code = main(["bench", "--from-json", str(report), "--out", str(out)])
        assert code == 0
        assert "recorded 1 benchmarks" in capsys.readouterr().out
        import json

        record = json.loads(out.read_text())
        assert record["benchmarks"]["bench_x.py::bench_one"]["median_s"] == 0.1

    def test_baseline_pass_and_regression(self, tmp_path, capsys):
        report = tmp_path / "report.json"
        out = tmp_path / "bench.json"
        baseline = tmp_path / "baseline.json"
        self._fake_report(report, 0.1)
        assert (
            main(
                [
                    "bench",
                    "--from-json",
                    str(report),
                    "--out",
                    str(out),
                    "--write-baseline",
                    str(baseline),
                ]
            )
            == 0
        )
        capsys.readouterr()
        # within threshold
        self._fake_report(report, 0.11)
        args = [
            "bench",
            "--from-json",
            str(report),
            "--out",
            str(out),
            "--baseline",
            str(baseline),
        ]
        assert main(args) == 0
        assert "no regressions" in capsys.readouterr().out
        # beyond threshold -> exit 1
        self._fake_report(report, 0.2)
        assert main(args) == 1
        assert "regression(s)" in capsys.readouterr().out

    def test_bad_report_is_cli_error(self, tmp_path, capsys):
        report = tmp_path / "report.json"
        report.write_text("{}")
        code = main(["bench", "--from-json", str(report)])
        assert code == 2
        assert "error:" in capsys.readouterr().err
