"""Tests for the exception hierarchy contract."""

import pytest

from repro.exceptions import (
    CapacityError,
    ConfigurationError,
    InclusionError,
    ParameterError,
    PresenceError,
    ReproError,
    ScheduleError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ConfigurationError,
            CapacityError,
            InclusionError,
            PresenceError,
            ScheduleError,
            ParameterError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_config_and_parameter_are_value_errors(self):
        """Callers using plain ``except ValueError`` still catch
        misconfiguration, matching stdlib conventions."""
        assert issubclass(ConfigurationError, ValueError)
        assert issubclass(ParameterError, ValueError)

    def test_single_catch_all(self):
        with pytest.raises(ReproError):
            raise CapacityError("full")

    def test_library_raises_only_repro_errors_for_bad_config(self):
        from repro.model.machine import MulticoreMachine

        with pytest.raises(ReproError):
            MulticoreMachine(p=0, cs=1, cd=1)
        from repro.model.params import max_square_param

        with pytest.raises(ReproError):
            max_square_param(1)
