"""Tests for the simulation settings (paper §4.2)."""

import pytest

from repro.exceptions import ConfigurationError
from repro.model.machine import MulticoreMachine
from repro.sim.settings import SETTINGS, get_setting

MACHINE = MulticoreMachine(p=4, cs=100, cd=20)


class TestRegistry:
    def test_four_settings(self):
        assert set(SETTINGS) == {"ideal", "lru", "lru-2x", "lru-50"}

    def test_get_setting(self):
        assert get_setting("ideal").is_ideal
        assert not get_setting("lru").is_ideal

    def test_unknown(self):
        with pytest.raises(ConfigurationError):
            get_setting("belady")


class TestSemantics:
    def test_ideal_identity(self):
        s = get_setting("ideal")
        assert s.declared(MACHINE) == MACHINE
        assert s.simulated(MACHINE) == MACHINE

    def test_lru_identity(self):
        s = get_setting("lru")
        assert s.declared(MACHINE) == MACHINE
        assert s.simulated(MACHINE) == MACHINE

    def test_lru_2x_doubles_simulated_only(self):
        s = get_setting("lru-2x")
        assert s.declared(MACHINE).cs == 100
        sim = s.simulated(MACHINE)
        assert sim.cs == 200 and sim.cd == 40

    def test_lru_50_halves_declared_only(self):
        s = get_setting("lru-50")
        declared = s.declared(MACHINE)
        assert declared.cs == 50 and declared.cd == 10
        assert s.simulated(MACHINE) == MACHINE
