"""Tests for the simulation contexts."""

import pytest

from repro.algorithms.shared_opt import SharedOpt
from repro.cache.block import block_key, MAT_A, MAT_B, MAT_C
from repro.cache.hierarchy import IdealHierarchy, LRUHierarchy
from repro.numerics.blockmatrix import BlockMatrix
from repro.numerics.executor import NumericContext
from repro.sim.contexts import ChainContext, IdealContext, LRUContext


def keys(i, j, k):
    return block_key(MAT_C, i, j), block_key(MAT_A, i, k), block_key(MAT_B, k, j)


class TestLRUContext:
    def test_compute_touches_all_three(self):
        h = LRUHierarchy(p=1, cs=16, cd=4)
        ctx = LRUContext(h)
        ctx.compute(0, *keys(0, 0, 0))
        assert h.distributed[0].misses == 3
        assert ctx.comp == [1]

    def test_not_explicit(self):
        assert not LRUContext(LRUHierarchy(p=1, cs=16, cd=4)).explicit

    def test_directives_ignored(self):
        h = LRUHierarchy(p=1, cs=16, cd=4)
        ctx = LRUContext(h)
        ctx.load_shared(block_key(MAT_A, 0, 0))
        assert h.shared.misses == 0


class TestIdealContext:
    def test_explicit(self):
        assert IdealContext(IdealHierarchy(p=1, cs=16, cd=4)).explicit

    def test_directives_forwarded(self):
        h = IdealHierarchy(p=1, cs=16, cd=4)
        ctx = IdealContext(h)
        key = block_key(MAT_A, 0, 0)
        ctx.load_shared(key)
        ctx.load_dist(0, key)
        assert h.ms == 1 and h.md == [1]
        ctx.evict_dist(0, key)
        ctx.evict_shared(key)
        assert h.resident_shared() == 0

    def test_compute_marks_c_dirty(self):
        h = IdealHierarchy(p=1, cs=16, cd=4)
        ctx = IdealContext(h)
        kc, ka, kb = keys(0, 0, 0)
        for key in (ka, kb, kc):
            ctx.load_shared(key)
            ctx.load_dist(0, key)
        ctx.compute(0, kc, ka, kb)
        assert kc in h.dist_dirty[0]
        assert ctx.comp == [1]

    def test_checked_compute_requires_presence(self):
        from repro.exceptions import PresenceError

        h = IdealHierarchy(p=1, cs=16, cd=4, check=True)
        ctx = IdealContext(h)
        with pytest.raises(PresenceError):
            ctx.compute(0, *keys(0, 0, 0))


class TestRecordingContext:
    def test_records_three_touches_per_compute(self):
        from repro.sim.contexts import RecordingContext

        ctx = RecordingContext(p=2)
        ctx.compute(1, *keys(0, 0, 0))
        assert len(ctx.trace) == 3
        assert ctx.comp == [0, 1]
        # order: A read, B read, C write
        entries = ctx.trace.entries
        assert entries[0][1:] == (block_key(MAT_A, 0, 0), False)
        assert entries[2][1:] == (block_key(MAT_C, 0, 0), True)

    def test_keys_flattened_in_order(self):
        from repro.sim.contexts import RecordingContext

        ctx = RecordingContext(p=1)
        ctx.compute(0, *keys(0, 0, 0))
        ctx.compute(0, *keys(1, 1, 1))
        assert len(ctx.keys()) == 6


class TestMultiLevelContext:
    def test_touches_reach_the_tree(self):
        from repro.cache.multilevel import two_level
        from repro.sim.contexts import MultiLevelContext

        tree = two_level(2, cs=16, cd=4)
        ctx = MultiLevelContext(tree)
        ctx.compute(0, *keys(0, 0, 0))
        assert tree.level_misses(0) == 3
        assert ctx.comp == [1, 0]

    def test_two_level_tree_matches_flat_hierarchy(self, quad):
        """Running a real schedule through the tree context equals the
        flat LRU hierarchy bit for bit."""
        from repro.cache.multilevel import two_level
        from repro.sim.contexts import MultiLevelContext

        alg = SharedOpt(quad, 6, 6, 6)
        tree = two_level(quad.p, quad.cs, quad.cd)
        alg.run(MultiLevelContext(tree))
        flat = LRUHierarchy(quad.p, quad.cs, quad.cd)
        SharedOpt(quad, 6, 6, 6).run(LRUContext(flat))
        assert tree.level_misses(0) == flat.snapshot().ms
        assert [c.misses for c in tree.level_stats(1)] == flat.snapshot().md_per_core


class TestChainContext:
    def test_runs_numeric_and_ideal_together(self, quad):
        alg = SharedOpt(quad, 4, 4, 4, lam=4)
        a = BlockMatrix.random(4, 4, q=2, seed=0)
        b = BlockMatrix.random(4, 4, q=2, seed=1)
        numeric = NumericContext(quad.p, a, b)
        h = IdealHierarchy(quad.p, quad.cs, quad.cd, check=True)
        ideal = IdealContext(h)
        chain = ChainContext([numeric, ideal])
        assert chain.explicit  # OR of children
        alg.run(chain)
        numeric.assert_complete()
        assert numeric.c.allclose(a @ b)
        assert h.ms > 0
        assert chain.comp_total == 64
        assert numeric.comp == ideal.comp

    def test_explicit_false_when_no_explicit_child(self, quad):
        h = LRUHierarchy(quad.p, quad.cs, quad.cd)
        chain = ChainContext([LRUContext(h)])
        assert not chain.explicit

    def test_mismatched_core_counts_rejected(self):
        h1 = LRUHierarchy(p=1, cs=16, cd=4)
        h2 = LRUHierarchy(p=2, cs=16, cd=4)
        with pytest.raises(ValueError):
            ChainContext([LRUContext(h1), LRUContext(h2)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ChainContext([])
