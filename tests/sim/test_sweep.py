"""Tests for sweep machinery and result containers."""

import pytest

from repro.exceptions import ConfigurationError
from repro.sim.results import SweepResult
from repro.sim.sweep import order_sweep, ratio_sweep, resolve_entries, series_label


class TestOrderSweep:
    def test_basic(self, quad):
        sweep = order_sweep(
            [("shared-opt", "ideal"), ("outer-product", "ideal")],
            quad,
            [4, 8],
        )
        assert sweep.variable == "order"
        assert sweep.xs == [4, 8]
        assert set(sweep.labels()) == {
            "shared-opt ideal",
            "outer-product ideal",
        }
        ms = sweep.values("shared-opt ideal", "ms")
        assert len(ms) == 2 and ms[1] > ms[0]

    def test_entry_with_params(self, quad):
        sweep = order_sweep(
            [("shared-opt", "ideal", {"lam": 4})], quad, [8]
        )
        result = sweep.series["shared-opt ideal lam=4"][0]
        assert result.parameters["lambda"] == 4

    def test_param_variants_keep_distinct_series(self, quad):
        # Regression: two entries differing only in params used to
        # collapse onto one label, silently dropping the first series.
        sweep = order_sweep(
            [
                ("shared-opt", "ideal", {"lam": 4}),
                ("shared-opt", "ideal", {"lam": 8}),
            ],
            quad,
            [8],
        )
        assert set(sweep.labels()) == {
            "shared-opt ideal lam=4",
            "shared-opt ideal lam=8",
        }
        r4 = sweep.series["shared-opt ideal lam=4"][0]
        r8 = sweep.series["shared-opt ideal lam=8"][0]
        assert r4.parameters["lambda"] == 4
        assert r8.parameters["lambda"] == 8

    def test_duplicate_entries_rejected(self, quad):
        with pytest.raises(ConfigurationError, match="duplicate series label"):
            order_sweep(
                [("shared-opt", "ideal"), ("shared-opt", "ideal")],
                quad,
                [4],
            )

    def test_square_dims(self, quad):
        sweep = order_sweep([("shared-opt", "ideal")], quad, [6])
        r = sweep.series["shared-opt ideal"][0]
        assert (r.m, r.n, r.z) == (6, 6, 6)


class TestParallelOrderSweep:
    ENTRIES = [
        ("shared-opt", "lru-50"),
        ("shared-opt", "ideal"),
        ("outer-product", "lru-50"),
    ]

    def test_workers_match_serial(self, quad):
        serial = order_sweep(self.ENTRIES, quad, [4, 6, 8])
        par = order_sweep(self.ENTRIES, quad, [4, 6, 8], workers=2)
        assert par.xs == serial.xs
        for label in serial.labels():
            for metric in ("ms", "md", "tdata"):
                assert par.values(label, metric) == serial.values(label, metric)

    def test_workers_forward_policy_and_params(self, quad):
        par = order_sweep(
            [("shared-opt", "lru-50", {"lam": 4})],
            quad,
            [8],
            policy="fifo",
            workers=2,
        )
        serial = order_sweep(
            [("shared-opt", "lru-50", {"lam": 4})], quad, [8], policy="fifo"
        )
        r = par.series["shared-opt lru-50 lam=4"][0]
        assert r.parameters["lambda"] == 4
        assert r.stats == serial.series["shared-opt lru-50 lam=4"][0].stats

    def test_worker_errors_propagate(self, quad):
        with pytest.raises(ConfigurationError):
            order_sweep([("shared-opt", "nope")], quad, [4], workers=2)


class TestRatioSweep:
    def test_tradeoff_adapts_along_ratio(self, paper_q32):
        sweep = ratio_sweep(
            [("tradeoff", "ideal")], paper_q32, [0.05, 0.95], order=8
        )
        results = sweep.series["tradeoff ideal"]
        # fast distributed (r small) -> big alpha; slow -> minimal alpha
        assert results[0].parameters["alpha"] > results[1].parameters["alpha"]

    def test_counts_same_but_tdata_differs(self, paper_q32):
        # For a non-adaptive algorithm the miss counts cannot depend on r.
        sweep = ratio_sweep(
            [("shared-opt", "ideal")], paper_q32, [0.2, 0.8], order=8
        )
        r1, r2 = sweep.series["shared-opt ideal"]
        assert r1.ms == r2.ms and r1.md == r2.md
        assert r1.tdata != r2.tdata

    def test_policy_forwarded(self, quad):
        # ratio_sweep silently dropped policy/inclusive before PR 4: the
        # kwargs never reached run_experiment, so every "fifo" ratio
        # sweep quietly simulated LRU.  shared-opt at order 10 on the
        # quad machine provably distinguishes the two policies.
        label = "shared-opt lru"
        lru = ratio_sweep([("shared-opt", "lru")], quad, [0.5], order=10)
        fifo = ratio_sweep(
            [("shared-opt", "lru")], quad, [0.5], order=10, policy="fifo"
        )
        assert (lru.series[label][0].ms, lru.series[label][0].md) != (
            fifo.series[label][0].ms,
            fifo.series[label][0].md,
        )

    def test_inclusive_forwarded(self, quad):
        label = "shared-opt lru"
        base = ratio_sweep([("shared-opt", "lru")], quad, [0.5], order=10)
        incl = ratio_sweep(
            [("shared-opt", "lru")], quad, [0.5], order=10, inclusive=True
        )
        assert (base.series[label][0].ms, base.series[label][0].md) != (
            incl.series[label][0].ms,
            incl.series[label][0].md,
        )


class TestSweepResult:
    def test_add_length_mismatch(self):
        sweep = SweepResult(variable="order", xs=[1, 2])
        with pytest.raises(ValueError):
            sweep.add("x", [])

    def test_series_label(self):
        assert series_label("tradeoff", "lru-50") == "tradeoff lru-50"

    def test_series_label_with_params(self):
        # Params are sorted by name so the label is deterministic.
        assert (
            series_label("shared-opt", "lru-50", {"lam": 8, "alpha": 2})
            == "shared-opt lru-50 alpha=2 lam=8"
        )
        assert series_label("tradeoff", "ideal", {}) == "tradeoff ideal"


class TestResolveEntries:
    def test_positions_in_duplicate_error(self):
        entries = [
            ("tradeoff", "ideal"),
            ("shared-opt", "ideal"),
            ("tradeoff", "ideal", {}),
        ]
        with pytest.raises(ConfigurationError, match="entries 1 and 3"):
            resolve_entries(entries)

    def test_resolves_params_and_labels(self):
        resolved = resolve_entries([("shared-opt", "lru", {"lam": 2})])
        assert resolved == [
            ("shared-opt", "lru", {"lam": 2}, "shared-opt lru lam=2")
        ]


class TestEngineKnob:
    def test_order_sweep_engines_agree(self, quad):
        entries = [("shared-opt", "lru"), ("shared-opt", "ideal")]
        rep = order_sweep(entries, quad, [4, 6])
        step = order_sweep(entries, quad, [4, 6], engine="step")
        for label in rep.labels():
            for a, b in zip(rep.series[label], step.series[label]):
                assert a.stats == b.stats

    def test_ratio_sweep_engines_agree(self, quad):
        rep = ratio_sweep([("tradeoff", "lru")], quad, [0.3, 0.7], order=8)
        step = ratio_sweep(
            [("tradeoff", "lru")], quad, [0.3, 0.7], order=8, engine="step"
        )
        for label in rep.labels():
            for a, b in zip(rep.series[label], step.series[label]):
                assert a.stats == b.stats

    def test_unknown_engine_rejected(self, quad):
        with pytest.raises(ConfigurationError, match="unknown engine"):
            order_sweep([("shared-opt", "lru")], quad, [4], engine="warp")
