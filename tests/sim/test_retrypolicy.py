"""The shared retry/backoff policy (pool engine + fabric).

The jitter here replaces ``random.uniform`` (banned on the determinism
scope): it must decorrelate distinct cells while staying bit-identical
between runs, and it must never push a delay *above* the deterministic
exponential envelope that timeout budgets are calibrated against.
"""

import pytest

from repro.exceptions import (
    ConfigurationError,
    ParameterError,
    ScheduleError,
)
from repro.sim.faults import FaultInjectionError
from repro.sim.retrypolicy import BackoffPolicy, is_retryable


class TestRetryClassification:
    def test_permanent_errors_are_not_retryable(self):
        for exc in (
            ConfigurationError("bad"),
            ParameterError("bad"),
            ScheduleError("bad"),
        ):
            assert not is_retryable(exc)

    def test_transient_errors_are_retryable(self):
        for exc in (
            FaultInjectionError("flaky"),
            OSError("socket dropped"),
            RuntimeError("who knows"),
        ):
            assert is_retryable(exc)


class TestBackoffPolicy:
    def test_exponential_envelope_without_jitter(self):
        policy = BackoffPolicy(base_s=0.1, factor=2.0, cap_s=60.0, jitter=0.0)
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.4)

    def test_cap_bounds_deep_retries(self):
        policy = BackoffPolicy(base_s=1.0, factor=2.0, cap_s=5.0, jitter=0.0)
        assert policy.delay(10) == 5.0
        assert policy.delay(50) == 5.0

    def test_jitter_stays_inside_envelope(self):
        policy = BackoffPolicy(base_s=0.1, factor=2.0, cap_s=60.0, jitter=0.5)
        for attempt in range(1, 8):
            raw = min(60.0, 0.1 * 2.0 ** (attempt - 1))
            for key in ("a:0", "a:1", "b:0", ""):
                delay = policy.delay(attempt, key=key)
                # Never above the envelope, never below (1-jitter)*raw.
                assert (1.0 - 0.5) * raw <= delay <= raw

    def test_jitter_is_deterministic(self):
        a = BackoffPolicy(base_s=0.1)
        b = BackoffPolicy(base_s=0.1)
        for attempt in (1, 2, 3):
            assert a.delay(attempt, key="cell:0") == b.delay(attempt, key="cell:0")

    def test_jitter_decorrelates_cells(self):
        policy = BackoffPolicy(base_s=0.1, jitter=0.5)
        delays = {policy.delay(1, key=f"cell:{i}") for i in range(16)}
        # Sixteen cells retrying after the same attempt must not all
        # wake at the same instant (thundering herd).
        assert len(delays) > 1

    def test_zero_base_is_allowed(self):
        policy = BackoffPolicy(base_s=0.0)
        assert policy.delay(1, key="x") == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="base_s"):
            BackoffPolicy(base_s=-0.1)
        with pytest.raises(ConfigurationError, match="factor"):
            BackoffPolicy(factor=0.5)
        with pytest.raises(ConfigurationError, match="cap_s"):
            BackoffPolicy(cap_s=0.0)
        with pytest.raises(ConfigurationError, match="jitter"):
            BackoffPolicy(jitter=1.5)
        with pytest.raises(ConfigurationError, match="attempt"):
            BackoffPolicy().delay(0)

    def test_pool_engine_uses_the_shared_policy(self):
        import repro.sim.parallel as parallel

        assert parallel.BackoffPolicy is BackoffPolicy
