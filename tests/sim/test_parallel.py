"""Tests for process-parallel sweeps: identical results, just faster."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ConfigurationError
from repro.model.machine import MulticoreMachine
from repro.sim.parallel import parallel_order_sweep, parallel_ratio_sweep
from repro.sim.sweep import order_sweep, ratio_sweep

MACHINE = MulticoreMachine(p=4, cs=100, cd=21, q=8)
ENTRIES = [("shared-opt", "ideal"), ("outer-product", "lru")]


class TestParallelOrderSweep:
    def test_matches_serial_exactly(self):
        orders = [4, 8, 12]
        serial = order_sweep(ENTRIES, MACHINE, orders)
        parallel = parallel_order_sweep(ENTRIES, MACHINE, orders, workers=2)
        assert parallel.xs == serial.xs
        assert set(parallel.labels()) == set(serial.labels())
        for label in serial.labels():
            assert parallel.values(label, "ms") == serial.values(label, "ms")
            assert parallel.values(label, "md") == serial.values(label, "md")
            # Bit-identical: the full simulated state, not just headline
            # metrics, must match the serial run.
            for ppoint, spoint in zip(parallel.series[label], serial.series[label]):
                assert ppoint.stats == spoint.stats
                assert ppoint.comp == spoint.comp

    def test_clean_run_is_complete_with_manifest(self):
        sweep = parallel_order_sweep(ENTRIES, MACHINE, [4, 8], workers=2)
        assert sweep.complete
        assert sweep.failures == []
        manifest = sweep.manifest
        assert manifest is not None
        assert manifest.counts() == {"ok": 4, "failed": 0, "skipped": 0}
        assert manifest.pool_rebuilds == 0
        assert not manifest.serial_fallback
        assert all(cell.attempts == 1 for cell in manifest.cells)
        assert sum(w.cells for w in manifest.worker_stats) == 4

    def test_single_worker(self):
        sweep = parallel_order_sweep([("shared-opt", "ideal")], MACHINE, [6], workers=1)
        assert len(sweep.series["shared-opt ideal"]) == 1

    def test_params_forwarded(self):
        sweep = parallel_order_sweep(
            [("shared-opt", "ideal", {"lam": 4})], MACHINE, [8], workers=2
        )
        assert sweep.series["shared-opt ideal lam=4"][0].parameters["lambda"] == 4

    def test_param_variants_keep_distinct_series(self):
        sweep = parallel_order_sweep(
            [("shared-opt", "ideal", {"lam": 4}), ("shared-opt", "ideal", {"lam": 8})],
            MACHINE,
            [8],
            workers=2,
        )
        assert set(sweep.labels()) == {
            "shared-opt ideal lam=4",
            "shared-opt ideal lam=8",
        }

    def test_duplicate_entries_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate series label"):
            parallel_order_sweep(
                [("shared-opt", "ideal"), ("shared-opt", "ideal")],
                MACHINE,
                [4],
                workers=2,
            )


class TestWorkerValidation:
    @pytest.mark.parametrize("workers", [0, -1, -8])
    def test_order_sweep_rejects_nonpositive_workers(self, workers):
        with pytest.raises(ConfigurationError, match="at least one worker"):
            parallel_order_sweep(ENTRIES, MACHINE, [4], workers=workers)

    @pytest.mark.parametrize("workers", [0, -1])
    def test_ratio_sweep_rejects_nonpositive_workers(self, workers):
        with pytest.raises(ConfigurationError, match="at least one worker"):
            parallel_ratio_sweep(
                [("tradeoff", "ideal")], MACHINE, [0.5], order=4, workers=workers
            )

    def test_none_means_default(self):
        # The default (cpu-count) path must stay accessible.
        sweep = parallel_order_sweep([("shared-opt", "ideal")], MACHINE, [4])
        assert len(sweep.series["shared-opt ideal"]) == 1


class TestSerialParallelAgreement:
    @given(
        orders=st.lists(
            st.integers(min_value=3, max_value=10), min_size=1, max_size=3, unique=True
        ),
        workers=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=5, deadline=None)
    def test_every_successful_cell_matches_serial(self, orders, workers):
        # Process pools are slow to spin up, so few examples — but each
        # one checks the engine's core contract: parallelism must never
        # change a result, only who computes it.
        serial = order_sweep(ENTRIES, MACHINE, orders)
        parallel = parallel_order_sweep(ENTRIES, MACHINE, orders, workers=workers)
        assert parallel.complete
        for label in serial.labels():
            for ppoint, spoint in zip(parallel.series[label], serial.series[label]):
                assert ppoint.stats == spoint.stats
                assert ppoint.comp == spoint.comp
                assert ppoint.parameters == spoint.parameters


class TestParallelRatioSweep:
    def test_matches_serial_exactly(self):
        ratios = [0.25, 0.75]
        serial = ratio_sweep([("tradeoff", "ideal")], MACHINE, ratios, order=8)
        parallel = parallel_ratio_sweep(
            [("tradeoff", "ideal")], MACHINE, ratios, order=8, workers=2
        )
        for label in serial.labels():
            assert parallel.values(label, "tdata") == pytest.approx(
                serial.values(label, "tdata")
            )
            # tradeoff re-plans per ratio in both paths
            assert [r.parameters for r in parallel.series[label]] == [
                r.parameters for r in serial.series[label]
            ]
