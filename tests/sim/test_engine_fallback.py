"""Engine-fallback observability: warn once, count, strict knob, serde."""

import logging

import pytest

from repro.exceptions import ConfigurationError
from repro.model.machine import MulticoreMachine
from repro.sim.parallel import parallel_order_sweep
from repro.sim.runner import reset_fallback_warnings, run_experiment
from repro.sim.sweep import order_sweep
from repro.store.serde import result_from_dict, result_to_dict

# Power-of-two cache sizes so the 'plru' ablation policy is valid.
MACHINE = MulticoreMachine(p=4, cs=128, cd=16, q=8)


@pytest.fixture(autouse=True)
def fresh_warning_state():
    reset_fallback_warnings()
    yield
    reset_fallback_warnings()


def fallback_warnings(caplog):
    return [r for r in caplog.records if "falling back" in r.getMessage()]


class TestRunExperimentFallback:
    def test_unsupported_config_falls_back_to_step(self):
        result = run_experiment(
            "shared-opt", MACHINE, 4, 4, 4, "lru", inclusive=True
        )
        assert result.engine == "step"
        assert result.engine_fallback

    def test_supported_config_stays_on_replay_even_when_strict(self):
        result = run_experiment(
            "shared-opt", MACHINE, 4, 4, 4, "lru", strict_engine=True
        )
        assert result.engine == "replay"
        assert not result.engine_fallback

    def test_explicit_step_engine_is_not_a_fallback(self):
        result = run_experiment(
            "shared-opt", MACHINE, 4, 4, 4, "lru", policy="plru", engine="step"
        )
        assert result.engine == "step"
        assert not result.engine_fallback

    def test_strict_engine_raises_on_unsupported_config(self):
        with pytest.raises(ConfigurationError, match="strict_engine"):
            run_experiment(
                "shared-opt",
                MACHINE,
                4,
                4,
                4,
                "ideal",
                check=True,
                strict_engine=True,
            )

    def test_fallback_is_bit_identical_to_explicit_step(self):
        via_fallback = run_experiment(
            "shared-opt", MACHINE, 4, 4, 4, "lru", policy="plru"
        )
        explicit = run_experiment(
            "shared-opt", MACHINE, 4, 4, 4, "lru", policy="plru", engine="step"
        )
        assert via_fallback.stats == explicit.stats
        assert via_fallback.engine_fallback and not explicit.engine_fallback


class TestWarnOnce:
    def test_repeated_configuration_warns_once(self, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.sim.runner"):
            run_experiment("shared-opt", MACHINE, 4, 4, 4, "lru", inclusive=True)
            run_experiment("shared-opt", MACHINE, 6, 6, 6, "lru", inclusive=True)
        warned = fallback_warnings(caplog)
        assert len(warned) == 1
        assert "strict_engine=True" in warned[0].getMessage()

    def test_distinct_configurations_each_warn(self, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.sim.runner"):
            run_experiment("shared-opt", MACHINE, 4, 4, 4, "lru", inclusive=True)
            run_experiment("shared-opt", MACHINE, 4, 4, 4, "lru", policy="plru")
        assert len(fallback_warnings(caplog)) == 2

    def test_reset_rearms_the_warning(self, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.sim.runner"):
            run_experiment("shared-opt", MACHINE, 4, 4, 4, "lru", inclusive=True)
            reset_fallback_warnings()
            run_experiment("shared-opt", MACHINE, 4, 4, 4, "lru", inclusive=True)
        assert len(fallback_warnings(caplog)) == 2


class TestSweeps:
    def test_order_sweep_warns_once_per_sweep(self, caplog):
        # Four cells (2 entries x 2 orders) share one fallback
        # configuration: exactly one warning for the whole sweep.
        entries = [("shared-opt", "lru"), ("outer-product", "lru")]
        with caplog.at_level(logging.WARNING, logger="repro.sim.runner"):
            order_sweep(entries, MACHINE, [4, 8], inclusive=True)
        assert len(fallback_warnings(caplog)) == 1

    def test_order_sweep_strict_engine_raises(self):
        with pytest.raises(ConfigurationError, match="strict_engine"):
            order_sweep(
                [("shared-opt", "lru")],
                MACHINE,
                [4],
                inclusive=True,
                strict_engine=True,
            )

    def test_parallel_sweep_counts_fallbacks_in_manifest(self):
        sweep = parallel_order_sweep(
            [("shared-opt", "lru")], MACHINE, [4, 8], policy="plru", workers=2
        )
        manifest = sweep.manifest
        assert manifest is not None
        assert manifest.engine_fallbacks == 2
        assert all(cell.engine_fallback for cell in manifest.cells)
        assert manifest.to_dict()["engine_fallbacks"] == 2

    def test_parallel_sweep_clean_run_counts_zero(self):
        sweep = parallel_order_sweep(
            [("shared-opt", "lru")], MACHINE, [4], workers=1
        )
        manifest = sweep.manifest
        assert manifest is not None
        assert manifest.engine_fallbacks == 0
        assert not any(cell.engine_fallback for cell in manifest.cells)


class TestSerde:
    def test_engine_telemetry_round_trips(self):
        result = run_experiment(
            "shared-opt", MACHINE, 4, 4, 4, "lru", inclusive=True
        )
        again = result_from_dict(result_to_dict(result))
        assert again.engine == "step"
        assert again.engine_fallback

    def test_legacy_payload_defaults_to_no_fallback(self):
        result = run_experiment("shared-opt", MACHINE, 4, 4, 4, "lru")
        payload = result_to_dict(result)
        payload.pop("engine", None)
        payload.pop("engine_fallback", None)
        again = result_from_dict(payload)
        assert again.engine_fallback is False
