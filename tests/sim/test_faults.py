"""Fault-injection tests for the sweep engine.

These are the teeth behind the engine's resilience claims: a crashed
worker, a hung cell and a transiently flaky cell are injected into real
process-pool sweeps and the engine must finish the sweep with exact,
explicit per-cell accounting — never abort.

Determinism notes: the exact-record tests run with ``workers=1`` and
``chunksize=1`` so a misbehaving cell can never charge an innocent
chunk-mate collaterally; the multi-worker test asserts statuses only
(collateral ``BrokenProcessPool`` charges are timing-dependent) and
compensates with generous retry budgets.
"""

import json
import os
import time

import pytest

from repro.exceptions import ConfigurationError
from repro.model.machine import MulticoreMachine
from repro.sim.faults import (
    FaultInjectionError,
    FaultSpec,
    dump_fault_plan,
    fault_plan_from_list,
    fault_plan_to_list,
    fire,
    load_fault_plan,
    stalls,
)
from repro.sim.parallel import parallel_order_sweep
from repro.sim.sweep import order_sweep

MACHINE = MulticoreMachine(p=4, cs=100, cd=21, q=8)
ENTRIES = [("shared-opt", "ideal"), ("outer-product", "lru")]


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="meltdown")

    def test_flaky_fires_then_recovers(self):
        spec = FaultSpec(kind="flaky", fail_attempts=2)
        with pytest.raises(FaultInjectionError):
            fire(spec, attempt=1)
        with pytest.raises(FaultInjectionError):
            fire(spec, attempt=2)
        fire(spec, attempt=3)  # must not raise

    def test_error_always_fires(self):
        spec = FaultSpec(kind="error")
        for attempt in (1, 5, 50):
            with pytest.raises(FaultInjectionError):
                fire(spec, attempt=attempt)

    def test_stall_sleeps_then_runs_clean(self):
        spec = FaultSpec(kind="stall", fail_attempts=1, stall_s=0.05)
        start = time.perf_counter()
        fire(spec, attempt=1)  # dawdles, does not raise
        assert time.perf_counter() - start >= 0.05
        start = time.perf_counter()
        fire(spec, attempt=2)  # past fail_attempts: no sleep
        assert time.perf_counter() - start < 0.05

    def test_stalls_predicate_tracks_fail_attempts(self):
        spec = FaultSpec(kind="stall", fail_attempts=2)
        assert stalls(spec, 1)
        assert stalls(spec, 2)
        assert not stalls(spec, 3)
        # Only stall suppresses heartbeats.
        assert not stalls(FaultSpec(kind="die", fail_attempts=2), 1)

    def test_die_past_fail_attempts_is_harmless(self):
        # attempt > fail_attempts must NOT kill this test process.
        fire(FaultSpec(kind="die", fail_attempts=1), attempt=2)


class TestFaultPlanSerde:
    PLAN = {
        ("shared-opt ideal", 0): FaultSpec(kind="die", fail_attempts=1),
        ("outer-product lru", 1): FaultSpec(
            kind="stall", fail_attempts=1, stall_s=2.5
        ),
    }

    def test_round_trip(self, tmp_path):
        path = tmp_path / "plan.json"
        dump_fault_plan(self.PLAN, path)
        assert load_fault_plan(path) == self.PLAN

    def test_documented_schema_shape(self):
        payload = fault_plan_to_list(self.PLAN)
        assert payload == sorted(payload, key=lambda e: (e["label"], e["index"]))
        for entry in payload:
            assert set(entry) == {
                "label", "index", "kind", "fail_attempts", "hang_s", "stall_s"
            }

    def test_defaults_applied_on_parse(self):
        plan = fault_plan_from_list([{"label": "a", "index": 0, "kind": "flaky"}])
        assert plan[("a", 0)] == FaultSpec(kind="flaky")

    @pytest.mark.parametrize(
        "payload, match",
        [
            ({"not": "a list"}, "must be a JSON list"),
            (["not an object"], "not an object"),
            ([{"label": "a", "index": 0}], "missing key"),
            ([{"label": 3, "index": 0, "kind": "error"}], "label must be"),
            ([{"label": "a", "index": "x", "kind": "error"}], "label must be"),
            ([{"label": "a", "index": 0, "kind": "meltdown"}], "unknown fault kind"),
            (
                [
                    {"label": "a", "index": 0, "kind": "error"},
                    {"label": "a", "index": 0, "kind": "crash"},
                ],
                "duplicates cell",
            ),
        ],
    )
    def test_malformed_plans_rejected(self, payload, match):
        with pytest.raises(ConfigurationError, match=match):
            fault_plan_from_list(payload)

    def test_unreadable_file_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            load_fault_plan(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            load_fault_plan(bad)


class TestFlakyCells:
    def test_flaky_cell_retries_to_success(self):
        label = "shared-opt ideal"
        sweep = parallel_order_sweep(
            ENTRIES,
            MACHINE,
            [4, 6],
            workers=1,
            chunksize=1,
            retries=2,
            backoff=0.01,
            fault_plan={(label, 0): FaultSpec(kind="flaky", fail_attempts=2)},
        )
        assert sweep.complete
        result = sweep.result(label, 0)
        assert result is not None
        assert result.attempts == 3  # two injected failures, then success
        record = next(
            c for c in sweep.manifest.cells if (c.label, c.index) == (label, 0)
        )
        assert record.status == "ok"
        assert record.attempts == 3
        # Everyone else succeeded first try.
        assert all(
            c.attempts == 1
            for c in sweep.manifest.cells
            if (c.label, c.index) != (label, 0)
        )

    def test_flaky_results_match_serial(self):
        label = "outer-product lru"
        serial = order_sweep(ENTRIES, MACHINE, [4, 6])
        sweep = parallel_order_sweep(
            ENTRIES,
            MACHINE,
            [4, 6],
            workers=1,
            chunksize=1,
            retries=1,
            backoff=0.01,
            fault_plan={(label, 1): FaultSpec(kind="flaky", fail_attempts=1)},
        )
        for lab in serial.labels():
            assert sweep.values(lab, "ms") == serial.values(lab, "ms")
            assert sweep.values(lab, "tdata") == serial.values(lab, "tdata")


class TestPermanentFailures:
    def test_error_cell_becomes_failure_record(self):
        label = "shared-opt ideal"
        sweep = parallel_order_sweep(
            ENTRIES,
            MACHINE,
            [4, 6],
            workers=1,
            chunksize=1,
            retries=1,
            backoff=0.01,
            fault_plan={(label, 1): FaultSpec(kind="error")},
        )
        assert not sweep.complete
        assert sweep.result(label, 1) is None
        failed = sweep.failed_cells()
        assert [(r.label, r.index) for r in failed] == [(label, 1)]
        record = failed[0]
        assert record.status == "failed"
        assert record.error_type == "FaultInjectionError"
        assert record.attempts == 2  # 1 + retries
        assert sweep.cell_counts() == {"ok": 3, "failed": 1, "skipped": 0}
        # Dense-series access names the failed cell instead of crashing
        # cryptically downstream.
        with pytest.raises(ValueError, match="inspect SweepResult.failures"):
            sweep.values(label, "ms")
        # The untouched series stays fully usable.
        assert len(sweep.values("outer-product lru", "ms")) == 2


class TestCrashes:
    def test_crash_cell_does_not_abort_sweep(self):
        label = "outer-product lru"
        sweep = parallel_order_sweep(
            ENTRIES,
            MACHINE,
            [4, 6],
            workers=1,
            chunksize=1,
            retries=1,
            backoff=0.01,
            fault_plan={(label, 0): FaultSpec(kind="crash")},
        )
        failed = sweep.failed_cells()
        assert [(r.label, r.index) for r in failed] == [(label, 0)]
        assert failed[0].error_type == "BrokenProcessPool"
        assert failed[0].attempts == 2
        # Every crash costs one pool: initial attempt + one retry.
        assert sweep.manifest.pool_rebuilds == 2
        assert sweep.cell_counts() == {"ok": 3, "failed": 1, "skipped": 0}
        assert len(sweep.values("shared-opt ideal", "ms")) == 2


class TestHangs:
    def test_hang_cell_times_out(self):
        label = "shared-opt ideal"
        sweep = parallel_order_sweep(
            ENTRIES,
            MACHINE,
            [4, 6],
            workers=1,
            chunksize=1,
            retries=0,
            cell_timeout=1.0,
            backoff=0.01,
            fault_plan={(label, 0): FaultSpec(kind="hang", hang_s=60.0)},
        )
        failed = sweep.failed_cells()
        assert [(r.label, r.index) for r in failed] == [(label, 0)]
        assert failed[0].error_type == "TimeoutError"
        assert failed[0].attempts == 1
        assert sweep.manifest.pool_rebuilds == 1
        assert sweep.cell_counts() == {"ok": 3, "failed": 1, "skipped": 0}


class TestCombined:
    def test_crash_hang_and_flaky_in_one_sweep(self, tmp_path):
        """The acceptance scenario: all three fault kinds in one
        multi-worker sweep; the sweep completes with correct records."""
        crash = ("shared-opt ideal", 0)
        hang = ("shared-opt ideal", 2)
        flaky = ("outer-product lru", 1)
        manifest_path = os.environ.get(
            "REPRO_FAULT_MANIFEST", str(tmp_path / "manifest.json")
        )
        serial = order_sweep(ENTRIES, MACHINE, [4, 6, 8])
        sweep = parallel_order_sweep(
            ENTRIES,
            MACHINE,
            [4, 6, 8],
            workers=2,
            chunksize=1,
            retries=3,
            cell_timeout=1.0,
            backoff=0.01,
            manifest_path=manifest_path,
            fault_plan={
                crash: FaultSpec(kind="crash"),
                hang: FaultSpec(kind="hang", hang_s=60.0),
                flaky: FaultSpec(kind="flaky", fail_attempts=1),
            },
        )
        records = {(c.label, c.index): c for c in sweep.manifest.cells}
        assert records[crash].status == "failed"
        assert records[crash].error_type == "BrokenProcessPool"
        assert records[hang].status == "failed"
        # The hang normally ends as TimeoutError, but if it was in
        # flight at the instant the crasher killed the pool its *last*
        # charge is the collateral BrokenProcessPool — both are correct.
        assert records[hang].error_type in ("TimeoutError", "BrokenProcessPool")
        assert records[flaky].status == "ok"
        assert records[flaky].attempts >= 2
        # Every cell without an injected permanent fault produced a
        # result identical to the serial sweep.
        for lab in serial.labels():
            for index, expected in enumerate(serial.series[lab]):
                if (lab, index) in (crash, hang):
                    assert sweep.result(lab, index) is None
                    continue
                actual = sweep.result(lab, index)
                assert actual is not None
                assert actual.stats == expected.stats
                assert actual.comp == expected.comp
        counts = sweep.cell_counts()
        assert counts["ok"] == 4 and counts["failed"] == 2
        # The JSON manifest on disk mirrors the in-memory accounting.
        on_disk = json.loads(open(manifest_path).read())
        assert on_disk["schema"] == 3  # v3 added the optional fabric block
        assert on_disk["cell_counts"] == {"ok": 4, "failed": 2, "skipped": 0}
        assert on_disk["engine"]["pool_rebuilds"] >= 2
        assert len(on_disk["cells"]) == 6
        assert on_disk["workers"], "worker utilization stats must be recorded"


class TestSerialFallback:
    def test_pool_unavailable_falls_back_to_serial(self):
        def no_pool(**_kwargs):
            raise OSError("no processes for you")

        serial = order_sweep(ENTRIES, MACHINE, [4, 6])
        sweep = parallel_order_sweep(
            ENTRIES,
            MACHINE,
            [4, 6],
            workers=2,
            pool_factory=no_pool,
        )
        assert sweep.complete
        assert sweep.manifest.serial_fallback
        for lab in serial.labels():
            assert sweep.values(lab, "ms") == serial.values(lab, "ms")

    def test_fallback_skips_suspected_worker_killers(self):
        """A crasher kills the first pool; the rebuild fails; the
        in-process fallback must run the innocent cells and *skip* the
        crasher rather than risk the host process."""
        built = []

        def one_shot_factory(**kwargs):
            if built:
                raise OSError("pool budget exhausted")
            from concurrent.futures import ProcessPoolExecutor

            built.append(True)
            return ProcessPoolExecutor(**kwargs)

        crash = ("outer-product lru", 0)
        sweep = parallel_order_sweep(
            ENTRIES,
            MACHINE,
            [4, 6],
            workers=1,
            chunksize=1,
            retries=2,
            backoff=0.01,
            fault_plan={crash: FaultSpec(kind="crash")},
            pool_factory=one_shot_factory,
        )
        assert sweep.manifest.serial_fallback
        skipped = sweep.skipped_cells()
        assert [(r.label, r.index) for r in skipped] == [crash]
        assert skipped[0].status == "skipped"
        assert "crashed or hung" in skipped[0].error
        # All innocent cells still produced results.
        assert sweep.cell_counts() == {"ok": 3, "failed": 0, "skipped": 1}

    def test_no_fallback_marks_cells_skipped(self):
        def no_pool(**_kwargs):
            raise OSError("nope")

        sweep = parallel_order_sweep(
            ENTRIES,
            MACHINE,
            [4],
            workers=2,
            serial_fallback=False,
            pool_factory=no_pool,
        )
        assert not sweep.complete
        counts = sweep.cell_counts()
        assert counts == {"ok": 0, "failed": 0, "skipped": 2}
