"""Kernel/trace-source telemetry: who evaluated a cell, from what.

``ExperimentResult.kernel`` names the evaluation path (``bulk-lru``,
``bulk-fifo``, ``ideal``, ``step``) and ``trace_source`` where the
compiled trace came from (``compiled``/``memory``/``disk``/
``streamed``).  These tests pin the values across engines and the
streaming threshold, their serde round-trip (including legacy payloads
without the fields), and their mirroring onto sweep manifests.
"""

import pytest

from repro.cache.replay import clear_trace_cache, configure_trace_tier, trace_tier_root
from repro.model.machine import PRESETS
from repro.sim.runner import reset_fallback_warnings, run_experiment
from repro.sim.telemetry import CellRecord
from repro.store.serde import result_from_dict, result_to_dict

MACHINE = PRESETS["q32"]


@pytest.fixture(autouse=True)
def _fresh_state():
    # Earlier tests may leave a process-global trace tier configured
    # (e.g. an in-process fabric worker adopting its coordinator's run
    # dir); these tests pin trace_source, so they must start tierless.
    previous_tier = trace_tier_root()
    configure_trace_tier(None)
    clear_trace_cache()
    reset_fallback_warnings()
    yield
    configure_trace_tier(previous_tier)
    clear_trace_cache()
    reset_fallback_warnings()


class TestRunnerTelemetry:
    def test_lru_replay_reports_bulk_kernel(self):
        result = run_experiment("shared-opt", MACHINE, 4, 4, 4, "lru-50")
        assert result.kernel == "bulk-lru"
        assert result.trace_source == "compiled"

    def test_fifo_replay_reports_bulk_kernel(self):
        result = run_experiment(
            "shared-opt", MACHINE, 4, 4, 4, "lru-50", policy="fifo"
        )
        assert result.kernel == "bulk-fifo"

    def test_memoized_trace_reports_memory_source(self):
        run_experiment("shared-opt", MACHINE, 4, 4, 4, "lru-50")
        warm = run_experiment(
            "shared-opt", MACHINE, 4, 4, 4, "lru-50", policy="fifo"
        )
        assert warm.trace_source == "memory"

    def test_ideal_replay_reports_ideal_kernel(self):
        result = run_experiment("shared-opt", MACHINE, 4, 4, 4, "ideal")
        assert result.kernel == "ideal"

    def test_step_engine_reports_step_kernel(self):
        result = run_experiment(
            "shared-opt", MACHINE, 4, 4, 4, "lru-50", engine="step"
        )
        assert result.kernel == "step"
        assert result.trace_source == ""


class TestStreamingThreshold:
    def test_large_lru_cell_streams(self, monkeypatch):
        monkeypatch.setenv("REPRO_STREAM_FMAS", "10")
        result = run_experiment("shared-opt", MACHINE, 4, 4, 4, "lru-50")
        assert result.kernel == "bulk-lru"
        assert result.trace_source == "streamed"
        baseline = run_experiment(
            "shared-opt", MACHINE, 4, 4, 4, "lru-50", engine="step"
        )
        assert result.stats == baseline.stats

    def test_large_ideal_cell_falls_back_to_step(self, monkeypatch):
        monkeypatch.setenv("REPRO_STREAM_FMAS", "10")
        result = run_experiment("shared-opt", MACHINE, 4, 4, 4, "ideal")
        assert result.engine == "step"
        assert result.engine_fallback
        baseline = run_experiment(
            "shared-opt", MACHINE, 4, 4, 4, "ideal", engine="step"
        )
        assert result.stats == baseline.stats


class TestSerde:
    def test_kernel_telemetry_round_trips(self):
        result = run_experiment("shared-opt", MACHINE, 4, 4, 4, "lru-50")
        again = result_from_dict(result_to_dict(result))
        assert again.kernel == "bulk-lru"
        assert again.trace_source == "compiled"

    def test_legacy_payload_defaults_to_empty(self):
        result = run_experiment("shared-opt", MACHINE, 4, 4, 4, "lru-50")
        payload = result_to_dict(result)
        payload.pop("kernel", None)
        payload.pop("trace_source", None)
        again = result_from_dict(payload)
        assert again.kernel == ""
        assert again.trace_source == ""


class TestCellRecord:
    def test_to_dict_emits_only_when_known(self):
        bare = CellRecord(label="a", index=0, x=4)
        assert "kernel" not in bare.to_dict()
        assert "trace_source" not in bare.to_dict()
        known = CellRecord(
            label="a", index=0, x=4, kernel="bulk-lru", trace_source="disk"
        )
        d = known.to_dict()
        assert d["kernel"] == "bulk-lru"
        assert d["trace_source"] == "disk"
