"""Tests for the analytical timing model."""

import pytest

from repro.exceptions import ConfigurationError
from repro.model.machine import MulticoreMachine
from repro.sim.runner import run_experiment
from repro.sim.timing import TimingModel

MACHINE = MulticoreMachine(p=4, cs=100, cd=21, sigma_s=2.0, sigma_d=1.0, q=8)


@pytest.fixture(scope="module")
def result():
    return run_experiment("shared-opt", MACHINE, 8, 8, 8, "ideal", lam=4)


class TestEstimates:
    def test_zero_tau_recovers_tdata_under_serialization(self, result):
        est = TimingModel(tau=0.0).estimate(result)
        # with tau=0 and balanced cores, serial == MS/σS + MD/σD == Tdata
        assert est.serial == pytest.approx(result.tdata)

    def test_component_times(self, result):
        est = TimingModel(tau=0.5).estimate(result)
        assert est.shared_time == pytest.approx(result.ms / 2.0)
        assert est.distributed_time == pytest.approx(result.md / 1.0)
        assert est.compute_time == pytest.approx(max(result.comp) * 0.5)

    def test_overlap_never_slower(self, result):
        for tau in (0.0, 0.1, 1.0, 10.0):
            est = TimingModel(tau=tau).estimate(result)
            assert est.overlapped <= est.serial
            assert est.overlap_speedup >= 1.0

    def test_overlapped_is_max_of_components(self, result):
        est = TimingModel(tau=2.0).estimate(result)
        assert est.overlapped == pytest.approx(
            max(est.shared_time, est.distributed_time, est.compute_time)
        )

    def test_serial_monotone_in_tau(self, result):
        times = [TimingModel(tau=t).estimate(result).serial for t in (0, 0.5, 1, 2)]
        assert times == sorted(times)

    def test_negative_tau_rejected(self):
        with pytest.raises(ConfigurationError):
            TimingModel(tau=-1.0)


class TestBoundClassification:
    def test_bound_resource_switches_with_tau(self, result):
        assert TimingModel(tau=0.0).estimate(result).bound_resource in (
            "shared",
            "distributed",
        )
        assert TimingModel(tau=1000.0).estimate(result).bound_resource == "compute"

    def test_is_compute_bound(self, result):
        assert not TimingModel(tau=0.0).is_compute_bound(result)
        assert TimingModel(tau=1000.0).is_compute_bound(result)

    def test_machine_balance_and_intensity(self, result):
        model = TimingModel(tau=0.5)
        assert model.machine_balance_shared(result) == pytest.approx(1 / (2.0 * 0.5))
        assert TimingModel.intensity_shared(result) == pytest.approx(
            result.comp_total / result.ms
        )
        assert TimingModel(tau=0.0).machine_balance_shared(result) == float("inf")

    def test_shared_opt_has_higher_shared_intensity_than_outer(self):
        """The whole point of the paper, restated as arithmetic intensity:
        Maximum Reuse raises multiply-adds per shared fill."""
        so = run_experiment("shared-opt", MACHINE, 18, 18, 18, "ideal")
        op = run_experiment("outer-product", MACHINE, 18, 18, 18, "ideal")
        assert TimingModel.intensity_shared(so) > 3 * TimingModel.intensity_shared(op)
