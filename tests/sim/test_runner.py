"""Tests for the experiment runner."""

import pytest

from repro.algorithms.shared_opt import SharedOpt
from repro.exceptions import ScheduleError
from repro.sim.runner import run_experiment


class TestRunExperiment:
    def test_accepts_name_or_class(self, quad):
        by_name = run_experiment("shared-opt", quad, 8, 8, 8, "ideal", lam=4)
        by_class = run_experiment(SharedOpt, quad, 8, 8, 8, "ideal", lam=4)
        assert by_name.ms == by_class.ms

    def test_result_fields(self, quad):
        r = run_experiment("shared-opt", quad, 8, 8, 8, "ideal", lam=4)
        assert r.algorithm == "shared-opt"
        assert r.setting == "ideal"
        assert (r.m, r.n, r.z) == (8, 8, 8)
        assert r.parameters == {"lambda": 4}
        assert r.comp_total == 512
        assert r.elapsed_s > 0
        assert r.predicted is not None

    def test_tdata_uses_machine_bandwidths(self, quad):
        from dataclasses import replace

        fast_shared = replace(quad, sigma_s=10.0, sigma_d=1.0)
        r = run_experiment("shared-opt", fast_shared, 8, 8, 8, "ideal", lam=4)
        assert r.tdata == pytest.approx(r.ms / 10.0 + r.md / 1.0)

    def test_ccrs(self, quad):
        r = run_experiment("shared-opt", quad, 8, 8, 8, "ideal", lam=4)
        assert r.ccr_s == pytest.approx(r.ms / 512)
        assert r.ccr_d == pytest.approx(r.md / (512 / 4))

    def test_to_row_flat(self, quad):
        row = run_experiment("shared-opt", quad, 8, 8, 8, "ideal", lam=4).to_row()
        assert row["MS"] > 0
        assert row["param_lambda"] == 4
        assert "MS_pred" in row

    def test_lru50_declares_half(self, quad):
        # CS=100 -> declared 50 -> lambda becomes 6 instead of 9
        r = run_experiment("shared-opt", quad, 12, 12, 12, "lru-50")
        assert r.parameters["lambda"] == 6

    def test_lru2x_simulates_double(self, quad):
        r_1x = run_experiment("shared-opt", quad, 16, 16, 16, "lru")
        r_2x = run_experiment("shared-opt", quad, 16, 16, 16, "lru-2x")
        assert r_2x.ms <= r_1x.ms  # bigger cache can only help (LRU stack property)
        assert r_2x.parameters == r_1x.parameters  # same declared plan

    def test_comp_verification_catches_bad_schedule(self, quad):
        class Lazy(SharedOpt):
            name = "lazy"

            def run(self, ctx):  # emits nothing
                return

        with pytest.raises(ScheduleError):
            run_experiment(Lazy, quad, 4, 4, 4, "ideal")

    def test_fifo_policy_plumbs_through(self, quad):
        r = run_experiment("shared-opt", quad, 8, 8, 8, "lru", policy="fifo")
        assert r.ms > 0

    def test_inclusive_plumbs_through(self, quad):
        r = run_experiment("shared-opt", quad, 8, 8, 8, "lru", inclusive=True)
        assert r.ms > 0
