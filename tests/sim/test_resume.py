"""Durability tests: kill a sweep, resume it, get identical results.

The run store's contract has three teeth, each with its own test class:

* **Kill-and-resume** — a sweep SIGKILLed mid-run (a real subprocess,
  a real ``kill -9``) resumes re-executing *only* the incomplete
  cells, and the resumed ``SweepResult`` is bit-identical to an
  uninterrupted serial run.
* **Corruption** — an injected checksum flip forces a recompute of
  exactly the quarantined cell; everything else replays from the log.
* **Graceful signals** — SIGTERM during a run drains in-flight work,
  flushes the checkpoint and records the interruption; a subsequent
  resume finishes the sweep.

The bit-identical assertions compare simulated state (stats, comp,
parameters) like the existing parallel-engine tests do; telemetry such
as wall times is legitimately different across runs.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import textwrap
import threading
import time
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.model.machine import MulticoreMachine
from repro.sim.faults import FaultSpec
from repro.sim.parallel import parallel_order_sweep
from repro.sim.sweep import order_sweep
from repro.store import RunStore, STATUS_COMPLETE, STATUS_INTERRUPTED

MACHINE = MulticoreMachine(p=4, cs=100, cd=21, q=8)
ENTRIES = [("shared-opt", "ideal"), ("outer-product", "lru")]
ORDERS = [4, 6, 8]
REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def assert_bit_identical(sweep, serial):
    """The resumed sweep's simulated state must equal the serial run's."""
    assert sweep.xs == serial.xs
    assert set(sweep.labels()) == set(serial.labels())
    for label in serial.labels():
        for point, spoint in zip(sweep.series[label], serial.series[label]):
            assert point is not None
            assert point.stats == spoint.stats
            assert point.comp == spoint.comp
            assert point.parameters == spoint.parameters


class TestResumeBasics:
    def test_fresh_run_writes_store(self, tmp_path):
        run_dir = tmp_path / "run"
        sweep = parallel_order_sweep(
            ENTRIES, MACHINE, ORDERS, workers=1, run_dir=run_dir
        )
        assert sweep.complete
        store = RunStore(run_dir)
        meta = store.load_meta()
        assert meta is not None
        assert meta["status"] == STATUS_COMPLETE
        assert len(store.load_checkpoint().ok_records()) == 6
        assert store.manifest_path.exists()
        manifest = json.loads(store.manifest_path.read_text())
        assert manifest["resumed_cells"] == 0

    def test_full_resume_skips_all_dispatch(self, tmp_path):
        run_dir = tmp_path / "run"
        parallel_order_sweep(ENTRIES, MACHINE, ORDERS, workers=1, run_dir=run_dir)
        resumed = parallel_order_sweep(
            ENTRIES, MACHINE, ORDERS, workers=1, run_dir=run_dir, resume=True
        )
        assert resumed.complete
        assert resumed.manifest is not None
        assert resumed.manifest.resumed_cells == 6
        assert all(cell.resumed for cell in resumed.manifest.cells)
        assert_bit_identical(resumed, order_sweep(ENTRIES, MACHINE, ORDERS))
        meta = RunStore(run_dir).load_meta()
        assert meta is not None
        assert meta["resumes"] == 1

    def test_resume_requires_run_dir(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="resume"):
            parallel_order_sweep(ENTRIES, MACHINE, [4], workers=1, resume=True)

    def test_resume_reruns_failed_cells(self, tmp_path):
        # First run: one cell fails terminally (error fault, no retries
        # left).  Resume without the fault: only that cell re-runs.
        run_dir = tmp_path / "run"
        label = "shared-opt ideal"
        first = parallel_order_sweep(
            ENTRIES,
            MACHINE,
            ORDERS,
            workers=1,
            chunksize=1,
            retries=0,
            run_dir=run_dir,
            fault_plan={(label, 1): FaultSpec(kind="error")},
        )
        assert not first.complete
        assert [(r.label, r.x) for r in first.failures] == [(label, 6)]
        resumed = parallel_order_sweep(
            ENTRIES, MACHINE, ORDERS, workers=1, run_dir=run_dir, resume=True
        )
        assert resumed.complete
        assert resumed.manifest is not None
        assert resumed.manifest.resumed_cells == 5
        assert_bit_identical(resumed, order_sweep(ENTRIES, MACHINE, ORDERS))


class TestKillAndResume:
    CHILD = textwrap.dedent(
        """
        from repro.model.machine import MulticoreMachine
        from repro.sim.faults import FaultSpec
        from repro.sim.parallel import parallel_order_sweep

        machine = MulticoreMachine(p=4, cs=100, cd=21, q=8)
        parallel_order_sweep(
            [("shared-opt", "ideal"), ("outer-product", "lru")],
            machine,
            [4, 6, 8],
            workers=1,
            chunksize=1,
            run_dir={run_dir!r},
            # The last cell hangs forever: the child is guaranteed to be
            # alive, mid-sweep, with every earlier cell checkpointed.
            fault_plan={{("outer-product lru", 2): FaultSpec(kind="hang")}},
        )
        """
    )

    def test_sigkill_then_resume_is_bit_identical(self, tmp_path):
        run_dir = tmp_path / "run"
        env = dict(os.environ, PYTHONPATH=REPO_SRC)
        child = subprocess.Popen(
            [sys.executable, "-c", self.CHILD.format(run_dir=str(run_dir))],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            # Wait until the five non-hanging cells are all checkpointed.
            checkpoint = run_dir / "checkpoint.jsonl"
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if child.poll() is not None:
                    pytest.fail("child sweep exited before it was killed")
                if (
                    checkpoint.exists()
                    and len(RunStore(run_dir).load_checkpoint().ok_records()) >= 5
                ):
                    break
                time.sleep(0.05)
            else:
                pytest.fail("child never checkpointed its first five cells")
            child.kill()  # SIGKILL: no handlers, no flushes, no mercy
            child.wait(timeout=30)
        finally:
            if child.poll() is None:
                child.kill()
                child.wait(timeout=30)

        audit = RunStore(run_dir).audit()
        assert audit.ok  # torn tail at worst — never corruption
        assert len(audit.checkpoint.ok_records()) >= 5

        resumed = parallel_order_sweep(
            ENTRIES, MACHINE, ORDERS, workers=1, run_dir=run_dir, resume=True
        )
        assert resumed.complete
        assert resumed.manifest is not None
        assert resumed.manifest.resumed_cells >= 5
        recomputed = 6 - resumed.manifest.resumed_cells
        assert recomputed >= 1  # the hung cell never reached the log
        assert resumed.manifest.counts() == {"ok": 6, "failed": 0, "skipped": 0}
        assert_bit_identical(resumed, order_sweep(ENTRIES, MACHINE, ORDERS))
        # The run directory now audits clean end to end.
        final = RunStore(run_dir).audit()
        assert final.ok
        meta = RunStore(run_dir).load_meta()
        assert meta is not None
        assert meta["status"] == STATUS_COMPLETE


class TestResumeProperty:
    @given(keep=st.integers(min_value=0, max_value=6))
    @settings(max_examples=6, deadline=None)
    def test_any_checkpoint_prefix_resumes_bit_identical(self, keep):
        # Property: whatever prefix of the checkpoint survives a crash,
        # resuming completes the sweep with results bit-identical to an
        # uninterrupted serial run.  (TemporaryDirectory, not tmp_path:
        # function-scoped fixtures don't reset across hypothesis examples.)
        serial = order_sweep(ENTRIES, MACHINE, ORDERS)
        with tempfile.TemporaryDirectory() as tmp:
            run_dir = Path(tmp) / "run"
            parallel_order_sweep(
                ENTRIES, MACHINE, ORDERS, workers=1, chunksize=1, run_dir=run_dir
            )
            checkpoint = run_dir / "checkpoint.jsonl"
            lines = checkpoint.read_text().splitlines(keepends=True)
            assert len(lines) == 6
            checkpoint.write_text("".join(lines[:keep]))
            resumed = parallel_order_sweep(
                ENTRIES, MACHINE, ORDERS, workers=1, run_dir=run_dir, resume=True
            )
            assert resumed.complete
            assert resumed.manifest is not None
            assert resumed.manifest.resumed_cells == keep
            assert_bit_identical(resumed, serial)


class TestCorruptionRecompute:
    def test_quarantined_cell_recomputed_exactly(self, tmp_path):
        run_dir = tmp_path / "run"
        parallel_order_sweep(
            ENTRIES, MACHINE, ORDERS, workers=1, chunksize=1, run_dir=run_dir
        )
        checkpoint = run_dir / "checkpoint.jsonl"
        lines = checkpoint.read_text().splitlines()
        record = json.loads(lines[2])
        record["attempts"] = 99  # flip a field without resealing
        lines[2] = json.dumps(record, separators=(",", ":"))
        checkpoint.write_text("\n".join(lines) + "\n")

        audit = RunStore(run_dir).audit()
        assert not audit.ok
        assert any("checksum mismatch" in e for e in audit.errors)

        resumed = parallel_order_sweep(
            ENTRIES, MACHINE, ORDERS, workers=1, run_dir=run_dir, resume=True
        )
        assert resumed.complete
        assert resumed.manifest is not None
        assert resumed.manifest.quarantined_records == 1
        assert resumed.manifest.resumed_cells == 5  # all but the bad record
        assert_bit_identical(resumed, order_sweep(ENTRIES, MACHINE, ORDERS))
        # The recompute re-appended a sealed record: the log audits clean.
        assert RunStore(run_dir).audit().ok


class TestGracefulSignals:
    def test_sigterm_drains_flushes_and_resumes(self, tmp_path):
        run_dir = tmp_path / "run"
        label = "outer-product lru"
        timer = threading.Timer(1.0, os.kill, (os.getpid(), signal.SIGTERM))
        timer.start()
        try:
            sweep = parallel_order_sweep(
                ENTRIES,
                MACHINE,
                ORDERS,
                workers=1,
                chunksize=1,
                run_dir=run_dir,
                drain_grace_s=0.5,
                # One cell hangs: the signal always lands mid-sweep.
                fault_plan={(label, 2): FaultSpec(kind="hang")},
            )
        finally:
            timer.cancel()
        assert sweep.interrupted == "SIGTERM"
        assert not sweep.complete
        assert sweep.manifest is not None
        assert sweep.manifest.interrupted == "SIGTERM"
        counts = sweep.manifest.counts()
        assert counts["ok"] >= 1  # pre-signal cells were checkpointed
        assert counts["ok"] + counts["failed"] + counts["skipped"] == 6
        interrupted = [
            c for c in sweep.manifest.cells if c.error_type == "Interrupted"
        ]
        assert interrupted  # undispatched cells are explicitly skipped

        store = RunStore(run_dir)
        meta = store.load_meta()
        assert meta is not None
        assert meta["status"] == STATUS_INTERRUPTED
        assert store.manifest_path.exists()  # partial manifest was written

        resumed = parallel_order_sweep(
            ENTRIES, MACHINE, ORDERS, workers=1, run_dir=run_dir, resume=True
        )
        assert resumed.complete
        assert resumed.manifest is not None
        assert resumed.manifest.resumed_cells == counts["ok"]
        assert_bit_identical(resumed, order_sweep(ENTRIES, MACHINE, ORDERS))


class TestEngineAgnosticFingerprints:
    def test_resume_across_engines_replays_checkpoints(self, tmp_path):
        """A run checkpointed under one engine resumes under the other.

        Cell fingerprints exclude the engine knob (counters are
        bit-identical by contract), so switching engines must not force
        any recomputation — the resumed sweep replays every cell.
        """
        run_dir = tmp_path / "run"
        parallel_order_sweep(
            ENTRIES, MACHINE, ORDERS, workers=1, run_dir=run_dir, engine="step"
        )
        resumed = parallel_order_sweep(
            ENTRIES,
            MACHINE,
            ORDERS,
            workers=1,
            run_dir=run_dir,
            resume=True,
            engine="replay",
        )
        assert resumed.manifest.resumed_cells == len(ENTRIES) * len(ORDERS)
        serial = order_sweep(ENTRIES, MACHINE, ORDERS)
        assert_bit_identical(resumed, serial)
