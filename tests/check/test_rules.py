"""Tests for the rule registry, config and inline suppressions."""

from pathlib import Path

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.check.findings import ERROR, WARNING, Finding
from repro.check.lint import FileProfile, scan_source
from repro.check.rules import (
    REGISTRY,
    Rule,
    RuleConfig,
    RuleRegistry,
    SuppressionIndex,
    filter_findings,
    parse_suppressions,
)

ALL_IDS = sorted(r.id for r in REGISTRY.all())

# Built by concatenation so the scanner (which also lints this test
# file) does not read the fixture literals as live waivers.
NOQA = "# repro: " + "noqa"


class TestRegistry:
    def test_every_rule_id_is_family_slash_name(self):
        for rule in REGISTRY.all():
            family, _, short = rule.id.partition("/")
            assert family and short, rule.id

    def test_known_families_present(self):
        families = REGISTRY.families()
        for family in (
            "lint", "determinism", "purity", "meta", "capacity", "presence",
            "coverage", "race", "cost", "gap", "engine", "schedule",
        ):
            assert family in families

    def test_new_analyzer_rules_registered(self):
        assert "purity/knob-in-fingerprint" in REGISTRY
        assert "determinism/wall-clock" in REGISTRY
        assert "determinism/set-order" in REGISTRY
        assert "meta/unused-suppression" in REGISTRY

    def test_all_sorted_and_metadata_complete(self):
        rules = REGISTRY.all()
        assert [r.id for r in rules] == sorted(r.id for r in rules)
        for rule in rules:
            assert rule.severity in (ERROR, WARNING)
            assert rule.help
            assert rule.enabled is True  # no rule ships disabled today

    def test_duplicate_registration_rejected(self):
        registry = RuleRegistry()
        registry.register(Rule("x/one", ERROR, "h", "lint"))
        with pytest.raises(ValueError, match="duplicate"):
            registry.register(Rule("x/one", ERROR, "h", "lint"))

    def test_malformed_rule_rejected(self):
        with pytest.raises(ValueError, match="family/short-name"):
            Rule("no-slash", ERROR, "h", "lint")
        with pytest.raises(ValueError, match="severity"):
            Rule("a/b", "fatal", "h", "lint")
        with pytest.raises(ValueError, match="tier"):
            Rule("a/b", ERROR, "h", "nope")


class TestRuleConfig:
    def test_default_follows_registered_enabled(self):
        config = RuleConfig()
        assert config.allows("lint/dead-branch")
        assert config.allows("determinism/rng")

    def test_family_disable(self):
        config = RuleConfig(disabled=("determinism",))
        assert not config.allows("determinism/rng")
        assert not config.allows("determinism/wall-clock")
        assert config.allows("lint/dead-branch")

    def test_exact_id_beats_family(self):
        config = RuleConfig(
            enabled=("determinism/rng",), disabled=("determinism",)
        )
        assert config.allows("determinism/rng")
        assert not config.allows("determinism/wall-clock")
        config = RuleConfig(
            enabled=("determinism",), disabled=("determinism/rng",)
        )
        assert not config.allows("determinism/rng")
        assert config.allows("determinism/wall-clock")

    def test_unknown_dynamic_ids_always_allowed(self):
        # FindingLimiter emits dynamic `<analyzer>/suppressed` markers.
        assert RuleConfig().allows("presence/suppressed")

    def test_from_selectors_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown rule"):
            RuleConfig.from_selectors(enable=["nope/never"])
        with pytest.raises(ValueError, match="unknown rule"):
            RuleConfig.from_selectors(disable=["not-a-family"])
        config = RuleConfig.from_selectors(
            enable=["lint"], disable=["determinism/rng"]
        )
        assert config.enabled == ("lint",)

    def test_filter_findings(self):
        findings = [
            Finding("lint", ERROR, "a", rule="lint/dead-branch"),
            Finding("determinism", ERROR, "b", rule="determinism/rng"),
        ]
        kept = filter_findings(findings, RuleConfig(disabled=("determinism",)))
        assert [f.rule_id for f in kept] == ["lint/dead-branch"]


class TestSuppressionParsing:
    def test_basic_parse(self):
        src = f"x = 1\ny = hash(k)  {NOQA}[determinism/hash-in-key]\n"
        (sup,) = parse_suppressions(src, "m.py")
        assert sup.line == 2
        assert sup.rule_ids == ("determinism/hash-in-key",)
        assert sup.justification == ""

    def test_justification_and_multiple_ids(self):
        src = (
            f"z = f()  {NOQA}[determinism/rng, determinism/wall-clock]"
            " -- seeded fixture\n"
        )
        (sup,) = parse_suppressions(src, "m.py")
        assert sup.rule_ids == ("determinism/rng", "determinism/wall-clock")
        assert sup.justification == "seeded fixture"

    def test_documentation_mention_is_not_a_waiver(self):
        # Prose explaining the syntax must not register as suppression.
        src = 'HELP = "use # repro: noqa[rule-id] to waive"\n'
        assert parse_suppressions(src, "m.py") == []
        src = "# the syntax is `# repro: noqa[<rule-id>]`\n"
        assert parse_suppressions(src, "m.py") == []


class TestSuppressionIndex:
    def _finding(self, rule, line):
        return Finding(
            rule.split("/")[0], ERROR, "msg", location=f"m.py:{line}", rule=rule
        )

    def test_filter_matches_line_and_rule(self):
        src = f"a\nb  {NOQA}[lint/dead-branch]\nc\n"
        index = SuppressionIndex.from_source(src, "m.py")
        hit = self._finding("lint/dead-branch", 2)
        wrong_line = self._finding("lint/dead-branch", 3)
        wrong_rule = self._finding("lint/mutable-default", 2)
        kept, suppressed = index.filter([hit, wrong_line, wrong_rule])
        assert suppressed == [hit]
        assert kept == [wrong_line, wrong_rule]

    def test_unused_suppression_round_trip(self):
        # A waiver with no matching finding raises the meta-rule; once
        # the finding exists, both the waiver and the meta-rule clear.
        src = f"x = 1  {NOQA}[lint/dead-branch]\n"
        index = SuppressionIndex.from_source(src, "m.py")
        kept, _ = index.filter([])
        unused = index.unused_findings({"lint", "meta"})
        assert [f.rule_id for f in unused] == ["meta/unused-suppression"]
        assert "lint/dead-branch" in unused[0].message

        index = SuppressionIndex.from_source(src, "m.py")
        kept, suppressed = index.filter(
            [self._finding("lint/dead-branch", 1)]
        )
        assert kept == []
        assert len(suppressed) == 1
        assert index.unused_findings({"lint", "meta"}) == []

    def test_unused_only_reported_for_families_that_ran(self):
        src = f"x = 1  {NOQA}[determinism/wall-clock]\n"
        index = SuppressionIndex.from_source(src, "m.py")
        index.filter([])
        assert index.unused_findings({"lint", "meta"}) == []
        assert len(index.unused_findings({"determinism", "meta"})) == 1

    def test_unknown_rule_id_always_reported(self):
        src = f"x = 1  {NOQA}[lint/no-such-rule]\n"
        index = SuppressionIndex.from_source(src, "m.py")
        index.filter([])
        (finding,) = index.unused_findings({"meta"})
        assert "unknown rule" in finding.message

    def test_disabled_rule_waiver_not_reported_unused(self):
        src = f"x = 1  {NOQA}[determinism/wall-clock]\n"
        index = SuppressionIndex.from_source(src, "m.py")
        index.filter([])
        config = RuleConfig(disabled=("determinism",))
        assert index.unused_findings({"determinism", "meta"}, config) == []


class TestSuppressionNeverMasksOtherRules:
    @given(st.sampled_from(ALL_IDS))
    def test_noqa_for_y_never_masks_mutable_default(self, y):
        # The suppression contract: `# repro: noqa[Y]` silences Y and
        # ONLY Y.  Seed a known lint/mutable-default finding and waive
        # an arbitrary registered rule on its line.
        src = f"def f(xs={{}}):  {NOQA}[{y}]\n    return xs\n"
        findings = scan_source(src, "m.py", profile=FileProfile())
        rule_ids = [f.rule_id for f in findings]
        if y == "lint/mutable-default":
            assert "lint/mutable-default" not in rule_ids
        else:
            assert "lint/mutable-default" in rule_ids

    @given(st.sampled_from(ALL_IDS))
    def test_noqa_for_y_never_masks_wall_clock(self, y):
        src = (
            "import time\n"
            f"t = time.time()  {NOQA}[{y}]\n"
        )
        findings = scan_source(
            src,
            "m.py",
            profile=FileProfile(lint=False, determinism=True),
        )
        rule_ids = [f.rule_id for f in findings]
        if y == "determinism/wall-clock":
            assert "determinism/wall-clock" not in rule_ids
        else:
            assert "determinism/wall-clock" in rule_ids


class TestScanSourceIntegration:
    def test_suppression_applies_end_to_end(self):
        src = (
            "import time\n"
            f"t = time.time()  {NOQA}[determinism/wall-clock]"
            " -- display only\n"
        )
        findings = scan_source(
            src, "m.py", profile=FileProfile(lint=False, determinism=True)
        )
        assert findings == []

    def test_config_disables_rule_in_scan(self):
        src = "import time\nt = time.time()\n"
        profile = FileProfile(lint=False, determinism=True)
        assert scan_source(src, "m.py", profile=profile) != []
        assert (
            scan_source(
                src,
                "m.py",
                profile=profile,
                config=RuleConfig(disabled=("determinism/wall-clock",)),
            )
            == []
        )

    def test_real_rundir_waivers_are_used(self):
        # The two created_at waivers in store/rundir.py must be load-
        # bearing: scanning the real file yields neither wall-clock nor
        # unused-suppression findings.
        path = (
            Path(__file__).resolve().parents[2]
            / "src" / "repro" / "store" / "rundir.py"
        )
        findings = scan_source(
            path.read_text(encoding="utf-8"),
            str(path),
            profile=FileProfile(store_module=True, determinism=True),
        )
        assert findings == []
