"""Tight-bound conformance analyzer + counted-vs-bound property tests."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.algorithms.registry import algorithm_names, get_algorithm
from repro.check.cost import CountedCosts
from repro.check.tightbounds import check_tight_bounds
from repro.exceptions import ConfigurationError
from repro.model.bounds import distributed_bounds, shared_bounds
from repro.model.machine import preset
from repro.sim.runner import run_experiment


def make_counted(machine, m, n, z, slack=3.0):
    """A CountedCosts comfortably above every bound (a conforming cell)."""
    sb = shared_bounds(machine, m, n, z)
    db = distributed_bounds(machine, m, n, z)
    ms = int(sb.best * slack) + 1
    md = int(db.best * slack) + 1
    return CountedCosts(ms=ms, md=(md,) * machine.p)


class TestCheckTightBounds:
    def setup_method(self):
        self.machine = preset("q32")
        self.alg = get_algorithm("shared-opt")(self.machine, 24, 24, 24)

    def test_conforming_cell_is_clean(self):
        counted = make_counted(self.machine, 24, 24, 24)
        findings, cell = check_tight_bounds(self.alg, counted, machine="q32")
        assert findings == []
        assert cell.algorithm == "shared-opt"
        assert cell.machine == "q32"
        assert cell.ms == counted.ms and cell.md == counted.md_max

    def test_below_shared_bound_is_error(self):
        counted = make_counted(self.machine, 24, 24, 24)
        bad = CountedCosts(ms=1, md=counted.md)
        findings, _cell = check_tight_bounds(self.alg, bad, machine="q32")
        assert [f.rule_id for f in findings] == ["cost/below-tight-bound"]
        assert findings[0].severity == "error"
        assert "MS=1" in findings[0].message

    def test_below_distributed_bound_is_error(self):
        counted = make_counted(self.machine, 24, 24, 24)
        bad = CountedCosts(ms=counted.ms, md=(1,) * self.machine.p)
        findings, _cell = check_tight_bounds(self.alg, bad, machine="q32")
        assert [f.rule_id for f in findings] == ["cost/below-tight-bound"]
        assert "MD=1" in findings[0].message

    def test_message_names_the_binding_bound(self):
        counted = make_counted(self.machine, 24, 24, 24)
        bad = CountedCosts(ms=1, md=counted.md)
        findings, _cell = check_tight_bounds(self.alg, bad, machine="q32")
        sb = shared_bounds(self.machine, 24, 24, 24)
        assert sb.binding in findings[0].message

    def test_gap_cell_carries_every_bound(self):
        counted = make_counted(self.machine, 24, 24, 24)
        _findings, cell = check_tight_bounds(self.alg, counted, machine="q32")
        assert set(cell.ms_bounds) == {"loomis-whitney", "tight", "compulsory"}
        assert set(cell.md_bounds) == {
            "loomis-whitney",
            "tight",
            "memory-independent",
        }
        sb = shared_bounds(self.machine, 24, 24, 24)
        assert cell.ms_binding == sb.binding
        assert cell.ms_gap > 1.0 and cell.md_gap > 1.0

    def test_formula_algorithm_records_envelope(self):
        counted = make_counted(self.machine, 24, 24, 24)
        _findings, cell = check_tight_bounds(self.alg, counted, machine="q32")
        assert cell.envelope is not None
        assert set(cell.envelope) == {
            "predicted_ms",
            "predicted_md",
            "ms_ratio",
            "md_ratio",
            "ms_used",
            "md_used",
        }

    def test_no_formula_no_envelope(self):
        alg = get_algorithm("nested-max-reuse")(self.machine, 8, 8, 8)
        counted = make_counted(self.machine, 8, 8, 8)
        _findings, cell = check_tight_bounds(alg, counted, machine="q32")
        assert cell.envelope is None


class TestCountedNeverBeatsBounds:
    """Satellite property: no paper schedule's counted MS/MD ever beats
    the strongest lower bound, on ragged shapes and both engines."""

    @settings(deadline=None, max_examples=12)
    @given(
        m=st.integers(min_value=1, max_value=10),
        n=st.integers(min_value=1, max_value=10),
        z=st.integers(min_value=1, max_value=10),
        engine=st.sampled_from(["replay", "step"]),
    )
    def test_all_paper_algorithms(self, m, n, z, engine):
        machine = preset("q32")
        sb = shared_bounds(machine, m, n, z)
        db = distributed_bounds(machine, m, n, z)
        for name in algorithm_names():
            try:
                result = run_experiment(
                    name, machine, m, n, z, "ideal", engine=engine
                )
            except ConfigurationError:
                continue  # shape infeasible for this schedule
            assert result.ms >= sb.best * (1.0 - 1e-9), (name, m, n, z)
            assert result.md >= db.best * (1.0 - 1e-9), (name, m, n, z)
