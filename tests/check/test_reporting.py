"""Rule ids, fingerprints, baseline suppression and SARIF export."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cache.block import MAT_A, block_key
from repro.check import (
    AnalysisContext,
    apply_baseline,
    check_presence,
    load_baseline,
    to_sarif,
    write_baseline,
    write_sarif,
)
from repro.check.findings import ERROR, WARNING, CHECKER_VERSION, Finding
from repro.check.sarif import RULE_DESCRIPTIONS
from repro.exceptions import ReproError


def _spurious_evict_finding() -> Finding:
    ctx = AnalysisContext(1)
    ctx.evict_shared(block_key(MAT_A, 0, 0))
    return check_presence(ctx.events, p=1)[0]


class TestRuleIds:
    def test_analyzer_findings_carry_slash_rules(self) -> None:
        finding = _spurious_evict_finding()
        assert finding.rule_id == "presence/spurious-evict"
        assert finding.to_dict()["rule"] == "presence/spurious-evict"

    def test_rule_falls_back_to_analyzer(self) -> None:
        bare = Finding("cost", ERROR, "msg")
        assert bare.rule_id == "cost"

    def test_rule_rendered_in_terminal_line(self) -> None:
        text = _spurious_evict_finding().render()
        assert "presence/spurious-evict" in text

    def test_every_known_rule_is_documented_for_sarif(self) -> None:
        # Rule ids are API: each one must have a catalogue description.
        assert "cost/formula-mismatch" in RULE_DESCRIPTIONS
        assert "cost/below-lower-bound" in RULE_DESCRIPTIONS
        assert all("/" in rule for rule in RULE_DESCRIPTIONS)


class TestFingerprints:
    def test_stable_across_runs(self) -> None:
        assert (
            _spurious_evict_finding().fingerprint()
            == _spurious_evict_finding().fingerprint()
        )

    def test_lint_line_number_excluded(self) -> None:
        # An edit above a lint finding moves its line; identity survives.
        f1 = Finding("lint", WARNING, "msg", location="src/x.py:10", rule="lint/r")
        f2 = Finding("lint", WARNING, "msg", location="src/x.py:99", rule="lint/r")
        assert f1.fingerprint() == f2.fingerprint()

    def test_distinct_rules_distinct_fingerprints(self) -> None:
        f1 = Finding("cost", ERROR, "msg", rule="cost/formula-mismatch")
        f2 = Finding("cost", ERROR, "msg", rule="cost/tdata-mismatch")
        assert f1.fingerprint() != f2.fingerprint()

    def test_from_dict_round_trip(self) -> None:
        original = _spurious_evict_finding()
        rebuilt = Finding.from_dict(original.to_dict())
        assert rebuilt == original
        assert rebuilt.fingerprint() == original.fingerprint()


class TestBaseline:
    def test_missing_file_suppresses_nothing(self, tmp_path: Path) -> None:
        assert load_baseline(tmp_path / "absent.json") == set()

    def test_write_load_apply_round_trip(self, tmp_path: Path) -> None:
        path = tmp_path / "baseline.json"
        old = Finding("cost", ERROR, "legacy", rule="cost/formula-ratio")
        count = write_baseline(path, [old, old])  # duplicates collapse
        assert count == 1
        suppressed = load_baseline(path)
        assert suppressed == {old.fingerprint()}
        new = Finding("race", ERROR, "fresh", rule="race/write-write")
        active, baselined = apply_baseline([old, new], suppressed)
        assert active == [new]
        assert baselined == [old]

    def test_entries_review_like_a_report(self, tmp_path: Path) -> None:
        path = tmp_path / "baseline.json"
        write_baseline(path, [Finding("cost", ERROR, "msg", rule="cost/x")])
        payload = json.loads(path.read_text())
        assert payload["schema"] == 1
        (entry,) = payload["suppressions"]
        assert entry["rule"] == "cost/x"
        assert entry["severity"] == ERROR
        assert entry["message"] == "msg"

    def test_deterministic_output(self, tmp_path: Path) -> None:
        findings = [
            Finding("race", ERROR, "b", rule="race/z"),
            Finding("cost", ERROR, "a", rule="cost/a"),
        ]
        p1, p2 = tmp_path / "a.json", tmp_path / "b.json"
        write_baseline(p1, findings)
        write_baseline(p2, list(reversed(findings)))
        assert p1.read_text() == p2.read_text()

    def test_bad_schema_rejected(self, tmp_path: Path) -> None:
        path = tmp_path / "baseline.json"
        path.write_text('{"schema": 99, "suppressions": []}')
        with pytest.raises(ReproError):
            load_baseline(path)

    def test_corrupt_file_rejected(self, tmp_path: Path) -> None:
        path = tmp_path / "baseline.json"
        path.write_text("not json {")
        with pytest.raises(ReproError):
            load_baseline(path)


class TestSarif:
    def _findings(self):
        return [
            Finding(
                "cost",
                ERROR,
                "counted MS diverges",
                algorithm="shared-opt",
                machine="q32",
                rule="cost/formula-mismatch",
            ),
            Finding(
                "lint",
                WARNING,
                "mutable default",
                location="src/repro/cli.py:42",
                rule="lint/mutable-default",
            ),
        ]

    def test_document_shape(self) -> None:
        doc = to_sarif(self._findings(), root=Path("/root/repo"))
        assert doc["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in doc["$schema"]
        (run,) = doc["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-mmm-check"
        assert driver["version"].startswith(f"{CHECKER_VERSION}.")
        rule_ids = {r["id"] for r in driver["rules"]}
        assert {"cost/formula-mismatch", "lint/mutable-default"} <= rule_ids

    def test_results_map_levels_locations_and_fingerprints(self) -> None:
        findings = self._findings()
        doc = to_sarif(findings, root=Path("/root/repo"))
        cost_res, lint_res = doc["runs"][0]["results"]
        assert cost_res["level"] == "error"
        assert lint_res["level"] == "warning"
        # Schedule finding anchors at the algorithm's source module.
        cost_loc = cost_res["locations"][0]["physicalLocation"]
        assert cost_loc["artifactLocation"]["uri"].startswith("src/repro/")
        assert cost_loc["artifactLocation"]["uri"].endswith(".py")
        # Lint finding keeps its exact path:line.
        lint_loc = lint_res["locations"][0]["physicalLocation"]
        assert lint_loc["artifactLocation"]["uri"] == "src/repro/cli.py"
        assert lint_loc["region"]["startLine"] == 42
        # Fingerprints match the baseline identity exactly.
        assert cost_res["partialFingerprints"]["reproCheck/v1"] == findings[
            0
        ].fingerprint()
        # Algorithm context is folded into the message.
        assert "[shared-opt @ q32]" in cost_res["message"]["text"]

    def test_every_result_rule_is_in_the_catalogue(self) -> None:
        doc = to_sarif(self._findings(), root=Path("/root/repo"))
        (run,) = doc["runs"]
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert all(res["ruleId"] in rule_ids for res in run["results"])

    def test_write_sarif_serializes(self, tmp_path: Path) -> None:
        out = tmp_path / "out.sarif"
        write_sarif(out, self._findings(), root=Path("/root/repo"))
        payload = json.loads(out.read_text())
        assert payload["version"] == "2.1.0"
        assert len(payload["runs"][0]["results"]) == 2

    def test_empty_run_is_valid(self) -> None:
        doc = to_sarif([])
        assert doc["runs"][0]["results"] == []
        assert doc["runs"][0]["tool"]["driver"]["rules"]  # catalogue stays
