"""Unit tests for the intraprocedural dataflow engine."""

import ast

from repro.check.dataflow import (
    KIND_UNORDERED,
    KIND_WRITER,
    Scope,
    TaintSpec,
    analyze,
    build_parent_map,
    call_name,
    dotted_call_name,
)

SPEC = TaintSpec(
    parameter_sources={"workers": "workers", "engine": "engine"},
    attribute_sources={"workers": "workers"},
    subscript_sources={"engine": "engine"},
)


class _Probe:
    """Hooks that record the taint/kinds at every ``probe(...)`` call."""

    def __init__(self):
        self.taints = []
        self.kinds = []
        self.iter_kinds = []

    def on_call(self, node, scope):
        if call_name(node) == "probe":
            for arg in node.args:
                self.taints.append(set(scope.taint(arg)))
                self.kinds.append(scope.kinds(arg))

    def on_for(self, target, iter_node, scope):
        self.iter_kinds.append(scope.kinds(iter_node))


def probe(source):
    hooks = _Probe()
    analyze(ast.parse(source), SPEC, hooks)
    return hooks


class TestTaintPropagation:
    def test_parameter_source_flows_through_assignment(self):
        h = probe("def f(workers):\n    w = workers\n    probe(w)\n")
        assert h.taints == [{"workers"}]

    def test_assignment_kills_taint(self):
        h = probe(
            "def f(workers):\n    w = workers\n    w = 1\n    probe(w)\n"
        )
        assert h.taints == [set()]

    def test_flows_through_binop_and_fstring(self):
        h = probe(
            "def f(workers):\n"
            "    a = workers + 1\n"
            "    b = f'n={workers}'\n"
            "    probe(a)\n"
            "    probe(b)\n"
        )
        assert h.taints == [{"workers"}, {"workers"}]

    def test_flows_through_call_arguments(self):
        h = probe(
            "def f(workers):\n"
            "    x = transform(1, count=workers)\n"
            "    probe(x)\n"
        )
        assert h.taints == [{"workers"}]

    def test_attribute_source(self):
        h = probe(
            "class C:\n"
            "    def m(self):\n"
            "        probe(self.workers)\n"
        )
        assert h.taints == [{"workers"}]

    def test_subscript_source(self):
        h = probe("def f(cfg):\n    probe(cfg['engine'])\n")
        assert h.taints == [{"engine"}]

    def test_dict_literal_and_comprehension(self):
        h = probe(
            "def f(workers):\n"
            "    d = {'w': workers}\n"
            "    e = {k: v for k, v in d.items()}\n"
            "    probe(d)\n"
            "    probe(e)\n"
        )
        assert h.taints == [{"workers"}, {"workers"}]

    def test_key_filter_comprehension_sanitizes(self):
        h = probe(
            "def f(kwargs):\n"
            "    tainted = {'engine': kwargs['engine']}\n"
            "    clean = {k: v for k, v in tainted.items()"
            " if k not in ('engine', 'strict_engine')}\n"
            "    probe(tainted)\n"
            "    probe(clean)\n"
        )
        assert h.taints == [{"engine"}, set()]

    def test_key_filter_with_dynamic_blocklist_does_not_sanitize(self):
        h = probe(
            "def f(kwargs, drop):\n"
            "    tainted = {'engine': kwargs['engine']}\n"
            "    kept = {k: v for k, v in tainted.items() if k not in drop}\n"
            "    probe(kept)\n"
        )
        assert h.taints == [{"engine"}]

    def test_tuple_unpacking(self):
        h = probe(
            "def f(workers):\n"
            "    a, b = workers, 1\n"
            "    probe(a)\n"
            "    probe(b)\n"
        )
        # Conservative: each element gets the whole value's taint.
        assert h.taints == [{"workers"}, {"workers"}]

    def test_augassign_merges_instead_of_killing(self):
        h = probe(
            "def f(workers):\n"
            "    total = 0\n"
            "    total += workers\n"
            "    probe(total)\n"
        )
        assert h.taints == [{"workers"}]

    def test_loop_carried_taint_reaches_fixpoint(self):
        h = probe(
            "def f(workers, xs):\n"
            "    y = 0\n"
            "    for x in xs:\n"
            "        probe(y)\n"
            "        y = workers\n"
            "    probe(y)\n"
        )
        # The in-loop probe sees the taint carried from the previous
        # iteration (requires more than one pass).
        assert h.taints == [{"workers"}, {"workers"}]

    def test_class_prepass_sees_cross_method_attributes(self):
        h = probe(
            "class C:\n"
            "    def __init__(self, workers):\n"
            "        self.n = workers\n"
            "        self.plain = 3\n"
            "    def use(self):\n"
            "        probe(self.n)\n"
            "        probe(self.plain)\n"
        )
        assert h.taints == [{"workers"}, set()]


class TestKinds:
    def test_set_constructions_are_unordered(self):
        h = probe(
            "def f(xs):\n"
            "    a = set(xs)\n"
            "    b = {1, 2}\n"
            "    c = {x for x in xs}\n"
            "    probe(a)\n    probe(b)\n    probe(c)\n"
        )
        assert h.kinds == [{KIND_UNORDERED}] * 3

    def test_sorted_strips_unordered(self):
        h = probe(
            "def f(xs):\n"
            "    a = sorted(set(xs))\n"
            "    probe(a)\n"
        )
        assert h.kinds == [set()]

    def test_list_preserves_unordered(self):
        h = probe(
            "def f(xs):\n"
            "    a = list(set(xs))\n"
            "    probe(a)\n"
        )
        assert h.kinds == [{KIND_UNORDERED}]

    def test_for_over_set_reports_unordered_iter(self):
        h = probe(
            "def f(xs):\n"
            "    s = set(xs)\n"
            "    for x in s:\n"
            "        pass\n"
            "    for x in sorted(s):\n"
            "        pass\n"
        )
        assert h.iter_kinds == [{KIND_UNORDERED}, set()]

    def test_cross_method_set_attribute(self):
        h = probe(
            "class C:\n"
            "    def __init__(self):\n"
            "        self.outstanding = set()\n"
            "    def drain(self):\n"
            "        for key in list(self.outstanding):\n"
            "            pass\n"
        )
        assert {KIND_UNORDERED} in h.iter_kinds

    def test_writer_kinds(self):
        h = probe(
            "def f(store):\n"
            "    w = CheckpointWriter(store)\n"
            "    probe(w)\n"
            "    probe(store.writer)\n"
        )
        assert h.kinds == [{KIND_WRITER}, {KIND_WRITER}]


class TestHelpers:
    def test_call_name(self):
        call = ast.parse("a.b.c()").body[0].value
        assert call_name(call) == "c"
        call = ast.parse("f()").body[0].value
        assert call_name(call) == "f"

    def test_dotted_call_name(self):
        call = ast.parse("time.time()").body[0].value
        assert dotted_call_name(call) == "time.time"
        call = ast.parse("(x or y).z()").body[0].value
        assert dotted_call_name(call) is None

    def test_build_parent_map(self):
        tree = ast.parse("sorted(p.iterdir())")
        parents = build_parent_map(tree)
        inner = tree.body[0].value.args[0]
        assert parents[inner] is tree.body[0].value

    def test_scope_fork_is_isolated(self):
        scope = Scope(SPEC)
        scope.env_taint["x"] = {"workers": 1}
        child = scope.fork()
        child.env_taint["x"]["engine"] = 2
        assert "engine" not in scope.env_taint["x"]
