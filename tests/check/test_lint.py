"""Lint-pass tests: each rule fires on a seeded snippet, repo is clean."""

from __future__ import annotations

from pathlib import Path

from repro.check.lint import lint_source, run_lint


def rules(findings):
    return [f.message.split(":", 1)[0] for f in findings]


class TestExplicitGuard:
    def test_unguarded_directive_flagged(self):
        src = (
            "def run(self, ctx):\n"
            "    ctx.load_shared(1)\n"
        )
        found = lint_source(src, "alg.py", algorithms_module=True)
        assert rules(found) == ["explicit-guard"]
        assert "ctx.load_shared(...)" in found[0].message

    def test_guarded_directive_clean(self):
        src = (
            "def run(self, ctx):\n"
            "    if ctx.explicit:\n"
            "        ctx.load_shared(1)\n"
        )
        assert lint_source(src, "alg.py", algorithms_module=True) == []

    def test_hoisted_flag_clean(self):
        src = (
            "def run(self, ctx):\n"
            "    explicit = ctx.explicit\n"
            "    if explicit:\n"
            "        ctx.evict_dist(0, 1)\n"
        )
        assert lint_source(src, "alg.py", algorithms_module=True) == []

    def test_else_branch_is_unguarded(self):
        src = (
            "def run(self, ctx):\n"
            "    if ctx.explicit:\n"
            "        pass\n"
            "    else:\n"
            "        ctx.evict_shared(1)\n"
        )
        found = lint_source(src, "alg.py", algorithms_module=True)
        assert rules(found) == ["explicit-guard"]

    def test_rule_scoped_to_algorithms_modules(self):
        # Contexts and caches implement the directives; only schedule
        # modules must guard the calls.
        src = "def f(ctx):\n    ctx.load_shared(1)\n"
        assert lint_source(src, "other.py", algorithms_module=False) == []


class TestUnregisteredAlgorithm:
    SRC = (
        "class Rogue(MatmulAlgorithm):\n"
        "    name = 'rogue'\n"
    )

    def test_unregistered_flagged(self):
        found = lint_source(
            self.SRC, "alg.py", algorithms_module=True, registered={"shared-opt"}
        )
        assert rules(found) == ["unregistered-algorithm"]
        assert "'rogue'" in found[0].message

    def test_registered_clean(self):
        assert (
            lint_source(
                self.SRC, "alg.py", algorithms_module=True, registered={"rogue"}
            )
            == []
        )

    def test_abstract_base_exempt(self):
        src = (
            "class Base(MatmulAlgorithm):\n"
            "    name = 'abstract'\n"
        )
        assert lint_source(src, "alg.py", algorithms_module=True, registered=set()) == []


class TestMutableDefault:
    def test_list_default_flagged(self):
        found = lint_source("def f(x=[]):\n    pass\n", "m.py")
        assert rules(found) == ["mutable-default"]

    def test_call_default_flagged(self):
        found = lint_source("def f(x=dict()):\n    pass\n", "m.py")
        assert rules(found) == ["mutable-default"]

    def test_kwonly_default_flagged(self):
        found = lint_source("def f(*, x={}):\n    pass\n", "m.py")
        assert rules(found) == ["mutable-default"]

    def test_none_default_clean(self):
        assert lint_source("def f(x=None, y=0):\n    pass\n", "m.py") == []


class TestFloatEquality:
    def test_eq_on_tdata_flagged(self):
        found = lint_source("ok = result.tdata == 1.5\n", "m.py")
        assert rules(found) == ["float-equality"]

    def test_neq_on_tdata_name_flagged(self):
        found = lint_source("bad = tdata_serial != tdata_parallel\n", "m.py")
        assert rules(found) == ["float-equality"]

    def test_ordering_comparison_clean(self):
        assert lint_source("ok = tdata < 1.5\n", "m.py") == []

    def test_eq_on_other_names_clean(self):
        assert lint_source("ok = ms == md\n", "m.py") == []


class TestDeadBranch:
    def test_if_pass_flagged(self):
        src = (
            "def f(x):\n"
            "    if x > 0:\n"
            "        pass\n"
            "    return x\n"
        )
        found = lint_source(src, "m.py")
        assert rules(found) == ["dead-branch"]

    def test_if_pass_with_else_clean(self):
        src = (
            "def f(x):\n"
            "    if x > 0:\n"
            "        pass\n"
            "    else:\n"
            "        x = -x\n"
            "    return x\n"
        )
        assert lint_source(src, "m.py") == []

    def test_elif_pass_in_dispatch_chain_clean(self):
        # `elif op == COMPUTE: pass` is a legitimate "nothing to do for
        # this case" arm (repro.check.capacity uses exactly this).
        src = (
            "def f(op):\n"
            "    if op == 1:\n"
            "        handle()\n"
            "    elif op == 2:\n"
            "        pass\n"
            "    elif op == 3:\n"
            "        other()\n"
        )
        assert lint_source(src, "m.py") == []

    def test_body_with_real_statements_clean(self):
        src = (
            "def f(x):\n"
            "    if x > 0:\n"
            "        x += 1\n"
            "    return x\n"
        )
        assert lint_source(src, "m.py") == []


class TestInitSelfCall:
    def test_reset_via_init_flagged(self):
        src = (
            "class C:\n"
            "    def reset(self):\n"
            "        self.__init__(self.p, self.cs)\n"
        )
        found = lint_source(src, "m.py")
        assert rules(found) == ["init-self-call"]

    def test_super_init_clean(self):
        src = (
            "class C(B):\n"
            "    def __init__(self):\n"
            "        super().__init__()\n"
        )
        assert lint_source(src, "m.py") == []

    def test_other_objects_init_clean(self):
        src = "def f(obj):\n    obj.__init__()\n"
        assert lint_source(src, "m.py") == []


class TestNonatomicArtifactWrite:
    def test_write_text_flagged(self):
        src = "def save(path, doc):\n    path.write_text(doc)\n"
        assert rules(lint_source(src, "m.py")) == ["nonatomic-artifact-write"]

    def test_write_bytes_flagged(self):
        src = "def save(path, doc):\n    path.write_bytes(doc)\n"
        assert rules(lint_source(src, "m.py")) == ["nonatomic-artifact-write"]

    def test_builtin_open_write_mode_flagged(self):
        src = 'def save(path):\n    with open(path, "w") as fh:\n        fh.write("x")\n'
        assert rules(lint_source(src, "m.py")) == ["nonatomic-artifact-write"]

    def test_path_open_append_mode_flagged(self):
        src = 'def save(path):\n    fh = path.open(mode="ab")\n'
        assert rules(lint_source(src, "m.py")) == ["nonatomic-artifact-write"]

    def test_read_mode_clean(self):
        src = (
            'def load(path):\n'
            '    with open(path) as fh:\n'
            "        a = fh.read()\n"
            '    with open(path, "rb") as fh:\n'
            "        b = fh.read()\n"
            "    return a, b\n"
        )
        assert lint_source(src, "m.py") == []

    def test_dynamic_mode_out_of_scope(self):
        src = "def touch(path, mode):\n    return open(path, mode)\n"
        assert lint_source(src, "m.py") == []

    def test_store_module_exempt(self):
        src = 'def save(path, doc):\n    path.write_text(doc)\n'
        assert lint_source(src, "m.py", store_module=True) == []

    def test_atomic_helper_usage_clean(self):
        src = (
            "from repro.store.atomic import atomic_write_text\n"
            "def save(path, doc):\n"
            "    atomic_write_text(path, doc)\n"
        )
        assert lint_source(src, "m.py") == []


class TestFallbackTelemetry:
    SILENT = (
        "def pick_engine(setting, policy, inclusive, check):\n"
        "    if supports(setting.mode, policy, inclusive, check):\n"
        "        return 'replay'\n"
        "    return 'step'\n"
    )

    def test_silent_supports_consult_flagged(self):
        found = lint_source(self.SILENT, "m.py")
        assert rules(found) == ["fallback-telemetry"]
        assert "'pick_engine'" in found[0].message

    def test_attribute_call_flagged(self):
        src = (
            "def pick(setting):\n"
            "    return replay_engine.supports(setting.mode, 'lru', False, False)\n"
        )
        assert rules(lint_source(src, "m.py")) == ["fallback-telemetry"]

    def test_recording_caller_clean(self):
        src = (
            "def pick_engine(setting, policy, inclusive, check):\n"
            "    if supports(setting.mode, policy, inclusive, check):\n"
            "        return 'replay'\n"
            "    note_engine_fallback(setting.key, policy, inclusive, check)\n"
            "    return 'step'\n"
        )
        assert lint_source(src, "m.py") == []

    def test_check_modules_exempt(self):
        # repro.check reasons about the predicate analytically; it never
        # decides an engine and owes no telemetry.
        assert lint_source(self.SILENT, "m.py", check_module=True) == []

    def test_unrelated_supports_free_function_clean(self):
        src = "def f(x):\n    return x + 1\n"
        assert lint_source(src, "m.py") == []


class TestUnpinnedBenchEngine:
    UNPINNED = (
        "def bench_cell(benchmark):\n"
        "    r = run_experiment('shared-opt', m, 8, 8, 8, 'lru-50')\n"
        "    assert r.ms > 0\n"
    )

    def test_unpinned_call_flagged_in_benchmark(self):
        found = lint_source(self.UNPINNED, "b.py", benchmark_module=True)
        assert rules(found) == ["unpinned-bench-engine"]
        assert "engine=" in found[0].message

    def test_attribute_call_flagged(self):
        src = (
            "def bench_cell(benchmark):\n"
            "    return runner.run_experiment('x', m, 8, 8, 8, 'ideal')\n"
        )
        found = lint_source(src, "b.py", benchmark_module=True)
        assert rules(found) == ["unpinned-bench-engine"]

    def test_pinned_call_clean(self):
        src = (
            "def bench_cell(benchmark):\n"
            "    r = run_experiment('x', m, 8, 8, 8, 'lru-50', engine='replay')\n"
        )
        assert lint_source(src, "b.py", benchmark_module=True) == []

    def test_rule_scoped_to_benchmarks(self):
        # Library and test code may rely on the default engine choice.
        assert lint_source(self.UNPINNED, "m.py") == []


class TestSyntaxError:
    def test_unparseable_reported_not_raised(self):
        found = lint_source("def f(:\n", "m.py")
        assert rules(found) == ["syntax"]


class TestRunLint:
    def test_repo_sources_are_clean(self):
        assert run_lint() == []

    def test_explicit_paths(self, tmp_path: Path):
        bad = tmp_path / "algorithms" / "rogue.py"
        bad.parent.mkdir()
        bad.write_text("def run(ctx):\n    ctx.load_shared(1)\n")
        found = run_lint(paths=[bad])
        assert len(found) == 1
        assert found[0].location == f"{bad}:2"
