"""Cost-conformance analyzer: counting soundness and violation detection.

Three layers of evidence:

* a hypothesis property proving :func:`count_costs` over the recorded
  event log equals the checked IDEAL simulator's ``MS``/``MD`` integer
  for integer, on random small orders (evenly tiled and ragged) across
  every algorithm with a closed form;
* seeded violations — a perturbed formula (the ``mn`` term dropped
  from shared-opt's ``MS``) and a schedule whose counts beat the
  Loomis–Whitney bound — each caught as an error;
* the clean complement: real schedules produce zero cost findings.
"""

from __future__ import annotations

import math
from typing import Any, Dict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.analysis.formulas as formulas
from repro.algorithms.base import ExecutionContext, MatmulAlgorithm
from repro.algorithms.registry import get_algorithm
from repro.analysis.formulas import FORMULAS, PredictedCounts, divisibility_ok, predict
from repro.check import AnalysisContext, analyze_schedule, check_cost, count_costs
from repro.check.cost import CountedCosts
from repro.check.events import COMPUTE, EVICT_S, LOAD_D, LOAD_S
from repro.model.machine import MulticoreMachine
from repro.sim.runner import run_experiment

MACHINE = MulticoreMachine(p=4, cs=100, cd=21, q=8)

FORMULA_ALGS = sorted(FORMULAS)


def _tile_side(name: str) -> int:
    """The natural tile side of ``name`` on :data:`MACHINE`."""
    probe = get_algorithm(name)(MACHINE, 1, 1, 1)
    params: Dict[str, Any] = probe.parameters()
    sides = [
        v
        for k, v in params.items()
        if k in ("lambda", "tile", "alpha", "t", "grid") and isinstance(v, int)
    ]
    return max(sides) if sides else 1


def _recorded_counts(name: str, m: int, n: int, z: int) -> CountedCosts:
    ctx = AnalysisContext(MACHINE.p)
    get_algorithm(name)(MACHINE, m, n, z).run(ctx)
    return count_costs(ctx.events, MACHINE.p)


class TestCountingSoundness:
    @settings(max_examples=30, deadline=None)
    @given(
        name=st.sampled_from(FORMULA_ALGS),
        dims=st.tuples(
            st.integers(1, 12), st.integers(1, 12), st.integers(1, 12)
        ),
        snap=st.booleans(),
        double=st.booleans(),
    )
    def test_counted_equals_ideal_simulation(self, name, dims, snap, double):
        """Symbolic distinct-block counting == checked IDEAL simulation.

        ``snap`` rounds the drawn dims to tile multiples so both the
        evenly-tiled (exact-formula) and ragged paths are exercised.
        """
        m, n, z = dims
        if snap:
            tile = _tile_side(name)
            factor = 2 if (double and tile <= 9) else 1
            m, n, z = (tile * factor,) * 3
        counted = _recorded_counts(name, m, n, z)
        result = run_experiment(name, MACHINE, m, n, z, "ideal", check=True)
        assert counted.ms == result.ms
        assert counted.md_max == result.md

    @pytest.mark.parametrize("name", FORMULA_ALGS)
    def test_counted_matches_formula_on_divisible_orders(self, name):
        # Smallest multi-tile order satisfying the exactness conditions
        # (distributed-equal additionally needs p | n/t, hence the scan).
        tile = _tile_side(name)
        order = next(
            k * tile
            for k in range(2, 10)
            if divisibility_ok(get_algorithm(name)(MACHINE, k * tile, k * tile, k * tile))
        )
        alg = get_algorithm(name)(MACHINE, order, order, order)
        counted = _recorded_counts(name, order, order, order)
        predicted = predict(alg)
        assert counted.ms == predicted.ms
        assert counted.md_max == predicted.md

    def test_redundant_loads_and_evictions_tracked(self):
        # Load twice (one MS), evict, load again (second MS).
        events = [
            (LOAD_S, -1, 7),
            (LOAD_S, -1, 7),
            (EVICT_S, -1, 7),
            (LOAD_S, -1, 7),
            (LOAD_D, 0, 7),
            (LOAD_D, 0, 7),
            (LOAD_D, 1, 7),
        ]
        counted = count_costs(events, p=2)
        assert counted.ms == 2
        assert counted.md == (1, 1)
        assert counted.md_max == 1

    def test_empty_log_counts_zero(self):
        counted = count_costs([], p=0)
        assert counted.ms == 0
        assert counted.md_max == 0

    def test_counted_tdata_prices_like_predictions(self):
        machine = MulticoreMachine(p=2, cs=50, cd=10, sigma_s=2.0, sigma_d=0.5)
        counted = CountedCosts(ms=100, md=(40, 30))
        assert counted.tdata(machine) == pytest.approx(100 / 2.0 + 40 / 0.5)
        assert counted.tdata(machine) == pytest.approx(
            PredictedCounts(ms=100.0, md=40.0).tdata(machine)
        )


class TestCleanSchedules:
    @pytest.mark.parametrize("name", FORMULA_ALGS)
    def test_no_findings_on_real_schedules(self, name, quad):
        for order in (8, 13):
            alg = get_algorithm(name)(quad, order, order, order)
            ctx = AnalysisContext(quad.p)
            alg.run(ctx)
            found = check_cost(alg, ctx.events, machine="quad")
            assert found == [], [f.render() for f in found]


class TestSeededViolations:
    def test_perturbed_formula_is_caught(self, quad, monkeypatch):
        """Dropping the ``mn`` term from shared-opt's MS must be flagged.

        This is the analyzer's reason to exist: a silent edit to a
        closed form that no longer matches the recorded schedule is a
        hard error on divisible orders.
        """

        def broken(alg: MatmulAlgorithm) -> PredictedCounts:
            m, n, z, p = alg.m, alg.n, alg.z, alg.machine.p
            lam = alg.lam  # type: ignore[attr-defined]
            ms = 2 * m * n * z / lam  # mn term dropped
            md = (m * n * z / lam) * (1 + 2 * math.ceil(lam / p))
            return PredictedCounts(ms=ms, md=md)

        monkeypatch.setitem(formulas.FORMULAS, "shared-opt", broken)
        alg = get_algorithm("shared-opt")(quad, 18, 18, 18)  # lambda=9 divides
        assert divisibility_ok(alg)
        report = analyze_schedule(alg, machine_label="quad")
        assert not report.ok
        rules = {f.rule_id for f in report.findings}
        assert "cost/formula-mismatch" in rules
        mismatch = next(
            f for f in report.findings if f.rule_id == "cost/formula-mismatch"
        )
        assert mismatch.severity == "error"
        assert "MS" in mismatch.message

    def test_perturbed_md_formula_is_caught(self, quad, monkeypatch):
        def broken(alg: MatmulAlgorithm) -> PredictedCounts:
            good = formulas._shared_opt(alg)
            return PredictedCounts(ms=good.ms, md=good.md + 1)

        monkeypatch.setitem(formulas.FORMULAS, "shared-opt", broken)
        alg = get_algorithm("shared-opt")(quad, 18, 18, 18)
        found = check_cost(alg, _events_of(alg), machine="quad")
        assert any(
            f.rule_id == "cost/formula-mismatch" and "MD" in f.message
            for f in found
        )

    def test_below_lower_bound_is_caught(self, quad):
        """A log claiming almost no traffic for a big product is unsound."""

        class Cheat(MatmulAlgorithm):
            name = "abstract"  # no registered closed form

            def parameters(self) -> Dict[str, Any]:
                return {}

            def run(self, ctx: ExecutionContext) -> None:  # pragma: no cover
                pass

        alg = Cheat(quad, 64, 64, 64)
        events = [(LOAD_S, -1, 1), (LOAD_D, 0, 1), (COMPUTE, 0, 1, 1, 1)]
        found = check_cost(alg, events, machine="quad")
        rules = [f.rule_id for f in found]
        assert rules.count("cost/below-lower-bound") == 2  # MS and MD
        assert all(f.severity == "error" for f in found)

    def test_ragged_envelope_violation_is_caught(self, quad, monkeypatch):
        """Off by orders of magnitude on ragged tiles is still an error."""

        def wild(alg: MatmulAlgorithm) -> PredictedCounts:
            return PredictedCounts(ms=10**9, md=10**9)

        monkeypatch.setitem(formulas.FORMULAS, "shared-opt", wild)
        alg = get_algorithm("shared-opt")(quad, 13, 13, 13)  # ragged: 13 % 9
        assert not divisibility_ok(alg)
        found = check_cost(alg, _events_of(alg), machine="quad")
        assert {f.rule_id for f in found} == {"cost/formula-ratio"}
        assert len(found) == 2  # MS and MD both leave the envelope


def _events_of(alg: MatmulAlgorithm):
    ctx = AnalysisContext(alg.machine.p)
    alg.run(ctx)
    return ctx.events
