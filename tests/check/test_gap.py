"""Gap-certificate tests: cell math, aggregation, persistence, ratchet."""

from __future__ import annotations

import json
import math

import pytest

from repro.check.gap import (
    GAP_SCHEMA,
    SHARED_CERTIFY_GAP,
    AlgorithmGap,
    GapCell,
    GapReport,
    build_gap_report,
    compare_gap_reports,
    load_gap_report,
)


def make_cell(algorithm="shared-opt", ms=40, md=30, ms_best=20.0, md_best=15.0,
              envelope=None):
    return GapCell(
        algorithm=algorithm,
        machine="q32",
        m=8,
        n=8,
        z=8,
        ms=ms,
        md=md,
        ms_bounds={"loomis-whitney": ms_best / 2, "tight": ms_best,
                   "compulsory": ms_best / 4},
        md_bounds={"loomis-whitney": md_best / 2, "tight": md_best,
                   "memory-independent": md_best / 4},
        ms_binding="tight",
        md_binding="tight",
        divisible=True,
        envelope=envelope,
    )


class TestGapCell:
    def test_gap_divides_by_best_bound(self):
        cell = make_cell(ms=40, ms_best=20.0, md=30, md_best=15.0)
        assert cell.ms_gap == pytest.approx(2.0)
        assert cell.md_gap == pytest.approx(2.0)

    def test_zero_bounds_give_infinite_gap(self):
        cell = make_cell()
        degenerate = GapCell(
            algorithm="x", machine="", m=1, n=1, z=1, ms=3, md=3,
            ms_bounds={"tight": 0.0}, md_bounds={"tight": 0.0},
            ms_binding="tight", md_binding="tight", divisible=False,
        )
        assert math.isinf(degenerate.ms_gap) and math.isinf(degenerate.md_gap)
        assert math.isfinite(cell.ms_gap)

    def test_dict_round_trip(self):
        cell = make_cell(envelope={"predicted_ms": 40.0, "ms_used": 0.25})
        again = GapCell.from_dict(cell.to_dict())
        assert again == cell

    def test_dict_round_trip_without_envelope(self):
        cell = make_cell(envelope=None)
        again = GapCell.from_dict(cell.to_dict())
        assert again == cell and again.envelope is None


class TestAggregation:
    def test_per_algorithm_stats(self):
        report = build_gap_report(
            [
                make_cell(ms=20, ms_best=20.0),   # gap 1.0
                make_cell(ms=40, ms_best=20.0),   # gap 2.0
                make_cell(ms=60, ms_best=20.0),   # gap 3.0
                make_cell(algorithm="cannon", ms=200, ms_best=20.0),
                None,  # skipped cell — dropped
            ]
        )
        algos = {a.algorithm: a for a in report.algorithms()}
        assert set(algos) == {"shared-opt", "cannon"}
        shared = algos["shared-opt"]
        assert shared.cells == 3
        assert shared.ms_gap_min == pytest.approx(1.0)
        assert shared.ms_gap_median == pytest.approx(2.0)
        assert shared.ms_gap_max == pytest.approx(3.0)

    def test_certification_threshold(self):
        good = AlgorithmGap("a", 1, 1.5, 1.5, 1.5, 1.5, 1.5, 1.5)
        bad = AlgorithmGap("b", 1, SHARED_CERTIFY_GAP + 0.1, 3.0, 3.0,
                           1.0, 1.0, 1.0)
        assert good.certified_shared and good.certified_distributed
        assert not bad.certified_shared
        assert bad.certified_distributed


class TestPersistence:
    def test_write_load_round_trip(self, tmp_path):
        report = build_gap_report([make_cell(), make_cell(algorithm="cannon")])
        path = report.write(tmp_path / "gap-report.json")
        loaded = load_gap_report(path)
        assert loaded.cells == report.cells
        payload = json.loads(path.read_text())
        assert payload["schema"] == GAP_SCHEMA
        assert {a["algorithm"] for a in payload["algorithms"]} == {
            "shared-opt",
            "cannon",
        }

    def test_unknown_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 99, "cells": []}))
        with pytest.raises(ValueError, match="schema"):
            load_gap_report(path)


class TestRatchet:
    def baseline(self):
        return build_gap_report([make_cell(ms=30, ms_best=20.0,
                                           md=20, md_best=15.0)])

    def test_identical_reports_are_clean(self):
        assert compare_gap_reports(self.baseline(), self.baseline()) == []

    def test_improvement_is_clean(self):
        better = build_gap_report([make_cell(ms=22, ms_best=20.0,
                                             md=16, md_best=15.0)])
        assert compare_gap_reports(better, self.baseline()) == []

    def test_new_algorithm_is_clean(self):
        current = build_gap_report(
            [make_cell(ms=30, ms_best=20.0, md=20, md_best=15.0),
             make_cell(algorithm="brand-new", ms=900, ms_best=20.0)]
        )
        assert compare_gap_reports(current, self.baseline()) == []

    def test_certified_gap_regression(self):
        worse = build_gap_report([make_cell(ms=34, ms_best=20.0,
                                            md=20, md_best=15.0)])
        findings = compare_gap_reports(worse, self.baseline())
        assert [f.rule_id for f in findings] == ["gap/regression"]
        assert findings[0].severity == "error"
        assert "shared" in findings[0].message

    def test_regression_within_tolerance_is_clean(self):
        barely = build_gap_report([make_cell(ms=30, ms_best=20.0,
                                             md=20, md_best=15.0)])
        assert compare_gap_reports(barely, self.baseline(),
                                   rel_tol=0.5) == []

    def test_lost_certificate(self):
        lost = build_gap_report([make_cell(ms=80, ms_best=20.0,
                                           md=20, md_best=15.0)])
        findings = compare_gap_reports(lost, self.baseline())
        assert [f.rule_id for f in findings] == ["gap/uncertified-algorithm"]
        assert "lost its shared-level" in findings[0].message

    def test_missing_algorithm(self):
        findings = compare_gap_reports(GapReport(cells=[]), self.baseline())
        assert [f.rule_id for f in findings] == ["gap/uncertified-algorithm"]
        assert "no gap cells" in findings[0].message

    def test_uncertified_baseline_level_never_fires(self):
        # Baseline md gap 4.0 (> threshold) — worsening it is not a
        # regression; the ratchet only guards certified levels.
        base = build_gap_report([make_cell(ms=30, ms_best=20.0,
                                           md=60, md_best=15.0)])
        worse = build_gap_report([make_cell(ms=30, ms_best=20.0,
                                            md=90, md_best=15.0)])
        assert compare_gap_reports(worse, base) == []
