"""Engine-conformance analyzer tests: matrix walk + call-site scan."""

from __future__ import annotations

from pathlib import Path

from repro.check.enginemodel import (
    check_engine_model,
    fallback_matrix,
    scan_call_sites,
)
from repro.check.findings import WARNING


def scan_snippet(tmp_path: Path, source: str):
    path = tmp_path / "snippet.py"
    path.write_text(source)
    return scan_call_sites(paths=[path])


class TestFallbackMatrix:
    def test_every_finding_is_a_silent_fallback_warning(self):
        findings = fallback_matrix()
        assert findings, "the step engine owns configurations replay cannot"
        for finding in findings:
            assert finding.rule_id == "engine/silent-fallback"
            assert finding.severity == WARNING
            assert "strict_engine=True" in finding.message

    def test_known_unsupported_classes_present(self):
        messages = "\n".join(f.message for f in fallback_matrix())
        assert "check=True" in messages          # checked IDEAL runs
        assert "inclusive=True" in messages      # inclusive hierarchies
        assert "policy='assoc8'" in messages     # associative ablations
        assert "policy='plru'" in messages

    def test_classes_deduplicate_settings_of_one_mode(self):
        # lru/lru-2x/lru-50 collapse into each lru-mode class: no message
        # may name the same (policy, inclusive) class twice.
        messages = [f.message for f in fallback_matrix()]
        assert len(messages) == len(set(messages))

    def test_supported_configurations_not_flagged(self):
        messages = "\n".join(f.message for f in fallback_matrix())
        assert "policy='lru' silently" not in messages
        assert "policy='fifo' silently" not in messages


class TestCallSiteScan:
    def test_literal_unsupported_policy_flagged(self, tmp_path):
        found = scan_snippet(
            tmp_path,
            "run_experiment('shared-opt', m, 8, 8, 8, 'lru-50',"
            " policy='assoc8')\n",
        )
        assert len(found) == 1
        assert found[0].rule_id == "engine/silent-fallback"
        assert "policy='assoc8'" in found[0].message
        assert found[0].location.endswith("snippet.py:1")

    def test_checked_ideal_run_flagged(self, tmp_path):
        found = scan_snippet(
            tmp_path,
            "run_experiment('shared-opt', m, 8, 8, 8, 'ideal', check=True)\n",
        )
        assert len(found) == 1
        assert "check=True" in found[0].message

    def test_positional_setting_understood(self, tmp_path):
        found = scan_snippet(
            tmp_path,
            "run_experiment('shared-opt', m, 8, 8, 8, 'ideal', check=True)\n"
            "run_experiment('shared-opt', m, 8, 8, 8, 'lru-50', check=True)\n",
        )
        # LRU-mode replay ignores check: only the IDEAL line falls back.
        assert len(found) == 1
        assert found[0].location.endswith(":1")

    def test_explicit_step_engine_opt_out(self, tmp_path):
        assert scan_snippet(
            tmp_path,
            "run_experiment('a', m, 8, 8, 8, 'lru', policy='assoc8',"
            " engine='step')\n",
        ) == []

    def test_strict_engine_opt_in(self, tmp_path):
        assert scan_snippet(
            tmp_path,
            "run_experiment('a', m, 8, 8, 8, 'lru', policy='assoc8',"
            " strict_engine=True)\n",
        ) == []

    def test_dynamic_arguments_out_of_scope(self, tmp_path):
        assert scan_snippet(
            tmp_path,
            "for policy in POLICIES:\n"
            "    run_experiment('a', m, 8, 8, 8, 'lru', policy=policy)\n",
        ) == []

    def test_sweep_with_inclusive_flagged(self, tmp_path):
        found = scan_snippet(
            tmp_path,
            "order_sweep(entries, machine, orders, inclusive=True)\n",
        )
        assert len(found) == 1
        assert "inclusive=True" in found[0].message

    def test_parallel_sweep_with_unsupported_policy_flagged(self, tmp_path):
        found = scan_snippet(
            tmp_path,
            "parallel_order_sweep(entries, machine, orders, policy='plru')\n",
        )
        assert len(found) == 1

    def test_supported_sweep_clean(self, tmp_path):
        assert scan_snippet(
            tmp_path,
            "order_sweep(entries, machine, orders, policy='fifo')\n",
        ) == []

    def test_unrelated_calls_ignored(self, tmp_path):
        assert scan_snippet(
            tmp_path, "configure(policy='assoc8', inclusive=True)\n"
        ) == []

    def test_syntax_errors_left_to_lint(self, tmp_path):
        assert scan_snippet(tmp_path, "def broken(:\n") == []


class TestRepoScan:
    def test_ablation_benchmarks_flagged(self):
        # The associativity ablation pins assoc8/assoc8-plru literally;
        # the repo-wide scan must find those call sites.
        locations = [f.location for f in check_engine_model()]
        assert any("bench_ablation_associativity" in loc for loc in locations)

    def test_repo_package_sources_clean(self):
        # Inside src/repro itself every fallback-prone call site is
        # either dynamic or opted out; only the matrix findings (which
        # point at the runner) may reference the package.
        matrix_count = len(fallback_matrix())
        package_findings = [
            f
            for f in check_engine_model()
            if "src/repro/sim/runner.py" in f.location
        ]
        assert len(package_findings) == matrix_count
