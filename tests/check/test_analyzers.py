"""Each analyzer must fire on a deliberately broken schedule.

The synthetic schedules below are minimal: each seeds exactly one class
of violation into an otherwise well-formed event stream, so a failing
assertion pins the blame on one analyzer.  The clean-schedule tests in
``test_runner.py`` prove the complements (no false positives on the
real algorithms).
"""

from __future__ import annotations

from typing import List

import pytest

from repro.cache.block import MAT_A, MAT_B, MAT_C, block_key
from repro.check import (
    AnalysisContext,
    check_capacity,
    check_coverage,
    check_parameters,
    check_presence,
    check_races,
)
from repro.check.events import Event
from repro.check.findings import ERROR, WARNING


def a(i: int, k: int) -> int:
    return block_key(MAT_A, i, k)


def b(k: int, j: int) -> int:
    return block_key(MAT_B, k, j)


def c(i: int, j: int) -> int:
    return block_key(MAT_C, i, j)


def record_1x1x1(ctx: AnalysisContext, core: int = 0) -> None:
    """A complete, correct 1x1x1 product on one core."""
    for key in (c(0, 0), a(0, 0), b(0, 0)):
        ctx.load_shared(key)
        ctx.load_dist(core, key)
    ctx.compute(core, c(0, 0), a(0, 0), b(0, 0))
    for key in (a(0, 0), b(0, 0), c(0, 0)):
        ctx.evict_dist(core, key)
        ctx.evict_shared(key)


def errors(findings: List[object]) -> List[object]:
    return [f for f in findings if f.severity == ERROR]


class TestCapacity:
    def test_clean_baseline(self) -> None:
        ctx = AnalysisContext(1)
        record_1x1x1(ctx)
        assert check_capacity(ctx.events, cs=4, cd=4, p=1) == []

    def test_shared_overflow_flagged(self) -> None:
        # Load cs+1 distinct blocks into the shared cache, evict none.
        ctx = AnalysisContext(1)
        for i in range(5):
            ctx.load_shared(a(i, 0))
        found = check_capacity(ctx.events, cs=4, cd=4, p=1)
        assert len(found) == 1
        assert found[0].severity == ERROR
        assert "shared cache overflow" in found[0].message
        assert found[0].event == 4  # the fifth load is the culprit

    def test_distributed_overflow_flagged(self) -> None:
        ctx = AnalysisContext(2)
        for i in range(3):
            ctx.load_shared(a(i, 0))
            ctx.load_dist(1, a(i, 0))
        found = check_capacity(ctx.events, cs=10, cd=2, p=2)
        assert len(found) == 1
        assert "core 1 overflow" in found[0].message

    def test_eviction_frees_room(self) -> None:
        ctx = AnalysisContext(1)
        for i in range(6):
            ctx.load_shared(a(i, 0))
            ctx.evict_shared(a(i, 0))
        assert check_capacity(ctx.events, cs=1, cd=1, p=1) == []

    def test_redundant_load_does_not_grow_set(self) -> None:
        ctx = AnalysisContext(1)
        ctx.load_shared(a(0, 0))
        ctx.load_shared(a(0, 0))
        assert check_capacity(ctx.events, cs=1, cd=1, p=1) == []


class TestParameters:
    def test_clean_on_valid_algorithm(self, quad) -> None:
        from repro.algorithms.shared_opt import SharedOpt

        alg = SharedOpt(quad, 9, 9, 9)
        assert check_parameters(alg, machine="quad") == []

    def test_lambda_violation_flagged(self, quad) -> None:
        # Bypass the constructor guard the way a refactor bug would.
        from repro.algorithms.shared_opt import SharedOpt

        alg = SharedOpt(quad, 9, 9, 9)
        alg.lam = quad.cs  # 1 + CS + CS**2 > CS, grossly over
        found = check_parameters(alg, machine="quad")
        assert len(found) == 1
        assert "1 + λ + λ²" in found[0].message

    def test_mu_violation_flagged(self, quad) -> None:
        from repro.algorithms.distributed_opt import DistributedOpt

        alg = DistributedOpt(quad, 8, 8, 8)
        alg.mu = quad.cd
        found = check_parameters(alg, machine="quad")
        assert any("µ²" in f.message for f in found)

    def test_alpha_alignment_flagged(self, quad) -> None:
        from repro.algorithms.tradeoff import Tradeoff

        alg = Tradeoff(quad, 8, 8, 8)
        alg.alpha += 1  # no longer a multiple of sqrt(p)*mu
        found = check_parameters(alg, machine="quad")
        assert any("multiple of √p·µ" in f.message for f in found)


class TestPresence:
    def test_clean_baseline(self) -> None:
        ctx = AnalysisContext(1)
        record_1x1x1(ctx)
        assert check_presence(ctx.events, p=1) == []

    def test_compute_without_load_flagged(self) -> None:
        # The seeded bug: compute with no load anywhere.
        ctx = AnalysisContext(1)
        ctx.load_shared(c(0, 0))  # only C is staged properly...
        ctx.load_dist(0, c(0, 0))
        ctx.compute(0, c(0, 0), a(0, 0), b(0, 0))  # ...A and B are not
        found = errors(check_presence(ctx.events, p=1))
        assert len(found) == 2
        assert all("not resident" in f.message for f in found)

    def test_load_dist_of_absent_block_flagged(self) -> None:
        ctx = AnalysisContext(1)
        ctx.load_dist(0, a(0, 0))  # never entered the shared cache
        found = errors(check_presence(ctx.events, p=1))
        assert any("absent from the shared cache" in f.message for f in found)

    def test_inclusion_violation_flagged(self) -> None:
        ctx = AnalysisContext(2)
        ctx.load_shared(a(0, 0))
        ctx.load_dist(1, a(0, 0))
        ctx.evict_shared(a(0, 0))  # core 1 still holds it
        found = errors(check_presence(ctx.events, p=2))
        assert len(found) == 1
        assert "core(s) [1] still hold it" in found[0].message

    def test_double_eviction_flagged(self) -> None:
        ctx = AnalysisContext(1)
        ctx.load_shared(a(0, 0))
        ctx.evict_shared(a(0, 0))
        ctx.evict_shared(a(0, 0))
        found = errors(check_presence(ctx.events, p=1))
        assert any("spurious shared eviction" in f.message for f in found)

    def test_dead_load_is_a_warning(self) -> None:
        ctx = AnalysisContext(1)
        ctx.load_shared(a(0, 0))
        ctx.evict_shared(a(0, 0))  # loaded, never consumed
        found = check_presence(ctx.events, p=1)
        assert [f.severity for f in found] == [WARNING]
        assert "dead shared load" in found[0].message

    def test_leaked_residency_is_a_warning(self) -> None:
        ctx = AnalysisContext(1)
        ctx.load_shared(a(0, 0))
        ctx.load_dist(0, a(0, 0))
        found = check_presence(ctx.events, p=1)
        assert all(f.severity == WARNING for f in found)
        assert any("still resident" in f.message for f in found)

    def test_writeback_counts_as_shared_use(self) -> None:
        # C round-trips without a distributed re-read of the shared
        # copy; the dirty write-back is what justifies the shared load.
        ctx = AnalysisContext(1)
        record_1x1x1(ctx)
        assert all("dead" not in f.message for f in check_presence(ctx.events, p=1))


class TestCoverage:
    def test_clean_baseline(self) -> None:
        ctx = AnalysisContext(1)
        record_1x1x1(ctx)
        assert check_coverage(ctx.events, 1, 1, 1) == []

    def test_missing_contribution_flagged(self) -> None:
        ctx = AnalysisContext(1)
        ctx.compute(0, c(0, 0), a(0, 0), b(0, 0))
        # z=2: the k=1 contribution is never emitted.
        found = check_coverage(ctx.events, 1, 1, 2)
        assert len(found) == 1
        assert "accumulated 1/2 contributions" in found[0].message

    def test_duplicate_update_flagged(self) -> None:
        ctx = AnalysisContext(1)
        ctx.compute(0, c(0, 0), a(0, 0), b(0, 0))
        ctx.compute(0, c(0, 0), a(0, 0), b(0, 0))
        found = check_coverage(ctx.events, 1, 1, 1)
        assert len(found) == 1
        assert "emitted twice" in found[0].message

    def test_inconsistent_coordinates_flagged(self) -> None:
        ctx = AnalysisContext(1)
        # C[0,0] += A[0,0] * B[1,0]: inner indices disagree (k=0 vs k=1).
        ctx.compute(0, c(0, 0), a(0, 0), b(1, 0))
        found = check_coverage(ctx.events, 1, 1, 2)
        assert any("inconsistent coordinates" in f.message for f in found)

    def test_wrong_matrix_flagged(self) -> None:
        ctx = AnalysisContext(1)
        ctx.compute(0, c(0, 0), b(0, 0), a(0, 0))  # A and B swapped
        found = check_coverage(ctx.events, 1, 1, 1)
        assert any("operands from A, B and C" in f.message for f in found)

    def test_out_of_range_flagged(self) -> None:
        ctx = AnalysisContext(1)
        ctx.compute(0, c(2, 0), a(2, 0), b(0, 0))  # i=2 outside m=1
        found = check_coverage(ctx.events, 1, 1, 1)
        assert any("outside the 1×1×1 iteration space" in f.message for f in found)


class TestRaces:
    def test_two_cores_same_c_block_races(self) -> None:
        # The canonical seeded race: both cores accumulate into C[0,0]
        # within one epoch (no shared-level barrier between them).
        ctx = AnalysisContext(2)
        ctx.load_shared(c(0, 0))
        ctx.load_shared(a(0, 0))
        ctx.load_shared(b(0, 0))
        ctx.load_shared(a(0, 1))
        ctx.load_shared(b(1, 0))
        for core, k in ((0, 0), (1, 1)):
            ctx.load_dist(core, c(0, 0))
            ctx.load_dist(core, a(0, k))
            ctx.load_dist(core, b(k, 0))
            ctx.compute(core, c(0, 0), a(0, k), b(k, 0))
        found = check_races(ctx.events, p=2)
        # Two distinct races: core 1's load_dist of C reads what core 0
        # concurrently writes, then core 1's own compute write/writes it.
        assert [f.severity for f in found] == [ERROR, ERROR]
        assert "read/write race on C[0,0]" in found[0].message
        assert "write/write race on C[0,0]" in found[1].message

    def test_barrier_between_writers_synchronizes(self) -> None:
        # Same accesses, but an evict_shared (master barrier) separates
        # the two cores' epochs: no race.
        ctx = AnalysisContext(2)
        for core, k in ((0, 0), (1, 1)):
            ctx.load_shared(a(0, k))  # barrier opens a new epoch
            ctx.load_dist(core, c(0, 0))
            ctx.load_dist(core, a(0, k))
            ctx.load_dist(core, b(k, 0))
            ctx.compute(core, c(0, 0), a(0, k), b(k, 0))
            ctx.evict_dist(core, c(0, 0))
            ctx.evict_shared(a(0, k))
        assert check_races(ctx.events, p=2) == []

    def test_read_write_race_flagged(self) -> None:
        # Core 0 writes a block core 1 concurrently reads.
        ctx = AnalysisContext(2)
        ctx.load_shared(c(0, 0))
        ctx.load_dist(1, c(0, 0))  # reader
        ctx.load_dist(0, c(0, 0))
        ctx.load_dist(0, a(0, 0))
        ctx.load_dist(0, b(0, 0))
        ctx.compute(0, c(0, 0), a(0, 0), b(0, 0))  # writer
        found = check_races(ctx.events, p=2)
        assert len(found) == 1
        assert "read/write race on C[0,0]" in found[0].message

    def test_shared_reads_do_not_race(self) -> None:
        # Both cores read the same A element concurrently: fine (this
        # is exactly how distributed-opt shares A along grid rows).
        ctx = AnalysisContext(2)
        ctx.load_shared(a(0, 0))
        ctx.load_dist(0, a(0, 0))
        ctx.load_dist(1, a(0, 0))
        assert check_races(ctx.events, p=2) == []

    def test_dirty_writeback_races_with_reader(self) -> None:
        ctx = AnalysisContext(2)
        ctx.load_shared(c(0, 0))
        ctx.load_shared(a(0, 0))
        ctx.load_shared(b(0, 0))
        ctx.load_dist(0, c(0, 0))
        ctx.load_dist(0, a(0, 0))
        ctx.load_dist(0, b(0, 0))
        ctx.compute(0, c(0, 0), a(0, 0), b(0, 0))
        ctx.evict_dist(0, c(0, 0))  # dirty write-back = write...
        ctx.load_dist(1, c(0, 0))  # ...concurrent with this read
        found = check_races(ctx.events, p=2)
        assert len(found) >= 1
        assert any("C[0,0]" in f.message for f in found)

    def test_clean_eviction_is_not_a_write(self) -> None:
        ctx = AnalysisContext(2)
        ctx.load_shared(a(0, 0))
        ctx.load_dist(0, a(0, 0))
        ctx.evict_dist(0, a(0, 0))  # clean: data untouched
        ctx.load_dist(1, a(0, 0))
        assert check_races(ctx.events, p=2) == []


class TestFindingLimiter:
    def test_flood_is_capped_with_suppression_notice(self) -> None:
        ctx = AnalysisContext(1)
        for i in range(40):
            ctx.evict_shared(a(i, 0))  # 40 spurious evictions
        found = check_presence(ctx.events, p=1, limit=25)
        assert len(found) == 26
        assert "further findings suppressed" in found[-1].message

    def test_raw_tuples_accepted(self) -> None:
        # Analyzers take plain event sequences, not only contexts.
        events: List[Event] = [(1, -1, a(0, 0))]
        found = check_presence(events, p=1)
        assert len(found) == 1


class TestRendering:
    def test_finding_render_carries_context(self) -> None:
        ctx = AnalysisContext(1)
        for i in range(5):
            ctx.load_shared(a(i, 0))
        found = check_capacity(
            ctx.events, cs=4, cd=4, p=1, algorithm="demo", machine="q32"
        )
        text = found[0].render()
        assert "capacity" in text
        assert "demo @ q32" in text
        assert "(event 4)" in text

    def test_to_dict_round_trips_fields(self) -> None:
        ctx = AnalysisContext(1)
        ctx.evict_shared(a(0, 0))
        d = check_presence(ctx.events, p=1)[0].to_dict()
        assert d["analyzer"] == "presence"
        assert d["severity"] == ERROR
