"""Tests for the determinism analyzer (`determinism/*` rules)."""

import ast

from repro.check.determinism import check_determinism


def findings_for(source):
    return check_determinism(ast.parse(source), "m.py", source=source)


def rule_ids(source):
    return [f.rule_id for f in findings_for(source)]


class TestWallClock:
    def test_time_time_into_serde_path(self):
        # The canonical mutation: stamping a record with the wall clock
        # right before serialization.
        src = (
            "import json, time\n"
            "def write(record, fh):\n"
            "    record['ts'] = time.time()\n"
            "    json.dump(record, fh, sort_keys=True)\n"
        )
        assert rule_ids(src) == ["determinism/wall-clock"]

    def test_datetime_now_and_utcnow(self):
        src = (
            "from datetime import datetime\n"
            "a = datetime.now()\n"
            "b = datetime.utcnow()\n"
        )
        assert rule_ids(src) == ["determinism/wall-clock"] * 2

    def test_monotonic_timers_allowed(self):
        # perf_counter/monotonic measure durations, not identity.
        src = (
            "import time\n"
            "t0 = time.perf_counter()\n"
            "t1 = time.monotonic()\n"
        )
        assert rule_ids(src) == []


class TestRng:
    def test_random_module(self):
        assert rule_ids("import random\nx = random.random()\n") == [
            "determinism/rng"
        ]
        assert rule_ids("import random\nx = random.randint(0, 9)\n") == [
            "determinism/rng"
        ]

    def test_entropy_sources(self):
        assert rule_ids("import os\nx = os.urandom(8)\n") == [
            "determinism/rng"
        ]
        assert rule_ids("import uuid\nx = uuid.uuid4()\n") == [
            "determinism/rng"
        ]

    def test_seeded_local_generator_is_clean(self):
        # A seeded Generator instance replays deterministically; only
        # module-level / entropy-backed draws are identity hazards.
        assert rule_ids("x = rng.random()\n") == []

    def test_non_rng_names_clean(self):
        assert rule_ids("x = spec.randomize_label()\n") == []


class TestUnsortedWalk:
    def test_bare_iterdir_flagged(self):
        src = "def walk(p):\n    for entry in p.iterdir():\n        pass\n"
        assert rule_ids(src) == ["determinism/unsorted-walk"]

    def test_sorted_wrap_is_clean(self):
        src = (
            "def walk(p):\n"
            "    for entry in sorted(p.iterdir()):\n"
            "        pass\n"
        )
        assert rule_ids(src) == []

    def test_membership_test_is_clean(self):
        # `x in os.listdir(d)` does not depend on enumeration order.
        src = "import os\nok = 'a.json' in os.listdir(d)\n"
        assert rule_ids(src) == []

    def test_glob_flagged_len_clean(self):
        assert rule_ids("hits = p.glob('*.json')\n") == [
            "determinism/unsorted-walk"
        ]
        assert rule_ids("n = len(list(p.glob('*.json')))\n") == []


class TestSetOrder:
    def test_iterating_set_flagged(self):
        src = (
            "def render(xs):\n"
            "    s = set(xs)\n"
            "    for x in s:\n"
            "        emit(x)\n"
        )
        assert rule_ids(src) == ["determinism/set-order"]

    def test_sorted_set_is_clean(self):
        src = (
            "def render(xs):\n"
            "    for x in sorted(set(xs)):\n"
            "        emit(x)\n"
        )
        assert rule_ids(src) == []

    def test_join_over_set(self):
        src = "def f(xs):\n    return ','.join({str(x) for x in xs})\n"
        assert rule_ids(src) == ["determinism/set-order"]

    def test_dumps_of_set_derived_value(self):
        src = (
            "import json\n"
            "def f(xs):\n"
            "    keys = list(set(xs))\n"
            "    return json.dumps(keys)\n"
        )
        assert rule_ids(src) == ["determinism/set-order"]

    def test_sort_keys_does_not_excuse_set_values(self):
        # sort_keys=True orders dict keys, not list-from-set values —
        # but the analyzer deliberately limits itself to the documented
        # escape hatch, so this stays the analyzer's contract either way.
        src = (
            "import json\n"
            "def f(d):\n"
            "    return json.dumps(d, sort_keys=True)\n"
        )
        assert rule_ids(src) == []

    def test_cross_method_set_attribute(self):
        # The exact shape of the sim/parallel.py bug this rule found:
        # a set built in __init__, iterated (via list()) elsewhere.
        src = (
            "class Pool:\n"
            "    def __init__(self):\n"
            "        self.outstanding = set()\n"
            "    def drain(self):\n"
            "        for key in list(self.outstanding):\n"
            "            emit(key)\n"
            "    def drain_sorted(self):\n"
            "        for key in sorted(self.outstanding):\n"
            "            emit(key)\n"
        )
        findings = findings_for(src)
        assert [f.rule_id for f in findings] == ["determinism/set-order"]
        # Line-exact: only the unsorted iteration, not drain_sorted's.
        assert findings[0].location.endswith(":5")


class TestHashInKey:
    def test_builtin_hash_flagged(self):
        assert rule_ids("key = hash(obj)\n") == ["determinism/hash-in-key"]

    def test_hashlib_is_clean(self):
        src = "import hashlib\nkey = hashlib.sha256(b'x').hexdigest()\n"
        assert rule_ids(src) == []

    def test_method_named_hash_is_clean(self):
        assert rule_ids("key = spec.hash()\n") == []
