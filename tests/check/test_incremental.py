"""Incremental checking: cache hits replay, any input change invalidates."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro.check.incremental as incremental
from repro.algorithms.registry import get_algorithm
from repro.check import ReportCache, check_all
from repro.check.incremental import checker_fingerprint
from repro.model.machine import MulticoreMachine

MACHINE = MulticoreMachine(p=4, cs=100, cd=21, q=8)


def _sweep(cache: ReportCache):
    return check_all(["shared-opt"], {"quad": MACHINE}, orders=[9], cache=cache)


class TestReportCache:
    def test_cold_then_warm(self, tmp_path: Path) -> None:
        cache = ReportCache(tmp_path / "cache")
        cold = _sweep(cache)
        assert cache.stats() == (0, 1)
        assert [r.cached for r in cold] == [False]
        assert any((tmp_path / "cache").glob("*.json")), "cell not persisted"

        warm_cache = ReportCache(tmp_path / "cache")
        warm = _sweep(warm_cache)
        assert warm_cache.stats() == (1, 0)
        assert [r.cached for r in warm] == [True]
        assert warm[0].to_dict()["cached"] is True
        # Replay is verbatim: same verdict, counts and findings.
        assert warm[0].findings == cold[0].findings
        assert (warm[0].events, warm[0].computes) == (
            cold[0].events,
            cold[0].computes,
        )

    def test_cell_key_depends_on_every_input(self, tmp_path: Path) -> None:
        cache = ReportCache(tmp_path)
        cls = get_algorithm("shared-opt")
        base = cache.cell_key(cls, MACHINE, "quad", (9,))
        assert cache.cell_key(cls, MACHINE, "quad", (9,)) == base
        assert cache.cell_key(cls, MACHINE, "quad", (9, 12)) != base
        assert cache.cell_key(cls, MACHINE, "other", (9,)) != base
        bigger = MulticoreMachine(p=4, cs=200, cd=21, q=8)
        assert cache.cell_key(cls, bigger, "quad", (9,)) != base
        other_cls = get_algorithm("outer-product")
        assert cache.cell_key(other_cls, MACHINE, "quad", (9,)) != base

    def test_checker_version_bump_invalidates(
        self, tmp_path: Path, monkeypatch: pytest.MonkeyPatch
    ) -> None:
        cache = ReportCache(tmp_path / "cache")
        _sweep(cache)
        monkeypatch.setattr(incremental, "CHECKER_VERSION", 999)
        bumped = ReportCache(tmp_path / "cache")
        assert bumped.checker_fp != cache.checker_fp
        bumped_reports = _sweep(bumped)
        assert bumped.stats() == (0, 1)  # miss: key changed, re-analyzed
        assert [r.cached for r in bumped_reports] == [False]

    def test_corrupt_entry_is_a_miss(self, tmp_path: Path) -> None:
        root = tmp_path / "cache"
        cache = ReportCache(root)
        _sweep(cache)
        for path in sorted(root.glob("*.json")):
            path.write_text("garbage {")
        again = ReportCache(root)
        reports = _sweep(again)
        assert again.stats() == (0, 1)
        assert [r.cached for r in reports] == [False]

    def test_tampered_cell_key_is_a_miss(self, tmp_path: Path) -> None:
        # Content addressing: an entry claiming the wrong cell never replays.
        root = tmp_path / "cache"
        cache = ReportCache(root)
        _sweep(cache)
        (path,) = sorted(root.glob("*.json"))
        payload = json.loads(path.read_text())
        payload["cell"] = "0" * 64
        path.write_text(json.dumps(payload))
        again = ReportCache(root)
        _sweep(again)
        assert again.stats() == (0, 1)

    def test_fingerprint_is_stable_within_a_tree(self) -> None:
        assert checker_fingerprint() == checker_fingerprint()

    def test_skipped_cells_cache_too(self, tmp_path: Path) -> None:
        hexa = MulticoreMachine(p=6, cs=120, cd=16, q=8)
        cache = ReportCache(tmp_path / "cache")
        cold = check_all(["distributed-opt"], {"hex": hexa}, orders=[8], cache=cache)
        assert [r.skipped for r in cold] == [True]
        warm_cache = ReportCache(tmp_path / "cache")
        warm = check_all(
            ["distributed-opt"], {"hex": hexa}, orders=[8], cache=warm_cache
        )
        assert warm_cache.stats() == (1, 0)
        assert [r.skipped for r in warm] == [True]
        assert warm[0].skip_reason == cold[0].skip_reason
