"""Tests for the fingerprint-purity analyzer (`purity/knob-in-fingerprint`)."""

import ast
from pathlib import Path

from repro.check.purity import KNOBS, check_purity

SRC_ROOT = Path(__file__).resolve().parents[2] / "src" / "repro"

RULE = "purity/knob-in-fingerprint"


def findings_for(source):
    return check_purity(ast.parse(source), "m.py", source=source)


class TestMutationFixtures:
    def test_knob_parameter_into_fingerprint_arg(self):
        src = (
            "def fp(self, workers):\n"
            "    return cell_fingerprint(algorithm='a', n_workers=workers)\n"
        )
        (finding,) = findings_for(src)
        assert finding.rule_id == RULE
        assert "workers" in finding.message

    def test_knob_attribute_flows_across_statements(self):
        src = (
            "class Runner:\n"
            "    def __init__(self, workers):\n"
            "        self.workers = workers\n"
            "    def fp(self):\n"
            "        extra = {'pool': self.workers}\n"
            "        return cell_fingerprint(kwargs=extra)\n"
        )
        (finding,) = findings_for(src)
        assert finding.rule_id == RULE

    def test_knob_subscript_into_fingerprint(self):
        src = (
            "def fp(kwargs):\n"
            "    eng = kwargs['engine']\n"
            "    return cell_fingerprint(kwargs={'engine': eng})\n"
        )
        (finding,) = findings_for(src)
        assert finding.rule_id == RULE
        assert "engine" in finding.message

    def test_knob_into_checkpoint_writer_payload(self):
        src = (
            "def save(store, retries):\n"
            "    writer = CheckpointWriter(store)\n"
            "    writer.append({'attempts': retries})\n"
        )
        (finding,) = findings_for(src)
        assert finding.rule_id == RULE
        assert "retries" in finding.message

    def test_key_filter_idiom_is_clean(self):
        # The sanctioned pattern from sim/parallel.py: strip the engine
        # knobs out of kwargs before fingerprinting.
        src = (
            "def fp(kwargs):\n"
            "    clean = {k: v for k, v in kwargs.items()"
            " if k not in ('engine', 'strict_engine')}\n"
            "    return cell_fingerprint(kwargs=clean)\n"
        )
        assert findings_for(src) == []

    def test_untainted_args_are_clean(self):
        src = (
            "def fp(m, n, z):\n"
            "    return cell_fingerprint(m=m, n=n, z=z)\n"
        )
        assert findings_for(src) == []


class TestRealSources:
    """Acceptance: the fingerprint paths are pure with ZERO suppressions."""

    def _scan(self, relative):
        path = SRC_ROOT / relative
        source = path.read_text(encoding="utf-8")
        assert "noqa[purity" not in source, f"{relative} waives purity rules"
        return check_purity(ast.parse(source), str(path), source=source)

    def test_sim_parallel_is_pure(self):
        assert self._scan("sim/parallel.py") == []

    def test_store_checkpoint_is_pure(self):
        assert self._scan("store/checkpoint.py") == []

    def test_mutated_parallel_source_is_caught(self):
        # Negative control for the two clean assertions above: seed a
        # knob into the real cell fingerprint call and the rule fires.
        path = SRC_ROOT / "sim" / "parallel.py"
        source = path.read_text(encoding="utf-8")
        needle = "        return cell_fingerprint(\n            algorithm=algorithm,\n"
        assert needle in source
        mutated = source.replace(
            needle, needle + "            _pool=self.workers,\n", 1
        )
        findings = check_purity(ast.parse(mutated), str(path), source=mutated)
        assert [f.rule_id for f in findings] == [RULE]
        assert "workers" in findings[0].message


class TestKnobList:
    def test_knob_list_covers_engine_selection_and_pool_shape(self):
        for knob in ("engine", "strict_engine", "workers", "retries"):
            assert knob in KNOBS
