"""End-to-end checker runs: real schedules are clean, broken ones are not."""

from __future__ import annotations

from typing import Any, Dict

import pytest

from repro.algorithms.base import ExecutionContext, MatmulAlgorithm
from repro.algorithms.registry import algorithm_names, get_algorithm
from repro.cache.block import MAT_A, MAT_B, MAT_C, block_key
from repro.check import ScheduleReport, analyze_schedule, check_all
from repro.check.runner import suggested_orders
from repro.model.machine import PRESETS


class RacyEqual(MatmulAlgorithm):
    """Broken on purpose: every core accumulates into the SAME C block.

    Coverage also breaks (each update emitted p times) — one seeded bug,
    two analyzers that must catch it.
    """

    name = "abstract"  # never registered; lint exempts the marker

    def parameters(self) -> Dict[str, Any]:
        return {}

    def run(self, ctx: ExecutionContext) -> None:
        ck = block_key(MAT_C, 0, 0)
        ak = block_key(MAT_A, 0, 0)
        bk = block_key(MAT_B, 0, 0)
        if ctx.explicit:
            for key in (ck, ak, bk):
                ctx.load_shared(key)
            for core in range(ctx.p):
                for key in (ck, ak, bk):
                    ctx.load_dist(core, key)
        for core in range(ctx.p):
            ctx.compute(core, ck, ak, bk)
        if ctx.explicit:
            for core in range(ctx.p):
                for key in (ak, bk, ck):
                    ctx.evict_dist(core, key)
            for key in (ak, bk, ck):
                ctx.evict_shared(key)


class TestAnalyzeSchedule:
    @pytest.mark.parametrize("name", algorithm_names(include_extras=True))
    def test_registered_algorithms_clean_on_quad(self, name, quad):
        cls = get_algorithm(name)
        for order in suggested_orders(cls, quad):
            report = analyze_schedule(cls(quad, order, order, order))
            assert report.ok, [f.render() for f in report.findings]
            assert report.findings == []  # no warnings either
            assert report.computes == order**3

    def test_broken_schedule_caught(self, quad):
        report = analyze_schedule(RacyEqual(quad, 1, 1, 1), machine_label="quad")
        assert not report.ok
        analyzers = {f.analyzer for f in report.findings}
        assert "race" in analyzers  # p cores write one C block, one epoch
        assert "coverage" in analyzers  # the update is emitted p times

    def test_peaks_reported(self, quad):
        cls = get_algorithm("shared-opt")
        report = analyze_schedule(cls(quad, 9, 9, 9))
        assert 0 < report.peak_shared <= quad.cs
        assert len(report.peak_dist) == quad.p
        assert all(0 < d <= quad.cd for d in report.peak_dist)

    def test_compute_only_schedule_skips_residency(self, quad):
        # nested-max-reuse emits no directives; capacity/presence would
        # report everything as non-resident if not skipped.
        cls = get_algorithm("nested-max-reuse")
        report = analyze_schedule(cls(quad, 8, 8, 8))
        assert report.ok
        assert report.peak_shared == 0

    def test_report_to_dict(self, quad):
        cls = get_algorithm("cannon")
        d = analyze_schedule(cls(quad, 4, 4, 4), machine_label="quad").to_dict()
        assert d["algorithm"] == "cannon"
        assert d["machine"] == "quad"
        assert d["findings"] == []
        assert d["status"] == "analyzed"
        assert d["elapsed_s"] > 0  # per-cell wall time is recorded
        assert "skip_reason" not in d and "cached" not in d

    def test_report_round_trips_through_dict(self, quad):
        cls = get_algorithm("shared-opt")
        report = analyze_schedule(cls(quad, 9, 9, 9), machine_label="quad")
        rebuilt = ScheduleReport.from_dict(report.to_dict())
        assert rebuilt.algorithm == report.algorithm
        assert rebuilt.machine == report.machine
        assert (rebuilt.m, rebuilt.n, rebuilt.z) == (9, 9, 9)
        assert rebuilt.computes == report.computes
        assert rebuilt.peak_dist == report.peak_dist
        assert rebuilt.findings == report.findings


class TestCheckAll:
    def test_full_matrix_is_clean(self):
        reports = check_all()
        assert reports, "no schedule cells analyzed"
        # Every registered algorithm appears on at least one preset.
        assert {r.algorithm for r in reports} == set(
            algorithm_names(include_extras=True)
        )
        dirty = [f.render() for r in reports for f in r.findings]
        assert dirty == []

    def test_filters_respected(self):
        reports = check_all(["shared-opt"], {"q32": PRESETS["q32"]}, orders=[7])
        assert len(reports) == 1
        assert (reports[0].algorithm, reports[0].machine) == ("shared-opt", "q32")
        assert (reports[0].m, reports[0].n, reports[0].z) == (7, 7, 7)

    def test_infeasible_cells_reported_as_skipped(self):
        # 6 cores is not a square grid: distributed-opt has no feasible
        # parameters there.  The cell must come back as an explicit
        # skipped report (not vanish), carrying the reason and no
        # findings, so a consumer can tell sparse from empty.
        from repro.model.machine import MulticoreMachine

        machine = MulticoreMachine(p=6, cs=120, cd=16, q=8)
        reports = check_all(["distributed-opt"], {"hex": machine})
        assert len(reports) == 1
        (report,) = reports
        assert report.skipped
        assert report.status == "skipped"
        assert report.skip_reason
        assert report.findings == []
        assert report.ok  # skipping is not an error
        d = report.to_dict()
        assert d["status"] == "skipped"
        assert d["skip_reason"] == report.skip_reason

    def test_skipped_cells_do_not_hide_analyzed_ones(self):
        # Same sweep over two machines: the square grid analyzes, the
        # non-square one skips; both appear.
        from repro.model.machine import MulticoreMachine

        machines = {
            "hex": MulticoreMachine(p=6, cs=120, cd=16, q=8),
            "quad": MulticoreMachine(p=4, cs=100, cd=21, q=8),
        }
        reports = check_all(["distributed-opt"], machines)
        by_status = {r.machine: r.skipped for r in reports}
        assert by_status["hex"] is True
        assert by_status["quad"] is False


class TestSuggestedOrders:
    def test_small_tile_gets_even_and_ragged(self, quad):
        # shared-opt on quad: lambda=9 -> orders (18, 21).
        orders = suggested_orders(get_algorithm("shared-opt"), quad)
        assert orders == (18, 21)
        assert orders[0] % 9 == 0 and orders[1] % 9 != 0

    def test_large_tile_gets_single_ragged(self):
        # q32: lambda=30 -> a single ragged order keeps analysis fast.
        orders = suggested_orders(get_algorithm("shared-opt"), PRESETS["q32"])
        assert orders == (33,)
