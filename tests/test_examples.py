"""Smoke tests: every shipped example runs end-to-end at a small size."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))

#: Small-size argument per example (all accept an order/size argv[1]).
ARGS = {
    "quickstart.py": ["12"],
    "compare_algorithms.py": ["12"],
    "bandwidth_tradeoff.py": ["8"],
    "lru_vs_ideal.py": ["32"],
    "numeric_verification.py": ["6", "5", "4"],
    "lu_factorization.py": ["24"],
    "cache_topologies.py": ["12"],
    "replacement_policies.py": ["10"],
}


def test_every_example_is_covered():
    assert {p.name for p in EXAMPLES} == set(ARGS)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(path):
    proc = subprocess.run(
        [sys.executable, str(path), *ARGS[path.name]],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip(), "example produced no output"
