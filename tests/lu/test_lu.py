"""Tests for the LU factorization extension."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ConfigurationError, ScheduleError
from repro.lu.numeric import LUNumericContext, dominant_random, verify_lu_schedule
from repro.lu.ops import LUOpCounts
from repro.lu.runner import run_lu
from repro.lu.schedules import LU_SCHEDULES, LeftLookingLU, RightLookingLU
from repro.model.machine import MulticoreMachine, preset

MACHINE = MulticoreMachine(p=4, cs=100, cd=21, q=8)


class TestNumericCorrectness:
    @pytest.mark.parametrize("cls", list(LU_SCHEDULES.values()), ids=list(LU_SCHEDULES))
    @pytest.mark.parametrize("n", [1, 2, 4, 7])
    def test_factors_exactly(self, cls, n):
        verify_lu_schedule(cls(MACHINE, n), q=3)

    @pytest.mark.parametrize("cls", list(LU_SCHEDULES.values()), ids=list(LU_SCHEDULES))
    @given(n=st.integers(min_value=1, max_value=6), seed=st.integers(0, 10**6))
    @settings(max_examples=10, deadline=None)
    def test_factors_random_instances(self, cls, n, seed):
        verify_lu_schedule(cls(MACHINE, n), q=2, seed=seed)

    def test_both_schedules_same_factorization(self):
        """Same in-place L\\U, different order: results must agree."""
        a1 = dominant_random(5, 3, seed=9)
        a2 = a1.copy()
        c1 = LUNumericContext(4, a1)
        c2 = LUNumericContext(4, a2)
        RightLookingLU(MACHINE, 5).run(c1)
        LeftLookingLU(MACHINE, 5).run(c2)
        assert np.allclose(a1.data, a2.data)

    def test_op_counts_match_closed_forms(self):
        sched = RightLookingLU(MACHINE, 6)
        a = dominant_random(6, 2)
        ctx = LUNumericContext(4, a)
        sched.run(ctx)
        assert sum(ctx.ops.update) == sched.update_total
        assert sum(ctx.ops.trsm) == sched.trsm_total
        assert sum(ctx.ops.factor) == 6


class TestDependencyDiscipline:
    def test_trsm_before_factor_rejected(self):
        ctx = LUNumericContext(1, dominant_random(3, 2))
        with pytest.raises(ScheduleError):
            ctx.trsm_u(0, 0, 1)

    def test_update_before_panels_rejected(self):
        ctx = LUNumericContext(1, dominant_random(3, 2))
        ctx.factor(0, 0)
        with pytest.raises(ScheduleError):
            ctx.update(0, 1, 1, 0)  # panels (1,0) and (0,1) not solved

    def test_factor_before_history_rejected(self):
        ctx = LUNumericContext(1, dominant_random(3, 2))
        ctx.factor(0, 0)
        with pytest.raises(ScheduleError):
            ctx.factor(0, 1)  # update (1,1,0) missing

    def test_double_update_rejected(self):
        ctx = LUNumericContext(1, dominant_random(3, 2))
        ctx.factor(0, 0)
        ctx.trsm_u(0, 0, 1)
        ctx.trsm_l(0, 1, 0)
        ctx.update(0, 1, 1, 0)
        with pytest.raises(ScheduleError):
            ctx.update(0, 1, 1, 0)

    def test_incomplete_schedule_caught(self):
        ctx = LUNumericContext(1, dominant_random(2, 2))
        ctx.factor(0, 0)
        with pytest.raises(ScheduleError):
            ctx.assert_complete()

    def test_non_square_rejected(self):
        from repro.numerics.blockmatrix import BlockMatrix

        with pytest.raises(ScheduleError):
            LUNumericContext(1, BlockMatrix(2, 3, 2))

    def test_zero_pivot_detected(self):
        from repro.numerics.blockmatrix import BlockMatrix

        a = BlockMatrix(2, 2, 2)  # all-zero matrix
        ctx = LUNumericContext(1, a)
        with pytest.raises(ScheduleError):
            ctx.factor(0, 0)


class TestCounting:
    def test_run_lu_basic(self):
        r = run_lu("right-looking-lu", preset("q32"), 12, "lru")
        assert r.ms >= 12 * 12  # at least compulsory
        assert r.ms == 144  # matrix fits: compulsory only
        assert sum(r.ops.update) == 12 * 11 * 23 // 6

    def test_left_looking_wins_when_column_fits(self):
        """The Maximum-Reuse analogue: at n=40 (q32 preset) the active
        column plus its history panels fit in the shared cache, so the
        lazy schedule slashes shared misses; the eager one re-streams
        the trailing matrix every step."""
        rl = run_lu("right-looking-lu", preset("q32"), 40, "lru-50")
        ll = run_lu("left-looking-lu", preset("q32"), 40, "lru-50")
        assert ll.ms < 0.5 * rl.ms

    def test_equal_below_cache_capacity(self):
        rl = run_lu("right-looking-lu", preset("q32"), 16, "lru")
        ll = run_lu("left-looking-lu", preset("q32"), 16, "lru")
        assert rl.ms == ll.ms == 16 * 16

    def test_ideal_setting_rejected(self):
        with pytest.raises(ConfigurationError):
            run_lu("right-looking-lu", preset("q32"), 8, "ideal")

    def test_unknown_schedule(self):
        with pytest.raises(ConfigurationError):
            run_lu("crout-lu", preset("q32"), 8, "lru")

    def test_ccr_s_uses_weighted_work(self):
        r = run_lu("right-looking-lu", preset("q32"), 12, "lru")
        assert r.ccr_s == pytest.approx(r.ms / r.ops.weighted_total())

    def test_op_counts_zeros(self):
        ops = LUOpCounts.zeros(3)
        assert ops.totals() == {"factor": 0, "trsm": 0, "update": 0}
        assert ops.weighted_total() == 0
