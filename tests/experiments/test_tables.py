"""Tests for the §4.1 tables."""

from repro.experiments.tables import cache_configuration_table, parameter_table


class TestCacheConfigurations:
    def test_six_rows(self):
        rows = cache_configuration_table()
        assert len(rows) == 6

    def test_paper_values_present(self):
        rows = {r["preset"]: r for r in cache_configuration_table()}
        assert rows["q32"]["CS (paper)"] == 977
        assert rows["q32"]["CD (paper)"] == 21
        assert rows["q64"]["CD (paper)"] == 6
        assert rows["q80-pessimistic"]["CD (paper)"] == 3

    def test_recomputation_close_to_paper(self):
        for row in cache_configuration_table():
            # paper and first-principles capacities agree within ~20%
            assert abs(row["CD (paper)"] - row["CD (recomputed)"]) <= 1
            assert row["CS (recomputed)"] >= row["CS (paper)"]


class TestParameterTable:
    def test_lambda_mu_match_paper(self):
        rows = {r["preset"]: r for r in parameter_table()}
        assert rows["q32"]["lambda"] == 30
        assert rows["q32"]["mu"] == 4
        assert rows["q64"]["mu"] == 1  # the µ=1 collapse of Fig. 8(c)
        assert rows["q80"]["lambda"] == 12

    def test_tradeoff_params_feasible(self):
        for row in parameter_table():
            a, b = row["alpha"], row["beta"]
            assert a * a + 2 * a * b <= row["CS"]
