"""Tests for rendering and CSV output."""

import csv

from repro.experiments.figures import Figure, Panel
from repro.experiments.io import (
    figure_to_csv,
    panel_to_csv,
    render_figure,
    render_panel,
    render_rows,
    rows_to_csv,
)


def _panel():
    panel = Panel(
        key="a",
        title="demo",
        xlabel="order",
        ylabel="MS",
        xs=[8, 16],
    )
    panel.add("algo", [10.0, 20.0])
    panel.add("bound", [5.0, 9.5])
    return panel


class TestRenderRows:
    def test_alignment_and_headers(self):
        text = render_rows([{"a": 1, "bb": 2.5}, {"a": 100, "bb": 0.25}])
        lines = text.splitlines()
        assert "a" in lines[0] and "bb" in lines[0]
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_empty(self):
        assert render_rows([]) == "(empty)"

    def test_float_formatting(self):
        text = render_rows([{"v": 123456789.0}, {"v": 0.000123}])
        assert "1.235e+08" in text
        assert "0.000123" in text


class TestPanelRendering:
    def test_render_panel_contains_series(self):
        text = render_panel(_panel())
        assert "algo" in text and "bound" in text
        assert "order" in text
        assert "[a] demo" in text

    def test_render_figure(self):
        fig = Figure(id="figX", title="T", caption="C", panels=[_panel()])
        text = render_figure(fig)
        assert "figX" in text and "T" in text and "C" in text


class TestCSV:
    def test_panel_to_csv_roundtrip(self, tmp_path):
        path = tmp_path / "p.csv"
        panel_to_csv(_panel(), path)
        with path.open() as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["order", "algo", "bound"]
        assert rows[1] == ["8", "10.0", "5.0"]

    def test_figure_to_csv_one_file_per_panel(self, tmp_path):
        fig = Figure(id="figX", title="T", caption="C", panels=[_panel(), _panel()])
        fig.panels[1].key = "b"
        paths = figure_to_csv(fig, tmp_path)
        assert [p.name for p in paths] == ["figXa.csv", "figXb.csv"]
        assert all(p.exists() for p in paths)

    def test_rows_to_csv(self, tmp_path):
        path = tmp_path / "rows.csv"
        rows_to_csv([{"x": 1, "y": 2}], path)
        assert path.read_text().startswith("x,y")

    def test_rows_to_csv_union_of_all_rows(self, tmp_path):
        # A column appearing only in a later row must not be dropped.
        path = tmp_path / "rows.csv"
        rows_to_csv([{"x": 1}, {"x": 2, "MS_pred": 7}], path)
        with path.open() as fh:
            rows = list(csv.DictReader(fh))
        assert rows[0] == {"x": "1", "MS_pred": ""}
        assert rows[1] == {"x": "2", "MS_pred": "7"}

    def test_rows_to_csv_empty_with_fieldnames_is_header_only(self, tmp_path):
        path = tmp_path / "empty.csv"
        rows_to_csv([], path, fieldnames=["x", "y"])
        assert path.read_text().strip() == "x,y"

    def test_rows_to_csv_explicit_fieldnames_pin_order(self, tmp_path):
        path = tmp_path / "rows.csv"
        rows_to_csv([{"b": 2, "a": 1}], path, fieldnames=["a", "b"])
        assert path.read_text().splitlines()[0] == "a,b"


class TestFieldnameUnion:
    def test_first_seen_order(self):
        from repro.experiments.io import fieldname_union

        rows = [{"b": 1, "a": 2}, {"c": 3, "a": 4}, {"d": 5}]
        assert fieldname_union(rows) == ["b", "a", "c", "d"]

    def test_render_rows_includes_late_columns(self):
        text = render_rows([{"x": 1}, {"x": 2, "late": 9}])
        assert "late" in text.splitlines()[0]
