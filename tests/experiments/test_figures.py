"""Tests for the figure-regeneration harness.

Tiny orders keep these fast; the *content* claims (who wins where) are
covered in tests/integration/test_paper_claims.py at more meaningful
sizes.
"""

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.figures import (
    FIGURES,
    figure4,
    figure7,
    figure9,
    figure12,
    get_figure,
)

TINY = (8, 16)


class TestStructure:
    def test_registry_covers_4_to_12_plus_extensions(self):
        paper = {f"fig{i}" for i in range(4, 13)}
        assert paper <= set(FIGURES)
        assert set(FIGURES) - paper == {"ext-lu", "ext-nested"}

    def test_extension_figures_build(self):
        lu = get_figure("ext-lu", orders=(16, 24))
        assert lu.panels[0].xs == [16, 24]
        nested = get_figure("ext-nested", orders=(16,))
        series = nested.panels[0].series
        assert series["nested-max-reuse"][0] <= series["distributed-opt (flat)"][0]

    def test_get_figure_unknown(self):
        with pytest.raises(ConfigurationError):
            get_figure("fig99")

    def test_figure4_shape(self):
        fig = figure4(orders=TINY)
        assert fig.id == "fig4"
        assert len(fig.panels) == 1
        panel = fig.panels[0]
        assert panel.xs == list(TINY)
        assert set(panel.series) == {
            "shared-opt LRU (C)",
            "shared-opt LRU (2C)",
            "Formula (C)",
            "2x Formula (C)",
        }

    def test_figure4_formula_doubling(self):
        fig = figure4(orders=TINY)
        panel = fig.panels[0]
        for f, f2 in zip(panel.series["Formula (C)"], panel.series["2x Formula (C)"]):
            assert f2 == pytest.approx(2 * f)

    def test_figure7_three_panels(self):
        fig = figure7(orders=TINY)
        assert [p.key for p in fig.panels] == ["a", "b", "c"]
        for panel in fig.panels:
            assert "Lower Bound" in panel.series
            assert "Shared Opt. LRU-50" in panel.series
            assert all(len(v) == len(TINY) for v in panel.series.values())

    def test_figure12_six_panels(self):
        fig = figure12(order=6, ratios=[0.25, 0.75])
        assert len(fig.panels) == 6
        for panel in fig.panels:
            assert panel.xs == [0.25, 0.75]
            assert "tradeoff IDEAL" in panel.series
            assert "Lower Bound" in panel.series

    def test_panel_add_validates_length(self):
        fig = figure4(orders=TINY)
        with pytest.raises(ConfigurationError):
            fig.panels[0].add("bad", [1.0])

    def test_figure7_panels_filter_builds_subset(self):
        # The nightly pipeline shards figures by panel key; a filtered
        # build must reproduce exactly the full build's panels.
        full = figure7(orders=TINY)
        shard = figure7(orders=TINY, panels_filter=("a", "c"))
        assert [p.key for p in shard.panels] == ["a", "c"]
        by_key = {p.key: p for p in full.panels}
        for panel in shard.panels:
            assert panel.series == by_key[panel.key].series

    def test_figure9_shards_cover_full_build(self):
        full = figure9(orders=(8,))
        merged = {}
        for keys in (("a", "b"), ("c", "d")):
            for panel in figure9(orders=(8,), panels_filter=keys).panels:
                merged[panel.key] = panel.series
        assert merged == {p.key: p.series for p in full.panels}

    def test_figure_workers_match_serial(self):
        serial = figure7(orders=TINY)
        par = figure7(orders=TINY, workers=2)
        assert {p.key: p.series for p in par.panels} == {
            p.key: p.series for p in serial.panels
        }


class TestContent:
    def test_figure4_lru_2c_below_twice_formula(self):
        """The headline claim of Figs. 4-6 at small scale."""
        fig = figure4(orders=(32, 48))
        panel = fig.panels[0]
        for lru2, twice in zip(
            panel.series["shared-opt LRU (2C)"], panel.series["2x Formula (C)"]
        ):
            assert lru2 <= twice

    def test_figure7_lower_bound_is_lowest(self):
        fig = figure7(orders=(24,))
        for panel in fig.panels:
            bound = panel.series["Lower Bound"][0]
            for label, values in panel.series.items():
                if label != "Lower Bound":
                    assert values[0] >= bound * 0.999
