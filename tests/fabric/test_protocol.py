"""Wire-protocol framing: sealed lines, tamper and truncation rejection."""

import io
import json
import socket
import threading

import pytest

from repro.exceptions import ProtocolError
from repro.fabric.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    decode_line,
    encode_line,
    error_reply,
    read_message,
    request,
)


class TestRoundTrip:
    def test_encode_decode(self):
        message = decode_line(encode_line({"type": "lease", "worker": "w1"}))
        assert message["type"] == "lease"
        assert message["worker"] == "w1"
        assert message["v"] == PROTOCOL_VERSION

    def test_read_message_from_stream(self):
        stream = io.BytesIO(encode_line({"type": "ack", "renewed": True}))
        assert read_message(stream)["renewed"] is True


class TestRejection:
    def test_truncated_line(self):
        data = encode_line({"type": "lease", "worker": "w1"})
        with pytest.raises(ProtocolError, match="unterminated"):
            decode_line(data[:-5])

    def test_tampered_payload(self):
        data = encode_line({"type": "lease", "worker": "w1"})
        payload = json.loads(data)
        payload["worker"] = "imposter"
        tampered = json.dumps(payload).encode() + b"\n"
        with pytest.raises(ProtocolError, match="checksum mismatch"):
            decode_line(tampered)

    def test_wrong_version(self):
        payload = json.loads(encode_line({"type": "lease"}))
        payload["v"] = PROTOCOL_VERSION + 1
        with pytest.raises(ProtocolError, match="unsupported protocol version"):
            decode_line(json.dumps(payload).encode() + b"\n")

    def test_not_json(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            decode_line(b"hello there\n")

    def test_not_an_object(self):
        with pytest.raises(ProtocolError, match="not a JSON object"):
            decode_line(b"[1, 2, 3]\n")

    def test_missing_type(self):
        from repro.store.checkpoint import seal_record

        sealed = seal_record({"v": PROTOCOL_VERSION, "worker": "w1"})
        with pytest.raises(ProtocolError, match="has no type"):
            decode_line(json.dumps(sealed).encode() + b"\n")

    def test_oversize_message_refused_on_encode(self):
        with pytest.raises(ProtocolError, match="frame limit"):
            encode_line({"type": "result", "blob": "x" * (MAX_LINE_BYTES + 1)})

    def test_closed_stream(self):
        with pytest.raises(ProtocolError, match="connection closed"):
            read_message(io.BytesIO(b""))


class TestRequest:
    def _serve_once(self, reply_payload):
        """One-shot TCP server thread; returns (host, port)."""
        server = socket.create_server(("127.0.0.1", 0))

        def serve():
            conn, _addr = server.accept()
            with conn, conn.makefile("rb") as fh:
                read_message(fh)
                conn.sendall(encode_line(reply_payload))
            server.close()

        threading.Thread(target=serve, daemon=True).start()
        return server.getsockname()

    def test_round_trip_over_tcp(self):
        address = self._serve_once({"type": "ack", "renewed": False})
        reply = request(address, {"type": "heartbeat", "worker": "w1", "fp": "a"})
        assert reply == {
            "type": "ack",
            "renewed": False,
            "v": PROTOCOL_VERSION,
            "sum": reply["sum"],
        }

    def test_error_reply_raises(self):
        address = self._serve_once(error_reply("no such cell"))
        with pytest.raises(ProtocolError, match="no such cell"):
            request(address, {"type": "lease", "worker": "w1"})

    def test_unreachable_peer_raises_oserror(self):
        sock = socket.create_server(("127.0.0.1", 0))
        address = sock.getsockname()
        sock.close()
        with pytest.raises(OSError):
            request(address, {"type": "lease", "worker": "w1"}, timeout=0.5)
