"""Coordinator state machine, driven through ``handle()`` — no sockets.

The TCP layer is a thin shell around :meth:`Coordinator.handle`; these
tests call it directly with an injected clock, so every lease expiry
and backoff promotion is deterministic.  The crash/restart tests
simulate a SIGKILL at the storage level: the run directory is abandoned
mid-flight (no stop event, no terminals, ``run.json`` left
``running``) and a second coordinator resumes against it.
"""

import os
import tempfile
import time
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric.coordinator import fabric_order_sweep
from repro.fabric.journal import load_journal
from repro.model.machine import MulticoreMachine
from repro.sim.runner import run_experiment
from repro.sim.sweep import order_sweep
from repro.store import RunStore
from repro.store.serde import machine_from_dict, result_to_dict

MACHINE = MulticoreMachine(p=4, cs=100, cd=21, q=8)
ENTRIES = [("shared-opt", "ideal")]
ORDERS = [4, 6]


class Clock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


def build(run_dir, clock, *, entries=ENTRIES, orders=ORDERS, resume=False,
          lease_s=10.0, retries=2, backoff=0.01):
    """A prepared coordinator with no server/ticker threads running."""
    coordinator = fabric_order_sweep(
        entries,
        MACHINE,
        orders,
        run_dir=run_dir,
        resume=resume,
        lease_s=lease_s,
        retries=retries,
        backoff=backoff,
    )
    coordinator.clock = clock
    coordinator.leases.clock = clock
    coordinator._started_at = time.perf_counter()
    coordinator._prepare_store()
    return coordinator


def abandon(coordinator):
    """Simulate a coordinator SIGKILL at the storage level.

    No terminals, no stop event, ``run.json`` left ``running`` — the
    run directory looks exactly as a killed coordinator leaves it.
    """
    coordinator.writer.close()
    coordinator.journal.close()


def ok_message(grant, worker):
    cell = grant["cell"]
    machine = machine_from_dict(cell["machine"])
    result = run_experiment(
        cell["algorithm"], machine, cell["m"], cell["n"], cell["z"],
        cell["setting"], **cell["kwargs"],
    )
    result.attempts = grant["attempt"]
    return {
        "type": "result",
        "worker": worker,
        "fp": grant["fp"],
        "attempt": grant["attempt"],
        "pid": os.getpid(),
        "cell": {"label": cell["label"], "index": cell["index"], "x": cell["x"]},
        "ok": True,
        "result": result_to_dict(result),
        "wall_s": 0.001,
    }


def fail_message(grant, worker, *, retryable=True, error_type="Boom"):
    cell = grant["cell"]
    return {
        "type": "result",
        "worker": worker,
        "fp": grant["fp"],
        "attempt": grant["attempt"],
        "pid": os.getpid(),
        "cell": {"label": cell["label"], "index": cell["index"], "x": cell["x"]},
        "ok": False,
        "error_type": error_type,
        "error": "injected",
        "retryable": retryable,
        "wall_s": 0.001,
    }


def drain(coordinator, clock, worker="w1", bound=200):
    """Lease+complete until drained; returns how many cells this ran."""
    ran = 0
    for _ in range(bound):
        reply = coordinator.handle({"type": "lease", "worker": worker})
        kind = reply["type"]
        if kind == "drained":
            return ran
        if kind == "wait":
            clock.now += reply["delay_s"] + 0.01
            coordinator.tick()
            continue
        assert kind == "grant"
        coordinator.handle(ok_message(reply, worker))
        ran += 1
    raise AssertionError("queue failed to drain")


class TestHappyPath:
    def test_serves_every_cell_once_matches_serial(self, tmp_path):
        clock = Clock()
        coordinator = build(tmp_path / "run", clock)
        assert drain(coordinator, clock) == len(ORDERS)
        sweep = coordinator.finish()
        assert sweep.complete
        serial = order_sweep(ENTRIES, MACHINE, ORDERS)
        for label in serial.labels():
            assert sweep.values(label, "ms") == serial.values(label, "ms")
        replay = load_journal(RunStore(tmp_path / "run").journal_path)
        assert replay.exactly_once()
        assert len(replay.terminal) == len(ORDERS)
        stats = sweep.manifest.fabric
        assert stats.leases_granted == len(ORDERS)
        assert stats.results_accepted == len(ORDERS)
        assert stats.expired_leases == 0

    def test_wait_when_everything_is_leased(self, tmp_path):
        clock = Clock()
        coordinator = build(tmp_path / "run", clock)
        grants = []
        for worker in ("w1", "w2"):
            reply = coordinator.handle({"type": "lease", "worker": worker})
            assert reply["type"] == "grant"
            grants.append(reply)
        reply = coordinator.handle({"type": "lease", "worker": "w3"})
        assert reply["type"] == "wait"
        assert reply["delay_s"] > 0
        for grant, worker in zip(grants, ("w1", "w2")):
            coordinator.handle(ok_message(grant, worker))
        assert coordinator.handle({"type": "lease", "worker": "w3"})["type"] == "drained"
        assert coordinator.finish().complete

    def test_status_snapshot(self, tmp_path):
        clock = Clock()
        coordinator = build(tmp_path / "run", clock)
        status = coordinator.handle({"type": "status"})
        assert status["outstanding"] == len(ORDERS)
        assert status["leased"] == 0
        assert not status["done"]
        coordinator.finish()

    def test_malformed_requests_get_error_replies(self, tmp_path):
        clock = Clock()
        coordinator = build(tmp_path / "run", clock)
        assert coordinator.handle({"type": "lease"})["type"] == "error"
        assert coordinator.handle({"type": "nonsense"})["type"] == "error"
        reply = coordinator.handle(
            {"type": "result", "worker": "w1", "fp": "no-such", "attempt": 1}
        )
        assert reply["type"] == "error"
        coordinator.finish()


class TestLeaseExpiry:
    def test_expired_lease_requeues_within_budget(self, tmp_path):
        clock = Clock()
        coordinator = build(tmp_path / "run", clock, orders=[4], lease_s=10.0)
        grant = coordinator.handle({"type": "lease", "worker": "w1"})
        assert grant["attempt"] == 1
        # Heartbeats keep it alive...
        clock.now = 9.0
        assert coordinator.handle(
            {"type": "heartbeat", "worker": "w1", "fp": grant["fp"]}
        )["renewed"]
        # ...until the worker goes silent past the renewed deadline.
        clock.now = 19.5
        coordinator.tick()
        assert coordinator.fabric.expired_leases == 1
        # Backoff, then the cell is re-leased as attempt 2.
        clock.now += 1.0
        regrant = coordinator.handle({"type": "lease", "worker": "w2"})
        assert regrant["type"] == "grant"
        assert regrant["attempt"] == 2
        assert regrant["fp"] == grant["fp"]
        coordinator.handle(ok_message(regrant, "w2"))
        sweep = coordinator.finish()
        assert sweep.complete
        replay = load_journal(RunStore(tmp_path / "run").journal_path)
        assert replay.expired == 1
        assert replay.exactly_once()

    def test_late_result_from_expired_worker(self, tmp_path):
        """The stalled worker finishes after its lease expired and the
        cell was re-leased: first submission wins, second is a journaled
        duplicate — exactly one terminal either way."""
        clock = Clock()
        coordinator = build(tmp_path / "run", clock, orders=[4], lease_s=5.0)
        stale = coordinator.handle({"type": "lease", "worker": "w1"})
        clock.now = 6.0
        coordinator.tick()  # w1's lease expires
        clock.now += 1.0
        fresh = coordinator.handle({"type": "lease", "worker": "w2"})
        assert fresh["attempt"] == 2
        # The stalled worker wakes up and submits first.
        assert coordinator.handle(ok_message(stale, "w1"))["type"] == "accepted"
        # The re-leased attempt finishes later: duplicate, ignored.
        assert coordinator.handle(ok_message(fresh, "w2"))["type"] == "duplicate"
        sweep = coordinator.finish()
        assert sweep.complete
        assert sweep.manifest.fabric.duplicate_results == 1
        replay = load_journal(RunStore(tmp_path / "run").journal_path)
        assert replay.duplicates == 1
        assert replay.exactly_once()

    def test_expiry_exhausts_retry_budget(self, tmp_path):
        clock = Clock()
        coordinator = build(
            tmp_path / "run", clock, orders=[4], lease_s=5.0, retries=1
        )
        for expected_attempt in (1, 2):
            grant = coordinator.handle({"type": "lease", "worker": "w1"})
            while grant["type"] == "wait":
                clock.now += grant["delay_s"] + 0.01
                coordinator.tick()
                grant = coordinator.handle({"type": "lease", "worker": "w1"})
            assert grant["attempt"] == expected_attempt
            clock.now += 6.0
            coordinator.tick()  # never heartbeats: expire
        sweep = coordinator.finish()
        assert not sweep.complete
        failure = sweep.failures[0]
        assert failure.status == "failed"
        assert failure.error_type == "LeaseExpired"
        replay = load_journal(RunStore(tmp_path / "run").journal_path)
        assert replay.expired == 2
        assert replay.terminal[grant["fp"]] == "failed"
        assert replay.exactly_once()


class TestRetries:
    def test_retryable_failure_backs_off_then_succeeds(self, tmp_path):
        clock = Clock()
        coordinator = build(tmp_path / "run", clock, orders=[4], retries=2)
        grant = coordinator.handle({"type": "lease", "worker": "w1"})
        reply = coordinator.handle(fail_message(grant, "w1"))
        assert reply == {"type": "accepted", "retrying": True, "remaining": 1}
        # Before the backoff elapses the cell is not served.
        assert coordinator.handle({"type": "lease", "worker": "w1"})["type"] == "wait"
        clock.now += 1.0
        regrant = coordinator.handle({"type": "lease", "worker": "w1"})
        assert regrant["attempt"] == 2
        coordinator.handle(ok_message(regrant, "w1"))
        sweep = coordinator.finish()
        assert sweep.complete
        record = next(c for c in sweep.manifest.cells if c.index == 0)
        assert record.attempts == 2
        assert sweep.manifest.fabric.retried_failures == 1

    def test_permanent_failure_is_terminal_on_first_attempt(self, tmp_path):
        clock = Clock()
        coordinator = build(tmp_path / "run", clock, orders=[4], retries=5)
        grant = coordinator.handle({"type": "lease", "worker": "w1"})
        reply = coordinator.handle(
            fail_message(grant, "w1", retryable=False, error_type="ScheduleError")
        )
        assert reply == {"type": "accepted", "retrying": False, "remaining": 0}
        sweep = coordinator.finish()
        assert not sweep.complete
        assert sweep.failures[0].attempts == 1
        assert sweep.failures[0].error_type == "ScheduleError"

    def test_retry_budget_exhaustion_checkpoints_failure(self, tmp_path):
        clock = Clock()
        coordinator = build(tmp_path / "run", clock, orders=[4], retries=1)
        for _attempt in (1, 2):
            grant = coordinator.handle({"type": "lease", "worker": "w1"})
            while grant["type"] == "wait":
                clock.now += grant["delay_s"] + 0.01
                grant = coordinator.handle({"type": "lease", "worker": "w1"})
            coordinator.handle(fail_message(grant, "w1"))
        coordinator.finish()
        store = RunStore(tmp_path / "run")
        loaded = store.load_checkpoint()
        record = next(iter(loaded.records.values()))
        assert record["status"] == "failed"
        assert record["attempts"] == 2
        assert record["error_type"] == "Boom"


class TestCrashRestart:
    def test_restart_restores_terminals_and_expires_open_grants(self, tmp_path):
        run_dir = tmp_path / "run"
        clock = Clock()
        first = build(run_dir, clock, orders=[4, 6], lease_s=10.0)
        done = first.handle({"type": "lease", "worker": "w1"})
        first.handle(ok_message(done, "w1"))        # cell 0: terminal ok
        first.handle({"type": "lease", "worker": "w2"})  # cell 1: in flight
        abandon(first)                              # SIGKILL

        second = build(run_dir, Clock(), orders=[4, 6], resume=True)
        # The completed cell came back from the checkpoint, not a re-run.
        assert second.manifest.resumed_cells == 1
        assert len(second.outstanding) == 1
        # The in-flight grant was expired and requeued as attempt 2.
        regrant = second.handle({"type": "lease", "worker": "w3"})
        while regrant["type"] == "wait":
            second.clock.now += regrant["delay_s"] + 0.01
            regrant = second.handle({"type": "lease", "worker": "w3"})
        assert regrant["type"] == "grant"
        assert regrant["attempt"] == 2
        second.handle(ok_message(regrant, "w3"))
        sweep = second.finish()
        assert sweep.complete
        replay = load_journal(RunStore(run_dir).journal_path)
        assert replay.exactly_once()
        assert len(replay.terminal) == 2
        assert all(s == "ok" for s in replay.terminal.values())
        events = [e["event"] for e in replay.events]
        assert "expire" in events
        expire = next(e for e in replay.events if e["event"] == "expire")
        assert expire["reason"] == "coordinator-restart"
        # Counters carried over: the whole run's story, not one incarnation's.
        assert sweep.manifest.fabric.expired_leases == 1
        assert sweep.manifest.fabric.leases_granted == 3

    def test_crash_between_checkpoint_and_journal_terminal(self, tmp_path):
        """The checkpoint append lands, the journal terminal does not
        (SIGKILL between the two writes): the restart re-emits the
        terminal flagged ``resumed`` — never a lost or doubled cell."""
        run_dir = tmp_path / "run"
        clock = Clock()
        first = build(run_dir, clock, orders=[4])
        grant = first.handle({"type": "lease", "worker": "w1"})
        real_event = first.journal.event
        first.journal.event = lambda event, fp="-", **fields: (
            None if event == "terminal" else real_event(event, fp, **fields)
        )
        first.handle(ok_message(grant, "w1"))  # checkpoint lands, terminal lost
        first.journal.event = real_event
        abandon(first)

        replay = load_journal(RunStore(run_dir).journal_path)
        assert replay.terminal == {}  # the crash window really was simulated

        second = build(run_dir, Clock(), orders=[4], resume=True)
        # Nothing left to serve: the checkpoint restored the cell.
        assert second.handle({"type": "lease", "worker": "w2"})["type"] == "drained"
        sweep = second.finish()
        assert sweep.complete
        replay = load_journal(RunStore(run_dir).journal_path)
        assert replay.exactly_once()
        assert replay.terminal == {grant["fp"]: "ok"}
        terminal = next(e for e in replay.events if e["event"] == "terminal")
        assert terminal.get("resumed") is True

    def test_restart_does_not_rerun_terminal_failures(self, tmp_path):
        """Fabric resume restores failed cells too: re-running one
        would double its journal terminal."""
        run_dir = tmp_path / "run"
        clock = Clock()
        first = build(run_dir, clock, orders=[4], retries=0)
        grant = first.handle({"type": "lease", "worker": "w1"})
        first.handle(fail_message(grant, "w1"))  # terminal failed
        abandon(first)

        second = build(run_dir, Clock(), orders=[4], resume=True, retries=0)
        assert second.handle({"type": "lease", "worker": "w2"})["type"] == "drained"
        sweep = second.finish()
        assert not sweep.complete
        replay = load_journal(RunStore(run_dir).journal_path)
        assert replay.exactly_once()
        assert replay.terminal == {grant["fp"]: "failed"}


OPS = ("lease_a", "lease_b", "ok", "fail", "dup", "advance", "tick")


class TestExactlyOnceProperty:
    @given(ops=st.lists(st.sampled_from(OPS), max_size=25))
    @settings(max_examples=20, deadline=None)
    def test_any_interleaving_yields_one_terminal_per_cell(self, ops):
        with tempfile.TemporaryDirectory() as td:
            run_dir = Path(td) / "run"
            clock = Clock()
            coordinator = build(run_dir, clock, orders=[4, 6], lease_s=3.0,
                                retries=2)
            in_flight = []
            last_message = None
            for op in ops:
                if op in ("lease_a", "lease_b"):
                    worker = "wA" if op == "lease_a" else "wB"
                    reply = coordinator.handle({"type": "lease", "worker": worker})
                    if reply["type"] == "grant":
                        in_flight.append((reply, worker))
                elif op in ("ok", "fail") and in_flight:
                    grant, worker = in_flight.pop(0)
                    message = (
                        ok_message(grant, worker)
                        if op == "ok"
                        else fail_message(grant, worker)
                    )
                    coordinator.handle(message)
                    last_message = message
                elif op == "dup" and last_message is not None:
                    coordinator.handle(last_message)
                elif op == "advance":
                    clock.now += 1.1
                elif op == "tick":
                    coordinator.tick()
            drain(coordinator, clock, worker="wA")
            sweep = coordinator.finish()
            replay = load_journal(RunStore(run_dir).journal_path)
            assert replay.exactly_once()
            assert set(replay.terminal) == set(
                coordinator.fingerprints.values()
            )
            counts = sweep.manifest.counts()
            assert counts["ok"] + counts["failed"] == 2
            assert counts["skipped"] == 0


class TestDeterminismScope:
    def test_fabric_modules_are_on_the_determinism_profile(self):
        """The monotonic-only waiver is enforced, not aspirational: every
        fabric module must sit on the determinism scope of the lint
        pass (wall-clock and RNG bans)."""
        import repro.fabric as fabric
        from repro.check.lint import _profile_for

        package_root = Path(fabric.__file__).resolve().parents[1]
        fabric_dir = package_root / "fabric"
        sources = sorted(fabric_dir.glob("*.py"))
        assert sources, "fabric package has no sources?"
        for source in sources:
            profile = _profile_for(source, package_root)
            assert profile.determinism, f"{source.name} escaped the scope"

    def test_fabric_sources_scan_clean(self):
        """Zero determinism/purity findings over the fabric package —
        the waiver check the issue demands."""
        import repro.fabric as fabric
        from repro.check.lint import run_lint

        fabric_dir = Path(fabric.__file__).resolve().parent
        findings = run_lint(paths=sorted(fabric_dir.glob("*.py")))
        assert findings == []


class TestDrainWithSockets:
    def test_served_over_tcp_end_to_end(self, tmp_path):
        """One real worker loop over the real socket layer."""
        from repro.fabric.worker import EXIT_DRAINED, FabricWorker

        coordinator = fabric_order_sweep(
            ENTRIES, MACHINE, ORDERS, run_dir=tmp_path / "run", lease_s=5.0
        )
        address = coordinator.start()
        try:
            worker = FabricWorker(address, worker_id="w1")
            assert worker.run() == EXIT_DRAINED
        finally:
            sweep = coordinator.finish()
        assert sweep.complete
        serial = order_sweep(ENTRIES, MACHINE, ORDERS)
        for label in serial.labels():
            assert sweep.values(label, "ms") == serial.values(label, "ms")
        assert sweep.manifest.fabric.heartbeats >= 0
