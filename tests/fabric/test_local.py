"""End-to-end fabric runs: real coordinator, real worker subprocesses.

The chaos tests here are the acceptance teeth of the fabric: workers
are SIGKILLed mid-cell (``die`` faults), a worker goes live-but-silent
(``stall``), and the coordinator itself is SIGKILLed and restarted —
and every surviving run must be bit-identical to the serial sweep with
every cell exactly once in the journal.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.fabric.coordinator import fabric_order_sweep
from repro.fabric.journal import load_journal
from repro.fabric.local import run_local_fabric, spawn_worker
from repro.fabric.protocol import encode_line, read_message
from repro.fabric.worker import EXIT_COORDINATOR_LOST, FabricWorker
from repro.model.machine import MulticoreMachine
from repro.sim.faults import FaultSpec, dump_fault_plan
from repro.sim.sweep import order_sweep
from repro.store import RunStore, result_from_dict
from repro.store.serde import machine_to_dict

MACHINE = MulticoreMachine(p=4, cs=100, cd=21, q=8)
ENTRIES = [("shared-opt", "ideal"), ("outer-product", "lru")]


def assert_matches_serial(sweep, serial):
    for label in serial.labels():
        assert sweep.values(label, "ms") == serial.values(label, "ms")
        assert sweep.values(label, "md") == serial.values(label, "md")
        for fpoint, spoint in zip(sweep.series[label], serial.series[label]):
            assert fpoint.stats == spoint.stats
            assert fpoint.comp == spoint.comp


class TestLocalFabric:
    def test_matches_serial_exactly(self, tmp_path):
        serial = order_sweep(ENTRIES, MACHINE, [4, 6])
        sweep = run_local_fabric(
            ENTRIES,
            MACHINE,
            [4, 6],
            run_dir=tmp_path / "run",
            workers=2,
            lease_s=5.0,
        )
        assert sweep.complete
        assert_matches_serial(sweep, serial)
        replay = load_journal(RunStore(tmp_path / "run").journal_path)
        assert replay.exactly_once()
        assert len(replay.terminal) == 4
        stats = sweep.manifest.fabric
        assert stats.workers_seen >= 1
        assert stats.results_accepted == 4

    def test_die_faults_survived_by_respawns(self, tmp_path):
        """Two workers SIGKILL themselves mid-cell; the babysitter
        respawns, the leases expire and requeue, and the finished run
        is indistinguishable from a calm one."""
        serial = order_sweep(ENTRIES, MACHINE, [4, 6])
        plan_path = tmp_path / "faults.json"
        dump_fault_plan(
            {
                ("shared-opt ideal", 0): FaultSpec(kind="die", fail_attempts=1),
                ("outer-product lru", 1): FaultSpec(kind="die", fail_attempts=1),
            },
            plan_path,
        )
        sweep = run_local_fabric(
            ENTRIES,
            MACHINE,
            [4, 6],
            run_dir=tmp_path / "run",
            workers=2,
            lease_s=1.0,
            backoff=0.05,
            retries=2,
            fault_plan_path=plan_path,
        )
        assert sweep.complete, [
            (r.label, r.index, r.error_type, r.error) for r in sweep.failures
        ]
        assert_matches_serial(sweep, serial)
        stats = sweep.manifest.fabric
        # Each die cost its worker: the lease had to expire.
        assert stats.expired_leases >= 2
        assert stats.workers_lost >= 1
        replay = load_journal(RunStore(tmp_path / "run").journal_path)
        assert replay.exactly_once()
        assert len(replay.terminal) == 4
        assert all(status == "ok" for status in replay.terminal.values())

    def test_stall_fault_expires_and_requeues(self, tmp_path):
        """A live-but-silent worker: heartbeats suppressed, the cell
        sleeps past the lease.  The cell must be re-leased, and the
        stalled worker's eventual submission deduplicated (or accepted
        first — either way exactly one terminal)."""
        serial = order_sweep([("shared-opt", "ideal")], MACHINE, [4, 6])
        plan_path = tmp_path / "faults.json"
        dump_fault_plan(
            {
                ("shared-opt ideal", 0): FaultSpec(
                    kind="stall", fail_attempts=1, stall_s=3.0
                ),
            },
            plan_path,
        )
        sweep = run_local_fabric(
            [("shared-opt", "ideal")],
            MACHINE,
            [4, 6],
            run_dir=tmp_path / "run",
            workers=2,
            lease_s=0.75,
            backoff=0.05,
            retries=2,
            fault_plan_path=plan_path,
        )
        assert sweep.complete, [
            (r.label, r.index, r.error_type, r.error) for r in sweep.failures
        ]
        assert_matches_serial(sweep, serial)
        stats = sweep.manifest.fabric
        assert stats.expired_leases >= 1  # requeued within one lease period
        replay = load_journal(RunStore(tmp_path / "run").journal_path)
        assert replay.exactly_once()
        assert replay.expired >= 1


class TestWorkerDegradation:
    def _grant_for(self, fp="f" * 64, label="shared-opt ideal"):
        return {
            "type": "grant",
            "fp": fp,
            "attempt": 1,
            "lease_s": 30.0,
            "cell": {
                "label": label,
                "index": 0,
                "variable": "order",
                "x": 4,
                "algorithm": "shared-opt",
                "setting": "ideal",
                "kwargs": {},
                "machine": machine_to_dict(MACHINE),
                "m": 4,
                "n": 4,
                "z": 4,
            },
        }

    def test_coordinator_loss_salvages_and_exits_75(self, tmp_path):
        """The coordinator dies while a cell is in flight: the worker
        finishes the computation, flushes it to the salvage log, and
        exits with the distinct tempfail code."""
        server = socket.create_server(("127.0.0.1", 0))
        address = server.getsockname()
        grant = self._grant_for()

        def serve_one_grant_then_die():
            conn, _addr = server.accept()
            with conn, conn.makefile("rb") as fh:
                read_message(fh)
                conn.sendall(encode_line(grant))
            server.close()  # the "coordinator" is now gone

        threading.Thread(target=serve_one_grant_then_die, daemon=True).start()
        worker = FabricWorker(
            address,
            worker_id="w1",
            scratch=tmp_path / "scratch",
            request_timeout_s=1.0,
        )
        assert worker.run() == EXIT_COORDINATOR_LOST
        salvage = tmp_path / "scratch" / "salvage-w1.jsonl"
        assert salvage.exists()
        from repro.store import load_checkpoint

        loaded = load_checkpoint(salvage)
        record = loaded.records[grant["fp"]]
        assert record["status"] == "ok"
        # The salvage uses the standard checkpoint payload: the result
        # deserializes with the normal tools.
        result = result_from_dict(record["result"])
        assert result.algorithm == "shared-opt"

    def test_unreachable_coordinator_exits_75_without_work(self, tmp_path):
        sock = socket.create_server(("127.0.0.1", 0))
        address = sock.getsockname()
        sock.close()
        worker = FabricWorker(address, worker_id="w1", connect_grace_s=0.3)
        assert worker.run() == EXIT_COORDINATOR_LOST


def _wait_for(predicate, timeout_s=30.0, period=0.1):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(period)
    return False


class TestCoordinatorChaos:
    def test_sigkill_coordinator_and_restart(self, tmp_path):
        """The acceptance chaos scenario: die-fault workers (>= 2 worker
        SIGKILLs), a SIGKILLed coordinator, a resumed coordinator — and
        a final run bit-identical to serial with every cell exactly
        once in the journal."""
        # CI points REPRO_FABRIC_CHAOS_DIR at a workspace path so the
        # run directory (checkpoint + custody journal) survives as a
        # build artifact.
        run_dir = Path(
            os.environ.get("REPRO_FABRIC_CHAOS_DIR", str(tmp_path / "run"))
        )
        orders = [4, 6, 8]
        # `fabric serve` applies one --setting to every algorithm, so the
        # serial baseline must do the same.
        entries = [("shared-opt", "ideal"), ("outer-product", "ideal")]
        serial = order_sweep(entries, MACHINE, orders)
        plan_path = tmp_path / "faults.json"
        dump_fault_plan(
            {
                ("shared-opt ideal", 1): FaultSpec(kind="die", fail_attempts=1),
                ("outer-product ideal", 2): FaultSpec(kind="die", fail_attempts=1),
            },
            plan_path,
        )

        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        serve_command = [
            sys.executable, "-m", "repro", "fabric", "serve",
            "--cores", "4", "--cs", "100", "--cd", "21", "--q", "8",
            "shared-opt", "outer-product",
            "--orders", *[str(o) for o in orders],
            "--setting", "ideal",
            "--run-dir", str(run_dir),
            "--lease", "1.0", "--backoff", "0.05", "--retries", "3",
        ]

        def read_port(proc):
            line = proc.stderr.readline().decode()
            assert "serving on" in line, line
            return int(line.rsplit(":", 1)[1])

        def babysit(procs, port, budget, until):
            spawned = len(procs)
            while not until():
                for worker_id in sorted(procs):
                    proc = procs[worker_id]
                    code = proc.poll()
                    if code is None or code == 0:
                        continue
                    del procs[worker_id]
                    if budget > 0:
                        budget -= 1
                        spawned += 1
                        replacement = f"w{spawned}"
                        procs[replacement] = spawn_worker(
                            "127.0.0.1", port,
                            worker_id=replacement,
                            scratch=tmp_path / "scratch" / replacement,
                            fault_plan_path=plan_path,
                        )
                time.sleep(0.1)
            return procs

        # -- phase 1: serve, inject worker deaths, SIGKILL the coordinator
        coordinator = subprocess.Popen(
            serve_command, env=env, stderr=subprocess.PIPE,
            stdout=subprocess.DEVNULL,
        )
        workers = {}
        try:
            port = read_port(coordinator)
            for worker_id in ("w1", "w2"):
                workers[worker_id] = spawn_worker(
                    "127.0.0.1", port,
                    worker_id=worker_id,
                    scratch=tmp_path / "scratch" / worker_id,
                    fault_plan_path=plan_path,
                )
            checkpoint = RunStore(run_dir).checkpoint_path

            def some_progress():
                return checkpoint.exists() and checkpoint.stat().st_size > 0

            workers = babysit(workers, port, budget=6, until=some_progress)
            assert some_progress(), "no cell ever completed in phase 1"
            coordinator.send_signal(signal.SIGKILL)
            coordinator.wait(timeout=10)
        finally:
            if coordinator.poll() is None:
                coordinator.kill()
                coordinator.wait()
        # Orphaned workers finish in flight, fail to submit, and exit
        # on their own (0 = drained earlier, 75 = coordinator lost).
        for proc in workers.values():
            try:
                code = proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
                raise
            assert code in (0, EXIT_COORDINATOR_LOST, -signal.SIGKILL)

        meta = RunStore(run_dir).load_meta()
        assert meta["status"] == "running"  # the kill really was unclean

        # -- phase 2: restart the coordinator against the same run dir
        coordinator = subprocess.Popen(
            serve_command + ["--resume"], env=env, stderr=subprocess.PIPE,
            stdout=subprocess.DEVNULL,
        )
        workers = {}
        try:
            port = read_port(coordinator)
            for worker_id in ("r1", "r2"):
                workers[worker_id] = spawn_worker(
                    "127.0.0.1", port,
                    worker_id=worker_id,
                    scratch=tmp_path / "scratch" / worker_id,
                    fault_plan_path=plan_path,
                )
            workers = babysit(
                workers, port, budget=6,
                until=lambda: coordinator.poll() is not None,
            )
            assert coordinator.wait(timeout=60) == 0
        finally:
            if coordinator.poll() is None:
                coordinator.kill()
            coordinator.wait()
            for proc in workers.values():
                try:
                    proc.wait(timeout=30)
                except subprocess.TimeoutExpired:
                    proc.kill()

        # -- the verdicts
        store = RunStore(run_dir)
        meta = store.load_meta()
        assert meta["status"] == "complete"
        assert meta["resumes"] == 1

        # Every cell exactly once in the journal, across both lives.
        replay = load_journal(store.journal_path)
        assert replay.exactly_once()
        assert len(replay.terminal) == len(entries) * len(orders)
        assert all(s == "ok" for s in replay.terminal.values())

        # Bit-identical to the serial sweep.
        loaded = store.load_checkpoint()
        by_cell = {}
        for record in loaded.ok_records().values():
            by_cell[(record["label"], record["index"])] = result_from_dict(
                record["result"]
            )
        for label in serial.labels():
            for index, expected in enumerate(serial.series[label]):
                actual = by_cell[(label, index)]
                assert actual.stats == expected.stats
                assert actual.comp == expected.comp
                assert actual.ms == expected.ms
                assert actual.md == expected.md

        # The manifest's fabric telemetry recorded the turbulence.
        manifest = json.loads(store.manifest_path.read_text())
        assert manifest["fabric"]["expired_leases"] >= 1

        # And the audit agrees nothing was lost.
        audit = store.audit()
        assert audit.ok, audit.errors


class TestFabricCLI:
    def test_local_serve_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            [
                "fabric", "serve",
                "--cores", "4", "--cs", "100", "--cd", "21", "--q", "8",
                "shared-opt",
                "--orders", "4", "6",
                "--setting", "ideal",
                "--run-dir", str(tmp_path / "run"),
                "--local", "2",
                "--lease", "5.0",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "MS" in captured.out
        assert "fabric: 2 ok" in captured.err
        # The run dir is inspectable with the standard tools.
        assert main(["runs", "verify", str(tmp_path / "run")]) == 0
        verify_out = capsys.readouterr().out
        assert "journal:" in verify_out
        assert ": ok" in verify_out

    def test_worker_rejects_bad_connect(self, capsys):
        from repro.cli import main

        assert main(["fabric", "worker", "--connect", "nonsense"]) == 2
        assert "HOST:PORT" in capsys.readouterr().err

    def test_serve_rejects_zero_local_workers(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            [
                "fabric", "serve", "shared-opt",
                "--run-dir", str(tmp_path / "run"),
                "--local", "0",
            ]
        )
        assert code == 2
