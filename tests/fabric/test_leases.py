"""Lease-table boundary semantics, driven by an injected clock.

Every assertion here is deterministic: the clock is a plain mutable
counter, so "exactly at the deadline" means exactly, not "within
scheduler jitter of".
"""

import pytest

from repro.exceptions import ConfigurationError
from repro.fabric.leases import LeaseTable


class Clock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return Clock()


@pytest.fixture
def table(clock):
    return LeaseTable(10.0, clock=clock)


class TestGrant:
    def test_grant_sets_monotonic_deadline(self, table, clock):
        clock.now = 5.0
        lease = table.grant(("a", 0), "fp-a", "w1", attempt=1)
        assert lease.granted_at == 5.0
        assert lease.deadline == 15.0
        assert len(table) == 1
        assert table.get("fp-a") is lease

    def test_double_grant_rejected(self, table):
        table.grant(("a", 0), "fp-a", "w1", attempt=1)
        with pytest.raises(ConfigurationError, match="already leased"):
            table.grant(("a", 0), "fp-a", "w2", attempt=2)

    def test_nonpositive_lease_rejected(self, clock):
        with pytest.raises(ConfigurationError, match="positive"):
            LeaseTable(0.0, clock=clock)


class TestRenewal:
    def test_renewal_extends_full_window(self, table, clock):
        table.grant(("a", 0), "fp-a", "w1", attempt=1)
        clock.now = 7.0
        assert table.renew("fp-a", "w1")
        assert table.get("fp-a").deadline == 17.0

    def test_renewal_exactly_at_deadline_succeeds(self, table, clock):
        """The edge case: a heartbeat landing at the precise deadline
        instant is a live worker, not a dead one."""
        table.grant(("a", 0), "fp-a", "w1", attempt=1)
        clock.now = 10.0  # == deadline
        assert table.renew("fp-a", "w1")
        assert table.get("fp-a").deadline == 20.0

    def test_renewal_after_deadline_fails(self, table, clock):
        table.grant(("a", 0), "fp-a", "w1", attempt=1)
        clock.now = 10.000001
        assert not table.renew("fp-a", "w1")

    def test_renewal_by_other_worker_fails(self, table, clock):
        table.grant(("a", 0), "fp-a", "w1", attempt=1)
        assert not table.renew("fp-a", "w2")
        assert table.get("fp-a").deadline == 10.0

    def test_renewal_of_unknown_cell_fails(self, table):
        assert not table.renew("fp-x", "w1")


class TestExpiry:
    def test_expiry_is_strictly_after_deadline(self, table, clock):
        table.grant(("a", 0), "fp-a", "w1", attempt=1)
        clock.now = 10.0  # at the deadline: still live
        assert table.pop_expired() == []
        clock.now = 10.000001
        expired = table.pop_expired()
        assert [lease.fp for lease in expired] == ["fp-a"]
        assert len(table) == 0

    def test_only_lapsed_leases_pop(self, table, clock):
        table.grant(("a", 0), "fp-a", "w1", attempt=1)
        clock.now = 6.0
        table.grant(("b", 0), "fp-b", "w2", attempt=1)
        clock.now = 11.0  # a lapsed (deadline 10), b live (deadline 16)
        assert [lease.fp for lease in table.pop_expired()] == ["fp-a"]
        assert table.get("fp-b") is not None

    def test_release_returns_lease(self, table):
        table.grant(("a", 0), "fp-a", "w1", attempt=3)
        lease = table.release("fp-a")
        assert lease.attempt == 3
        assert table.release("fp-a") is None
        assert len(table) == 0

    def test_renewal_cannot_resurrect_expired_lease(self, table, clock):
        table.grant(("a", 0), "fp-a", "w1", attempt=1)
        clock.now = 11.0
        table.pop_expired()
        # The stalled worker's next heartbeat must not revive custody.
        assert not table.renew("fp-a", "w1")
