"""Journal write/replay: custody history and the exactly-once invariant."""

from repro.fabric.journal import (
    EVENT_DUPLICATE,
    EVENT_EXPIRE,
    EVENT_GRANT,
    EVENT_RETRY,
    EVENT_START,
    EVENT_STOP,
    EVENT_TERMINAL,
    FabricJournal,
    journal_status,
    load_journal,
)


def write_events(path, events):
    with FabricJournal(path) as journal:
        for event, fp, fields in events:
            journal.event(event, fp, **fields)


class TestReplay:
    def test_missing_journal_is_empty(self, tmp_path):
        replay = load_journal(tmp_path / "journal.jsonl")
        assert replay.events == []
        assert replay.exactly_once()
        assert journal_status(replay) is None

    def test_full_cell_story(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        write_events(
            path,
            [
                (EVENT_START, "-", {"resumed": False, "cells": 2}),
                (EVENT_GRANT, "fp-a", {"worker": "w1", "attempt": 1}),
                (EVENT_EXPIRE, "fp-a", {"worker": "w1", "attempt": 1,
                                        "reason": "lease-expired"}),
                (EVENT_GRANT, "fp-a", {"worker": "w2", "attempt": 2}),
                (EVENT_TERMINAL, "fp-a", {"status": "ok", "attempts": 2}),
                (EVENT_GRANT, "fp-b", {"worker": "w2", "attempt": 1}),
                (EVENT_RETRY, "fp-b", {"attempt": 1, "error_type": "E"}),
                (EVENT_GRANT, "fp-b", {"worker": "w1", "attempt": 2}),
                (EVENT_TERMINAL, "fp-b", {"status": "failed", "attempts": 2}),
                (EVENT_DUPLICATE, "fp-a", {"worker": "w1", "attempt": 1}),
                (EVENT_STOP, "-", {"complete": False}),
            ],
        )
        replay = load_journal(path)
        assert replay.grants == 4
        assert replay.expired == 1
        assert replay.retries == 1
        assert replay.duplicates == 1
        assert replay.terminal == {"fp-a": "ok", "fp-b": "failed"}
        assert replay.granted_attempts == {"fp-a": 2, "fp-b": 2}
        assert replay.open_grants == set()
        assert replay.exactly_once()
        assert "2 terminal cells" in journal_status(replay)

    def test_open_grant_detected(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        write_events(
            path,
            [
                (EVENT_GRANT, "fp-a", {"worker": "w1", "attempt": 1}),
                (EVENT_GRANT, "fp-b", {"worker": "w2", "attempt": 1}),
                (EVENT_TERMINAL, "fp-b", {"status": "ok", "attempts": 1}),
            ],
        )
        replay = load_journal(path)
        # fp-a was in flight when the coordinator died.
        assert replay.open_grants == {"fp-a"}

    def test_double_terminal_breaks_exactly_once(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        write_events(
            path,
            [
                (EVENT_TERMINAL, "fp-a", {"status": "ok", "attempts": 1}),
                (EVENT_TERMINAL, "fp-a", {"status": "ok", "attempts": 1}),
            ],
        )
        replay = load_journal(path)
        assert not replay.exactly_once()
        assert replay.terminal_events["fp-a"] == 2

    def test_torn_tail_tolerated(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        write_events(path, [(EVENT_GRANT, "fp-a", {"worker": "w1", "attempt": 1})])
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"schema": 1, "fp": "fp-b", "even')  # SIGKILL mid-append
        replay = load_journal(path)
        assert replay.torn_tail
        assert replay.grants == 1
        # Reopening the journal (a coordinator restart) repairs the tail.
        write_events(path, [(EVENT_STOP, "-", {"complete": True})])
        replay = load_journal(path)
        assert not replay.torn_tail
        assert [e["event"] for e in replay.events] == ["grant", "stop"]
