"""Tests for BENCH record construction and baseline comparison."""

import json

import pytest

from repro.bench.record import (
    BENCH_SCHEMA,
    Regression,
    compare_records,
    default_record_path,
    environment_fingerprint,
    load_record,
    record_from_benchmark_json,
    run_quick_suite,
    write_record,
)
from repro.exceptions import ConfigurationError


def _report(**medians):
    """A minimal pytest-benchmark JSON report with given medians (s)."""
    return {
        "benchmarks": [
            {
                "fullname": name,
                "name": name.rsplit("::", 1)[-1],
                "stats": {
                    "median": median,
                    "iqr": median / 10,
                    "mean": median * 1.05,
                    "stddev": median / 8,
                    "rounds": 30,
                },
            }
            for name, median in medians.items()
        ]
    }


def _record(**medians):
    return record_from_benchmark_json(
        _report(**medians), date="2026-08-06", environment={}
    )


class TestRecordConstruction:
    def test_distills_stats_and_sorts_names(self):
        record = _record(**{"b.py::two": 0.2, "a.py::one": 0.1})
        assert record["schema"] == BENCH_SCHEMA
        assert record["date"] == "2026-08-06"
        assert list(record["benchmarks"]) == ["a.py::one", "b.py::two"]
        entry = record["benchmarks"]["a.py::one"]
        assert entry["median_s"] == 0.1
        assert entry["iqr_s"] == pytest.approx(0.01)
        assert entry["rounds"] == 30

    def test_rejects_non_benchmark_json(self):
        with pytest.raises(ConfigurationError, match="pytest-benchmark"):
            record_from_benchmark_json({"nope": []})

    def test_rejects_entry_without_median(self):
        report = {"benchmarks": [{"fullname": "x", "stats": {}}]}
        with pytest.raises(ConfigurationError, match="malformed"):
            record_from_benchmark_json(report)

    def test_environment_fingerprint_shape(self):
        env = environment_fingerprint()
        assert env["python"]
        assert env["cpu_count"] >= 1
        assert "git_commit" in env

    def test_default_record_path_embeds_date(self, tmp_path):
        path = default_record_path(tmp_path, date="2026-08-06")
        assert path == tmp_path / "BENCH_2026-08-06.json"


class TestRoundTrip:
    def test_write_then_load(self, tmp_path):
        record = _record(**{"a.py::one": 0.1})
        path = tmp_path / "BENCH_2026-08-06.json"
        write_record(record, path)
        assert load_record(path) == record
        # atomic writer leaves no temp droppings
        assert sorted(p.name for p in tmp_path.iterdir()) == [path.name]

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 99, "benchmarks": {}}))
        with pytest.raises(ConfigurationError, match="schema"):
            load_record(path)

    def test_load_rejects_non_record(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2]")
        with pytest.raises(ConfigurationError):
            load_record(path)


class TestComparison:
    def test_within_threshold_passes(self):
        base = _record(**{"a.py::one": 0.100})
        cur = _record(**{"a.py::one": 0.120})  # +20% < 25%
        regressions, added, removed = compare_records(cur, base)
        assert regressions == [] and added == [] and removed == []

    def test_regression_beyond_threshold(self):
        base = _record(**{"a.py::one": 0.100, "a.py::two": 0.100})
        cur = _record(**{"a.py::one": 0.130, "a.py::two": 0.090})
        regressions, _, _ = compare_records(cur, base)
        assert [r.name for r in regressions] == ["a.py::one"]
        assert regressions[0].ratio == pytest.approx(1.3)
        assert "1.30x" in regressions[0].describe()

    def test_custom_threshold(self):
        base = _record(**{"a.py::one": 0.100})
        cur = _record(**{"a.py::one": 0.115})
        assert compare_records(cur, base, threshold=0.10)[0]
        assert not compare_records(cur, base, threshold=0.20)[0]

    def test_added_and_removed_are_informational(self):
        base = _record(**{"a.py::old": 0.1, "a.py::both": 0.1})
        cur = _record(**{"a.py::new": 9.9, "a.py::both": 0.1})
        regressions, added, removed = compare_records(cur, base)
        assert regressions == []
        assert added == ["a.py::new"]
        assert removed == ["a.py::old"]

    def test_speedups_never_fail(self):
        base = _record(**{"a.py::one": 1.0})
        cur = _record(**{"a.py::one": 0.01})
        assert compare_records(cur, base)[0] == []

    def test_negative_threshold_rejected(self):
        record = _record(**{"a.py::one": 0.1})
        with pytest.raises(ConfigurationError):
            compare_records(record, record, threshold=-0.1)

    def test_zero_baseline_median_skipped(self):
        base = _record(**{"a.py::one": 0.0})
        cur = _record(**{"a.py::one": 1.0})
        assert compare_records(cur, base)[0] == []

    def test_cross_scale_comparison_rejected(self):
        base = _record(**{"a.py::one": 0.1})
        cur = dict(_record(**{"a.py::one": 0.1}), scale="paper")
        with pytest.raises(ConfigurationError, match="scale"):
            compare_records(cur, base)

    def test_scaleless_legacy_records_still_compare(self):
        base = _record(**{"a.py::one": 0.1})
        base.pop("scale", None)
        cur = _record(**{"a.py::one": 0.1})
        assert compare_records(cur, base)[0] == []


class TestRunner:
    def test_rejects_unknown_scale(self):
        with pytest.raises(ConfigurationError, match="scale"):
            run_quick_suite(scale="warp")

    def test_rejects_missing_bench_dir(self, tmp_path):
        with pytest.raises(ConfigurationError, match="not found"):
            run_quick_suite(bench_dir=tmp_path / "nope")


class TestRegressionDataclass:
    def test_frozen(self):
        regression = Regression("a", 1.0, 2.0)
        with pytest.raises(AttributeError):
            regression.name = "b"
