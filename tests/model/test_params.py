"""Tests for the cache-fitting parameters λ, µ, α, β."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import ParameterError
from repro.model.params import (
    alpha_max,
    beta_for_alpha,
    feasible_alpha,
    lambda_param,
    largest_divisor_at_most,
    max_square_param,
    mu_param,
)


class TestMaxSquareParam:
    @pytest.mark.parametrize(
        "capacity,expected",
        [
            (3, 1),  # 1+1+1 = 3
            (6, 1),
            (7, 2),  # 1+2+4 = 7
            (12, 2),
            (13, 3),  # 1+3+9 = 13
            (21, 4),  # the paper's CD=21 -> mu=4
            (977, 30),  # the paper's CS=977 -> lambda=30
            (245, 15),
            (157, 12),
            (16, 3),
            (4, 1),
        ],
    )
    def test_known_values(self, capacity, expected):
        assert max_square_param(capacity) == expected

    def test_too_small_raises(self):
        with pytest.raises(ParameterError):
            max_square_param(2)

    @given(st.integers(min_value=3, max_value=10**7))
    def test_defining_property(self, capacity):
        x = max_square_param(capacity)
        assert 1 + x + x * x <= capacity
        assert 1 + (x + 1) + (x + 1) ** 2 > capacity

    def test_aliases(self):
        assert lambda_param(977) == 30
        assert mu_param(21) == 4


class TestLargestDivisor:
    def test_simple(self):
        assert largest_divisor_at_most(100, 30) == 25
        assert largest_divisor_at_most(100, 100) == 100
        assert largest_divisor_at_most(100, 10) == 10

    def test_with_multiple_of(self):
        assert largest_divisor_at_most(48, 20, multiple_of=4) == 16
        assert largest_divisor_at_most(48, 48, multiple_of=8) == 48

    def test_no_divisor_raises(self):
        with pytest.raises(ParameterError):
            largest_divisor_at_most(7, 6, multiple_of=2)

    def test_invalid_args(self):
        with pytest.raises(ParameterError):
            largest_divisor_at_most(0, 5)

    @given(
        st.integers(min_value=1, max_value=5000),
        st.integers(min_value=1, max_value=5000),
    )
    def test_result_divides_and_bounded(self, n, bound):
        try:
            d = largest_divisor_at_most(n, bound)
        except ParameterError:
            pytest.skip("no divisor in range")
        assert n % d == 0
        assert d <= bound


class TestBetaAlpha:
    def test_beta_for_alpha_paper_constraint(self):
        # alpha^2 + 2*alpha*beta <= CS must hold for the returned beta
        cs = 977
        for alpha in (2, 8, 16, 30):
            beta = beta_for_alpha(cs, alpha)
            assert alpha * alpha + 2 * alpha * beta <= cs
            # and beta is maximal
            assert alpha * alpha + 2 * alpha * (beta + 1) > cs or beta >= 1

    def test_beta_clamps_to_one(self):
        # alpha so large that no slab fits: beta floors at 1
        assert beta_for_alpha(10, 3) == 1

    def test_beta_rejects_bad_alpha(self):
        with pytest.raises(ParameterError):
            beta_for_alpha(100, 0)

    def test_alpha_max(self):
        # alpha_max^2 + 2*alpha_max = CS exactly at the real root
        cs = 977
        am = alpha_max(cs)
        assert am * am + 2 * am == pytest.approx(cs)


class TestFeasibleAlpha:
    def test_divides_and_multiple(self):
        alpha = feasible_alpha(m=48, p=4, mu=2, alpha_target=20.0, cs=977)
        assert 48 % alpha == 0
        assert alpha % 4 == 0  # multiple of sqrt(p)*mu = 4
        assert alpha <= 20

    def test_falls_back_to_minimal_tile(self):
        alpha = feasible_alpha(m=4, p=4, mu=2, alpha_target=100.0, cs=977)
        assert alpha == 4

    def test_non_square_p_raises(self):
        with pytest.raises(ParameterError):
            feasible_alpha(m=48, p=6, mu=2, alpha_target=20.0, cs=977)

    def test_indivisible_m_raises(self):
        with pytest.raises(ParameterError):
            feasible_alpha(m=7, p=4, mu=2, alpha_target=20.0, cs=977)
