"""Tests for the communication lower bounds (paper §2.3)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import ConfigurationError
from repro.model.bounds import (
    ccr_lower_bound,
    distributed_misses_lower_bound,
    loomis_whitney_optimum,
    loomis_whitney_optimum_numeric,
    shared_misses_lower_bound,
    tdata_lower_bound,
)
from repro.model.machine import MulticoreMachine


class TestLoomisWhitney:
    """The §2.3.1 optimization behind every bound in the paper."""

    def test_closed_form(self):
        opt = loomis_whitney_optimum()
        assert opt.eta == opt.nu == opt.xi == pytest.approx(2 / 3)
        assert opt.k == pytest.approx(math.sqrt(8 / 27))

    def test_numeric_cross_check(self):
        analytic = loomis_whitney_optimum()
        numeric = loomis_whitney_optimum_numeric()
        assert numeric.k == pytest.approx(analytic.k, rel=1e-5)
        assert numeric.eta == pytest.approx(2 / 3, rel=1e-3)

    def test_k_yields_ccr_constant(self):
        # CCR >= Z / (k Z sqrt(Z)) = sqrt(27/(8Z))
        k = loomis_whitney_optimum().k
        for z in (8, 64, 977):
            assert 1 / (k * math.sqrt(z)) == pytest.approx(ccr_lower_bound(z))


class TestCCRBound:
    def test_formula(self):
        assert ccr_lower_bound(8) == pytest.approx(math.sqrt(27.0 / 64.0))
        assert ccr_lower_bound(27) == pytest.approx(math.sqrt(27.0 / (8 * 27)))

    def test_monotone_in_cache_size(self):
        # More cache can only lower the required communication.
        values = [ccr_lower_bound(z) for z in (4, 16, 64, 256, 1024)]
        assert values == sorted(values, reverse=True)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            ccr_lower_bound(0)

    @given(st.integers(min_value=1, max_value=10**9))
    def test_positive(self, z):
        assert ccr_lower_bound(z) > 0


class TestLevelBounds:
    def setup_method(self):
        self.machine = MulticoreMachine(p=4, cs=977, cd=21, sigma_s=2.0, sigma_d=1.0)

    def test_shared_bound_value(self):
        got = shared_misses_lower_bound(self.machine, 10, 20, 30)
        assert got == pytest.approx(10 * 20 * 30 * math.sqrt(27 / (8 * 977)))

    def test_distributed_bound_value(self):
        got = distributed_misses_lower_bound(self.machine, 10, 20, 30)
        assert got == pytest.approx(6000 / 4 * math.sqrt(27 / (8 * 21)))

    def test_tdata_combines_levels(self):
        ms = shared_misses_lower_bound(self.machine, 8, 8, 8)
        md = distributed_misses_lower_bound(self.machine, 8, 8, 8)
        assert tdata_lower_bound(self.machine, 8, 8, 8) == pytest.approx(
            ms / 2.0 + md / 1.0
        )

    def test_rejects_bad_dims(self):
        with pytest.raises(ConfigurationError):
            shared_misses_lower_bound(self.machine, 0, 2, 3)

    @given(
        st.integers(min_value=1, max_value=200),
        st.integers(min_value=1, max_value=200),
        st.integers(min_value=1, max_value=200),
    )
    def test_scales_linearly_in_each_dim(self, m, n, z):
        base = shared_misses_lower_bound(self.machine, m, n, z)
        assert shared_misses_lower_bound(self.machine, 2 * m, n, z) == pytest.approx(
            2 * base
        )
