"""Tests for the communication lower bounds (paper §2.3)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import ConfigurationError
from repro.model.bounds import (
    ccr_lower_bound,
    compulsory_shared_lower_bound,
    distributed_bounds,
    distributed_misses_lower_bound,
    loomis_whitney_optimum,
    loomis_whitney_optimum_numeric,
    memory_independent_distributed_lower_bound,
    shared_bounds,
    shared_misses_lower_bound,
    tdata_lower_bound,
    tight_distributed_misses_lower_bound,
    tight_shared_misses_lower_bound,
)
from repro.model.machine import MulticoreMachine


class TestLoomisWhitney:
    """The §2.3.1 optimization behind every bound in the paper."""

    def test_closed_form(self):
        opt = loomis_whitney_optimum()
        assert opt.eta == opt.nu == opt.xi == pytest.approx(2 / 3)
        assert opt.k == pytest.approx(math.sqrt(8 / 27))

    def test_numeric_cross_check(self):
        analytic = loomis_whitney_optimum()
        numeric = loomis_whitney_optimum_numeric()
        assert numeric.k == pytest.approx(analytic.k, rel=1e-5)
        assert numeric.eta == pytest.approx(2 / 3, rel=1e-3)

    def test_k_yields_ccr_constant(self):
        # CCR >= Z / (k Z sqrt(Z)) = sqrt(27/(8Z))
        k = loomis_whitney_optimum().k
        for z in (8, 64, 977):
            assert 1 / (k * math.sqrt(z)) == pytest.approx(ccr_lower_bound(z))


class TestCCRBound:
    def test_formula(self):
        assert ccr_lower_bound(8) == pytest.approx(math.sqrt(27.0 / 64.0))
        assert ccr_lower_bound(27) == pytest.approx(math.sqrt(27.0 / (8 * 27)))

    def test_monotone_in_cache_size(self):
        # More cache can only lower the required communication.
        values = [ccr_lower_bound(z) for z in (4, 16, 64, 256, 1024)]
        assert values == sorted(values, reverse=True)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            ccr_lower_bound(0)

    @given(st.integers(min_value=1, max_value=10**9))
    def test_positive(self, z):
        assert ccr_lower_bound(z) > 0


class TestLevelBounds:
    def setup_method(self):
        self.machine = MulticoreMachine(p=4, cs=977, cd=21, sigma_s=2.0, sigma_d=1.0)

    def test_shared_bound_value(self):
        got = shared_misses_lower_bound(self.machine, 10, 20, 30)
        assert got == pytest.approx(10 * 20 * 30 * math.sqrt(27 / (8 * 977)))

    def test_distributed_bound_value(self):
        got = distributed_misses_lower_bound(self.machine, 10, 20, 30)
        assert got == pytest.approx(6000 / 4 * math.sqrt(27 / (8 * 21)))

    def test_tdata_combines_levels(self):
        ms = shared_misses_lower_bound(self.machine, 8, 8, 8)
        md = distributed_misses_lower_bound(self.machine, 8, 8, 8)
        assert tdata_lower_bound(self.machine, 8, 8, 8) == pytest.approx(
            ms / 2.0 + md / 1.0
        )

    def test_rejects_bad_dims(self):
        with pytest.raises(ConfigurationError):
            shared_misses_lower_bound(self.machine, 0, 2, 3)

    @given(
        st.integers(min_value=1, max_value=200),
        st.integers(min_value=1, max_value=200),
        st.integers(min_value=1, max_value=200),
    )
    def test_scales_linearly_in_each_dim(self, m, n, z):
        base = shared_misses_lower_bound(self.machine, m, n, z)
        assert shared_misses_lower_bound(self.machine, 2 * m, n, z) == pytest.approx(
            2 * base
        )


class TestTightBounds:
    """The SLLvdG two-term bounds (arXiv:1702.02017)."""

    def setup_method(self):
        self.machine = MulticoreMachine(p=4, cs=64, cd=4, q=32)

    def test_shared_formula(self):
        got = tight_shared_misses_lower_bound(self.machine, 10, 10, 10)
        assert got == pytest.approx(2 * 1000 / 8.0 - 2 * 64)

    def test_distributed_formula(self):
        got = tight_distributed_misses_lower_bound(self.machine, 10, 10, 10)
        assert got == pytest.approx(2 * 250 / 2.0 - 2 * 4)

    def test_clamped_at_zero_on_tiny_problems(self):
        assert tight_shared_misses_lower_bound(self.machine, 1, 1, 1) == 0.0

    def test_rejects_bad_dims(self):
        with pytest.raises(ConfigurationError):
            tight_shared_misses_lower_bound(self.machine, 0, 1, 1)

    @given(
        p=st.sampled_from([1, 2, 4, 8]),
        cd=st.integers(min_value=3, max_value=64),
        cs_factor=st.integers(min_value=1, max_value=64),
        work_factor=st.integers(min_value=1, max_value=64),
    )
    def test_tight_dominates_loomis_whitney_asymptotically(
        self, p, cd, cs_factor, work_factor
    ):
        # Once mnz clears the crossover 2·CS^1.5/(2 − √(27/8)), the tight
        # bound's stronger constant wins over Loomis–Whitney — for every
        # valid (CS, CD, p).
        cs = p * cd * cs_factor
        machine = MulticoreMachine(p=p, cs=cs, cd=cd, q=32)
        crossover = 2.0 * cs**1.5 / (2.0 - math.sqrt(27.0 / 8.0))
        z = int(crossover * work_factor) + 1
        assert tight_shared_misses_lower_bound(
            machine, 1, 1, z
        ) >= shared_misses_lower_bound(machine, 1, 1, z) * (1 - 1e-9)
        # Same crossover shape per core at the distributed level.
        zd = int(p * 2.0 * cd**1.5 / (2.0 - math.sqrt(27.0 / 8.0))) * work_factor + p
        assert tight_distributed_misses_lower_bound(
            machine, 1, 1, zd
        ) >= distributed_misses_lower_bound(machine, 1, 1, zd) * (1 - 1e-9)


class TestMemoryIndependentAndCompulsory:
    def setup_method(self):
        self.machine = MulticoreMachine(p=4, cs=64, cd=4, q=32)

    def test_memory_independent_value(self):
        got = memory_independent_distributed_lower_bound(self.machine, 8, 8, 8)
        assert got == pytest.approx(3.0 * (512 / 4) ** (2.0 / 3.0))

    def test_memory_independent_ignores_cache_size(self):
        bigger = MulticoreMachine(p=4, cs=4096, cd=1024, q=32)
        assert memory_independent_distributed_lower_bound(
            self.machine, 8, 8, 8
        ) == pytest.approx(
            memory_independent_distributed_lower_bound(bigger, 8, 8, 8)
        )

    def test_compulsory_counts_every_block_once(self):
        got = compulsory_shared_lower_bound(self.machine, 3, 5, 7)
        assert got == 3 * 7 + 7 * 5 + 3 * 5


class TestBoundAggregates:
    def setup_method(self):
        self.machine = MulticoreMachine(p=4, cs=977, cd=21, q=32)

    def test_best_is_max_and_binding_names_it(self):
        sb = shared_bounds(self.machine, 8, 8, 8)
        assert sb.best == max(sb.loomis_whitney, sb.tight, sb.compulsory)
        assert getattr(sb, sb.binding.replace("-", "_")) == sb.best
        db = distributed_bounds(self.machine, 8, 8, 8)
        assert db.best == max(db.loomis_whitney, db.tight, db.memory_independent)
        assert getattr(db, db.binding.replace("-", "_")) == db.best

    def test_small_problem_binds_on_compulsory(self):
        # mnz = 8 against CS=977: the asymptotic bounds are tiny, the
        # every-block-once floor dominates.
        sb = shared_bounds(self.machine, 2, 2, 2)
        assert sb.binding == "compulsory"

    def test_large_problem_binds_on_tight(self):
        sb = shared_bounds(self.machine, 120, 120, 120)
        assert sb.binding == "tight"

    @given(
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=64),
    )
    def test_aggregates_never_below_paper_bounds(self, m, n, z):
        # The gap denominator can only be stronger than the paper's
        # Loomis–Whitney series, never weaker.
        sb = shared_bounds(self.machine, m, n, z)
        db = distributed_bounds(self.machine, m, n, z)
        assert sb.best >= shared_misses_lower_bound(self.machine, m, n, z)
        assert db.best >= distributed_misses_lower_bound(self.machine, m, n, z)
