"""Tests for the multicore machine model."""

import math

import pytest

from repro.exceptions import ConfigurationError
from repro.model.machine import (
    COEFFICIENT_BYTES,
    PRESETS,
    MulticoreMachine,
    preset,
)


class TestConstruction:
    def test_basic_fields(self):
        m = MulticoreMachine(p=4, cs=100, cd=21, sigma_s=2.0, sigma_d=3.0, q=16)
        assert (m.p, m.cs, m.cd) == (4, 100, 21)
        assert m.sigma_s == 2.0 and m.sigma_d == 3.0
        assert m.q == 16

    def test_rejects_zero_cores(self):
        with pytest.raises(ConfigurationError):
            MulticoreMachine(p=0, cs=100, cd=10)

    def test_rejects_negative_capacities(self):
        with pytest.raises(ConfigurationError):
            MulticoreMachine(p=1, cs=-1, cd=3)

    def test_rejects_shared_smaller_than_union_of_distributed(self):
        # Inclusivity requires CS >= p*CD.
        with pytest.raises(ConfigurationError):
            MulticoreMachine(p=4, cs=11, cd=3)

    def test_accepts_shared_exactly_union(self):
        m = MulticoreMachine(p=4, cs=12, cd=3)
        assert m.cs == 12

    def test_rejects_distributed_below_three(self):
        # One block of each of A, B, C must fit.
        with pytest.raises(ConfigurationError):
            MulticoreMachine(p=1, cs=10, cd=2)

    def test_rejects_nonpositive_bandwidths(self):
        with pytest.raises(ConfigurationError):
            MulticoreMachine(p=1, cs=10, cd=3, sigma_s=0.0)
        with pytest.raises(ConfigurationError):
            MulticoreMachine(p=1, cs=10, cd=3, sigma_d=-1.0)

    def test_frozen(self):
        m = MulticoreMachine(p=1, cs=10, cd=3)
        with pytest.raises(AttributeError):
            m.cs = 20  # type: ignore[misc]


class TestDerived:
    def test_grid_side_square(self):
        assert MulticoreMachine(p=4, cs=100, cd=21).grid_side == 2
        assert MulticoreMachine(p=9, cs=100, cd=11).grid_side == 3
        assert MulticoreMachine(p=1, cs=10, cd=3).grid_side == 1

    def test_grid_side_non_square_raises(self):
        with pytest.raises(ConfigurationError):
            MulticoreMachine(p=6, cs=100, cd=16).grid_side

    def test_is_square_grid(self):
        assert MulticoreMachine(p=4, cs=100, cd=21).is_square_grid
        assert not MulticoreMachine(p=6, cs=100, cd=16).is_square_grid

    def test_block_bytes(self):
        m = MulticoreMachine(p=1, cs=10, cd=3, q=32)
        assert m.block_bytes == 32 * 32 * COEFFICIENT_BYTES

    def test_cache_bytes(self):
        m = MulticoreMachine(p=1, cs=10, cd=3, q=32)
        assert m.shared_bytes == 10 * m.block_bytes
        assert m.distributed_bytes == 3 * m.block_bytes

    def test_bandwidth_ratio_r(self):
        m = MulticoreMachine(p=1, cs=10, cd=3, sigma_s=1.0, sigma_d=3.0)
        assert m.r == pytest.approx(0.25)


class TestTransforms:
    def test_with_bandwidth_ratio(self):
        m = MulticoreMachine(p=4, cs=100, cd=21)
        m2 = m.with_bandwidth_ratio(0.25, total=4.0)
        assert m2.sigma_s == pytest.approx(1.0)
        assert m2.sigma_d == pytest.approx(3.0)
        assert m2.r == pytest.approx(0.25)
        # capacities untouched
        assert (m2.cs, m2.cd, m2.p) == (m.cs, m.cd, m.p)

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.5, 1.5])
    def test_with_bandwidth_ratio_rejects_degenerate(self, bad):
        m = MulticoreMachine(p=4, cs=100, cd=21)
        with pytest.raises(ConfigurationError):
            m.with_bandwidth_ratio(bad)

    def test_with_halved_caches(self):
        m = MulticoreMachine(p=4, cs=100, cd=21)
        h = m.with_halved_caches()
        assert h.cs == 50 and h.cd == 10

    def test_with_halved_caches_floors(self):
        m = MulticoreMachine(p=1, cs=7, cd=6)
        h = m.with_halved_caches()
        # cd floors at the legality minimum of 3
        assert h.cs == 3 and h.cd == 3

    def test_with_doubled_caches(self):
        m = MulticoreMachine(p=4, cs=100, cd=21)
        d = m.with_doubled_caches()
        assert d.cs == 200 and d.cd == 42

    def test_from_bytes_matches_paper_q32(self):
        m = MulticoreMachine.from_bytes(
            p=4,
            shared_bytes=8 * 1024 * 1024,
            distributed_bytes=256 * 1024,
            q=32,
            data_fraction=2 / 3,
        )
        # paper rounds CS to 977 (they reserve a sliver); recomputation
        # gives 1024 — both CD values agree at 21.
        assert m.cd == 21
        assert m.cs in (977, 1024)

    def test_from_bytes_rejects_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            MulticoreMachine.from_bytes(4, 2**23, 2**18, 32, data_fraction=0.0)


class TestPresets:
    def test_all_presets_valid(self):
        for key in PRESETS:
            m = preset(key)
            assert m.cs >= m.p * m.cd
            assert m.p == 4

    def test_paper_values(self):
        assert (preset("q32").cs, preset("q32").cd) == (977, 21)
        assert (preset("q64").cs, preset("q64").cd) == (245, 6)
        assert (preset("q80").cs, preset("q80").cd) == (157, 4)
        assert preset("q32-pessimistic").cd == 16
        assert preset("q64-pessimistic").cd == 4
        assert preset("q80-pessimistic").cd == 3

    def test_unknown_preset(self):
        with pytest.raises(ConfigurationError, match="valid presets"):
            preset("q128")
