"""Tests for the Tradeoff parameter optimization (paper §3.3)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.tradeoff_opt import (
    alpha_num,
    objective,
    objective_derivative,
    optimal_parameters,
)
from repro.exceptions import ParameterError
from repro.model.machine import MulticoreMachine


def machine(sigma_s=1.0, sigma_d=1.0, p=4, cs=977, cd=21):
    return MulticoreMachine(p=p, cs=cs, cd=cd, sigma_s=sigma_s, sigma_d=sigma_d)


class TestAlphaNum:
    def test_root_of_derivative(self):
        m = machine(sigma_s=1.3, sigma_d=0.7)
        a = alpha_num(m)
        assert objective_derivative(a, m) == pytest.approx(0.0, abs=1e-9)

    def test_singular_case_rho_one(self):
        # p*sigma_d == sigma_s: the removable singularity -> sqrt(CS/3)
        m = machine(sigma_s=4.0, sigma_d=1.0, p=4)
        assert alpha_num(m) == pytest.approx(math.sqrt(977 / 3.0))

    def test_limit_fast_distributed(self):
        # sigma_d >> sigma_s: alpha_num -> sqrt(CS)
        m = machine(sigma_s=1e-6, sigma_d=1.0)
        assert alpha_num(m) == pytest.approx(math.sqrt(977), rel=1e-2)

    def test_limit_slow_distributed(self):
        # sigma_s >> sigma_d: alpha_num -> 0
        m = machine(sigma_s=1.0, sigma_d=1e-7)
        assert alpha_num(m) < 1.0

    @given(
        st.floats(min_value=0.01, max_value=100.0),
        st.floats(min_value=0.01, max_value=100.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_is_global_minimum(self, sigma_s, sigma_d):
        m = machine(sigma_s=sigma_s, sigma_d=sigma_d)
        a = alpha_num(m)
        hi = math.sqrt(m.cs)
        if not 0.5 < a < hi - 0.5:
            return  # optimum clamps outside the open domain
        f_opt = objective(a, m)
        for candidate in (a * 0.5, a * 0.9, a * 1.1, min(a * 1.9, hi * 0.999)):
            if 0 < candidate < hi:
                assert objective(candidate, m) >= f_opt - 1e-12

    def test_objective_rejects_out_of_domain(self):
        m = machine()
        with pytest.raises(ParameterError):
            objective(0.0, m)
        with pytest.raises(ParameterError):
            objective_derivative(math.sqrt(m.cs) + 1, m)


class TestOptimalParameters:
    def test_q32_equal_bandwidths(self):
        params = optimal_parameters(machine())
        assert params.alpha == 16  # 23.02 rounded down to a multiple of 8
        assert params.mu == 4
        assert params.beta == (977 - 256) // 32
        assert params.shared_footprint() <= 977

    def test_extreme_fast_distributed_degenerates_to_shared_opt(self):
        # alpha -> alpha_max-ish: the largest feasible multiple of 8
        params = optimal_parameters(machine(sigma_s=1e-6, sigma_d=1.0))
        assert params.alpha >= 24
        assert params.alpha * (params.alpha + 2) <= 977

    def test_extreme_slow_distributed_degenerates_to_distributed_opt(self):
        params = optimal_parameters(machine(sigma_s=1.0, sigma_d=1e-7))
        assert params.alpha == 2 * params.mu  # sqrt(p)*mu

    def test_mu_reduction_fallback(self):
        # p=1, CD=CS=7: mu=2 would need alpha^2+2alpha=8 > 7; fall to mu=1.
        m = MulticoreMachine(p=1, cs=7, cd=7)
        params = optimal_parameters(m)
        assert params.mu <= 2
        assert params.alpha * (params.alpha + 2) <= 7

    def test_non_square_p_raises(self):
        m = MulticoreMachine(p=6, cs=977, cd=21)
        with pytest.raises(Exception):
            optimal_parameters(m)

    @given(
        st.floats(min_value=0.01, max_value=10.0),
        st.floats(min_value=0.01, max_value=10.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_always_feasible(self, sigma_s, sigma_d):
        m = machine(sigma_s=sigma_s, sigma_d=sigma_d)
        params = optimal_parameters(m)
        assert params.alpha >= 1
        assert params.beta >= 1
        assert params.alpha % (2 * params.mu) == 0
        assert params.alpha * params.alpha + 2 * params.alpha <= m.cs
