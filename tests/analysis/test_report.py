"""Tests for the predicted-vs-simulated reporting helpers."""

import pytest

from repro.analysis.report import (
    accuracy_row,
    accuracy_table,
    bound_gap_row,
    bound_gap_table,
    ranking,
    winner,
)
from repro.model.machine import MulticoreMachine
from repro.sim.runner import run_experiment

MACHINE = MulticoreMachine(p=4, cs=100, cd=21, q=8)


@pytest.fixture(scope="module")
def results():
    return [
        run_experiment(name, MACHINE, 8, 8, 8, "ideal")
        for name in ("shared-opt", "distributed-opt", "outer-product")
    ]


class TestAccuracy:
    def test_row_fields(self, results):
        row = accuracy_row(results[0])
        assert row["algorithm"] == "shared-opt"
        assert row["MS_sim"] > 0
        assert "MS_pred" in row and "MS_ratio" in row

    def test_ideal_ratio_close_to_one(self, results):
        for row in accuracy_table(results):
            assert 0.5 <= row["MS_ratio"] <= 2.0

    def test_without_prediction(self, results):
        import dataclasses

        stripped = dataclasses.replace(results[0], predicted=None)
        row = accuracy_row(stripped)
        assert "MS_pred" not in row


class TestBoundGap:
    def test_row_fields(self, results):
        row = bound_gap_row(results[0])
        assert row["MS/bound"] >= 1.0
        assert row["MD/bound"] >= 1.0

    def test_table_covers_all(self, results):
        assert len(bound_gap_table(results)) == 3


class TestRanking:
    def test_ranking_sorted(self, results):
        ordered = ranking(results, "ms")
        values = [r.ms for r in ordered]
        assert values == sorted(values)

    def test_winner(self, results):
        best = winner(results, "ms")
        assert best.algorithm == "shared-opt"
        assert winner([], "ms") is None

    def test_winner_md(self, results):
        assert winner(results, "md").algorithm == "distributed-opt"
