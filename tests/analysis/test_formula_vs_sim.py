"""Exactness of the closed forms: formula == checked IDEAL simulation.

This is the keystone test of the analysis layer: for every algorithm,
whenever :func:`divisibility_ok` says the exactness conditions hold,
the simulated IDEAL counts must equal the paper's (or our) closed forms
*integer for integer* — not approximately.
"""

import pytest

from repro.algorithms.registry import ALGORITHMS
from repro.analysis.formulas import divisibility_ok, predict
from repro.model.machine import MulticoreMachine
from repro.sim.runner import run_experiment

MACHINE = MulticoreMachine(p=4, cs=100, cd=21, q=8)

# (algorithm, dims, params) chosen so divisibility_ok holds.
EXACT_CASES = [
    ("shared-opt", (18, 18, 18), dict(lam=9)),
    ("shared-opt", (9, 18, 5), dict(lam=9)),
    ("shared-opt", (8, 8, 8), dict(lam=4)),
    ("distributed-opt", (16, 16, 16), dict(mu=4)),
    ("distributed-opt", (8, 16, 7), dict(mu=4)),
    ("distributed-opt", (6, 6, 6), dict(mu=3)),
    ("tradeoff", (16, 16, 16), dict(alpha=8, beta=2, mu=2)),  # general case
    ("tradeoff", (8, 8, 9), dict(alpha=8, beta=2, mu=2)),  # beta does not divide z
    ("tradeoff", (8, 8, 8), dict(alpha=8, beta=2, mu=4)),  # alpha = sqrt(p)*mu

    ("outer-product", (8, 8, 8), {}),
    ("outer-product", (10, 6, 3), {}),
    ("shared-equal", (10, 10, 10), dict(t=5)),
    ("shared-equal", (5, 10, 15), dict(t=5)),
    ("distributed-equal", (16, 16, 16), dict(t=2)),
    ("distributed-equal", (8, 16, 8), dict(t=2)),
]


@pytest.mark.parametrize("name,dims,params", EXACT_CASES)
def test_formula_matches_simulation_exactly(name, dims, params):
    m, n, z = dims
    alg = ALGORITHMS[name](MACHINE, m, n, z, **params)
    assert divisibility_ok(alg), "test case must satisfy exactness conditions"
    result = run_experiment(name, MACHINE, m, n, z, "ideal", check=True, **params)
    predicted = predict(alg)
    assert result.ms == predicted.ms
    assert result.md == predicted.md


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_formula_close_even_when_ragged(name):
    """With ragged tiles the formulas stay within a modest factor."""
    m, n, z = 13, 11, 9
    result = run_experiment(name, MACHINE, m, n, z, "ideal", check=True)
    alg = ALGORITHMS[name](MACHINE, m, n, z)
    predicted = predict(alg)
    assert result.ms <= 2.5 * predicted.ms + 100
    assert predicted.ms <= 2.5 * result.ms + 100


def test_divisibility_flags_negative_cases():
    alg = ALGORITHMS["shared-opt"](MACHINE, 10, 10, 10, lam=9)
    assert not divisibility_ok(alg)
    alg = ALGORITHMS["distributed-equal"](MACHINE, 16, 6, 16, t=2)
    # n/t = 3 tiles per row, not divisible by p=4
    assert not divisibility_ok(alg)


def test_predict_unknown_algorithm():
    from repro.algorithms.base import MatmulAlgorithm
    from repro.exceptions import ConfigurationError

    class Fake(MatmulAlgorithm):
        name = "fake"

        def run(self, ctx):  # pragma: no cover
            pass

    with pytest.raises(ConfigurationError):
        predict(Fake(MACHINE, 2, 2, 2))


def test_predicted_counts_helpers():
    from repro.analysis.formulas import PredictedCounts

    pc = PredictedCounts(ms=100.0, md=40.0)
    machine = MulticoreMachine(p=4, cs=100, cd=21, sigma_s=2.0, sigma_d=0.5)
    assert pc.tdata(machine) == pytest.approx(100 / 2 + 40 / 0.5)
    assert pc.ccr_s(10, 10, 10) == pytest.approx(0.1)
    assert pc.ccr_d(10, 10, 10, 4) == pytest.approx(40 / 250)
