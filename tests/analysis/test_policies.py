"""Tests for the replacement-policy gap analysis."""

import pytest

from repro.analysis.policies import (
    miss_curve_rows,
    record_trace,
    replacement_gap,
)
from repro.model.machine import MulticoreMachine

MACHINE = MulticoreMachine(p=4, cs=100, cd=21, q=8)


class TestRecordTrace:
    def test_trace_volume(self):
        ctx = record_trace("shared-opt", MACHINE, 6, 6, 6)
        assert len(ctx.trace) == 3 * 216
        assert ctx.comp_total == 216

    def test_keys_flat(self):
        ctx = record_trace("outer-product", MACHINE, 4, 4, 4)
        assert len(ctx.keys()) == 3 * 64

    def test_params_forwarded(self):
        ctx = record_trace("shared-opt", MACHINE, 6, 6, 6, lam=3)
        assert ctx.comp_total == 216

    def test_replay_matches_live_lru(self):
        """Replaying the recorded trace equals live LRU simulation."""
        from repro.cache.hierarchy import LRUHierarchy
        from repro.sim.runner import run_experiment

        ctx = record_trace("shared-opt", MACHINE, 8, 8, 8)
        h = LRUHierarchy(MACHINE.p, MACHINE.cs, MACHINE.cd)
        ctx.trace.replay(h)
        live = run_experiment("shared-opt", MACHINE, 8, 8, 8, "lru")
        assert h.snapshot().ms == live.ms
        assert h.snapshot().md_per_core == live.stats.md_per_core


class TestReplacementGap:
    @pytest.fixture(scope="class")
    def rows(self):
        return replacement_gap("shared-opt", MACHINE, 8, 8, 8)

    def test_one_row_per_cache(self, rows):
        assert len(rows) == MACHINE.p + 1
        assert rows[-1]["cache"] == "shared (alone)"

    def test_opt_between_cold_and_lru(self, rows):
        for row in rows:
            assert row["cold"] <= row["opt"] <= row["lru"]

    def test_distributed_lru_matches_hierarchy(self, rows):
        """Stack-distance LRU on the per-core subtrace must equal the
        live distributed-cache miss counts of the two-level simulator."""
        from repro.sim.runner import run_experiment

        live = run_experiment("shared-opt", MACHINE, 8, 8, 8, "lru")
        for core in range(MACHINE.p):
            assert rows[core]["lru"] == live.stats.md_per_core[core]

    def test_symmetric_cores(self, rows):
        values = {rows[c]["lru"] for c in range(MACHINE.p)}
        assert len(values) == 1  # balanced schedule, identical subtraces


class TestMissCurve:
    def test_default_capacities(self):
        rows = miss_curve_rows("shared-opt", MACHINE, 6, 6, 6)
        assert rows[-1]["capacity"] == MACHINE.cs
        caps = [r["capacity"] for r in rows]
        assert caps == sorted(caps)

    def test_monotone_and_opt_dominates(self):
        rows = miss_curve_rows(
            "shared-opt", MACHINE, 6, 6, 6, capacities=[4, 16, 64]
        )
        lru = [r["lru"] for r in rows]
        opt = [r["opt"] for r in rows]
        assert lru == sorted(lru, reverse=True)
        assert opt == sorted(opt, reverse=True)
        for l_misses, o_misses in zip(lru, opt):
            assert o_misses <= l_misses
