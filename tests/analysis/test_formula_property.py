"""Property-based exactness: formulas == simulation over random configs.

`test_formula_vs_sim.py` pins hand-picked cases; here hypothesis draws
random machines and divisible dimensions and requires the closed forms
to match the checked IDEAL simulation exactly, every time.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.registry import ALGORITHMS
from repro.analysis.formulas import divisibility_ok, predict
from repro.model.machine import MulticoreMachine
from repro.sim.runner import run_experiment


@st.composite
def shared_opt_case(draw):
    lam = draw(st.integers(min_value=1, max_value=6))
    cs = max(1 + lam + lam * lam, 4 * 21)
    machine = MulticoreMachine(p=4, cs=cs, cd=21, q=8)
    m = lam * draw(st.integers(min_value=1, max_value=3))
    n = lam * draw(st.integers(min_value=1, max_value=3))
    z = draw(st.integers(min_value=1, max_value=12))
    return machine, m, n, z, {"lam": lam}


@st.composite
def distributed_opt_case(draw):
    mu = draw(st.integers(min_value=1, max_value=4))
    cd = max(1 + mu + mu * mu, 3)
    machine = MulticoreMachine(p=4, cs=4 * cd + 40, cd=cd, q=8)
    tile = 2 * mu
    m = tile * draw(st.integers(min_value=1, max_value=3))
    n = tile * draw(st.integers(min_value=1, max_value=3))
    z = draw(st.integers(min_value=1, max_value=10))
    return machine, m, n, z, {"mu": mu}


@st.composite
def tradeoff_case(draw):
    mu = draw(st.integers(min_value=1, max_value=3))
    mult = draw(st.integers(min_value=1, max_value=2))
    alpha = 2 * mu * mult
    beta = draw(st.integers(min_value=1, max_value=4))
    cd = max(1 + mu + mu * mu, 3)
    cs = max(alpha * alpha + 2 * alpha * beta, 4 * cd)
    machine = MulticoreMachine(p=4, cs=cs, cd=cd, q=8)
    m = alpha * draw(st.integers(min_value=1, max_value=2))
    n = alpha * draw(st.integers(min_value=1, max_value=2))
    z = draw(st.integers(min_value=1, max_value=10))
    return machine, m, n, z, {"alpha": alpha, "beta": beta, "mu": mu}


CASES = {
    "shared-opt": shared_opt_case(),
    "distributed-opt": distributed_opt_case(),
    "tradeoff": tradeoff_case(),
}


@pytest.mark.parametrize("name", sorted(CASES))
class TestRandomExactness:
    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_formula_exact_on_divisible_configs(self, name, data):
        machine, m, n, z, params = data.draw(CASES[name])
        alg = ALGORITHMS[name](machine, m, n, z, **params)
        assert divisibility_ok(alg)
        result = run_experiment(
            name, machine, m, n, z, "ideal", check=True, **params
        )
        predicted = predict(alg)
        assert result.ms == predicted.ms
        assert result.md == predicted.md
