"""repro — matrix product on multicore architectures, reproduced.

A faithful, self-contained reproduction of

    Mathias Jacquelin, Loris Marchal, Yves Robert,
    "Complexity analysis and performance evaluation of matrix product
    on multicore architectures", LIP RRLIP2009-09 / ICPP 2009.

The package provides:

* the multicore machine model and communication lower bounds
  (:mod:`repro.model`);
* a block-granular two-level cache simulator with LRU and IDEAL modes
  (:mod:`repro.cache`);
* the paper's three Multicore Maximum Reuse algorithms and the three
  reference baselines (:mod:`repro.algorithms`);
* closed-form miss-count formulas and the Tradeoff optimizer
  (:mod:`repro.analysis`);
* a numeric executor proving every schedule computes ``A·B``
  (:mod:`repro.numerics`);
* the simulation engine, settings and sweeps (:mod:`repro.sim`);
* one entry point per paper figure (:mod:`repro.experiments`) and a CLI
  (``python -m repro`` / ``repro-mmm``).

Quickstart::

    from repro import preset, run_experiment
    machine = preset("q32")
    result = run_experiment("shared-opt", machine, 60, 60, 60, "lru-50")
    print(result.ms, result.md, result.tdata)
"""

from repro.model.machine import MulticoreMachine, PRESETS, preset
from repro.model.bounds import (
    ccr_lower_bound,
    shared_misses_lower_bound,
    distributed_misses_lower_bound,
    tdata_lower_bound,
)
from repro.algorithms import (
    SharedOpt,
    DistributedOpt,
    Tradeoff,
    OuterProduct,
    SharedEqual,
    DistributedEqual,
    ALGORITHMS,
    get_algorithm,
)
from repro.analysis.formulas import predict, PredictedCounts
from repro.analysis.tradeoff_opt import alpha_num, optimal_parameters
from repro.numerics import BlockMatrix, verify_schedule
from repro.sim import (
    run_experiment,
    order_sweep,
    ratio_sweep,
    ExperimentResult,
    SweepResult,
    SETTINGS,
)

__version__ = "1.0.0"

__all__ = [
    "MulticoreMachine",
    "PRESETS",
    "preset",
    "ccr_lower_bound",
    "shared_misses_lower_bound",
    "distributed_misses_lower_bound",
    "tdata_lower_bound",
    "SharedOpt",
    "DistributedOpt",
    "Tradeoff",
    "OuterProduct",
    "SharedEqual",
    "DistributedEqual",
    "ALGORITHMS",
    "get_algorithm",
    "predict",
    "PredictedCounts",
    "alpha_num",
    "optimal_parameters",
    "BlockMatrix",
    "verify_schedule",
    "run_experiment",
    "order_sweep",
    "ratio_sweep",
    "ExperimentResult",
    "SweepResult",
    "SETTINGS",
    "__version__",
]
