"""Command-line interface: ``python -m repro`` / ``repro-mmm``.

Subcommands
-----------
``list``
    Show registered algorithms, machine presets and simulation settings.
``params``
    Derived tile parameters (λ, µ, α, β) for a machine.
``run``
    One experiment: algorithm × machine × dimensions × setting.
``sweep``
    Square-order sweep for one or more algorithms; ``--run-dir`` makes
    the run durable (checkpointed, resumable with ``--resume``).
``runs``
    Inspect durable run directories: ``list``, ``show``, ``verify``.
``fabric``
    Lease-based distributed sweep fabric: ``serve`` runs the durable
    cell-queue coordinator (``--local N`` also forks N workers);
    ``worker`` joins a serving coordinator.
``figure``
    Regenerate a paper figure (``fig4`` … ``fig12``) as ASCII tables
    and optionally CSV files.
``verify``
    Numerically prove an algorithm's schedule computes ``A·B``.
``check``
    Static schedule analysis (capacity/presence/coverage/races) across
    the algorithm × machine matrix, plus the repo lint pass.
``tables``
    The §4.1 cache-configuration and parameter tables.
``bench``
    Record the benchmark suite as ``BENCH_<date>.json`` and optionally
    compare against a committed baseline (exit 1 on regression).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Any, Dict, List, Optional

from repro.algorithms.registry import algorithm_names, get_algorithm
from repro.exceptions import ReproError
from repro.experiments.figures import FIGURES, get_figure
from repro.experiments.io import (
    figure_to_csv,
    render_figure,
    render_rows,
)
from repro.experiments.tables import cache_configuration_table, parameter_table
from repro.model.machine import PRESETS, MulticoreMachine, preset
from repro.model.params import lambda_param, mu_param
from repro.analysis.tradeoff_opt import optimal_parameters
from repro.numerics.executor import verify_schedule
from repro.sim.runner import run_experiment
from repro.sim.settings import SETTINGS
from repro.sim.sweep import order_sweep


def _machine_from_args(args: argparse.Namespace) -> MulticoreMachine:
    if args.preset:
        machine = preset(args.preset)
    else:
        machine = MulticoreMachine(
            p=args.cores, cs=args.cs, cd=args.cd, q=args.q
        )
    if args.sigma_s != 1.0 or args.sigma_d != 1.0:
        machine = MulticoreMachine(
            p=machine.p,
            cs=machine.cs,
            cd=machine.cd,
            sigma_s=args.sigma_s,
            sigma_d=args.sigma_d,
            q=machine.q,
            name=machine.name,
        )
    return machine


def _add_machine_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("machine")
    group.add_argument("--preset", choices=sorted(PRESETS), default=None)
    group.add_argument("--cores", "-p", type=int, default=4)
    group.add_argument("--cs", type=int, default=977, help="shared capacity (blocks)")
    group.add_argument("--cd", type=int, default=21, help="distributed capacity")
    group.add_argument("--q", type=int, default=32, help="block side")
    group.add_argument("--sigma-s", type=float, default=1.0)
    group.add_argument("--sigma-d", type=float, default=1.0)


def _cmd_list(args: argparse.Namespace) -> int:
    print("algorithms (paper):")
    for name in algorithm_names():
        print(f"  {name:18s} {get_algorithm(name).label}")
    print("algorithms (extensions):")
    for name in algorithm_names(include_extras=True):
        if name not in algorithm_names():
            print(f"  {name:18s} {get_algorithm(name).label}")
    print("presets:")
    for key, machine in PRESETS.items():
        print(f"  {key:18s} {machine.name}")
    print("settings:", ", ".join(sorted(SETTINGS)))
    print("figures:", ", ".join(FIGURES))
    return 0


def _cmd_params(args: argparse.Namespace) -> int:
    machine = _machine_from_args(args)
    print(f"machine: p={machine.p} CS={machine.cs} CD={machine.cd}")
    print(f"lambda (Shared Opt.):      {lambda_param(machine.cs)}")
    print(f"mu (Distributed Opt.):     {mu_param(machine.cd)}")
    if machine.is_square_grid:
        params = optimal_parameters(machine)
        print(
            f"tradeoff: alpha={params.alpha} beta={params.beta} "
            f"mu={params.mu} (alpha_num={params.alpha_num:.2f})"
        )
    else:
        print("tradeoff: n/a (core count is not a perfect square)")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    machine = _machine_from_args(args)
    result = run_experiment(
        args.algorithm,
        machine,
        args.m,
        args.n if args.n else args.m,
        args.z if args.z else args.m,
        args.setting,
        check=args.check,
        inclusive=args.inclusive,
        policy=args.policy,
        strict_engine=args.strict_engine,
    )
    print(render_rows([result.to_row()]))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    machine = _machine_from_args(args)
    entries = [(alg, args.setting) for alg in args.algorithms]
    use_engine = (
        args.workers is not None
        or args.manifest is not None
        or args.run_dir is not None
    )
    if use_engine:
        from repro.sim.parallel import parallel_order_sweep

        sweep = parallel_order_sweep(
            entries,
            machine,
            args.orders,
            policy=args.policy,
            strict_engine=args.strict_engine,
            workers=args.workers,
            cell_timeout=args.cell_timeout,
            retries=args.retries,
            manifest_path=args.manifest,
            run_dir=args.run_dir,
            resume=args.resume,
        )
    else:
        if args.resume:
            print("error: --resume requires --run-dir", file=sys.stderr)
            return 2
        sweep = order_sweep(
            entries,
            machine,
            args.orders,
            policy=args.policy,
            strict_engine=args.strict_engine,
        )
    rows: List[Dict[str, Any]] = []
    for label, results in sweep.series.items():
        for result in results:
            if result is not None:
                rows.append(result.to_row())
    print(render_rows(rows))
    for record in sweep.failures:
        print(
            f"{record.status}: {record.label} @ {sweep.variable}={record.x} "
            f"after {record.attempts} attempt(s): "
            f"{record.error_type}: {record.error}",
            file=sys.stderr,
        )
    if sweep.manifest is not None:
        counts = sweep.manifest.counts()
        summary = (
            f"sweep: {counts['ok']} ok, {counts['failed']} failed, "
            f"{counts['skipped']} skipped"
        )
        if sweep.manifest.resumed_cells:
            summary += f" ({sweep.manifest.resumed_cells} resumed from checkpoint)"
        if sweep.manifest.engine_fallbacks:
            summary += (
                f"; {sweep.manifest.engine_fallbacks} cell(s) fell back "
                "replay->step"
            )
        summary += (
            f"; {sweep.manifest.workers} worker(s), "
            f"utilization {sweep.manifest.utilization():.0%}, "
            f"{sweep.manifest.elapsed_s:.2f}s"
        )
        print(summary, file=sys.stderr)
        if args.manifest:
            print(f"manifest: {args.manifest}", file=sys.stderr)
        if args.run_dir:
            print(f"run dir: {args.run_dir}", file=sys.stderr)
    if sweep.interrupted is not None:
        import signal as _signal

        print(f"sweep interrupted by {sweep.interrupted}", file=sys.stderr)
        signum = getattr(_signal, sweep.interrupted, None)
        return 128 + int(signum) if signum is not None else 1
    return 0 if sweep.complete else 1


def _print_fabric_sweep(args: argparse.Namespace, sweep: Any) -> int:
    """Render a finished fabric sweep (rows, failures, telemetry)."""
    rows: List[Dict[str, Any]] = []
    for label, results in sweep.series.items():
        for result in results:
            if result is not None:
                rows.append(result.to_row())
    print(render_rows(rows))
    for record in sweep.failures:
        print(
            f"{record.status}: {record.label} @ {sweep.variable}={record.x} "
            f"after {record.attempts} attempt(s): "
            f"{record.error_type}: {record.error}",
            file=sys.stderr,
        )
    manifest = sweep.manifest
    if manifest is not None:
        counts = manifest.counts()
        summary = (
            f"fabric: {counts['ok']} ok, {counts['failed']} failed, "
            f"{counts['skipped']} skipped"
        )
        if manifest.resumed_cells:
            summary += f" ({manifest.resumed_cells} resumed from checkpoint)"
        stats = manifest.fabric
        if stats is not None:
            summary += (
                f"; {stats.leases_granted} lease(s), "
                f"{stats.expired_leases} expired, "
                f"{stats.retried_failures} retried, "
                f"{stats.duplicate_results} duplicate(s)"
            )
            summary += (
                f"; {stats.workers_seen} worker(s) seen, "
                f"{stats.workers_lost} lost"
            )
        summary += f"; {manifest.elapsed_s:.2f}s"
        print(summary, file=sys.stderr)
    print(f"run dir: {args.run_dir}", file=sys.stderr)
    return 0 if sweep.complete else 1


def _cmd_fabric_serve(args: argparse.Namespace) -> int:
    from repro.fabric import fabric_order_sweep, run_local_fabric

    machine = _machine_from_args(args)
    entries = [(alg, args.setting) for alg in args.algorithms]
    if args.local is not None:
        if args.local < 1:
            print("error: --local needs at least one worker", file=sys.stderr)
            return 2
        sweep = run_local_fabric(
            entries,
            machine,
            args.orders,
            run_dir=args.run_dir,
            workers=args.local,
            resume=args.resume,
            policy=args.policy,
            strict_engine=args.strict_engine,
            lease_s=args.lease,
            retries=args.retries,
            backoff=args.backoff,
            fault_plan_path=args.fault_plan,
            max_respawns=args.max_respawns,
            host=args.host,
            port=args.port,
        )
        return _print_fabric_sweep(args, sweep)
    coordinator = fabric_order_sweep(
        entries,
        machine,
        args.orders,
        run_dir=args.run_dir,
        resume=args.resume,
        policy=args.policy,
        strict_engine=args.strict_engine,
        lease_s=args.lease,
        retries=args.retries,
        backoff=args.backoff,
        host=args.host,
        port=args.port,
    )
    host, port = coordinator.start()
    print(f"fabric coordinator serving on {host}:{port}", file=sys.stderr)
    print(
        f"join with: repro-mmm fabric worker --connect {host}:{port}",
        file=sys.stderr,
    )
    try:
        while not coordinator.wait(timeout=0.5):
            pass
    except KeyboardInterrupt:
        coordinator.abort("coordinator interrupted (SIGINT)")
    sweep = coordinator.finish()
    return _print_fabric_sweep(args, sweep)


def _cmd_fabric_worker(args: argparse.Namespace) -> int:
    from repro.fabric import FabricWorker
    from repro.sim.faults import load_fault_plan

    host, _, port_text = args.connect.rpartition(":")
    if not host or not port_text.isdigit():
        print(
            f"error: --connect wants HOST:PORT, got {args.connect!r}",
            file=sys.stderr,
        )
        return 2
    fault_plan = load_fault_plan(args.fault_plan) if args.fault_plan else None
    worker = FabricWorker(
        (host, int(port_text)),
        worker_id=args.worker_id,
        fault_plan=fault_plan,
        scratch=args.scratch,
        connect_grace_s=args.connect_grace,
    )
    return worker.run()


#: Order-sweep figures whose cells can fan out over a process pool.
_PARALLEL_FIGS = frozenset(
    {"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11"}
)
#: Multi-panel figures the nightly pipeline shards by panel key.
_PANEL_FIGS = frozenset({"fig7", "fig8", "fig9", "fig10", "fig11"})


def _cmd_figure(args: argparse.Namespace) -> int:
    import os

    tier = args.trace_tier or os.environ.get("REPRO_TRACE_TIER")
    if tier:
        from repro.cache.replay import configure_trace_tier

        configure_trace_tier(tier)
    kwargs: Dict[str, Any] = {}
    if args.fig_id == "fig12":
        if args.orders:
            kwargs["order"] = args.orders[0]
    elif args.orders:
        kwargs["orders"] = args.orders
    if args.workers > 1:
        if args.fig_id not in _PARALLEL_FIGS:
            print(
                f"error: --workers applies to {', '.join(sorted(_PARALLEL_FIGS))}",
                file=sys.stderr,
            )
            return 2
        kwargs["workers"] = args.workers
    if args.panels:
        if args.fig_id not in _PANEL_FIGS:
            print(
                f"error: --panels applies to {', '.join(sorted(_PANEL_FIGS))}",
                file=sys.stderr,
            )
            return 2
        kwargs["panels_filter"] = args.panels
    figure = get_figure(args.fig_id, **kwargs)
    print(render_figure(figure))
    if args.csv:
        paths = figure_to_csv(figure, args.csv)
        print("wrote:", ", ".join(str(p) for p in paths))
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    machine = _machine_from_args(args)
    cls = get_algorithm(args.algorithm)
    alg = cls(machine, args.m, args.n if args.n else args.m, args.z if args.z else args.m)
    verify_schedule(alg, q=args.block, seed=args.seed)
    print(
        f"{alg.name}: schedule for m={alg.m}, n={alg.n}, z={alg.z} computes "
        "A*B exactly (numeric verification passed)"
    )
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis.policies import miss_curve_rows, replacement_gap

    machine = _machine_from_args(args)
    size = args.m
    print(f"replacement gap for {args.algorithm} at order {size}:")
    print(render_rows(replacement_gap(args.algorithm, machine, size, size, size)))
    if args.curve:
        print("LRU/OPT miss curve of the full trace:")
        print(render_rows(miss_curve_rows(args.algorithm, machine, size, size, size)))
    return 0


def _cmd_lu(args: argparse.Namespace) -> int:
    from repro.lu.numeric import verify_lu_schedule
    from repro.lu.runner import run_lu
    from repro.lu.schedules import LU_SCHEDULES

    machine = _machine_from_args(args)
    rows: List[Dict[str, Any]] = []
    for name, cls in LU_SCHEDULES.items():
        if args.verify:
            verify_lu_schedule(cls(machine, min(args.n, 6)), q=4)
        result = run_lu(name, machine, args.n, args.setting)
        rows.append(
            {
                "schedule": name,
                "n": args.n,
                "MS": result.ms,
                "MD": result.md,
                "Tdata": result.tdata,
                "updates": sum(result.ops.update),
                "trsms": sum(result.ops.trsm),
            }
        )
    print(render_rows(rows))
    if args.verify:
        print("numeric verification passed for both schedules")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.check.baseline import apply_baseline, load_baseline, write_baseline
    from repro.check.findings import CHECKER_VERSION, ERROR
    from repro.check.gap import build_gap_report, compare_gap_reports, load_gap_report
    from repro.check.incremental import ReportCache
    from repro.check.runner import check_all, source_scan
    from repro.check.rules import REGISTRY, RuleConfig, filter_findings
    from repro.check.sarif import write_sarif

    if args.list_rules:
        rules = REGISTRY.all()
        if args.json:
            print(
                json.dumps(
                    {"schema": 1, "rules": [r.to_dict() for r in rules]},
                    indent=2,
                )
            )
        else:
            id_width = max(len(r.id) for r in rules)
            level_width = max(len(r.severity) for r in rules)
            header = (
                f"{'RULE'.ljust(id_width)}  {'LEVEL'.ljust(level_width)}  "
                "ON   HELP"
            )
            print(header)
            print("-" * len(header))
            for rule in rules:
                state = "on" if rule.enabled else "off"
                print(
                    f"{rule.id.ljust(id_width)}  "
                    f"{rule.severity.ljust(level_width)}  "
                    f"{state.ljust(3)}  {rule.help}"
                )
            print(f"{len(rules)} rule(s) registered")
        return 0

    try:
        rule_config = RuleConfig.from_selectors(args.enable, args.disable)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    algorithms = args.algorithm or None
    machines = None
    if args.machine:
        machines = {key: preset(key) for key in args.machine}
    filtered = bool(args.algorithm or args.machine or args.orders)
    cache = ReportCache(Path(args.cache_dir)) if args.incremental else None

    scan_pool = None
    scan_future = None
    if args.lint:
        # The source scan (lint + determinism/purity dataflow rules +
        # suppression hygiene) and the engine-conformance pass are
        # static source analysis, so they ride with --lint; the
        # schedule-cell analyzers below run regardless.  Both halves
        # are GIL-bound pure Python, so given a second core the scan
        # runs in a worker process concurrently with the matrix.
        if (os.cpu_count() or 1) > 1:
            from concurrent.futures import ProcessPoolExecutor

            scan_pool = ProcessPoolExecutor(max_workers=1)
            try:
                scan_future = scan_pool.submit(source_scan, config=rule_config)
            except Exception:
                scan_pool.shutdown(wait=False)
                raise

    lint_findings: List[Any] = []
    engine_findings: List[Any] = []
    try:
        reports = check_all(
            algorithms, machines, orders=args.orders or None, cache=cache
        )
        if scan_future is not None:
            lint_findings, engine_findings = scan_future.result()
        elif args.lint:
            lint_findings, engine_findings = source_scan(config=rule_config)
    finally:
        if scan_pool is not None:
            scan_pool.shutdown()

    gap_report = build_gap_report([r.gap for r in reports])
    gap_findings: List[Any] = []
    if args.gap_baseline and not filtered:
        gap_findings = compare_gap_reports(
            gap_report, load_gap_report(Path(args.gap_baseline))
        )

    findings = (
        filter_findings((f for r in reports for f in r.findings), rule_config)
        + lint_findings
        + engine_findings
        + filter_findings(gap_findings, rule_config)
    )

    if args.gap_report:
        gap_report.write(Path(args.gap_report))

    if args.write_gap_baseline:
        gap_report.write(Path(args.write_gap_baseline))
        print(
            f"wrote gap baseline ({len(gap_report.algorithms())} algorithm(s), "
            f"{len(gap_report.cells)} cell(s)) to {args.write_gap_baseline}"
        )
        return 0

    if args.write_baseline:
        count = write_baseline(Path(args.write_baseline), findings)
        print(f"wrote {count} suppression(s) to {args.write_baseline}")
        return 0

    baselined: List[Any] = []
    if args.baseline:
        suppressed = load_baseline(Path(args.baseline))
        findings, baselined = apply_baseline(findings, suppressed)

    errors = sum(1 for f in findings if f.severity == ERROR)
    warnings = len(findings) - errors

    if args.sarif:
        write_sarif(Path(args.sarif), findings)

    analyzed = [r for r in reports if not r.skipped]
    skipped = [r for r in reports if r.skipped]
    cached = sum(1 for r in reports if r.cached)

    if args.json:
        print(
            json.dumps(
                {
                    "schema": 3,
                    "checker_version": CHECKER_VERSION,
                    "reports": [r.to_dict() for r in reports],
                    "lint": [f.to_dict() for f in lint_findings],
                    "engine": [f.to_dict() for f in engine_findings],
                    "gap": [a.to_dict() for a in gap_report.algorithms()],
                    "errors": errors,
                    "warnings": warnings,
                    "suppressed": len(baselined),
                    "cells": {
                        "analyzed": len(analyzed),
                        "skipped": len(skipped),
                        "cached": cached,
                    },
                    "elapsed_s": round(sum(r.elapsed_s for r in reports), 6),
                },
                indent=2,
            )
        )
    else:
        for finding in findings:
            print(finding.render())
        clean = sum(1 for r in analyzed if r.ok)
        summary = (
            f"check: {len(analyzed)} schedule cells analyzed, {clean} clean; "
            f"{errors} error(s), {warnings} warning(s)"
        )
        if skipped:
            summary += f"; {len(skipped)} infeasible cell(s) skipped"
        if cache is not None:
            summary += f"; {cached} cell report(s) from cache"
        if baselined:
            summary += f"; {len(baselined)} finding(s) suppressed by baseline"
        if args.lint:
            summary += (
                "; source scan (lint/determinism/purity): "
                f"{len(lint_findings)} finding(s)"
            )
        algo_gaps = gap_report.algorithms()
        if algo_gaps:
            shared_ok = sum(1 for a in algo_gaps if a.certified_shared)
            dist_ok = sum(1 for a in algo_gaps if a.certified_distributed)
            summary += (
                f"; gap certificate: {shared_ok}/{len(algo_gaps)} shared-optimal, "
                f"{dist_ok}/{len(algo_gaps)} distributed-optimal"
            )
        if args.gap_baseline and filtered:
            summary += "; gap baseline comparison skipped (filtered run)"
        print(summary)
    return 1 if errors else 0


def _cmd_runs_list(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.store import list_runs

    runs = list_runs(Path(args.root))
    if not runs:
        print(f"no run directories under {args.root}")
        return 0
    rows: List[Dict[str, Any]] = []
    for path, meta in runs:
        created = meta.get("created_at", "?")
        if isinstance(created, (int, float)):
            from datetime import datetime, timezone

            created = datetime.fromtimestamp(created, tz=timezone.utc).strftime(
                "%Y-%m-%d %H:%M:%S"
            )
        row: Dict[str, Any] = {
            "run": str(path),
            "status": meta.get("status", "?"),
            "created": created,
            "resumes": meta.get("resumes", 0),
        }
        counts = meta.get("cell_counts")
        if isinstance(counts, dict):
            row["ok"] = counts.get("ok", 0)
            row["failed"] = counts.get("failed", 0)
            row["skipped"] = counts.get("skipped", 0)
        rows.append(row)
    print(render_rows(rows))
    return 0


def _cmd_runs_show(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.store import RunStore

    store = RunStore(Path(args.run_dir))
    meta = store.load_meta()
    if meta is None:
        print(f"error: {args.run_dir} is not a run directory", file=sys.stderr)
        return 2
    for key in sorted(meta):
        if key in ("schema", "kind"):
            continue
        print(f"{key}: {meta[key]}")
    loaded = store.load_checkpoint()
    counts: Dict[str, int] = {}
    for record in loaded.ok_records().values():
        status = str(record.get("status", "?"))
        counts[status] = counts.get(status, 0) + 1
    checkpoint = ", ".join(f"{n} {s}" for s, n in sorted(counts.items()))
    print(f"checkpoint: {checkpoint or 'empty'} ({loaded.total_lines} record(s))")
    if loaded.quarantined:
        print(f"quarantined: {len(loaded.quarantined)} corrupt record(s)")
    for warning in loaded.warnings:
        print(f"warning: {warning}")
    print(f"manifest: {'present' if store.manifest_path.exists() else 'missing'}")
    return 0


def _cmd_runs_verify(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.store import RunStore

    store = RunStore(Path(args.run_dir))
    audit = store.audit()
    for error in audit.errors:
        print(f"error: {error}")
    for warning in audit.warnings:
        print(f"warning: {warning}")
    if audit.journal is not None and audit.journal.records:
        from repro.fabric.journal import journal_status, load_journal

        line = journal_status(load_journal(store.journal_path))
        if line is not None:
            print(line)
    counts = audit.counts()
    summary = ", ".join(f"{n} {s}" for s, n in sorted(counts.items()))
    if not audit.ok:
        verdict = "CORRUPT"
    elif audit.in_progress:
        # A live (or abandoned mid-write) run: a torn checkpoint tail
        # here is the writer mid-append, not corruption.
        verdict = "in progress"
    else:
        verdict = "ok"
    print(f"{args.run_dir}: {verdict} ({summary or 'no checkpoint records'})")
    return 0 if audit.ok else 1


def _cmd_traces_stats(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.cache.tracestore import tier_counters, tier_info

    root = Path(args.root)
    info = tier_info(root)
    counters = tier_counters()
    if args.json:
        print(
            json.dumps(
                {"schema": 1, "root": str(root), **info, "counters": counters}
            )
        )
        return 0
    if not root.is_dir():
        print(f"no trace tier at {root}")
        return 0
    mib = info["bytes"] / (1024 * 1024)
    print(f"trace tier: {root}")
    print(f"  entries: {info['entries']} ({info['directive_entries']} with directives)")
    print(f"  fmas:    {info['fmas']}")
    print(f"  size:    {mib:.1f} MiB")
    session = ", ".join(f"{n} {name}" for name, n in sorted(counters.items()))
    print(f"  session: {session}")
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    print("Cache configurations (paper 4.1):")
    print(render_rows(cache_configuration_table()))
    print("Derived algorithm parameters:")
    print(render_rows(parameter_table()))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.bench import record as bench_record

    if args.from_json:
        report = json.loads(Path(args.from_json).read_text())
        record = bench_record.record_from_benchmark_json(
            report, scale=args.scale
        )
    else:
        record = bench_record.run_quick_suite(
            scale=args.scale, bench_dir=args.bench_dir, select=args.select
        )

    out = Path(args.out) if args.out else bench_record.default_record_path()
    bench_record.write_record(record, out)
    n = len(record["benchmarks"])
    print(f"recorded {n} benchmarks -> {out}")

    if args.write_baseline:
        bench_record.write_record(record, args.write_baseline)
        print(f"baseline refreshed -> {args.write_baseline}")

    if not args.baseline:
        return 0
    baseline = bench_record.load_record(args.baseline)
    regressions, added, removed = bench_record.compare_records(
        record, baseline, threshold=args.threshold
    )
    for name in added:
        print(f"new benchmark (no baseline): {name}")
    for name in removed:
        print(f"benchmark gone from suite: {name}")
    if regressions:
        print(
            f"{len(regressions)} regression(s) beyond "
            f"{args.threshold:.0%} vs {args.baseline}:"
        )
        for regression in regressions:
            print(f"  {regression.describe()}")
        return 1
    compared = len(set(record["benchmarks"]) & set(baseline["benchmarks"]))
    print(
        f"no regressions: {compared} benchmarks within "
        f"{args.threshold:.0%} of {args.baseline}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mmm",
        description="Matrix product on multicore architectures (ICPP 2009) "
        "— reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list algorithms/presets/settings")
    p_list.set_defaults(func=_cmd_list)

    p_params = sub.add_parser("params", help="derived tile parameters")
    _add_machine_args(p_params)
    p_params.set_defaults(func=_cmd_params)

    p_run = sub.add_parser("run", help="run one experiment")
    _add_machine_args(p_run)
    p_run.add_argument("algorithm", choices=algorithm_names(include_extras=True))
    p_run.add_argument("-m", type=int, required=True, help="order (blocks)")
    p_run.add_argument("-n", type=int, default=0)
    p_run.add_argument("-z", type=int, default=0)
    p_run.add_argument("--setting", choices=sorted(SETTINGS), default="lru-50")
    p_run.add_argument("--check", action="store_true", help="verify IDEAL mode")
    p_run.add_argument("--inclusive", action="store_true")
    p_run.add_argument("--policy", choices=("lru", "fifo"), default="lru")
    p_run.add_argument(
        "--strict-engine",
        action="store_true",
        help="fail instead of silently degrading replay to the step engine",
    )
    p_run.set_defaults(func=_cmd_run)

    p_sweep = sub.add_parser("sweep", help="square-order sweep")
    _add_machine_args(p_sweep)
    p_sweep.add_argument("algorithms", nargs="+", choices=algorithm_names(include_extras=True))
    p_sweep.add_argument(
        "--orders", type=int, nargs="+", default=[16, 32, 48, 64]
    )
    p_sweep.add_argument("--setting", choices=sorted(SETTINGS), default="lru-50")
    p_sweep.add_argument("--policy", choices=("lru", "fifo"), default="lru")
    p_sweep.add_argument(
        "--strict-engine",
        action="store_true",
        help="fail instead of silently degrading replay to the step engine",
    )
    engine = p_sweep.add_argument_group("parallel engine")
    engine.add_argument(
        "--workers",
        type=int,
        default=None,
        help="run cells on a process pool with this many workers "
        "(default: serial in-process sweep)",
    )
    engine.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-cell deadline; an overdue cell is retried, then "
        "recorded as failed (default: no timeout)",
    )
    engine.add_argument(
        "--retries",
        type=int,
        default=2,
        help="extra attempts per failed cell (default: 2)",
    )
    engine.add_argument(
        "--manifest",
        default=None,
        metavar="PATH",
        help="write the JSON run manifest here (implies the parallel engine)",
    )
    durability = p_sweep.add_argument_group("durability")
    durability.add_argument(
        "--run-dir",
        default=None,
        metavar="DIR",
        help="checkpoint every completed cell into this run directory "
        "(implies the parallel engine); SIGINT/SIGTERM drain in-flight "
        "work and flush the checkpoint before exiting",
    )
    durability.add_argument(
        "--resume",
        action="store_true",
        help="resume from --run-dir's checkpoint: completed cells are "
        "restored, only failed/skipped/missing cells re-run",
    )
    p_sweep.set_defaults(func=_cmd_sweep)

    p_fig = sub.add_parser("figure", help="regenerate a paper figure")
    p_fig.add_argument("fig_id", choices=list(FIGURES))
    p_fig.add_argument("--orders", type=int, nargs="+", default=None)
    p_fig.add_argument("--csv", default=None, help="directory for CSV output")
    p_fig.add_argument(
        "--trace-tier",
        metavar="DIR",
        default=None,
        help="on-disk compiled-trace tier (default: $REPRO_TRACE_TIER)",
    )
    p_fig.add_argument(
        "--workers",
        type=int,
        default=0,
        help="fan sweep cells over N processes (order-sweep figures)",
    )
    p_fig.add_argument(
        "--panels",
        nargs="+",
        choices=list("abcd"),
        default=None,
        help="regenerate only these panel keys (figs 7-11 shards)",
    )
    p_fig.set_defaults(func=_cmd_figure)

    p_verify = sub.add_parser("verify", help="numeric schedule verification")
    _add_machine_args(p_verify)
    p_verify.add_argument("algorithm", choices=algorithm_names(include_extras=True))
    p_verify.add_argument("-m", type=int, default=12)
    p_verify.add_argument("-n", type=int, default=0)
    p_verify.add_argument("-z", type=int, default=0)
    p_verify.add_argument("--block", type=int, default=4, help="numeric q")
    p_verify.add_argument("--seed", type=int, default=0)
    p_verify.set_defaults(func=_cmd_verify)

    p_check = sub.add_parser(
        "check", help="static schedule analysis (capacity/presence/coverage/races)"
    )
    p_check.add_argument(
        "--algorithm",
        action="append",
        choices=algorithm_names(include_extras=True),
        default=None,
        help="restrict to one algorithm (repeatable; default: all)",
    )
    p_check.add_argument(
        "--machine",
        action="append",
        choices=sorted(PRESETS),
        default=None,
        help="restrict to one machine preset (repeatable; default: all)",
    )
    p_check.add_argument(
        "--orders",
        type=int,
        nargs="+",
        default=None,
        help="matrix orders to analyze (default: derived from tile sides)",
    )
    p_check.add_argument(
        "--lint",
        action="store_true",
        help="also run the source scan (lint + determinism/purity "
        "dataflow rules) and engine-conformance passes",
    )
    p_check.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry (id, severity, enabled, help) "
        "and exit; with --json, machine-readable",
    )
    p_check.add_argument(
        "--enable",
        action="append",
        default=None,
        metavar="RULE",
        help="force-enable a rule id or family (repeatable; "
        "see --list-rules)",
    )
    p_check.add_argument(
        "--disable",
        action="append",
        default=None,
        metavar="RULE",
        help="disable a rule id or family (repeatable; see --list-rules)",
    )
    p_check.add_argument(
        "--json", action="store_true", help="machine-readable output (schema 3)"
    )
    p_check.add_argument(
        "--incremental",
        action="store_true",
        help="reuse cached reports for unchanged cells",
    )
    p_check.add_argument(
        "--cache-dir",
        default=".repro-check-cache",
        help="incremental report cache directory",
    )
    p_check.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="suppress findings fingerprinted in this baseline file",
    )
    p_check.add_argument(
        "--write-baseline",
        default=None,
        metavar="PATH",
        help="write current findings as the new baseline and exit",
    )
    p_check.add_argument(
        "--sarif",
        default=None,
        metavar="PATH",
        help="export findings as SARIF 2.1.0 (GitHub code scanning)",
    )
    p_check.add_argument(
        "--gap-report",
        default=None,
        metavar="PATH",
        help="write the per-algorithm optimality-gap certificate here",
    )
    p_check.add_argument(
        "--gap-baseline",
        default=None,
        metavar="PATH",
        help="compare the gap certificate against this baseline "
        "(gap/regression, gap/uncertified-algorithm); skipped on "
        "filtered runs",
    )
    p_check.add_argument(
        "--write-gap-baseline",
        default=None,
        metavar="PATH",
        help="write the current gap certificate as the new baseline and exit",
    )
    p_check.set_defaults(func=_cmd_check)

    p_runs = sub.add_parser("runs", help="inspect durable run directories")
    runs_sub = p_runs.add_subparsers(dest="runs_command", required=True)
    p_runs_list = runs_sub.add_parser("list", help="list run directories")
    p_runs_list.add_argument(
        "root", nargs="?", default=".", help="directory to scan (default: .)"
    )
    p_runs_list.set_defaults(func=_cmd_runs_list)
    p_runs_show = runs_sub.add_parser("show", help="show one run's metadata")
    p_runs_show.add_argument("run_dir")
    p_runs_show.set_defaults(func=_cmd_runs_show)
    p_runs_verify = runs_sub.add_parser(
        "verify", help="audit a run directory for corruption"
    )
    p_runs_verify.add_argument("run_dir")
    p_runs_verify.set_defaults(func=_cmd_runs_verify)

    p_traces = sub.add_parser(
        "traces", help="inspect the on-disk compiled-trace tier"
    )
    traces_sub = p_traces.add_subparsers(dest="traces_command", required=True)
    p_traces_stats = traces_sub.add_parser(
        "stats", help="tier size and this session's hit/miss counters"
    )
    p_traces_stats.add_argument("root", help="trace tier directory")
    p_traces_stats.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    p_traces_stats.set_defaults(func=_cmd_traces_stats)

    p_fabric = sub.add_parser(
        "fabric", help="lease-based distributed sweep fabric"
    )
    fabric_sub = p_fabric.add_subparsers(dest="fabric_command", required=True)

    p_serve = fabric_sub.add_parser(
        "serve", help="run the coordinator (durable cell queue) for a sweep"
    )
    _add_machine_args(p_serve)
    p_serve.add_argument(
        "algorithms", nargs="+", choices=algorithm_names(include_extras=True)
    )
    p_serve.add_argument(
        "--orders", type=int, nargs="+", default=[16, 32, 48, 64]
    )
    p_serve.add_argument("--setting", choices=sorted(SETTINGS), default="lru-50")
    p_serve.add_argument("--policy", choices=("lru", "fifo"), default="lru")
    p_serve.add_argument(
        "--strict-engine",
        action="store_true",
        help="fail instead of silently degrading replay to the step engine",
    )
    p_serve.add_argument(
        "--run-dir",
        required=True,
        metavar="DIR",
        help="run directory holding the checkpoint log and coordinator "
        "journal (the durable queue)",
    )
    p_serve.add_argument(
        "--resume",
        action="store_true",
        help="restart against an existing run directory: terminal cells "
        "are restored, in-flight leases from a dead coordinator are "
        "expired and requeued",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port to serve on (default: OS-assigned)",
    )
    p_serve.add_argument(
        "--lease",
        type=float,
        default=15.0,
        metavar="SECONDS",
        help="lease window; a worker silent this long loses its cell "
        "(default: 15)",
    )
    p_serve.add_argument(
        "--retries",
        type=int,
        default=2,
        help="extra attempts per lost/failed cell (default: 2)",
    )
    p_serve.add_argument(
        "--backoff",
        type=float,
        default=0.1,
        metavar="SECONDS",
        help="base retry backoff, doubled per attempt with deterministic "
        "jitter (default: 0.1)",
    )
    p_serve.add_argument(
        "--local",
        type=int,
        default=None,
        metavar="N",
        help="also fork N local workers and run the sweep to completion "
        "(laptop mode)",
    )
    p_serve.add_argument(
        "--fault-plan",
        default=None,
        metavar="PATH",
        help="JSON fault plan injected into --local workers (testing)",
    )
    p_serve.add_argument(
        "--max-respawns",
        type=int,
        default=None,
        help="respawn budget for crashed --local workers (default: 3N)",
    )
    p_serve.set_defaults(func=_cmd_fabric_serve)

    p_worker = fabric_sub.add_parser(
        "worker", help="join a serving coordinator and execute leased cells"
    )
    p_worker.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="coordinator address printed by `fabric serve`",
    )
    p_worker.add_argument(
        "--worker-id",
        default=None,
        help="stable worker identity (default: w<pid>)",
    )
    p_worker.add_argument(
        "--scratch",
        default=None,
        metavar="DIR",
        help="directory for salvage logs when the coordinator vanishes "
        "mid-result",
    )
    p_worker.add_argument(
        "--fault-plan",
        default=None,
        metavar="PATH",
        help="JSON fault plan for injected failures (testing)",
    )
    p_worker.add_argument(
        "--connect-grace",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="how long to absorb connection failures before the first "
        "successful exchange (default: 10)",
    )
    p_worker.set_defaults(func=_cmd_fabric_worker)

    p_tables = sub.add_parser("tables", help="cache configuration tables")
    p_tables.set_defaults(func=_cmd_tables)

    p_bench = sub.add_parser(
        "bench", help="record benchmark suite results (BENCH_<date>.json)"
    )
    p_bench.add_argument(
        "--scale",
        choices=("quick", "full"),
        default="quick",
        help="benchmark scale (REPRO_BENCH_SCALE)",
    )
    p_bench.add_argument(
        "--bench-dir",
        default="benchmarks",
        help="benchmark suite directory (default: benchmarks)",
    )
    p_bench.add_argument(
        "--select",
        "-k",
        default=None,
        metavar="EXPR",
        help="pytest -k expression to subset the suite",
    )
    p_bench.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="record output path (default: ./BENCH_<date>.json)",
    )
    p_bench.add_argument(
        "--from-json",
        default=None,
        metavar="PATH",
        help="convert an existing pytest-benchmark JSON report "
        "instead of running the suite",
    )
    p_bench.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="compare medians against this record; exit 1 on regression",
    )
    p_bench.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="fractional median slowdown tolerated (default: 0.25)",
    )
    p_bench.add_argument(
        "--write-baseline",
        default=None,
        metavar="PATH",
        help="also write the fresh record as the new baseline",
    )
    p_bench.set_defaults(func=_cmd_bench)

    p_analyze = sub.add_parser(
        "analyze", help="LRU vs OPT vs compulsory misses for one schedule"
    )
    _add_machine_args(p_analyze)
    p_analyze.add_argument("algorithm", choices=algorithm_names(include_extras=True))
    p_analyze.add_argument("-m", type=int, default=16, help="square order (blocks)")
    p_analyze.add_argument(
        "--curve", action="store_true", help="also print the LRU/OPT miss curve"
    )
    p_analyze.set_defaults(func=_cmd_analyze)

    p_lu = sub.add_parser("lu", help="blocked LU extension (paper future work)")
    _add_machine_args(p_lu)
    p_lu.add_argument("-n", type=int, default=24, help="matrix order (blocks)")
    p_lu.add_argument(
        "--setting", choices=("lru", "lru-50", "lru-2x"), default="lru-50"
    )
    p_lu.add_argument(
        "--verify", action="store_true", help="also verify L*U = A numerically"
    )
    p_lu.set_defaults(func=_cmd_lu)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
