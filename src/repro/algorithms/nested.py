"""Nested Maximum Reuse for three-level hierarchies (extension, paper §6).

The paper's conclusion: "we expect yet another level of hierarchy (or
tiling) in the algorithmic specification to be required" for clusters
of multicores.  This schedule makes that concrete for the topology
``memory → LLC → g socket caches → p core caches``:

* each core pins a ``µ×µ`` block of ``C`` in its private cache
  (``1 + µ + µ² ≤ C_core``), fully accumulated before write-back —
  Algorithm 2's idea;
* the ``√(p/g) × √(p/g)`` cores of a socket tile a ``ν×ν`` region,
  ``ν = √(p/g)·µ``, which their shared socket cache pins;
* the ``√g × √g`` sockets tile a ``Λ×Λ`` region, ``Λ = √g·ν``, pinned
  in the LLC — so the single tiling parameter ``µ`` induces a
  hierarchy-consistent tile at every level, exactly as ``CS ≥ p·CD``
  made Algorithm 2's tile fit the shared cache.

Miss counts per level (divisible case, derived exactly like §3.2):

* LLC:    ``mn + 2mnz/Λ``
* socket: ``mn/g + 2mnz/(g·ν)`` per socket
* core:   ``mn/p + 2mnz/(p·µ)`` per core

A *flat* algorithm that only knows two levels (e.g. Distributed Opt.
with its ``√p·µ`` tile) leaves the socket level almost no reuse to
capture; the nested schedule trades a slightly smaller LLC tile for
maximum reuse at every level.  The bench
``bench_extension_nested.py`` quantifies the gap.

The schedule is expressed against the ordinary
:class:`~repro.algorithms.base.ExecutionContext` protocol (computes
only — counting happens in
:class:`~repro.sim.contexts.MultiLevelContext`), so the same code is
numerically verified by :func:`repro.numerics.executor.verify_schedule`.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional

from repro.algorithms.base import ExecutionContext, MatmulAlgorithm
from repro.cache.block import A_BASE, B_BASE, C_BASE, ROW_SHIFT
from repro.cache.multilevel import LevelSpec, MultiLevelHierarchy
from repro.exceptions import ConfigurationError, ParameterError
from repro.model.machine import MulticoreMachine
from repro.model.params import mu_param


class NestedMaxReuse(MatmulAlgorithm):
    """Three-level nested Maximum Reuse schedule.

    Parameters
    ----------
    machine:
        Used for ``p`` only (the flat machine abstraction has no socket
        level); capacities come from ``tree`` when given.
    sockets:
        Number of socket caches ``g``; must divide ``p``, and both
        ``g`` and ``p/g`` must be perfect squares.
    mu:
        Core tile side; default from ``core_capacity``.
    core_capacity:
        Capacity (blocks) of each core cache, used to derive ``µ`` when
        ``mu`` is not given; defaults to ``machine.cd``.
    """

    name = "nested-max-reuse"
    label = "Nested Max Reuse (3 levels)"
    supports_ideal = False  # compute-only: counted via MultiLevelContext

    def __init__(
        self,
        machine: MulticoreMachine,
        m: int,
        n: int,
        z: int,
        sockets: Optional[int] = None,
        mu: Optional[int] = None,
        core_capacity: Optional[int] = None,
    ) -> None:
        super().__init__(machine, m, n, z)
        p = machine.p
        if sockets is None:
            # largest square divisor of p with a square co-factor
            sockets = 1
            for g in range(1, p + 1):
                if p % g:
                    continue
                sg, sc = math.isqrt(g), math.isqrt(p // g)
                if sg * sg == g and sc * sc == p // g and 1 < g < p:
                    sockets = g
        if p % sockets:
            raise ConfigurationError(f"sockets={sockets} must divide p={p}")
        s_g = math.isqrt(sockets)
        s_c = math.isqrt(p // sockets)
        if s_g * s_g != sockets or s_c * s_c != p // sockets:
            raise ConfigurationError(
                f"sockets={sockets} and cores-per-socket={p // sockets} "
                "must both be perfect squares"
            )
        if core_capacity is None:
            core_capacity = machine.cd
        if mu is None:
            mu = mu_param(core_capacity)
        if mu < 1 or 1 + mu + mu * mu > core_capacity:
            raise ParameterError(
                f"mu={mu} violates 1 + µ + µ² <= C_core={core_capacity}"
            )
        self.sockets = sockets
        self.s_g = s_g
        self.s_c = s_c
        self.mu = mu
        self.nu = s_c * mu
        self.tile = s_g * self.nu  # Λ

    def parameters(self) -> Dict[str, Any]:
        return {
            "mu": self.mu,
            "nu": self.nu,
            "tile": self.tile,
            "sockets": self.sockets,
        }

    def default_tree(
        self,
        llc_capacity: Optional[int] = None,
        socket_capacity: Optional[int] = None,
    ) -> MultiLevelHierarchy:
        """A hierarchy-consistent tree for this schedule's parameters.

        Capacities default to the tightest Maximum-Reuse fit per level:
        ``1 + x + x²`` for the level's tile side — the three-level
        generalization of the paper's ``CS ≥ p·CD`` sizing.
        """
        p = self.machine.p
        core_cap = self.machine.cd
        if socket_capacity is None:
            socket_capacity = max(
                1 + self.nu + self.nu**2, (p // self.sockets) * core_cap
            )
        if llc_capacity is None:
            llc_capacity = max(
                1 + self.tile + self.tile**2, self.sockets * socket_capacity
            )
        return MultiLevelHierarchy(
            p,
            [
                LevelSpec(1, llc_capacity, name="LLC"),
                LevelSpec(self.sockets, socket_capacity, name="socket"),
                LevelSpec(p, core_cap, name="core"),
            ],
        )

    def _core_of(self, bi: int, bj: int) -> int:
        """Core owning the µ-block at tile-local block coords (bi, bj).

        ``bi, bj`` are in µ units within the Λ tile: the outer
        ``(bi//s_c, bj//s_c)`` picks the socket on the ``s_g×s_g``
        grid, the inner remainder picks the core within the socket —
        both contiguous (region) assignments, matching the paper's
        pseudocode style.
        """
        gi, gj = bi // self.s_c, bj // self.s_c
        ci, cj = bi % self.s_c, bj % self.s_c
        socket = gj * self.s_g + gi
        core_in_socket = cj * self.s_c + ci
        return socket * (self.s_c * self.s_c) + core_in_socket

    def run(self, ctx: ExecutionContext) -> None:
        m, n, z = self.m, self.n, self.z
        mu, tile = self.mu, self.tile
        compute = ctx.compute
        RS = ROW_SHIFT

        for i0 in range(0, m, tile):
            hi = min(i0 + tile, m)
            for j0 in range(0, n, tile):
                wj = min(j0 + tile, n)
                # µ-block grid of this tile, with the owning core of each
                blocks = []
                for bi0 in range(i0, hi, mu):
                    for bj0 in range(j0, wj, mu):
                        core = self._core_of((bi0 - i0) // mu, (bj0 - j0) // mu)
                        blocks.append(
                            (core, bi0, min(bi0 + mu, hi), bj0, min(bj0 + mu, wj))
                        )
                # lockstep over k: every core advances its blocks together,
                # so B fragments and A elements are shared at the socket
                # and LLC levels while hot.
                for k in range(z):
                    brow = B_BASE | (k << RS)
                    for core, rlo, rhi, clo, chi in blocks:
                        for i in range(rlo, rhi):
                            ka = A_BASE | (i << RS) | k
                            crow = C_BASE | (i << RS)
                            for j in range(clo, chi):
                                compute(core, crow | j, ka, brow | j)
