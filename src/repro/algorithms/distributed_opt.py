"""Algorithm 2 — *Distributed Opt.*: minimize distributed misses ``MD``.

The Maximum Reuse Algorithm applied at the distributed-cache level
(paper §3.2): each core pins a ``µ×µ`` block of ``C`` (with
``1 + µ + µ² ≤ CD``) in its private cache and fully accumulates it
before writing it back.  The ``p`` blocks are laid out 2-D cyclically on
a ``√p × √p`` core grid, so a ``√pµ × √pµ`` tile of ``C`` lives in the
shared cache together with a ``√pµ`` row of ``B`` and, one at a time,
the ``√pµ`` elements of the current column of ``A`` (cores on the same
grid row consume the same elements of ``A``; cores on the same grid
column the same fragment of ``B``).

Closed-form counts (exact when ``√pµ`` divides ``m`` and ``n``):

* ``MS = mn + 2mnz/(µ√p)``   (CCR_S ``= 1/z + 2/(µ√p)``, off the bound)
* ``MD = mn/p + 2mnz/(µp)``  (CCR_D ``= 1/z + 2/µ``, near the bound)
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.algorithms.base import ExecutionContext, MatmulAlgorithm
from repro.cache.block import A_BASE, B_BASE, C_BASE, ROW_SHIFT
from repro.exceptions import ParameterError
from repro.model.machine import MulticoreMachine
from repro.model.params import mu_param


class DistributedOpt(MatmulAlgorithm):
    """Maximum Reuse Algorithm tuned for distributed caches (Algorithm 2).

    Parameters
    ----------
    mu:
        Private-cache tile side override.  Default: the largest ``µ``
        with ``1 + µ + µ² ≤ CD``.
    """

    name = "distributed-opt"
    label = "Distributed Opt."
    requires_square_grid = True

    def __init__(
        self,
        machine: MulticoreMachine,
        m: int,
        n: int,
        z: int,
        mu: Optional[int] = None,
    ) -> None:
        super().__init__(machine, m, n, z)
        if mu is None:
            mu = mu_param(machine.cd)
        if mu < 1:
            raise ParameterError(f"mu must be positive, got {mu}")
        if 1 + mu + mu * mu > machine.cd:
            raise ParameterError(f"mu={mu} violates 1 + µ + µ² <= CD={machine.cd}")
        self.mu = mu
        self.grid = machine.grid_side

    def parameters(self) -> Dict[str, Any]:
        return {"mu": self.mu, "grid": self.grid, "tile": self.grid * self.mu}

    def run(self, ctx: ExecutionContext) -> None:
        m, n, z = self.m, self.n, self.z
        mu = self.mu
        s = self.grid
        tile = s * mu
        explicit = ctx.explicit
        compute = ctx.compute
        RS = ROW_SHIFT

        for i0 in range(0, m, tile):
            hi = min(i0 + tile, m)
            for j0 in range(0, n, tile):
                wj = min(j0 + tile, n)
                # Per-core sub-tile extents (clamped at ragged edges).
                rows = [
                    range(min(i0 + gi * mu, hi), min(i0 + (gi + 1) * mu, hi))
                    for gi in range(s)
                ]
                cols = [
                    range(min(j0 + gj * mu, wj), min(j0 + (gj + 1) * mu, wj))
                    for gj in range(s)
                ]
                if explicit:
                    # C tile into the shared cache, sub-blocks into cores.
                    for i in range(i0, hi):
                        crow = C_BASE | (i << RS)
                        for j in range(j0, wj):
                            ctx.load_shared(crow | j)
                    for core in range(s * s):
                        gi, gj = core % s, core // s
                        for i in rows[gi]:
                            crow = C_BASE | (i << RS)
                            for j in cols[gj]:
                                ctx.load_dist(core, crow | j)
                for k in range(z):
                    brow = B_BASE | (k << RS)
                    if explicit:
                        for j in range(j0, wj):
                            ctx.load_shared(brow | j)
                        for core in range(s * s):
                            # A core with an empty row range at a ragged
                            # edge computes nothing: loading its B
                            # fragment would be dead traffic.
                            if rows[core % s]:
                                for j in cols[core // s]:
                                    ctx.load_dist(core, brow | j)
                    for gi in range(s):
                        for i in rows[gi]:
                            ka = A_BASE | (i << RS) | k
                            crow = C_BASE | (i << RS)
                            if explicit:
                                ctx.load_shared(ka)
                            # Cores on grid row gi share this element of A.
                            for gj in range(s):
                                core = gj * s + gi
                                if not cols[gj]:
                                    continue  # ragged edge: no work, no load
                                if explicit:
                                    ctx.load_dist(core, ka)
                                for j in cols[gj]:
                                    compute(core, crow | j, ka, brow | j)
                                if explicit:
                                    ctx.evict_dist(core, ka)
                            if explicit:
                                ctx.evict_shared(ka)
                    if explicit:
                        for core in range(s * s):
                            if rows[core % s]:
                                for j in cols[core // s]:
                                    ctx.evict_dist(core, brow | j)
                        for j in range(j0, wj):
                            ctx.evict_shared(brow | j)
                if explicit:
                    # Fully accumulated: drain cores, then the shared tile.
                    for core in range(s * s):
                        gi, gj = core % s, core // s
                        for i in rows[gi]:
                            crow = C_BASE | (i << RS)
                            for j in cols[gj]:
                                ctx.evict_dist(core, crow | j)
                    for i in range(i0, hi):
                        crow = C_BASE | (i << RS)
                        for j in range(j0, wj):
                            ctx.evict_shared(crow | j)
