"""Reference algorithm — *Outer Product* (ScaLAPACK-style, paper §4.1).

The classical outer-product algorithm on a virtual ``√p × √p`` core
torus: ``C`` is partitioned into ``p`` large tiles, one per core, and
the common dimension is traversed in the *outermost* loop — for each
``k``, every core accumulates ``A[i,k]·B[k,j]`` into every block of its
tile.  Nothing is sized to the caches, which is the point of the
baseline: each ``C`` block is re-traversed ``z`` times, so the shared
level sees ``Θ(mnz)`` misses.

The paper notes the algorithm "is insensitive to cache policies, since
it is not focusing on cache usage"; its figures plot a single curve.
We run it through the same LRU hierarchy as everything else, and also
give it a capacity-safe streaming IDEAL schedule (no reuse beyond the
current element of ``A``) for the IDEAL-setting experiments:

* ``MS = z·(√p·m + 2mn)`` (every ``B`` and ``C`` block per compute
  row, one ``A`` element per core row traversal),
* ``MD = z·(m/√p + 2mn/p)`` per core.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.algorithms.base import ExecutionContext, MatmulAlgorithm
from repro.cache.block import A_BASE, B_BASE, C_BASE, ROW_SHIFT
from repro.model.machine import MulticoreMachine


class OuterProduct(MatmulAlgorithm):
    """ScaLAPACK-style outer product on a virtual core torus."""

    name = "outer-product"
    label = "Outer Product"
    requires_square_grid = True

    def __init__(self, machine: MulticoreMachine, m: int, n: int, z: int) -> None:
        super().__init__(machine, m, n, z)
        self.grid = machine.grid_side

    def parameters(self) -> Dict[str, Any]:
        return {"grid": self.grid}

    def _tiles(self) -> List[Tuple[int, int, int, int]]:
        """Per-core (row_lo, row_hi, col_lo, col_hi) torus tiles."""
        s = self.grid
        row_chunks = self.split_evenly(0, self.m, s)
        col_chunks = self.split_evenly(0, self.n, s)
        tiles = []
        for core in range(s * s):
            gi, gj = core % s, core // s
            rows, cols = row_chunks[gi], col_chunks[gj]
            tiles.append(
                (rows.start, rows.stop, cols.start, cols.stop)
            )
        return tiles

    def run(self, ctx: ExecutionContext) -> None:
        z = self.z
        explicit = ctx.explicit
        compute = ctx.compute
        tiles = self._tiles()
        RS = ROW_SHIFT

        for k in range(z):
            brow = B_BASE | (k << RS)
            for core, (rlo, rhi, clo, chi) in enumerate(tiles):
                for i in range(rlo, rhi):
                    ka = A_BASE | (i << RS) | k
                    crow = C_BASE | (i << RS)
                    if explicit:
                        ctx.load_shared(ka)
                        ctx.load_dist(core, ka)
                        for j in range(clo, chi):
                            kb = brow | j
                            kc = crow | j
                            ctx.load_shared(kb)
                            ctx.load_dist(core, kb)
                            ctx.load_shared(kc)
                            ctx.load_dist(core, kc)
                            compute(core, kc, ka, kb)
                            ctx.evict_dist(core, kb)
                            ctx.evict_dist(core, kc)
                            ctx.evict_shared(kb)
                            ctx.evict_shared(kc)
                        ctx.evict_dist(core, ka)
                        ctx.evict_shared(ka)
                    else:
                        for j in range(clo, chi):
                            compute(core, crow | j, ka, brow | j)
