"""Cannon's algorithm (extra baseline, cited in the paper's introduction).

Cannon's algorithm [Cannon 1969] is the other classical 2-D parallel
matrix product the paper mentions alongside the ScaLAPACK outer
product.  On a ``√p × √p`` torus, core ``(u, v)`` owns a tile of ``C``
and, at step ``t``, multiplies the ``A``-band ``(u, u+v+t mod √p)`` by
the ``B``-band ``(u+v+t mod √p, v)`` — tiles of ``A`` shift left along
rows and tiles of ``B`` shift up along columns between steps, so at any
instant the ``p`` cores touch *pairwise disjoint* tiles of ``A`` and
``B``.

On the multicore cache model this skewing is the whole difference from
the Outer Product baseline: the same elementary products are computed,
but the common dimension is traversed in a staggered order per core, so
no two cores compete for the same block of ``A``/``B`` within a step.
Like the Outer Product, the algorithm is cache-oblivious by design and
re-touches each block of ``C`` once per ``k``, so its shared-level
traffic remains ``Θ(mnz)``.

Registered under :data:`repro.algorithms.registry.EXTRA_ALGORITHMS`
(not one of the paper's six).
"""

from __future__ import annotations

from typing import Any, Dict

from repro.algorithms.base import ExecutionContext, MatmulAlgorithm
from repro.cache.block import A_BASE, B_BASE, C_BASE, ROW_SHIFT
from repro.model.machine import MulticoreMachine


class Cannon(MatmulAlgorithm):
    """Cannon's skewed torus algorithm at block granularity."""

    name = "cannon"
    label = "Cannon"
    requires_square_grid = True

    def __init__(self, machine: MulticoreMachine, m: int, n: int, z: int) -> None:
        super().__init__(machine, m, n, z)
        self.grid = machine.grid_side

    def parameters(self) -> Dict[str, Any]:
        return {"grid": self.grid}

    def run(self, ctx: ExecutionContext) -> None:
        s = self.grid
        explicit = ctx.explicit
        compute = ctx.compute
        RS = ROW_SHIFT
        row_chunks = self.split_evenly(0, self.m, s)
        col_chunks = self.split_evenly(0, self.n, s)
        k_chunks = self.split_evenly(0, self.z, s)

        for t in range(s):
            for core in range(s * s):
                u, v = core % s, core // s
                band = (u + v + t) % s
                rows, cols, ks = row_chunks[u], col_chunks[v], k_chunks[band]
                for k in ks:
                    brow = B_BASE | (k << RS)
                    for i in rows:
                        ka = A_BASE | (i << RS) | k
                        crow = C_BASE | (i << RS)
                        if explicit:
                            ctx.load_shared(ka)
                            ctx.load_dist(core, ka)
                            for j in cols:
                                kb = brow | j
                                kc = crow | j
                                ctx.load_shared(kb)
                                ctx.load_dist(core, kb)
                                ctx.load_shared(kc)
                                ctx.load_dist(core, kc)
                                compute(core, kc, ka, kb)
                                ctx.evict_dist(core, kb)
                                ctx.evict_dist(core, kc)
                                ctx.evict_shared(kb)
                                ctx.evict_shared(kc)
                            ctx.evict_dist(core, ka)
                            ctx.evict_shared(ka)
                        else:
                            for j in cols:
                                compute(core, crow | j, ka, brow | j)
