"""The six matrix-product algorithms evaluated in the paper.

* :class:`~repro.algorithms.shared_opt.SharedOpt` — Algorithm 1,
  minimizes shared-cache misses (parameter ``λ``).
* :class:`~repro.algorithms.distributed_opt.DistributedOpt` —
  Algorithm 2, minimizes distributed-cache misses (parameter ``µ``,
  2-D cyclic layout on a ``√p×√p`` core grid).
* :class:`~repro.algorithms.tradeoff.Tradeoff` — Algorithm 3, minimizes
  the data access time ``Tdata`` (parameters ``α, β``).
* :class:`~repro.algorithms.outer_product.OuterProduct` — the
  ScaLAPACK-style reference on a virtual core torus.
* :class:`~repro.algorithms.equal.SharedEqual` /
  :class:`~repro.algorithms.equal.DistributedEqual` — the Toledo-style
  equal-thirds memory allocation, tuned for the shared respectively the
  distributed cache level.

Every algorithm is written once, against the
:class:`~repro.algorithms.base.ExecutionContext` protocol, and drives
LRU simulation, IDEAL simulation (optionally with full capacity /
inclusion / presence checking) and numeric execution from the same
code path.
"""

from repro.algorithms.base import ExecutionContext, MatmulAlgorithm, NullContext
from repro.algorithms.shared_opt import SharedOpt
from repro.algorithms.distributed_opt import DistributedOpt
from repro.algorithms.tradeoff import Tradeoff
from repro.algorithms.outer_product import OuterProduct
from repro.algorithms.equal import SharedEqual, DistributedEqual
from repro.algorithms.registry import ALGORITHMS, get_algorithm, algorithm_names

__all__ = [
    "ExecutionContext",
    "MatmulAlgorithm",
    "NullContext",
    "SharedOpt",
    "DistributedOpt",
    "Tradeoff",
    "OuterProduct",
    "SharedEqual",
    "DistributedEqual",
    "ALGORITHMS",
    "get_algorithm",
    "algorithm_names",
]
