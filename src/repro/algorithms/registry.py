"""Registry of the six algorithms, keyed by their stable names.

The registry is the single source of truth for "which algorithms exist"
used by the CLI, the experiment harness and the tests.
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.algorithms.base import MatmulAlgorithm
from repro.algorithms.distributed_opt import DistributedOpt
from repro.algorithms.equal import DistributedEqual, SharedEqual
from repro.algorithms.outer_product import OuterProduct
from repro.algorithms.shared_opt import SharedOpt
from repro.algorithms.tradeoff import Tradeoff
from repro.exceptions import ConfigurationError

#: All algorithms in the paper's presentation order.
ALGORITHMS: Dict[str, Type[MatmulAlgorithm]] = {
    cls.name: cls
    for cls in (
        SharedOpt,
        DistributedOpt,
        Tradeoff,
        OuterProduct,
        SharedEqual,
        DistributedEqual,
    )
}

#: The paper's three contributions (the Multicore Maximum Reuse family).
MAXIMUM_REUSE = ("shared-opt", "distributed-opt", "tradeoff")

#: The two reference baselines (three names, Equal comes in two flavours).
BASELINES = ("outer-product", "shared-equal", "distributed-equal")


def _extra_algorithms() -> Dict[str, Type[MatmulAlgorithm]]:
    # Imported lazily to keep the paper's six-algorithm registry free of
    # extension imports at module load.
    from repro.algorithms.cannon import Cannon
    from repro.algorithms.nested import NestedMaxReuse

    return {Cannon.name: Cannon, NestedMaxReuse.name: NestedMaxReuse}


#: Extensions beyond the paper's evaluation set (e.g. Cannon's algorithm).
EXTRA_ALGORITHMS: Dict[str, Type[MatmulAlgorithm]] = _extra_algorithms()


def get_algorithm(name: str) -> Type[MatmulAlgorithm]:
    """Look an algorithm class up by its stable name (extras included)."""
    try:
        return ALGORITHMS[name]
    except KeyError:
        pass
    try:
        return EXTRA_ALGORITHMS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown algorithm {name!r}; valid names: "
            f"{sorted(ALGORITHMS) + sorted(EXTRA_ALGORITHMS)}"
        ) from None


def algorithm_names(include_extras: bool = False) -> List[str]:
    """Stable names of every registered algorithm, presentation order."""
    names = list(ALGORITHMS)
    if include_extras:
        names += list(EXTRA_ALGORITHMS)
    return names
