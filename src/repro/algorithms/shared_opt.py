"""Algorithm 1 — *Shared Opt.*: minimize shared-cache misses ``MS``.

The Maximum Reuse Algorithm adapted to the shared cache (paper §3.1):
a ``λ×λ`` block of ``C`` (with ``1 + λ + λ² ≤ CS``) is pinned in the
shared cache; for each ``k`` a ``λ`` row of ``B`` and, one at a time,
the ``λ`` elements of the corresponding column of ``A`` stream through
the remaining shared-cache space.  Each row of the ``C`` block is dealt
out to the ``p`` cores in ``λ/p`` sub-rows; each core's distributed
cache only ever holds three blocks (one each of ``A``, ``B``, ``C``).

Closed-form counts (exact when ``λ | m`` and ``λ | n``):

* ``MS = mn + 2mnz/λ``      (CCR_S ``= 1/z + 2/λ``, near the bound)
* ``MD = 2mnz/p + mnz/λ``   (CCR_D ``= 2 + p/λ``, far from the bound)
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.algorithms.base import ExecutionContext, MatmulAlgorithm
from repro.cache.block import A_BASE, B_BASE, C_BASE, ROW_SHIFT
from repro.exceptions import ParameterError
from repro.model.machine import MulticoreMachine
from repro.model.params import lambda_param, largest_divisor_at_most


class SharedOpt(MatmulAlgorithm):
    """Maximum Reuse Algorithm tuned for the shared cache (Algorithm 1).

    Parameters
    ----------
    machine, m, n, z:
        See :class:`~repro.algorithms.base.MatmulAlgorithm`.
    lam:
        Tile side override.  Default: the largest ``λ`` with
        ``1 + λ + λ² ≤ CS``.
    round_to_divisor:
        When ``True``, shrink ``λ`` to the largest divisor of
        ``gcd-like`` feasible side of ``min(m, n)`` — the constraint the
        paper's implementation applies.  Ragged tiles are otherwise
        handled directly.
    """

    name = "shared-opt"
    label = "Shared Opt."

    def __init__(
        self,
        machine: MulticoreMachine,
        m: int,
        n: int,
        z: int,
        lam: Optional[int] = None,
        round_to_divisor: bool = False,
    ) -> None:
        super().__init__(machine, m, n, z)
        if lam is None:
            lam = lambda_param(machine.cs)
        if lam < 1:
            raise ParameterError(f"lambda must be positive, got {lam}")
        if 1 + lam + lam * lam > machine.cs:
            raise ParameterError(
                f"lambda={lam} violates 1 + λ + λ² <= CS={machine.cs}"
            )
        if round_to_divisor:
            lam = min(
                largest_divisor_at_most(m, lam),
                largest_divisor_at_most(n, lam),
            )
        self.lam = lam

    def parameters(self) -> Dict[str, Any]:
        return {"lambda": self.lam}

    def run(self, ctx: ExecutionContext) -> None:
        p = ctx.p
        m, n, z = self.m, self.n, self.z
        lam = self.lam
        explicit = ctx.explicit
        compute = ctx.compute
        split = self.split_evenly
        RS = ROW_SHIFT

        for i0 in range(0, m, lam):
            hi = min(i0 + lam, m)
            for j0 in range(0, n, lam):
                wj = min(j0 + lam, n)
                if explicit:
                    # Pin the C tile in the shared cache.
                    for i in range(i0, hi):
                        crow = C_BASE | (i << RS)
                        for j in range(j0, wj):
                            ctx.load_shared(crow | j)
                chunks = split(j0, wj, p)
                for k in range(z):
                    brow = B_BASE | (k << RS)
                    if explicit:
                        for j in range(j0, wj):
                            ctx.load_shared(brow | j)
                    for i in range(i0, hi):
                        ka = A_BASE | (i << RS) | k
                        crow = C_BASE | (i << RS)
                        if explicit:
                            ctx.load_shared(ka)
                        for core in range(p):
                            chunk = chunks[core]
                            if not chunk:
                                continue
                            if explicit:
                                ctx.load_dist(core, ka)
                                for j in chunk:
                                    kb = brow | j
                                    kc = crow | j
                                    ctx.load_dist(core, kb)
                                    ctx.load_dist(core, kc)
                                    compute(core, kc, ka, kb)
                                    ctx.evict_dist(core, kb)
                                    ctx.evict_dist(core, kc)
                                ctx.evict_dist(core, ka)
                            else:
                                for j in chunk:
                                    compute(core, crow | j, ka, brow | j)
                        if explicit:
                            ctx.evict_shared(ka)
                    if explicit:
                        for j in range(j0, wj):
                            ctx.evict_shared(brow | j)
                if explicit:
                    # Write the finished C tile back to memory.
                    for i in range(i0, hi):
                        crow = C_BASE | (i << RS)
                        for j in range(j0, wj):
                            ctx.evict_shared(crow | j)
