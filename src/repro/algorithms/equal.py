"""Reference algorithms — *Shared Equal* and *Distributed Equal*.

The paper's second baseline (§4.1) is "inspired by [Toledo's out-of-core
survey]": the target cache is split in three equal parts, one per
matrix, and the product proceeds over square ``t × t`` tiles with
``3t² ≤ Z``.  Unlike the Maximum Reuse family, no matrix is favoured —
which is precisely why it "does not use the memory optimally": the tile
side is ``√(Z/3)`` instead of ``≈ √Z``.

Two variants, as in the paper:

* :class:`SharedEqual` sizes ``t`` to the shared cache.  The ``C`` tile
  is pinned in the shared cache while ``A``/``B`` tiles stream through;
  tile-row fragments are dealt to the cores like Algorithm 1 does.
  Closed form (exact under divisibility): ``MS = mn + 2mnz/t`` with
  ``t = ⌊√(CS/3)⌋``.
* :class:`DistributedEqual` sizes ``t`` to the distributed caches.  Each
  core independently processes its own share of ``C`` tiles, pinning a
  tile triple in its private cache; no inter-core sharing is attempted.
  Closed form: ``MD = mn/p + 2mnz/(p·t)`` with ``t = ⌊√(CD/3)⌋`` and
  ``MS = mn + 2mnz/t``.

These closed forms are *our* derivations (the paper only describes the
allocation scheme); they are validated against the simulator in
``tests/analysis/test_formula_vs_sim.py``.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional

from repro.algorithms.base import ExecutionContext, MatmulAlgorithm
from repro.cache.block import A_BASE, B_BASE, C_BASE, ROW_SHIFT
from repro.exceptions import ParameterError
from repro.model.machine import MulticoreMachine


def equal_tile(capacity: int) -> int:
    """Largest ``t`` with ``3t² ≤ capacity`` (the equal-thirds tile)."""
    if capacity < 3:
        raise ParameterError(
            f"capacity {capacity} cannot hold one block of each matrix"
        )
    t = math.isqrt(capacity // 3)
    return max(t, 1)


class SharedEqual(MatmulAlgorithm):
    """Toledo-style equal-thirds allocation of the shared cache."""

    name = "shared-equal"
    label = "Shared Equal"

    def __init__(
        self,
        machine: MulticoreMachine,
        m: int,
        n: int,
        z: int,
        t: Optional[int] = None,
    ) -> None:
        super().__init__(machine, m, n, z)
        if t is None:
            t = equal_tile(machine.cs)
        if t < 1 or 3 * t * t > machine.cs:
            raise ParameterError(f"t={t} violates 3t² <= CS={machine.cs}")
        self.t = t

    def parameters(self) -> Dict[str, Any]:
        return {"t": self.t}

    def run(self, ctx: ExecutionContext) -> None:
        p = ctx.p
        m, n, z = self.m, self.n, self.z
        t = self.t
        explicit = ctx.explicit
        compute = ctx.compute
        RS = ROW_SHIFT

        for i0 in range(0, m, t):
            hi = min(i0 + t, m)
            for j0 in range(0, n, t):
                wj = min(j0 + t, n)
                if explicit:
                    for i in range(i0, hi):
                        crow = C_BASE | (i << RS)
                        for j in range(j0, wj):
                            ctx.load_shared(crow | j)
                chunks = self.split_evenly(i0, hi, p)
                for k0 in range(0, z, t):
                    kh = min(k0 + t, z)
                    if explicit:
                        for i in range(i0, hi):
                            arow = A_BASE | (i << RS)
                            for k in range(k0, kh):
                                ctx.load_shared(arow | k)
                        for k in range(k0, kh):
                            brow = B_BASE | (k << RS)
                            for j in range(j0, wj):
                                ctx.load_shared(brow | j)
                    # Tile rows are dealt to cores; the inner streaming
                    # mirrors Algorithm 1 (hold a, stream B/C pairs).
                    for core in range(p):
                        for i in chunks[core]:
                            crow = C_BASE | (i << RS)
                            arow = A_BASE | (i << RS)
                            for k in range(k0, kh):
                                ka = arow | k
                                brow = B_BASE | (k << RS)
                                if explicit:
                                    ctx.load_dist(core, ka)
                                    for j in range(j0, wj):
                                        kb = brow | j
                                        kc = crow | j
                                        ctx.load_dist(core, kb)
                                        ctx.load_dist(core, kc)
                                        compute(core, kc, ka, kb)
                                        ctx.evict_dist(core, kb)
                                        ctx.evict_dist(core, kc)
                                    ctx.evict_dist(core, ka)
                                else:
                                    for j in range(j0, wj):
                                        compute(core, crow | j, ka, brow | j)
                    if explicit:
                        for i in range(i0, hi):
                            arow = A_BASE | (i << RS)
                            for k in range(k0, kh):
                                ctx.evict_shared(arow | k)
                        for k in range(k0, kh):
                            brow = B_BASE | (k << RS)
                            for j in range(j0, wj):
                                ctx.evict_shared(brow | j)
                if explicit:
                    for i in range(i0, hi):
                        crow = C_BASE | (i << RS)
                        for j in range(j0, wj):
                            ctx.evict_shared(crow | j)


class DistributedEqual(MatmulAlgorithm):
    """Toledo-style equal-thirds allocation of each distributed cache.

    ``C`` tiles (side ``t``, ``3t² ≤ CD``) are dealt round-robin to the
    cores; each core pins its current ``(C, A, B)`` tile triple in its
    private cache.  Cores are interleaved at the ``k``-step granularity
    to approximate concurrent execution in LRU mode.
    """

    name = "distributed-equal"
    label = "Distributed Equal"

    def __init__(
        self,
        machine: MulticoreMachine,
        m: int,
        n: int,
        z: int,
        t: Optional[int] = None,
    ) -> None:
        super().__init__(machine, m, n, z)
        if t is None:
            t = equal_tile(machine.cd)
        if t < 1 or 3 * t * t > machine.cd:
            raise ParameterError(f"t={t} violates 3t² <= CD={machine.cd}")
        self.t = t

    def parameters(self) -> Dict[str, Any]:
        return {"t": self.t}

    def run(self, ctx: ExecutionContext) -> None:
        p = ctx.p
        m, n, z = self.m, self.n, self.z
        t = self.t
        explicit = ctx.explicit
        compute = ctx.compute
        RS = ROW_SHIFT

        # Round-robin deal of C tiles to cores.
        tiles = [
            (i0, min(i0 + t, m), j0, min(j0 + t, n))
            for i0 in range(0, m, t)
            for j0 in range(0, n, t)
        ]
        # Process in rounds of p tiles so cores advance together.
        for r0 in range(0, len(tiles), p):
            round_tiles = tiles[r0 : r0 + p]
            if explicit:
                for core, (i0, hi, j0, wj) in enumerate(round_tiles):
                    for i in range(i0, hi):
                        crow = C_BASE | (i << RS)
                        for j in range(j0, wj):
                            key = crow | j
                            ctx.load_shared(key)
                            ctx.load_dist(core, key)
            for k0 in range(0, z, t):
                kh = min(k0 + t, z)
                step_keys = set()
                if explicit:
                    # Different cores of a round may need the same A (or
                    # B) tile; load each distinct block into the shared
                    # cache once and track the set for the evict phase.
                    for core, (i0, hi, j0, wj) in enumerate(round_tiles):
                        for i in range(i0, hi):
                            arow = A_BASE | (i << RS)
                            for k in range(k0, kh):
                                key = arow | k
                                if key not in step_keys:
                                    step_keys.add(key)
                                    ctx.load_shared(key)
                                ctx.load_dist(core, key)
                        for k in range(k0, kh):
                            brow = B_BASE | (k << RS)
                            for j in range(j0, wj):
                                key = brow | j
                                if key not in step_keys:
                                    step_keys.add(key)
                                    ctx.load_shared(key)
                                ctx.load_dist(core, key)
                for core, (i0, hi, j0, wj) in enumerate(round_tiles):
                    for i in range(i0, hi):
                        crow = C_BASE | (i << RS)
                        arow = A_BASE | (i << RS)
                        for k in range(k0, kh):
                            ka = arow | k
                            brow = B_BASE | (k << RS)
                            for j in range(j0, wj):
                                compute(core, crow | j, ka, brow | j)
                if explicit:
                    for core, (i0, hi, j0, wj) in enumerate(round_tiles):
                        for i in range(i0, hi):
                            arow = A_BASE | (i << RS)
                            for k in range(k0, kh):
                                ctx.evict_dist(core, arow | k)
                        for k in range(k0, kh):
                            brow = B_BASE | (k << RS)
                            for j in range(j0, wj):
                                ctx.evict_dist(core, brow | j)
                    for key in step_keys:
                        ctx.evict_shared(key)
            if explicit:
                for core, (i0, hi, j0, wj) in enumerate(round_tiles):
                    for i in range(i0, hi):
                        crow = C_BASE | (i << RS)
                        for j in range(j0, wj):
                            key = crow | j
                            ctx.evict_dist(core, key)
                            ctx.evict_shared(key)
