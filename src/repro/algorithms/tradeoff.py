"""Algorithm 3 — *Tradeoff*: minimize the data access time ``Tdata``.

The tradeoff variant of the Multicore Maximum Reuse Algorithm (paper
§3.3): an ``α×α`` tile of ``C`` is pinned in the shared cache together
with slabs of ``β`` columns of ``A`` and ``β`` rows of ``B``
(``α² + 2αβ ≤ CS``).  Loading slabs of depth ``β`` lets each core keep
its ``µ×µ`` sub-block of ``C`` across ``β`` accumulation steps, cutting
the ``C``-induced distributed misses by a factor ``β`` relative to
Shared Opt., at the price of a smaller ``α`` (hence more shared
misses).  The optimal ``α`` as a function of the bandwidth ratio
``ρ = pσD/σS`` is computed in :mod:`repro.analysis.tradeoff_opt`.

Closed-form counts (exact when ``α | m``, ``α | n``, ``β | z`` and
``α > √pµ``):

* ``MS = mn + 2mnz/α``
* ``MD = mnz/(pβ) + 2mnz/(pµ)``

and in the degenerate case ``α = √pµ`` each core owns a single
sub-block, which is loaded once per tile:

* ``MD = mn/p + 2mnz/(pµ)`` — the Distributed Opt. count.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.algorithms.base import ExecutionContext, MatmulAlgorithm
from repro.analysis.tradeoff_opt import optimal_parameters
from repro.cache.block import A_BASE, B_BASE, C_BASE, ROW_SHIFT
from repro.exceptions import ParameterError
from repro.model.machine import MulticoreMachine
from repro.model.params import TradeoffParameters, beta_for_alpha, mu_param


class Tradeoff(MatmulAlgorithm):
    """Multicore Maximum Reuse Algorithm tuned for ``Tdata`` (Algorithm 3).

    Parameters
    ----------
    alpha, beta, mu:
        Tile parameter overrides.  By default they come from
        :func:`repro.analysis.tradeoff_opt.optimal_parameters`, i.e.
        from the machine's bandwidth ratio.  Overrides must satisfy
        ``α² + 2αβ ≤ CS``, ``1 + µ + µ² ≤ CD`` and ``√p·µ | α``.
    """

    name = "tradeoff"
    label = "Tradeoff"
    requires_square_grid = True

    def __init__(
        self,
        machine: MulticoreMachine,
        m: int,
        n: int,
        z: int,
        alpha: Optional[int] = None,
        beta: Optional[int] = None,
        mu: Optional[int] = None,
    ) -> None:
        super().__init__(machine, m, n, z)
        s = machine.grid_side
        if alpha is None:
            params = optimal_parameters(machine, mu=mu)
            alpha, beta, mu = params.alpha, params.beta, params.mu
            self._alpha_num = params.alpha_num
        else:
            if mu is None:
                mu = mu_param(machine.cd)
            if beta is None:
                beta = beta_for_alpha(machine.cs, alpha)
            self._alpha_num = float(alpha)
        if mu < 1 or 1 + mu + mu * mu > machine.cd:
            raise ParameterError(f"mu={mu} violates 1 + µ + µ² <= CD={machine.cd}")
        if alpha % (s * mu) != 0:
            raise ParameterError(
                f"alpha={alpha} must be a multiple of sqrt(p)*mu={s * mu}"
            )
        if beta < 1:
            raise ParameterError(f"beta must be >= 1, got {beta}")
        if alpha * alpha + 2 * alpha * beta > machine.cs:
            raise ParameterError(
                f"(alpha={alpha}, beta={beta}) violates α² + 2αβ <= CS={machine.cs}"
            )
        self.alpha = alpha
        self.beta = beta
        self.mu = mu
        self.grid = s

    def parameters(self) -> Dict[str, Any]:
        return {
            "alpha": self.alpha,
            "beta": self.beta,
            "mu": self.mu,
            "alpha_num": round(self._alpha_num, 2),
            "grid": self.grid,
        }

    @property
    def single_subblock(self) -> bool:
        """Whether ``α = √p·µ`` (each core owns one ``C`` sub-block)."""
        return self.alpha == self.grid * self.mu

    def run(self, ctx: ExecutionContext) -> None:
        m, n, z = self.m, self.n, self.z
        alpha, beta, mu, s = self.alpha, self.beta, self.mu, self.grid
        region = alpha // s  # side of each core's contiguous C region
        explicit = ctx.explicit
        compute = ctx.compute
        hoist = self.single_subblock
        RS = ROW_SHIFT

        for i0 in range(0, m, alpha):
            hi = min(i0 + alpha, m)
            for j0 in range(0, n, alpha):
                wj = min(j0 + alpha, n)
                if explicit:
                    for i in range(i0, hi):
                        crow = C_BASE | (i << RS)
                        for j in range(j0, wj):
                            ctx.load_shared(crow | j)
                # Per-core contiguous regions (paper pseudocode), clamped.
                regions = []
                for core in range(s * s):
                    gi, gj = core % s, core // s
                    rlo = min(i0 + gi * region, hi)
                    rhi = min(i0 + (gi + 1) * region, hi)
                    clo = min(j0 + gj * region, wj)
                    chi = min(j0 + (gj + 1) * region, wj)
                    regions.append((rlo, rhi, clo, chi))
                if explicit and hoist:
                    # α = √pµ: each core's single sub-block is its whole
                    # region; pin it for the entire tile computation.
                    for core, (rlo, rhi, clo, chi) in enumerate(regions):
                        for i in range(rlo, rhi):
                            crow = C_BASE | (i << RS)
                            for j in range(clo, chi):
                                ctx.load_dist(core, crow | j)
                for k0 in range(0, z, beta):
                    kh = min(k0 + beta, z)
                    if explicit:
                        for k in range(k0, kh):
                            brow = B_BASE | (k << RS)
                            for j in range(j0, wj):
                                ctx.load_shared(brow | j)
                        for i in range(i0, hi):
                            arow = A_BASE | (i << RS)
                            for k in range(k0, kh):
                                ctx.load_shared(arow | k)
                    for core, (rlo, rhi, clo, chi) in enumerate(regions):
                        for bi in range(rlo, rhi, mu):
                            bih = min(bi + mu, rhi)
                            for bj in range(clo, chi, mu):
                                bjh = min(bj + mu, chi)
                                if explicit and not hoist:
                                    for i in range(bi, bih):
                                        crow = C_BASE | (i << RS)
                                        for j in range(bj, bjh):
                                            ctx.load_dist(core, crow | j)
                                for k in range(k0, kh):
                                    brow = B_BASE | (k << RS)
                                    if explicit:
                                        for j in range(bj, bjh):
                                            ctx.load_dist(core, brow | j)
                                    for i in range(bi, bih):
                                        ka = A_BASE | (i << RS) | k
                                        crow = C_BASE | (i << RS)
                                        if explicit:
                                            ctx.load_dist(core, ka)
                                        for j in range(bj, bjh):
                                            compute(core, crow | j, ka, brow | j)
                                        if explicit:
                                            ctx.evict_dist(core, ka)
                                    if explicit:
                                        for j in range(bj, bjh):
                                            ctx.evict_dist(core, brow | j)
                                if explicit and not hoist:
                                    # Push the partial sub-block back up.
                                    for i in range(bi, bih):
                                        crow = C_BASE | (i << RS)
                                        for j in range(bj, bjh):
                                            ctx.evict_dist(core, crow | j)
                    if explicit:
                        for k in range(k0, kh):
                            brow = B_BASE | (k << RS)
                            for j in range(j0, wj):
                                ctx.evict_shared(brow | j)
                        for i in range(i0, hi):
                            arow = A_BASE | (i << RS)
                            for k in range(k0, kh):
                                ctx.evict_shared(arow | k)
                if explicit:
                    if hoist:
                        for core, (rlo, rhi, clo, chi) in enumerate(regions):
                            for i in range(rlo, rhi):
                                crow = C_BASE | (i << RS)
                                for j in range(clo, chi):
                                    ctx.evict_dist(core, crow | j)
                    for i in range(i0, hi):
                        crow = C_BASE | (i << RS)
                        for j in range(j0, wj):
                            ctx.evict_shared(crow | j)
