"""Algorithm/context interface: one schedule, many interpreters.

The paper's algorithms are *schedules*: an order of explicit cache
movements and elementary block multiply-adds.  We express each schedule
once, as a ``run(ctx)`` method emitting operations against an
:class:`ExecutionContext`, and plug in different contexts:

* an LRU counting context (explicit directives ignored, every compute
  touches the hierarchy — the paper's LRU simulator mode);
* an IDEAL counting context (directives drive the explicitly-controlled
  hierarchy, optionally verifying capacity/inclusion/presence);
* a numeric context (directives ignored, every compute performs the
  real block arithmetic so the schedule's correctness is provable);
* a chain context fanning out to several of the above at once.

Contexts advertise ``explicit``: schedules wrap their load/evict
directives in ``if ctx.explicit`` so the (very hot) LRU and numeric
paths don't pay for directive no-op calls.  ``compute`` is always
emitted.  Per-core compute counters live in the context because the
communication-to-computation ratios of the paper normalize by them.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, ClassVar, Dict, List, Sequence

from repro.cache.block import block_key, MAT_A, MAT_B, MAT_C
from repro.exceptions import ConfigurationError
from repro.model.machine import MulticoreMachine


class ExecutionContext(ABC):
    """Interpreter of an algorithm's schedule.

    Attributes
    ----------
    p:
        Number of cores; schedules may only use core ids ``0..p-1``.
    explicit:
        Whether the context honours explicit cache directives.  When
        ``False`` a schedule should skip emitting them (they would be
        ignored anyway).
    comp:
        Per-core count of elementary block multiply-adds, maintained by
        :meth:`count_compute` which every ``compute`` implementation
        must call (or replicate).
    """

    explicit: bool = False

    def __init__(self, p: int) -> None:
        if p < 1:
            raise ConfigurationError(f"need at least one core, got p={p}")
        self.p = p
        self.comp: List[int] = [0] * p

    # -- explicit directives (no-ops unless the context opts in) -------
    def load_shared(self, key: int) -> None:
        """Directive: load ``key`` from memory into the shared cache."""

    def evict_shared(self, key: int) -> None:
        """Directive: evict ``key`` from the shared cache."""

    def load_dist(self, core: int, key: int) -> None:
        """Directive: load ``key`` from shared into ``core``'s cache."""

    def evict_dist(self, core: int, key: int) -> None:
        """Directive: evict ``key`` from ``core``'s cache."""

    # -- the universal hot operation -----------------------------------
    @abstractmethod
    def compute(self, core: int, ckey: int, akey: int, bkey: int) -> None:
        """One elementary block multiply-add ``C[c] += A[a] · B[b]``."""

    def count_compute(self, core: int) -> None:
        """Bump the per-core compute counter (helper for subclasses)."""
        self.comp[core] += 1

    @property
    def comp_total(self) -> int:
        """Total elementary multiply-adds across all cores."""
        return sum(self.comp)


class NullContext(ExecutionContext):
    """Counts computes and nothing else (scheduling dry-runs, tests)."""

    explicit = False

    def compute(self, core: int, ckey: int, akey: int, bkey: int) -> None:
        self.comp[core] += 1


class MatmulAlgorithm(ABC):
    """Base class of the six schedules.

    Subclasses compute their tile parameters at construction (raising
    :class:`~repro.exceptions.ParameterError` /
    :class:`~repro.exceptions.ConfigurationError` for impossible
    machines) and implement :meth:`run`.

    The matrix dimensions are in *blocks*: ``A`` is ``m × z``, ``B`` is
    ``z × n``, ``C`` is ``m × n``.  Schedules must handle arbitrary
    positive dimensions (ragged edge tiles); the paper's closed-form
    miss counts are exact only when the tile sides divide the
    dimensions, which the analysis and tests account for.
    """

    #: Stable identifier used by the registry, the CLI and reports.
    name: ClassVar[str] = "abstract"
    #: Pretty label as used in the paper's figures.
    label: ClassVar[str] = "Abstract"
    #: Whether the schedule lays cores on a square grid (needs square p).
    requires_square_grid: ClassVar[bool] = False
    #: Whether the schedule carries explicit IDEAL-mode cache directives.
    #: Compute-only schedules (counted through LRU/tree contexts) set
    #: this to False; the runner then refuses the ``ideal`` setting
    #: instead of silently reporting zero misses.
    supports_ideal: ClassVar[bool] = True

    def __init__(self, machine: MulticoreMachine, m: int, n: int, z: int) -> None:
        if m < 1 or n < 1 or z < 1:
            raise ConfigurationError(
                f"matrix dimensions must be positive, got m={m}, n={n}, z={z}"
            )
        if self.requires_square_grid and not machine.is_square_grid:
            raise ConfigurationError(
                f"{self.name} lays cores on a square grid; p={machine.p} "
                "is not a perfect square"
            )
        self.machine = machine
        self.m = m
        self.n = n
        self.z = z

    @abstractmethod
    def run(self, ctx: ExecutionContext) -> None:
        """Emit the full schedule for ``C = A × B`` against ``ctx``."""

    def parameters(self) -> Dict[str, Any]:
        """The tile parameters the schedule runs with (for reports)."""
        return {}

    @property
    def comp_total(self) -> int:
        """Elementary multiply-adds any correct schedule must emit."""
        return self.m * self.n * self.z

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        params = ", ".join(f"{k}={v}" for k, v in self.parameters().items())
        return (
            f"{type(self).__name__}(m={self.m}, n={self.n}, z={self.z}"
            + (f", {params}" if params else "")
            + ")"
        )

    # ------------------------------------------------------------------
    # Shared helpers for schedules
    # ------------------------------------------------------------------
    @staticmethod
    def a_key(i: int, k: int) -> int:
        """Key of block ``A[i, k]`` (row ``i`` of ``A``, column ``k``)."""
        return block_key(MAT_A, i, k)

    @staticmethod
    def b_key(k: int, j: int) -> int:
        """Key of block ``B[k, j]``."""
        return block_key(MAT_B, k, j)

    @staticmethod
    def c_key(i: int, j: int) -> int:
        """Key of block ``C[i, j]``."""
        return block_key(MAT_C, i, j)

    @staticmethod
    def split_evenly(lo: int, hi: int, parts: int) -> List[range]:
        """Split ``range(lo, hi)`` into ``parts`` contiguous chunks.

        Chunk sizes differ by at most one (the first ``extra`` chunks
        are longer); empty chunks are possible when the range is shorter
        than ``parts``.  Used to deal rows/columns of a tile out to
        cores, e.g. Algorithm 1's ``λ/p`` sub-rows.
        """
        total = hi - lo
        base, extra = divmod(total, parts)
        chunks: List[range] = []
        start = lo
        for c in range(parts):
            size = base + (1 if c < extra else 0)
            chunks.append(range(start, start + size))
            start += size
        return chunks


def tile_starts(extent: int, tile: int) -> Sequence[int]:
    """Start offsets of consecutive tiles of side ``tile`` over ``extent``."""
    return range(0, extent, tile)
