"""The one atomic artifact writer: tmp file + fsync + rename.

Every artifact this repository produces — run manifests, figure CSVs,
check-cache entries, baselines, SARIF exports, run metadata — goes
through :func:`atomic_write_text` / :func:`atomic_write_bytes`.  A
plain ``write_text`` that dies mid-write (crash, OOM kill, Ctrl-C,
full disk) leaves a *silently truncated* file behind: valid-looking
JSON/CSV prefixes are the worst kind of corruption, because every
reader happily consumes them.  The atomic protocol guarantees a reader
only ever sees the old complete file or the new complete file:

1. write the full payload to a temporary file *in the target
   directory* (``os.replace`` is only atomic within one filesystem);
2. flush and ``fsync`` the temporary file, so the payload is durable
   before it becomes visible;
3. ``os.replace`` it over the target — atomic on POSIX and Windows;
4. best-effort ``fsync`` the directory so the rename itself survives a
   power cut (skipped on platforms that refuse directory fds).

The ``lint/nonatomic-artifact-write`` rule (:mod:`repro.check.lint`)
enforces that no artifact writer outside :mod:`repro.store` bypasses
this module.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Union


def fsync_directory(directory: Path) -> None:
    """Best-effort fsync of a directory (making renames durable).

    Some platforms/filesystems cannot open directories for syncing;
    that only weakens durability against power loss, never atomicity,
    so failures are deliberately swallowed.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> Path:
    """Atomically replace ``path`` with ``data``; returns the path.

    The payload is durable (fsynced) before the rename makes it
    visible; on any failure the target is untouched and the temporary
    file is removed.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=target.parent, prefix=f".{target.name}.", suffix=".tmp"
    )
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, target)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    fsync_directory(target.parent)
    return target


def atomic_write_text(
    path: Union[str, Path], text: str, encoding: str = "utf-8"
) -> Path:
    """Atomically replace ``path`` with ``text`` (see :func:`atomic_write_bytes`)."""
    return atomic_write_bytes(path, text.encode(encoding))
