"""JSON (de)serialization of experiment results for the checkpoint log.

A checkpointed cell must reload *bit-identical*: the resumed
:class:`~repro.sim.results.ExperimentResult` carries exactly the
simulated state — cache statistics, per-core compute counts, resolved
algorithm parameters, the machine, the closed-form prediction — that a
fresh run would produce.  Everything here is plain ints, floats and
strings, and finite doubles round-trip exactly through JSON, so
equality of the reloaded result with the original is exact, not
approximate.

Engine telemetry (``elapsed_s``, ``attempts``, ``worker``, ``engine``,
``engine_fallback``, ``kernel``, ``trace_source``) is carried along
for observability but is *not*
part of the identity a resume must reproduce — two uninterrupted runs
already disagree on it (and replay/step produce bit-identical counts).

Imports of the result/formula types are deferred into the functions:
:mod:`repro.sim.telemetry` writes through :mod:`repro.store.atomic`,
so this module must not import :mod:`repro.sim.results` at import time
(it would close an import cycle through the package ``__init__``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.cache.stats import CacheStats, HierarchyStats
from repro.model.machine import MulticoreMachine

#: Result payload schema inside checkpoint records; bump on
#: incompatible layout changes.
RESULT_SCHEMA = 1


def machine_to_dict(machine: MulticoreMachine) -> Dict[str, Any]:
    """Serializable machine description (every identity-bearing field)."""
    return {
        "p": machine.p,
        "cs": machine.cs,
        "cd": machine.cd,
        "sigma_s": machine.sigma_s,
        "sigma_d": machine.sigma_d,
        "q": machine.q,
        "name": machine.name,
    }


def machine_from_dict(payload: Dict[str, Any]) -> MulticoreMachine:
    return MulticoreMachine(
        p=payload["p"],
        cs=payload["cs"],
        cd=payload["cd"],
        sigma_s=payload["sigma_s"],
        sigma_d=payload["sigma_d"],
        q=payload["q"],
        name=payload.get("name", ""),
    )


def _cache_stats_to_dict(stats: CacheStats) -> Dict[str, Any]:
    return {
        "hits": stats.hits,
        "misses": stats.misses,
        "writebacks": stats.writebacks,
        "misses_by_matrix": list(stats.misses_by_matrix),
    }


def _cache_stats_from_dict(payload: Dict[str, Any]) -> CacheStats:
    return CacheStats(
        hits=payload["hits"],
        misses=payload["misses"],
        writebacks=payload["writebacks"],
        misses_by_matrix=list(payload["misses_by_matrix"]),
    )


def stats_to_dict(stats: HierarchyStats) -> Dict[str, Any]:
    return {
        "shared": _cache_stats_to_dict(stats.shared),
        "distributed": [_cache_stats_to_dict(c) for c in stats.distributed],
    }


def stats_from_dict(payload: Dict[str, Any]) -> HierarchyStats:
    return HierarchyStats(
        shared=_cache_stats_from_dict(payload["shared"]),
        distributed=[_cache_stats_from_dict(c) for c in payload["distributed"]],
    )


def result_to_dict(result: Any) -> Dict[str, Any]:
    """Serialize an :class:`~repro.sim.results.ExperimentResult`."""
    payload: Dict[str, Any] = {
        "schema": RESULT_SCHEMA,
        "algorithm": result.algorithm,
        "setting": result.setting,
        "machine": machine_to_dict(result.machine),
        "m": result.m,
        "n": result.n,
        "z": result.z,
        "parameters": dict(result.parameters),
        "stats": stats_to_dict(result.stats),
        "comp": list(result.comp),
        "elapsed_s": result.elapsed_s,
        "attempts": result.attempts,
        "engine": result.engine,
        "engine_fallback": result.engine_fallback,
        "kernel": result.kernel,
        "trace_source": result.trace_source,
    }
    if result.predicted is not None:
        payload["predicted"] = {"ms": result.predicted.ms, "md": result.predicted.md}
    if result.worker is not None:
        payload["worker"] = result.worker
    return payload


def result_from_dict(payload: Dict[str, Any]) -> Any:
    """Rebuild an :class:`~repro.sim.results.ExperimentResult`.

    Raises
    ------
    KeyError, TypeError, ValueError
        When the payload does not describe a valid result — callers
        (the checkpoint loader) treat that as a corrupt record.
    """
    from repro.analysis.formulas import PredictedCounts
    from repro.sim.results import ExperimentResult

    if payload.get("schema") != RESULT_SCHEMA:
        raise ValueError(
            f"unsupported result schema {payload.get('schema')!r}; "
            f"expected {RESULT_SCHEMA}"
        )
    predicted: Optional[PredictedCounts] = None
    if "predicted" in payload:
        predicted = PredictedCounts(
            ms=payload["predicted"]["ms"], md=payload["predicted"]["md"]
        )
    comp: List[int] = list(payload["comp"])
    return ExperimentResult(
        algorithm=payload["algorithm"],
        setting=payload["setting"],
        machine=machine_from_dict(payload["machine"]),
        m=payload["m"],
        n=payload["n"],
        z=payload["z"],
        parameters=dict(payload["parameters"]),
        stats=stats_from_dict(payload["stats"]),
        comp=comp,
        predicted=predicted,
        elapsed_s=payload.get("elapsed_s", 0.0),
        attempts=payload.get("attempts", 1),
        worker=payload.get("worker"),
        engine=payload.get("engine", ""),
        engine_fallback=payload.get("engine_fallback", False),
        kernel=payload.get("kernel", ""),
        trace_source=payload.get("trace_source", ""),
    )
