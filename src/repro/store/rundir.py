"""Run directories: durable, auditable homes for sweep executions.

One sweep run owns one directory::

    <run_dir>/
      run.json          # run metadata: config, status, resume counters
      checkpoint.jsonl  # append-only per-cell checkpoint log
      manifest.json     # full RunManifest of the last engine execution

``run.json`` and ``manifest.json`` go through the atomic writer, so a
reader never observes a torn document; the checkpoint log has its own
crash semantics (:mod:`repro.store.checkpoint`).  :class:`RunStore` is
deliberately dumb storage — the sweep engine owns all scheduling
decisions; the CLI's ``repro-mmm runs`` subcommands are thin views
over :meth:`RunStore.audit` and :func:`list_runs`.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.store.atomic import atomic_write_text
from repro.store.checkpoint import (
    CheckpointWriter,
    LoadedCheckpoint,
    SealedLog,
    load_checkpoint,
    load_sealed_lines,
)

#: ``run.json`` schema; bump on incompatible layout changes.
RUN_SCHEMA = 1

#: Marker distinguishing a run directory from any other directory.
RUN_KIND = "repro-sweep-run"

#: Run lifecycle states recorded in ``run.json``.
STATUS_RUNNING = "running"
STATUS_COMPLETE = "complete"
STATUS_INCOMPLETE = "incomplete"
STATUS_INTERRUPTED = "interrupted"


@dataclass
class RunAudit:
    """Integrity report of one run directory (``repro-mmm runs verify``)."""

    path: Path
    meta: Optional[Dict[str, Any]]
    checkpoint: LoadedCheckpoint
    has_manifest: bool
    #: Problems that mean data was lost or cannot be trusted.
    errors: List[str] = field(default_factory=list)
    #: Recoverable oddities (torn tail, missing manifest, run left running).
    warnings: List[str] = field(default_factory=list)
    #: The coordinator journal (fabric runs only); ``None`` when absent.
    journal: Optional[SealedLog] = None
    #: Whether the run appears to be live (``status == "running"``):
    #: a torn checkpoint tail then means a writer is mid-append *right
    #: now*, not that anything crashed.
    in_progress: bool = False

    @property
    def ok(self) -> bool:
        return not self.errors

    def counts(self) -> Dict[str, int]:
        """Checkpointed record totals by status."""
        out: Dict[str, int] = {}
        for record in self.checkpoint.records.values():
            status = str(record.get("status"))
            out[status] = out.get(status, 0) + 1
        return out


class RunStore:
    """Filesystem handle on one run directory."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    @property
    def run_path(self) -> Path:
        return self.root / "run.json"

    @property
    def checkpoint_path(self) -> Path:
        return self.root / "checkpoint.jsonl"

    @property
    def manifest_path(self) -> Path:
        return self.root / "manifest.json"

    @property
    def journal_path(self) -> Path:
        """The fabric coordinator's event journal (absent for pool runs)."""
        return self.root / "journal.jsonl"

    def exists(self) -> bool:
        return self.run_path.exists()

    # -- metadata -------------------------------------------------------
    def initialize(self, config: Dict[str, Any]) -> Dict[str, Any]:
        """Create/overwrite ``run.json`` for a fresh run; returns the meta."""
        meta: Dict[str, Any] = {
            "schema": RUN_SCHEMA,
            "kind": RUN_KIND,
            # created_at is display metadata for `runs show`; it is never
            # hashed into a fingerprint and resume never compares it.
            "created_at": time.time(),  # repro: noqa[determinism/wall-clock] -- display metadata, outside identity
            "status": STATUS_RUNNING,
            "resumes": 0,
            **config,
        }
        self._write_meta(meta)
        return meta

    def load_meta(self) -> Optional[Dict[str, Any]]:
        """Parse ``run.json``; ``None`` when missing or unreadable."""
        try:
            payload = json.loads(self.run_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict) or payload.get("kind") != RUN_KIND:
            return None
        return payload

    def update_meta(self, **fields: Any) -> Dict[str, Any]:
        """Merge ``fields`` into ``run.json`` atomically; returns the meta."""
        meta = self.load_meta() or {
            "schema": RUN_SCHEMA,
            "kind": RUN_KIND,
            "created_at": time.time(),  # repro: noqa[determinism/wall-clock] -- display metadata, outside identity
        }
        meta.update(fields)
        self._write_meta(meta)
        return meta

    def _write_meta(self, meta: Dict[str, Any]) -> None:
        atomic_write_text(self.run_path, json.dumps(meta, indent=2) + "\n")

    # -- checkpoint -----------------------------------------------------
    def checkpoint_writer(self) -> CheckpointWriter:
        """Open the append-only checkpoint log (repairing a torn tail)."""
        return CheckpointWriter(self.checkpoint_path)

    def load_checkpoint(self) -> LoadedCheckpoint:
        return load_checkpoint(self.checkpoint_path)

    # -- audit ----------------------------------------------------------
    def audit(self) -> RunAudit:
        """Full integrity check of the directory (metadata + checkpoint)."""
        meta = self.load_meta()
        checkpoint = self.load_checkpoint()
        audit = RunAudit(
            path=self.root,
            meta=meta,
            checkpoint=checkpoint,
            has_manifest=self.manifest_path.exists(),
        )
        if meta is None:
            if self.run_path.exists():
                audit.errors.append("run.json exists but is not a valid run document")
            else:
                audit.errors.append("run.json is missing")
        elif meta.get("status") == STATUS_RUNNING:
            audit.in_progress = True
            audit.warnings.append(
                "run.json status is 'running': the run is live or died "
                "without a graceful shutdown (resume to recover)"
            )
        for bad in checkpoint.quarantined:
            if bad.fingerprint is not None and bad.fingerprint in checkpoint.records:
                # The log is append-only, so a corrupt line is never
                # rewritten — but an intact record for the same cell
                # (e.g. the recompute a resume appended) means no data
                # was lost: recovered, not corrupt.
                audit.warnings.append(
                    f"superseded corrupt checkpoint record: {bad.describe()} "
                    "(an intact record for the cell exists)"
                )
            else:
                audit.errors.append(f"corrupt checkpoint record: {bad.describe()}")
        if checkpoint.torn_tail:
            if audit.in_progress:
                # A live writer (fabric worker / coordinator) is mid-
                # append: the partial line is the next record being
                # written, not damage.
                audit.warnings.append(
                    "checkpoint tail is mid-append (run in progress); "
                    "the final record is still being written"
                )
            else:
                audit.warnings.append(
                    "checkpoint has a torn tail (crash mid-append); the final "
                    "record was dropped and its cell will be recomputed on resume"
                )
        if self.journal_path.exists():
            journal = load_sealed_lines(self.journal_path)
            audit.journal = journal
            for bad in journal.quarantined:
                audit.errors.append(f"corrupt journal record: {bad.describe()}")
            if journal.torn_tail:
                if audit.in_progress:
                    audit.warnings.append(
                        "journal tail is mid-append (run in progress)"
                    )
                else:
                    audit.warnings.append(
                        "journal has a torn tail (coordinator died "
                        "mid-append); the final event was dropped"
                    )
        if not audit.has_manifest:
            audit.warnings.append("manifest.json is missing (run never finished)")
        return audit


def list_runs(root: Union[str, Path]) -> List[Tuple[Path, Dict[str, Any]]]:
    """Run directories directly under ``root``, with their metadata.

    ``root`` itself is included when it is a run directory, so
    ``repro-mmm runs list some-run`` and ``… runs list runs/`` both do
    what they look like they do.
    """
    base = Path(root)
    out: List[Tuple[Path, Dict[str, Any]]] = []
    candidates = [base]
    if base.is_dir():
        candidates += sorted(p for p in base.iterdir() if p.is_dir())
    for candidate in candidates:
        store = RunStore(candidate)
        if not store.exists():
            continue
        meta = store.load_meta()
        if meta is not None:
            out.append((candidate, meta))
    return out
