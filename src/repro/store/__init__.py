"""Durable run store: crash-safe checkpointing and atomic artifacts.

``repro.store`` is the persistence layer that makes long sweeps behave
like preemptible training jobs instead of all-or-nothing scripts:

* :mod:`repro.store.atomic` — the one tmp-file + fsync + rename writer
  every artifact in the repository goes through;
* :mod:`repro.store.serde` — exact JSON round-tripping of
  :class:`~repro.sim.results.ExperimentResult`;
* :mod:`repro.store.checkpoint` — the append-only, checksummed JSONL
  cell checkpoint log with torn-tail repair and record quarantine;
* :mod:`repro.store.rundir` — run directories (`run.json`,
  `checkpoint.jsonl`, `manifest.json`) plus auditing and listing.

See ``docs/RUNSTORE.md`` for the on-disk formats and corruption
semantics, and ``docs/SWEEPS.md`` for how the sweep engine resumes.
"""

from repro.store.atomic import atomic_write_bytes, atomic_write_text
from repro.store.checkpoint import (
    CHECKPOINT_SCHEMA,
    CheckpointWriter,
    LoadedCheckpoint,
    QuarantinedRecord,
    SealedLog,
    cell_fingerprint,
    load_checkpoint,
    load_sealed_lines,
    record_intact,
    seal_record,
)
from repro.store.rundir import (
    RUN_KIND,
    RUN_SCHEMA,
    STATUS_COMPLETE,
    STATUS_INCOMPLETE,
    STATUS_INTERRUPTED,
    STATUS_RUNNING,
    RunAudit,
    RunStore,
    list_runs,
)
from repro.store.serde import result_from_dict, result_to_dict

__all__ = [
    "CHECKPOINT_SCHEMA",
    "RUN_KIND",
    "RUN_SCHEMA",
    "STATUS_COMPLETE",
    "STATUS_INCOMPLETE",
    "STATUS_INTERRUPTED",
    "STATUS_RUNNING",
    "CheckpointWriter",
    "LoadedCheckpoint",
    "QuarantinedRecord",
    "RunAudit",
    "RunStore",
    "SealedLog",
    "atomic_write_bytes",
    "atomic_write_text",
    "cell_fingerprint",
    "list_runs",
    "load_checkpoint",
    "load_sealed_lines",
    "record_intact",
    "result_from_dict",
    "result_to_dict",
    "seal_record",
]
