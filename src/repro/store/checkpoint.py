"""Append-only JSONL checkpoint log with checksums and tail repair.

The checkpoint is the durable heart of a run directory: every completed
sweep cell becomes one JSON line, flushed and fsynced *immediately*, so
a SIGKILL one instruction later loses at most the record being written
— never a completed cell.  Each record carries:

* ``fp`` — the deterministic **cell fingerprint**
  (:func:`cell_fingerprint`): a hash of everything that determines the
  cell's *result* — algorithm, setting, resolved kwargs, machine
  specification, swept variable and x value, dimensions.  Engine knobs
  (workers, timeouts, retries, chunking) are deliberately excluded: a
  re-run with different infrastructure settings must still hit the
  checkpoint.
* ``sum`` — a SHA-256 content checksum over the canonical JSON of the
  record (minus the checksum itself), so bit rot or hand editing is
  *detected*, not silently replayed.

Corruption semantics on load (:func:`load_checkpoint`):

* a **torn tail** — the final line is incomplete or unparseable, the
  signature of a crash mid-append — is tolerated: the record is
  dropped with a warning and the cell simply re-runs;
* a **checksum mismatch** or an unparseable/incomplete *interior*
  record **quarantines** that record: it is never replayed, the cell
  is recomputed, and the quarantine is reported (``repro-mmm runs
  verify`` surfaces it);
* duplicate fingerprints are legal (a resume re-appends): the loader
  keeps the *last* valid record per fingerprint, with ``ok`` records
  taking precedence over failure records.

:meth:`CheckpointWriter.open` repairs a torn tail before appending —
truncating the partial line — so one crash never poisons the next
resume's log with an interior corrupt record.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.store.serde import machine_to_dict

#: Checkpoint record schema; bump on incompatible layout changes.
CHECKPOINT_SCHEMA = 1


def cell_fingerprint(
    *,
    algorithm: str,
    setting: str,
    kwargs: Mapping[str, Any],
    machine: Any,
    variable: str,
    x: Any,
    m: int,
    n: int,
    z: int,
) -> str:
    """Deterministic identity of one sweep cell's *result*.

    Two cells share a fingerprint exactly when a correct simulator must
    produce identical results for them.  The machine's cosmetic ``name``
    is excluded (it never affects a simulation), as is every engine
    knob (workers, timeout, retries, chunksize, backoff) — retrying or
    re-sharding a sweep must not invalidate its checkpoint.
    """
    spec = machine_to_dict(machine)
    spec.pop("name", None)
    payload = {
        "algorithm": algorithm,
        "setting": setting,
        "kwargs": dict(kwargs),
        "machine": spec,
        "variable": variable,
        "x": x,
        "m": m,
        "n": n,
        "z": z,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _checksum(payload: Mapping[str, Any]) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def seal_record(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Return ``payload`` with its content checksum under ``"sum"``."""
    body = {k: v for k, v in payload.items() if k != "sum"}
    return {**body, "sum": _checksum(body)}


def record_intact(record: Mapping[str, Any]) -> bool:
    """Whether a parsed record's checksum matches its content."""
    declared = record.get("sum")
    if not isinstance(declared, str):
        return False
    body = {k: v for k, v in record.items() if k != "sum"}
    return _checksum(body) == declared


@dataclass
class QuarantinedRecord:
    """One checkpoint line that cannot be trusted."""

    line: int  # 1-based line number in the log
    reason: str
    fingerprint: Optional[str] = None

    def describe(self) -> str:
        fp = f" (cell {self.fingerprint[:12]}…)" if self.fingerprint else ""
        return f"line {self.line}: {self.reason}{fp}"


@dataclass
class LoadedCheckpoint:
    """Result of parsing a checkpoint log, corruption and all."""

    #: Last valid record per fingerprint, ``ok`` taking precedence.
    records: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: Lines that failed checksum/parse and will force a recompute.
    quarantined: List[QuarantinedRecord] = field(default_factory=list)
    #: Whether the final line was dropped as a torn (crash-truncated) tail.
    torn_tail: bool = False
    #: Total physical lines seen (including bad ones).
    total_lines: int = 0
    #: Human-readable load warnings, in order.
    warnings: List[str] = field(default_factory=list)

    def ok_records(self) -> Dict[str, Dict[str, Any]]:
        """Fingerprint → record for cells that completed successfully."""
        return {
            fp: record
            for fp, record in self.records.items()
            if record.get("status") == "ok"
        }


def _parse_line(text: str) -> Tuple[Optional[Dict[str, Any]], str]:
    """Parse one checkpoint line; returns (record, reason-if-bad)."""
    try:
        record = json.loads(text)
    except ValueError:
        return None, "unparseable JSON"
    if not isinstance(record, dict):
        return None, "record is not a JSON object"
    if record.get("schema") != CHECKPOINT_SCHEMA:
        return record, f"unsupported record schema {record.get('schema')!r}"
    if not isinstance(record.get("fp"), str):
        return record, "record has no fingerprint"
    if not record_intact(record):
        return record, "content checksum mismatch"
    return record, ""


@dataclass
class SealedLog:
    """Every intact record of a sealed JSONL log, *in append order*.

    This is the event-log view of a checkpoint-format file: unlike
    :class:`LoadedCheckpoint` it performs **no deduplication** — the
    fabric journal (:mod:`repro.fabric.journal`) is a history, and
    collapsing events by fingerprint would erase exactly the
    re-lease/retry story the journal exists to tell.
    """

    #: Intact records in file order.
    records: List[Dict[str, Any]] = field(default_factory=list)
    #: Lines that failed checksum/parse (interior corruption).
    quarantined: List[QuarantinedRecord] = field(default_factory=list)
    #: Whether the final line was dropped as a torn (crash-truncated) tail.
    torn_tail: bool = False
    #: Total physical lines seen (including bad ones).
    total_lines: int = 0


def load_sealed_lines(path: Union[str, Path]) -> SealedLog:
    """Parse a sealed JSONL log in order, tolerating a torn tail.

    A missing file is an empty log.  Shares the line grammar of
    :func:`load_checkpoint` (schema tag, fingerprint, content
    checksum): a torn final line is dropped and flagged, an interior
    bad line is quarantined, and everything intact is returned in
    append order without dedup.
    """
    log = SealedLog()
    try:
        raw = Path(path).read_bytes()
    except OSError:
        return log
    text = raw.decode("utf-8", errors="replace")
    lines = text.split("\n")
    # A well-formed log ends with a newline, so the final split element
    # is empty; anything else is an unterminated (torn) final line.
    unterminated = lines and lines[-1] != ""
    if lines and lines[-1] == "":
        lines = lines[:-1]
    log.total_lines = len(lines)
    for number, line in enumerate(lines, start=1):
        record, reason = _parse_line(line)
        last = number == len(lines)
        if reason:
            if last and (unterminated or record is None):
                log.torn_tail = True
            else:
                fp = record.get("fp") if isinstance(record, dict) else None
                log.quarantined.append(
                    QuarantinedRecord(
                        line=number,
                        reason=reason,
                        fingerprint=fp if isinstance(fp, str) else None,
                    )
                )
            continue
        assert record is not None
        log.records.append(record)
    return log


def load_checkpoint(path: Union[str, Path]) -> LoadedCheckpoint:
    """Parse a checkpoint log, tolerating a torn tail.

    A missing file is an empty checkpoint.  See the module docstring
    for the exact corruption semantics.
    """
    loaded = LoadedCheckpoint()
    log = load_sealed_lines(path)
    loaded.total_lines = log.total_lines
    loaded.quarantined = list(log.quarantined)
    loaded.torn_tail = log.torn_tail
    if log.torn_tail:
        loaded.warnings.append(
            f"dropped torn checkpoint tail at line {log.total_lines} "
            "(crash mid-append); the cell will be recomputed"
        )
    for bad in log.quarantined:
        loaded.warnings.append(
            f"quarantined checkpoint record at line {bad.line} "
            f"({bad.reason}); the cell will be recomputed"
        )
    for record in log.records:
        fp = record["fp"]
        previous = loaded.records.get(fp)
        if previous is None or record.get("status") == "ok" or previous.get("status") != "ok":
            loaded.records[fp] = record
    return loaded


def _intact_prefix_length(raw: bytes) -> int:
    """Byte length of the longest prefix of whole, newline-terminated lines."""
    end = raw.rfind(b"\n")
    return end + 1 if end >= 0 else 0


class CheckpointWriter:
    """Append-only, fsync-per-record writer over a checkpoint log.

    Opening for append first *repairs the tail*: a trailing partial
    line (crash mid-append) is truncated away so the log stays a clean
    sequence of complete records.  Interior lines are never rewritten —
    the log is append-only once a line is terminated.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._repair_tail()
        self._fh: Optional[io.BufferedWriter] = open(self.path, "ab")

    def _repair_tail(self) -> None:
        try:
            raw = self.path.read_bytes()
        except OSError:
            return
        keep = _intact_prefix_length(raw)
        if keep < len(raw):
            with open(self.path, "r+b") as fh:
                fh.truncate(keep)
                fh.flush()
                os.fsync(fh.fileno())

    def append(self, payload: Dict[str, Any]) -> None:
        """Seal, append and fsync one record; durable on return."""
        if self._fh is None:
            raise ValueError("checkpoint writer is closed")
        record = seal_record({"schema": CHECKPOINT_SCHEMA, **payload})
        line = json.dumps(record, separators=(",", ":")) + "\n"
        self._fh.write(line.encode("utf-8"))
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CheckpointWriter":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
