"""Benchmark recording: ``BENCH_<date>.json`` + baseline comparison.

The perf trajectory of this repo is a sequence of ``BENCH_<date>.json``
records, one per recording run.  Each record is a compact distillation
of a pytest-benchmark JSON report — per benchmark the median, IQR, mean,
standard deviation and round count, in seconds — plus an environment
fingerprint (interpreter, platform, CPU count, numpy version, git
commit) so a number is never read without knowing where it was measured.

Regression checking compares the medians of two records benchmark by
benchmark.  Benchmarks are noisy; the comparison is deliberately
tolerant — only a median slowdown beyond ``threshold`` (default 25%)
counts as a regression, and benchmarks present on only one side are
reported as additions/removals, never failures.

The module has two producers:

* :func:`run_quick_suite` shells out to pytest with
  ``--benchmark-json`` and converts the report — what ``repro-mmm
  bench`` and the CI job run.
* :func:`record_from_benchmark_json` converts an existing report — for
  tests and for re-analyzing a report produced elsewhere.
"""

from __future__ import annotations

import datetime as _dt
import json
import os
import platform
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.exceptions import ConfigurationError
from repro.store.atomic import atomic_write_text

#: Schema version of the BENCH_<date>.json record format.
BENCH_SCHEMA = 1

#: Benchmark scales understood by the suite (see benchmarks/conftest.py).
#: ``paper`` sweeps a sparse geometric axis up to the paper's true
#: order-1100 bound — nightly-CI material, not a PR-gate tier.
SCALES = ("quick", "full", "paper")


# ----------------------------------------------------------------------
# Environment fingerprint
# ----------------------------------------------------------------------
def _git_commit(repo_root: Optional[Path] = None) -> Optional[str]:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=repo_root,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


def environment_fingerprint(repo_root: Optional[Path] = None) -> Dict[str, Any]:
    """Where the numbers were measured: interpreter, platform, commit.

    Every field degrades to ``None`` rather than failing — a record from
    a stripped container is still a record.
    """
    try:
        import numpy

        numpy_version: Optional[str] = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dep in CI
        numpy_version = None
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "numpy": numpy_version,
        "git_commit": _git_commit(repo_root),
    }


# ----------------------------------------------------------------------
# Record construction
# ----------------------------------------------------------------------
def record_from_benchmark_json(
    report: Dict[str, Any],
    *,
    scale: str = "quick",
    date: Optional[str] = None,
    environment: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Distill a pytest-benchmark JSON report into a BENCH record.

    ``report`` is the parsed content of a ``--benchmark-json`` file.
    Benchmark names keep their pytest-benchmark fully-qualified form
    (``bench_file.py::bench_name``) so identically-named functions in
    different modules never collide.
    """
    benches = report.get("benchmarks")
    if not isinstance(benches, list):
        raise ConfigurationError(
            "not a pytest-benchmark report: missing 'benchmarks' list"
        )
    entries: Dict[str, Dict[str, Any]] = {}
    for bench in benches:
        stats = bench.get("stats", {})
        name = bench.get("fullname") or bench.get("name")
        if not name or "median" not in stats:
            raise ConfigurationError(
                f"malformed benchmark entry: {bench.get('name', '<unnamed>')!r}"
            )
        entries[name] = {
            "median_s": stats["median"],
            "iqr_s": stats.get("iqr"),
            "mean_s": stats.get("mean"),
            "stddev_s": stats.get("stddev"),
            "rounds": stats.get("rounds"),
        }
    if date is None:
        date = _dt.date.today().isoformat()
    return {
        "schema": BENCH_SCHEMA,
        "date": date,
        "scale": scale,
        "environment": (
            environment if environment is not None else environment_fingerprint()
        ),
        "benchmarks": dict(sorted(entries.items())),
    }


def default_record_path(
    directory: Union[str, Path] = ".", date: Optional[str] = None
) -> Path:
    """``<directory>/BENCH_<date>.json`` for today (or ``date``)."""
    if date is None:
        date = _dt.date.today().isoformat()
    return Path(directory) / f"BENCH_{date}.json"


def write_record(record: Dict[str, Any], path: Union[str, Path]) -> Path:
    """Atomically persist a record (sorted keys, trailing newline)."""
    return atomic_write_text(
        path, json.dumps(record, indent=2, sort_keys=True) + "\n"
    )


def load_record(path: Union[str, Path]) -> Dict[str, Any]:
    """Load a record, validating the schema and shape."""
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict) or "benchmarks" not in data:
        raise ConfigurationError(f"{path}: not a BENCH record (no 'benchmarks')")
    schema = data.get("schema")
    if schema != BENCH_SCHEMA:
        raise ConfigurationError(
            f"{path}: unsupported BENCH schema {schema!r} "
            f"(this build reads schema {BENCH_SCHEMA})"
        )
    return data


# ----------------------------------------------------------------------
# Baseline comparison
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Regression:
    """One benchmark whose median slowed beyond the threshold."""

    name: str
    baseline_median_s: float
    current_median_s: float

    @property
    def ratio(self) -> float:
        """current / baseline median (``> 1`` means slower)."""
        return self.current_median_s / self.baseline_median_s

    def describe(self) -> str:
        return (
            f"{self.name}: median {self.current_median_s * 1e3:.3f} ms "
            f"vs baseline {self.baseline_median_s * 1e3:.3f} ms "
            f"({self.ratio:.2f}x)"
        )


def compare_records(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    *,
    threshold: float = 0.25,
) -> Tuple[List[Regression], List[str], List[str]]:
    """Compare two records' medians with a noise-tolerant threshold.

    Returns ``(regressions, added, removed)``: benchmarks whose median
    slowed by more than ``threshold`` (fractional, 0.25 = 25%), names
    present only in ``current``, and names present only in
    ``baseline``.  Additions and removals are informational — the suite
    evolves — and only regressions should fail a build.

    Records taken at different scales are not comparable — the scale
    changes the swept axes, so every median legitimately moves — and
    comparing them raises :class:`~repro.exceptions.ConfigurationError`
    instead of reporting garbage regressions.
    """
    if threshold < 0:
        raise ConfigurationError(f"threshold must be >= 0, got {threshold}")
    current_scale = current.get("scale")
    baseline_scale = baseline.get("scale")
    if (
        current_scale is not None
        and baseline_scale is not None
        and current_scale != baseline_scale
    ):
        raise ConfigurationError(
            f"cannot compare a {current_scale!r}-scale record against a "
            f"{baseline_scale!r}-scale baseline: scales change the swept "
            "axes, so medians are incommensurable"
        )
    cur = current["benchmarks"]
    base = baseline["benchmarks"]
    regressions: List[Regression] = []
    for name in sorted(set(cur) & set(base)):
        base_median = base[name]["median_s"]
        cur_median = cur[name]["median_s"]
        if base_median <= 0:
            continue
        if cur_median > base_median * (1.0 + threshold):
            regressions.append(Regression(name, base_median, cur_median))
    added = sorted(set(cur) - set(base))
    removed = sorted(set(base) - set(cur))
    return regressions, added, removed


# ----------------------------------------------------------------------
# Suite runner
# ----------------------------------------------------------------------
def run_quick_suite(
    *,
    scale: str = "quick",
    bench_dir: Union[str, Path] = "benchmarks",
    select: Optional[str] = None,
    pytest_args: Sequence[str] = (),
    report_path: Optional[Union[str, Path]] = None,
) -> Dict[str, Any]:
    """Run the benchmark suite and return the distilled BENCH record.

    Shells out to ``pytest <bench_dir> --benchmark-json=<tmp>`` with
    ``REPRO_BENCH_SCALE=<scale>`` in the environment, then converts the
    report via :func:`record_from_benchmark_json`.  ``select`` is passed
    to pytest as ``-k`` to subset the suite; ``report_path`` keeps the
    raw pytest-benchmark JSON next to the record instead of a temp file.
    """
    if scale not in SCALES:
        raise ConfigurationError(
            f"unknown scale {scale!r}; valid scales: {list(SCALES)}"
        )
    bench_dir = Path(bench_dir)
    if not bench_dir.exists():
        raise ConfigurationError(f"benchmark directory not found: {bench_dir}")
    own_report = report_path is None
    if report_path is None:
        report_path = bench_dir / "out" / ".benchmark-report.json"
    report_path = Path(report_path)
    report_path.parent.mkdir(parents=True, exist_ok=True)
    cmd = [
        sys.executable,
        "-m",
        "pytest",
        str(bench_dir),
        "-q",
        # The suite memoizes traces/results across benches, so the old
        # heap grows as it runs; without this, later benches pay for
        # full GC collections scanning that unrelated heap and medians
        # drift with suite position instead of kernel cost.
        "--benchmark-disable-gc",
        f"--benchmark-json={report_path}",
        *pytest_args,
    ]
    if select:
        cmd += ["-k", select]
    env = dict(os.environ, REPRO_BENCH_SCALE=scale)
    proc = subprocess.run(cmd, env=env)
    if proc.returncode != 0:
        raise ConfigurationError(
            f"benchmark suite failed (pytest exit {proc.returncode})"
        )
    report = json.loads(report_path.read_text())
    if own_report:
        report_path.unlink(missing_ok=True)
    return record_from_benchmark_json(report, scale=scale)
