"""Performance trajectory recording and regression checking.

:mod:`repro.bench.record` turns pytest-benchmark JSON into compact,
diff-friendly ``BENCH_<date>.json`` records (median/IQR per benchmark
plus an environment fingerprint) and compares records against a
committed baseline with a noise-tolerant threshold.  The ``repro-mmm
bench`` CLI subcommand and the CI ``benchmarks`` job are thin wrappers
around this module, so developers and CI run the identical entrypoint.
"""

from repro.bench.record import (
    BENCH_SCHEMA,
    Regression,
    compare_records,
    default_record_path,
    environment_fingerprint,
    load_record,
    record_from_benchmark_json,
    run_quick_suite,
    write_record,
)

__all__ = [
    "BENCH_SCHEMA",
    "Regression",
    "compare_records",
    "default_record_path",
    "environment_fingerprint",
    "load_record",
    "record_from_benchmark_json",
    "run_quick_suite",
    "write_record",
]
