"""Closed-form miss counts for every algorithm (paper §3 + our §4.1 baselines).

For each algorithm we give the predicted shared-cache misses ``MS`` and
(max per-core) distributed-cache misses ``MD`` under the IDEAL model.
The three Maximum-Reuse formulas are the paper's; the Outer Product and
Equal formulas are our derivations for the explicit IDEAL schedules we
gave those baselines (the paper only plots their simulated values).

Every formula is *exact* — integer-for-integer equal to what the IDEAL
simulator counts — when the algorithm's tile sides divide the matrix
dimensions (see :func:`divisibility_ok`); tests assert that equality.
With ragged tiles the formulas remain asymptotically correct.

Formulas (square grid ``s = √p``; see the per-algorithm docstrings for
derivations):

=================== ============================== ================================
algorithm           MS                             MD (per core)
=================== ============================== ================================
shared-opt          ``mn + 2mnz/λ``                ``mnz/λ + 2mnz/p``
distributed-opt     ``mn + 2mnz/(µ√p)``            ``mn/p + 2mnz/(µp)``
tradeoff            ``mn + 2mnz/α``                ``mnz/(pβ) + 2mnz/(pµ)`` †
outer-product       ``z(√p·m + 2mn)``              ``z(m/√p + 2mn/p)``
shared-equal        ``mn + 2mnz/t``                ``mnz/(pt) + 2mnz/p``
distributed-equal   ``mn + (1+p)mnz/(pt)``         ``mn/p + 2mnz/(pt)``
=================== ============================== ================================

† In the degenerate case ``α = √p·µ`` the ``C`` term drops to ``mn/p``
(the Distributed Opt. count), as the paper's §3.3 remark notes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict

from repro.algorithms.base import MatmulAlgorithm
from repro.exceptions import ConfigurationError
from repro.model.machine import MulticoreMachine


@dataclass(frozen=True)
class PredictedCounts:
    """Predicted ``MS`` and ``MD`` (block units) for one algorithm run."""

    ms: float
    md: float

    def tdata(self, machine: MulticoreMachine) -> float:
        """Predicted data access time ``MS/σS + MD/σD``."""
        return self.ms / machine.sigma_s + self.md / machine.sigma_d

    def ccr_s(self, m: int, n: int, z: int) -> float:
        """Shared CCR: ``MS / (mnz)``."""
        return self.ms / (m * n * z)

    def ccr_d(self, m: int, n: int, z: int, p: int) -> float:
        """Distributed CCR: ``MD / (mnz / p)``."""
        return self.md / (m * n * z / p)


def _shared_opt(alg: MatmulAlgorithm) -> PredictedCounts:
    m, n, z, p = alg.m, alg.n, alg.z, alg.machine.p
    lam = alg.lam  # type: ignore[attr-defined]
    ms = m * n + 2 * m * n * z / lam
    # Per (tile, k, i): one element of A plus 2·⌈λ/p⌉ B/C loads on the
    # busiest core (split_evenly front-loads the remainder).
    md = (m * n * z / lam) * (1 + 2 * math.ceil(lam / p))
    return PredictedCounts(ms=ms, md=md)


def _distributed_opt(alg: MatmulAlgorithm) -> PredictedCounts:
    m, n, z, p = alg.m, alg.n, alg.z, alg.machine.p
    mu = alg.mu  # type: ignore[attr-defined]
    s = math.isqrt(p)
    ms = m * n + 2 * m * n * z / (mu * s)
    md = m * n / p + 2 * m * n * z / (mu * p)
    return PredictedCounts(ms=ms, md=md)


def _tradeoff(alg: MatmulAlgorithm) -> PredictedCounts:
    m, n, z, p = alg.m, alg.n, alg.z, alg.machine.p
    alpha = alg.alpha  # type: ignore[attr-defined]
    beta = alg.beta  # type: ignore[attr-defined]
    mu = alg.mu  # type: ignore[attr-defined]
    ms = m * n + 2 * m * n * z / alpha
    if alg.single_subblock:  # type: ignore[attr-defined]
        c_term = m * n / p
    else:
        c_term = m * n * math.ceil(z / beta) / p
    md = c_term + 2 * m * n * z / (p * mu)
    return PredictedCounts(ms=ms, md=md)


def _outer_product(alg: MatmulAlgorithm) -> PredictedCounts:
    m, n, z, p = alg.m, alg.n, alg.z, alg.machine.p
    s = math.isqrt(p)
    ms = z * (s * m + 2 * m * n)
    md = z * (math.ceil(m / s) * (1 + 2 * math.ceil(n / s)))
    return PredictedCounts(ms=ms, md=md)


def _shared_equal(alg: MatmulAlgorithm) -> PredictedCounts:
    m, n, z, p = alg.m, alg.n, alg.z, alg.machine.p
    t = alg.t  # type: ignore[attr-defined]
    ms = m * n + 2 * m * n * z / t
    md = (m * n / (t * t)) * math.ceil(t / p) * z * (1 + 2 * t)
    return PredictedCounts(ms=ms, md=md)


def _distributed_equal(alg: MatmulAlgorithm) -> PredictedCounts:
    m, n, z, p = alg.m, alg.n, alg.z, alg.machine.p
    t = alg.t  # type: ignore[attr-defined]
    ms = m * n + (1 + p) * m * n * z / (p * t)
    md = m * n / p + 2 * m * n * z / (p * t)
    return PredictedCounts(ms=ms, md=md)


FORMULAS: Dict[str, Callable[[MatmulAlgorithm], PredictedCounts]] = {
    "shared-opt": _shared_opt,
    "distributed-opt": _distributed_opt,
    "tradeoff": _tradeoff,
    "outer-product": _outer_product,
    "shared-equal": _shared_equal,
    "distributed-equal": _distributed_equal,
    # Cannon's skewing permutes the (core, k) traversal order but not
    # the per-core streaming volumes, so its counts equal Outer Product's.
    "cannon": _outer_product,
}


def predict(alg: MatmulAlgorithm) -> PredictedCounts:
    """Predicted counts for an algorithm instance (its actual parameters)."""
    try:
        formula = FORMULAS[alg.name]
    except KeyError:
        raise ConfigurationError(f"no closed form registered for {alg.name!r}") from None
    return formula(alg)


def predicted_ms(alg: MatmulAlgorithm) -> float:
    """Predicted shared-cache misses for an algorithm instance."""
    return predict(alg).ms


def predicted_md(alg: MatmulAlgorithm) -> float:
    """Predicted max per-core distributed misses for an algorithm instance."""
    return predict(alg).md


def divisibility_ok(alg: MatmulAlgorithm) -> bool:
    """Whether the exactness conditions of the closed forms hold.

    When this returns ``True``, tests require the IDEAL simulator's
    counts to equal the formulas exactly (up to float representation).
    """
    m, n, z, p = alg.m, alg.n, alg.z, alg.machine.p
    s = math.isqrt(p)
    name = alg.name
    if name == "shared-opt":
        lam = alg.lam  # type: ignore[attr-defined]
        return m % lam == 0 and n % lam == 0
    if name == "distributed-opt":
        tile = s * alg.mu  # type: ignore[attr-defined]
        return m % tile == 0 and n % tile == 0
    if name == "tradeoff":
        alpha = alg.alpha  # type: ignore[attr-defined]
        return m % alpha == 0 and n % alpha == 0
    if name == "outer-product":
        return m % s == 0 and n % s == 0
    if name == "cannon":
        return m % s == 0 and n % s == 0 and z % s == 0
    if name == "shared-equal":
        t = alg.t  # type: ignore[attr-defined]
        return m % t == 0 and n % t == 0 and z % t == 0
    if name == "distributed-equal":
        t = alg.t  # type: ignore[attr-defined]
        return (
            m % t == 0
            and n % t == 0
            and z % t == 0
            and (n // t) % p == 0
        )
    return False
