"""Predicted-vs-simulated comparison reports.

Turns finished experiments into the accuracy tables the reproduction
leans on: closed-form prediction next to simulated count, with the
ratio and the paper's lower bound.  Used by tests, the CLI examples and
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Sequence

from repro.analysis.formulas import PredictedCounts
from repro.model.bounds import (
    distributed_misses_lower_bound,
    shared_misses_lower_bound,
)
from repro.model.machine import MulticoreMachine

if TYPE_CHECKING:  # avoid a circular import at runtime: analysis is
    # imported by the algorithms, which the sim package also imports.
    from repro.sim.results import ExperimentResult


def tdata_from_counts(ms: float, md: float, machine: MulticoreMachine) -> float:
    """Data access time ``MS/σS + MD/σD`` of recorded (or counted) misses.

    Routed through :class:`~repro.analysis.formulas.PredictedCounts` so
    every consumer — accuracy tables, the cost-conformance analyzer, the
    CLI — prices counts through one code path.
    """
    return PredictedCounts(ms=ms, md=md).tdata(machine)


def accuracy_row(result: "ExperimentResult") -> Dict[str, Any]:
    """One experiment's prediction accuracy as a flat row."""
    row: Dict[str, Any] = {
        "algorithm": result.algorithm,
        "setting": result.setting,
        "order": result.m,
        "MS_sim": result.ms,
        "MD_sim": result.md,
    }
    if result.predicted is not None:
        row["MS_pred"] = round(result.predicted.ms, 1)
        row["MD_pred"] = round(result.predicted.md, 1)
        row["MS_ratio"] = (
            round(result.ms / result.predicted.ms, 3) if result.predicted.ms else None
        )
        row["MD_ratio"] = (
            round(result.md / result.predicted.md, 3) if result.predicted.md else None
        )
    return row


def accuracy_table(results: Iterable["ExperimentResult"]) -> List[Dict[str, Any]]:
    """Prediction-accuracy rows for a batch of experiments."""
    return [accuracy_row(r) for r in results]


def bound_gap_row(result: "ExperimentResult") -> Dict[str, Any]:
    """Distance of one experiment's counts from the §2.3 lower bounds."""
    machine = result.machine
    ms_bound = shared_misses_lower_bound(machine, result.m, result.n, result.z)
    md_bound = distributed_misses_lower_bound(machine, result.m, result.n, result.z)
    return {
        "algorithm": result.algorithm,
        "setting": result.setting,
        "order": result.m,
        "MS/bound": round(result.ms / ms_bound, 2),
        "MD/bound": round(result.md / md_bound, 2),
        "Tdata": round(result.tdata, 1),
    }


def bound_gap_table(results: Iterable["ExperimentResult"]) -> List[Dict[str, Any]]:
    """Bound-gap rows for a batch of experiments."""
    return [bound_gap_row(r) for r in results]


def ranking(
    results: Sequence["ExperimentResult"], metric: str = "tdata"
) -> List["ExperimentResult"]:
    """Sort experiments by a metric (``"ms"``, ``"md"``, ``"tdata"``)."""
    return sorted(results, key=lambda r: getattr(r, metric))


def winner(
    results: Sequence["ExperimentResult"], metric: str = "tdata"
) -> Optional["ExperimentResult"]:
    """The best experiment under a metric (None for an empty batch)."""
    ordered = ranking(results, metric)
    return ordered[0] if ordered else None
