"""Analytical side of the reproduction.

* :mod:`repro.analysis.formulas` — the closed-form miss counts of §3
  for the three Maximum-Reuse variants, plus our derivations for the
  reference algorithms.
* :mod:`repro.analysis.tradeoff_opt` — the continuous optimization of
  the Tradeoff parameters (§3.3): objective ``F(α)``, its derivative,
  the closed-form root ``α_num`` and the final clamped ``(α, β)``.
* :mod:`repro.analysis.report` — predicted-vs-simulated comparison
  tables.
"""

from repro.analysis.formulas import (
    PredictedCounts,
    predict,
    predicted_ms,
    predicted_md,
    FORMULAS,
)
from repro.analysis.tradeoff_opt import (
    objective,
    objective_derivative,
    alpha_num,
    optimal_parameters,
)
from repro.analysis.report import (
    accuracy_table,
    bound_gap_table,
    ranking,
    winner,
)

__all__ = [
    "accuracy_table",
    "bound_gap_table",
    "ranking",
    "winner",
    "PredictedCounts",
    "predict",
    "predicted_ms",
    "predicted_md",
    "FORMULAS",
    "objective",
    "objective_derivative",
    "alpha_num",
    "optimal_parameters",
]
