"""Continuous optimization of the Tradeoff parameters (paper §3.3).

For large matrices, choosing the Tradeoff tile side ``α`` amounts to
minimizing

    F(α) = 2 / (σS · α)  +  2α / (p · σD · (CS − α²)),

the per-multiply-add data time once ``β`` is expressed through the
capacity constraint ``β ≤ (CS − α²) / (2α)`` and the ``µ`` term (which
does not depend on ``α``) is dropped.  Setting ``F'(α) = 0`` yields the
paper's closed form

    α_num = sqrt( CS · (1 + 2ρ − sqrt(1 + 8ρ)) / (2(ρ − 1)) ),
    ρ = p σD / σS,

with the removable singularity ``α_num = sqrt(CS / 3)`` at ``ρ = 1``.
The implemented parameters are then

    α = min(α_max, max(√p·µ, α_num)),   α_max = sqrt(CS + 1) − 1,
    β = max(⌊(CS − α²) / (2α)⌋, 1).

Limiting regimes (paper §3.3, sanity-checked by tests):

* ``σD ≫ σS`` (ρ → ∞): ``α_num → sqrt(CS)``, i.e. ``α = α_max`` and
  ``β = 1`` — Tradeoff degenerates to Shared Opt.;
* ``σS ≫ σD`` (ρ → 0): ``α_num`` → imaginary/zero — the max clamp gives
  ``α = √p·µ``, Tradeoff degenerates to Distributed Opt.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.exceptions import ParameterError
from repro.model.machine import MulticoreMachine
from repro.model.params import (
    TradeoffParameters,
    alpha_max,
    beta_for_alpha,
    mu_param,
)

#: ρ values this close to 1 take the removable-singularity branch.
_RHO_EPS = 1e-9


def objective(alpha: float, machine: MulticoreMachine) -> float:
    """The reduced objective ``F(α)`` (per-multiply-add data time)."""
    cs, p = machine.cs, machine.p
    if not 0.0 < alpha < math.sqrt(cs):
        raise ParameterError(f"alpha must lie in (0, sqrt(CS)), got {alpha}")
    return 2.0 / (machine.sigma_s * alpha) + 2.0 * alpha / (
        p * machine.sigma_d * (cs - alpha * alpha)
    )


def objective_derivative(alpha: float, machine: MulticoreMachine) -> float:
    """``F'(α)``; the optimizer's root (used by property tests)."""
    cs, p = machine.cs, machine.p
    if not 0.0 < alpha < math.sqrt(cs):
        raise ParameterError(f"alpha must lie in (0, sqrt(CS)), got {alpha}")
    return 2.0 * (cs + alpha * alpha) / (
        p * machine.sigma_d * (cs - alpha * alpha) ** 2
    ) - 2.0 / (machine.sigma_s * alpha * alpha)


def alpha_num(machine: MulticoreMachine) -> float:
    """Closed-form unconstrained minimizer of ``F`` (paper's ``α_num``)."""
    cs = machine.cs
    rho = machine.p * machine.sigma_d / machine.sigma_s
    if abs(rho - 1.0) < _RHO_EPS:
        return math.sqrt(cs / 3.0)
    inner = (1.0 + 2.0 * rho - math.sqrt(1.0 + 8.0 * rho)) / (2.0 * (rho - 1.0))
    # ``inner`` is provably in (0, 1) for every ρ > 0, but guard against
    # floating-point slop near the singularity.
    inner = min(max(inner, 0.0), 1.0)
    return math.sqrt(cs * inner)


def optimal_parameters(
    machine: MulticoreMachine, mu: int | None = None
) -> TradeoffParameters:
    """The clamped integer ``(α, β)`` the Tradeoff algorithm runs with.

    ``α`` is rounded *down* to a multiple of ``√p·µ`` (so the C tile
    tiles evenly over the core grid in ``µ×µ`` sub-blocks) and shrunk
    until ``α² + 2α ≤ CS`` holds, guaranteeing a feasible ``β ≥ 1``.

    Raises
    ------
    ParameterError
        If the machine cannot host even the minimal ``α = √p·µ`` tile
        with ``µ`` reduced to 1 (then the shared cache is genuinely too
        small relative to ``p``, which :class:`MulticoreMachine` should
        already have rejected).
    """
    side = machine.grid_side  # raises for non-square p
    if mu is None:
        mu = mu_param(machine.cd)
    target = alpha_num(machine)
    a_hi = alpha_max(machine.cs)
    while mu >= 1:
        unit = side * mu
        alpha = max(unit, int(min(a_hi, max(unit, target))) // unit * unit)
        while alpha > unit and alpha * (alpha + 2) > machine.cs:
            alpha -= unit
        if alpha * (alpha + 2) <= machine.cs:
            return TradeoffParameters(
                alpha=alpha,
                beta=beta_for_alpha(machine.cs, alpha),
                mu=mu,
                alpha_num=target,
            )
        mu -= 1
    raise ParameterError(
        f"no feasible tradeoff tile for p={machine.p}, CS={machine.cs}, "
        f"CD={machine.cd}"
    )
