"""Replacement-policy gap analysis: LRU vs OPT vs compulsory traffic.

How much of an algorithm's LRU miss count is *inherent* (compulsory,
or unavoidable even by Belady's optimal replacement) and how much is
the LRU heuristic's fault?  This module records an algorithm's
reference stream once (:class:`~repro.sim.contexts.RecordingContext`)
and answers with exact trace analyses:

* per-core **distributed-cache** gaps — each private cache sees exactly
  its core's subtrace, so stack-distance LRU counts and OPT counts are
  exact for the real two-level system;
* **shared-cache-alone** gaps — the full interleaved trace against a
  single cache of ``CS`` blocks.  (In the two-level system the shared
  cache only sees distributed *misses*; the single-cache view is the
  upper-level limit and is how the paper's single-processor lower bound
  is phrased.)

Used by the ``analyze`` CLI command and the policy-gap bench.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.algorithms.registry import get_algorithm
from repro.cache.opt import opt_misses
from repro.cache.stackdist import distance_histogram, misses_for_capacity
from repro.model.machine import MulticoreMachine
from repro.sim.contexts import RecordingContext


def record_trace(
    algorithm: str,
    machine: MulticoreMachine,
    m: int,
    n: int,
    z: int,
    **params: Any,
) -> RecordingContext:
    """Run a schedule once, recording its reference stream."""
    alg = get_algorithm(algorithm)(machine, m, n, z, **params)
    ctx = RecordingContext(machine.p)
    alg.run(ctx)
    return ctx


def replacement_gap(
    algorithm: str,
    machine: MulticoreMachine,
    m: int,
    n: int,
    z: int,
    **params: Any,
) -> List[Dict[str, Any]]:
    """LRU / OPT / compulsory miss counts per cache of the hierarchy.

    Returns one row per distributed cache plus one for the shared cache
    viewed alone.  ``lru`` comes from the exact stack-distance
    histogram, ``opt`` from Belady's algorithm, ``cold`` is the number
    of distinct blocks (compulsory misses no policy avoids).
    """
    ctx = record_trace(algorithm, machine, m, n, z, **params)
    rows: List[Dict[str, Any]] = []
    for core, subtrace in enumerate(ctx.trace.per_core()):
        keys = [key for _, key, _ in subtrace]
        hist = distance_histogram(keys)
        rows.append(
            {
                "cache": f"distributed[{core}]",
                "capacity": machine.cd,
                "references": len(keys),
                "lru": misses_for_capacity(hist, machine.cd),
                "opt": opt_misses(keys, machine.cd),
                "cold": len(set(keys)),
            }
        )
    keys = ctx.keys()
    hist = distance_histogram(keys)
    rows.append(
        {
            "cache": "shared (alone)",
            "capacity": machine.cs,
            "references": len(keys),
            "lru": misses_for_capacity(hist, machine.cs),
            "opt": opt_misses(keys, machine.cs),
            "cold": len(set(keys)),
        }
    )
    return rows


def miss_curve_rows(
    algorithm: str,
    machine: MulticoreMachine,
    m: int,
    n: int,
    z: int,
    capacities: Optional[List[int]] = None,
    **params: Any,
) -> List[Dict[str, Any]]:
    """LRU and OPT miss counts of the full trace across capacities.

    One stack-distance pass yields every LRU point; OPT is re-simulated
    per capacity.  Default capacities: powers of two up to ``CS``.
    """
    ctx = record_trace(algorithm, machine, m, n, z, **params)
    keys = ctx.keys()
    hist = distance_histogram(keys)
    if capacities is None:
        capacities: List[int] = []
        c = 4
        while c < machine.cs:
            capacities.append(c)
            c *= 2
        capacities.append(machine.cs)
    return [
        {
            "capacity": capacity,
            "lru": misses_for_capacity(hist, capacity),
            "opt": opt_misses(keys, capacity),
        }
        for capacity in capacities
    ]
