"""Lease-based coordinator/worker sweep fabric.

``repro.fabric`` promotes the fault tolerance of the in-process pool
engine (:mod:`repro.sim.parallel`) across process — and eventually
machine — boundaries:

* :mod:`repro.fabric.protocol` — line-delimited, checksummed JSON
  messages over stdlib TCP sockets (one short-lived connection per
  request, so a dropped link can never wedge a peer);
* :mod:`repro.fabric.leases` — monotonic-deadline leases: a worker
  owns a cell only while its heartbeats keep the lease alive;
* :mod:`repro.fabric.journal` — the coordinator's append-only,
  checksummed event journal (grants, expiries, retries, terminals)
  reusing the checkpoint-log primitives;
* :mod:`repro.fabric.coordinator` — the durable cell queue: serves
  leases, re-queues expired ones within the retry budget, checkpoints
  every finalized cell, and survives SIGKILL + restart with no lost or
  duplicated cells;
* :mod:`repro.fabric.worker` — lease → heartbeat → compute → submit;
  on coordinator loss it finishes the in-flight cell, salvages the
  result to a local checkpoint and exits with a distinct code;
* :mod:`repro.fabric.local` — laptop mode: one coordinator thread plus
  N subprocess workers (with respawn), as driven by
  ``repro-mmm fabric serve --local N``.

See ``docs/FABRIC.md`` for the protocol reference, the lease state
machine and the failure-mode table.
"""

from repro.fabric.coordinator import Coordinator, fabric_order_sweep
from repro.fabric.journal import FabricJournal, load_journal
from repro.fabric.leases import Lease, LeaseTable
from repro.fabric.local import run_local_fabric
from repro.fabric.worker import (
    EXIT_COORDINATOR_LOST,
    EXIT_DRAINED,
    FabricWorker,
)

__all__ = [
    "Coordinator",
    "EXIT_COORDINATOR_LOST",
    "EXIT_DRAINED",
    "FabricJournal",
    "FabricWorker",
    "Lease",
    "LeaseTable",
    "fabric_order_sweep",
    "load_journal",
    "run_local_fabric",
]
