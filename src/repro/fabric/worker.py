"""The fabric worker: lease → heartbeat → compute → submit.

A worker is **stateless**: every lease grant carries the complete cell
specification (algorithm, setting, kwargs, serialized machine,
dimensions), so a worker can join, die and be replaced at any point
without configuration handshakes.  Its loop is deliberately boring:

1. ask for a lease (``lease``);
2. on ``grant``: start a heartbeat thread renewing the lease every
   third of the lease window, run the cell, stop heartbeating and
   submit the result;
3. on ``wait``: sleep the hinted delay and ask again;
4. on ``drained``: exit 0 — the sweep is complete.

**Graceful degradation on coordinator loss** is the contract the exit
codes encode: once a cell is in flight, a dead coordinator does not
waste the work.  The worker finishes the computation, retries the
submission briefly, then *salvages* the finished result to a local
checkpoint-format log (``scratch``) and exits with
:data:`EXIT_COORDINATOR_LOST` (75, the sysexits ``EX_TEMPFAIL``) so a
supervisor can tell "queue drained" from "coordinator gone".  The
salvage log uses the exact checkpoint payload shape, so its records
can be audited — or appended into a run's checkpoint log — with the
standard tools.

Heartbeat failures are soft (one dropped connection must not abandon a
computation the lease may still cover); only a failed *submission*
declares the coordinator lost.  An injected ``stall`` fault
(:func:`repro.sim.faults.stalls`) suppresses the heartbeat thread
entirely, which is exactly how the lease-expiry path is exercised
end-to-end in tests.
"""

from __future__ import annotations

import os
import threading
import time
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from repro.exceptions import ProtocolError
from repro.sim.faults import FaultPlan, fire, stalls
from repro.sim.retrypolicy import is_retryable
from repro.sim.runner import run_experiment
from repro.store.checkpoint import CheckpointWriter
from repro.store.serde import machine_from_dict, result_to_dict
from repro.fabric.protocol import request

#: The coordinator reported the queue drained: normal completion.
EXIT_DRAINED = 0

#: The coordinator became unreachable: in-flight work was salvaged to
#: the local scratch log and the worker bowed out (sysexits EX_TEMPFAIL).
EXIT_COORDINATOR_LOST = 75

#: Submission attempts before declaring the coordinator lost.
_SUBMIT_TRIES = 3


class FabricWorker:
    """One worker process's client loop against a coordinator."""

    def __init__(
        self,
        address: Tuple[str, int],
        *,
        worker_id: Optional[str] = None,
        fault_plan: Optional[FaultPlan] = None,
        scratch: Optional[Union[str, Path]] = None,
        connect_grace_s: float = 10.0,
        request_timeout_s: float = 10.0,
    ) -> None:
        self.address = address
        self.worker_id = worker_id or f"w{os.getpid()}"
        self.fault_plan = fault_plan
        self.scratch = Path(scratch) if scratch is not None else None
        self.connect_grace_s = connect_grace_s
        self.request_timeout_s = request_timeout_s
        #: Whether any exchange with the coordinator ever succeeded —
        #: before that, connection failures are startup races (the
        #: coordinator may still be binding its socket), not loss.
        self._ever_connected = False

    # -- plumbing -------------------------------------------------------
    def _request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        reply = request(self.address, payload, timeout=self.request_timeout_s)
        self._ever_connected = True
        return reply

    def _lease_request(self) -> Optional[Dict[str, Any]]:
        """Ask for a lease, absorbing startup races; ``None`` = lost."""
        deadline = time.monotonic() + self.connect_grace_s
        while True:
            try:
                return self._request({"type": "lease", "worker": self.worker_id})
            except (OSError, ProtocolError):
                if self._ever_connected or time.monotonic() >= deadline:
                    return None
                time.sleep(0.2)

    def _heartbeat_loop(self, fp: str, stop: threading.Event, lease_s: float) -> None:
        period = max(lease_s / 3.0, 0.05)
        while not stop.wait(period):
            try:
                self._request(
                    {"type": "heartbeat", "worker": self.worker_id, "fp": fp}
                )
            except (OSError, ProtocolError):
                # Soft failure: the next beat may get through, and the
                # lease window usually covers a dropped beat or two.
                continue

    def _configure_trace_tier(self, tier: Any) -> None:
        """Adopt the coordinator's trace tier when the run dir is visible.

        Local workers share the coordinator's filesystem and memmap one
        on-disk compiled trace per schedule instead of recompiling per
        process; a remote worker (no such run dir) ignores the hint.
        """
        from repro.cache import replay as replay_engine

        if not isinstance(tier, str) or not tier:
            return
        if Path(tier).parent.is_dir():
            replay_engine.configure_trace_tier(tier)

    # -- cell execution -------------------------------------------------
    def _execute(self, grant: Dict[str, Any]) -> Dict[str, Any]:
        """Run one granted cell; returns the ``result`` message to submit."""
        cell = grant["cell"]
        fp = grant["fp"]
        attempt = int(grant["attempt"])
        label = cell["label"]
        index = int(cell["index"])
        spec = self.fault_plan.get((label, index)) if self.fault_plan else None
        suppress_heartbeats = spec is not None and stalls(spec, attempt)
        stop = threading.Event()
        beat: Optional[threading.Thread] = None
        if not suppress_heartbeats:
            beat = threading.Thread(
                target=self._heartbeat_loop,
                args=(fp, stop, float(grant.get("lease_s", 15.0))),
                name=f"heartbeat-{self.worker_id}",
                daemon=True,
            )
            beat.start()
        message: Dict[str, Any] = {
            "type": "result",
            "worker": self.worker_id,
            "fp": fp,
            "attempt": attempt,
            "pid": os.getpid(),
            "cell": {"label": label, "index": index, "x": cell["x"]},
        }
        start = time.perf_counter()
        try:
            if spec is not None:
                fire(spec, attempt)
            self._configure_trace_tier(grant.get("trace_tier"))
            machine = machine_from_dict(cell["machine"])
            result = run_experiment(
                cell["algorithm"],
                machine,
                int(cell["m"]),
                int(cell["n"]),
                int(cell["z"]),
                cell["setting"],
                **dict(cell["kwargs"]),
            )
            result.attempts = attempt
            message["ok"] = True
            message["result"] = result_to_dict(result)
        except Exception as exc:  # noqa: BLE001 — cell isolation is the point
            message["ok"] = False
            message["error_type"] = type(exc).__name__
            message["error"] = str(exc)
            message["retryable"] = is_retryable(exc)
        finally:
            stop.set()
            if beat is not None:
                beat.join(timeout=2.0)
        message["wall_s"] = round(time.perf_counter() - start, 6)
        return message

    def _submit(self, message: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        """Deliver one result; ``None`` when the coordinator is gone."""
        for attempt in range(_SUBMIT_TRIES):
            try:
                return self._request(message)
            except (OSError, ProtocolError):
                if attempt + 1 < _SUBMIT_TRIES:
                    time.sleep(0.2 * (attempt + 1))
        return None

    def _salvage(self, message: Dict[str, Any]) -> Optional[Path]:
        """Flush an undeliverable result to the local scratch log."""
        if self.scratch is None:
            return None
        path = self.scratch / f"salvage-{self.worker_id}.jsonl"
        payload: Dict[str, Any] = {
            "fp": message["fp"],
            "label": message["cell"]["label"],
            "index": message["cell"]["index"],
            "x": message["cell"]["x"],
            "status": "ok" if message.get("ok") else "failed",
            "attempts": message["attempt"],
            "wall_s": message.get("wall_s", 0.0),
        }
        if message.get("ok"):
            payload["result"] = message["result"]
        else:
            payload["error_type"] = message.get("error_type")
            payload["error"] = message.get("error")
        with CheckpointWriter(path) as writer:
            writer.append(payload)
        return path

    # -- main loop ------------------------------------------------------
    def run(self) -> int:
        """Serve until the queue drains (0) or the coordinator is lost (75)."""
        while True:
            reply = self._lease_request()
            if reply is None:
                return EXIT_COORDINATOR_LOST
            kind = reply.get("type")
            if kind == "drained":
                return EXIT_DRAINED
            if kind == "wait":
                time.sleep(float(reply.get("delay_s", 0.5)))
                continue
            if kind != "grant":
                # A coordinator speaking another dialect is as gone as
                # a dead one; nothing is in flight, nothing to salvage.
                return EXIT_COORDINATOR_LOST
            message = self._execute(reply)
            accepted = self._submit(message)
            if accepted is None:
                self._salvage(message)
                return EXIT_COORDINATOR_LOST
            # The reply to the final result says the queue is empty:
            # exit drained now instead of racing the coordinator's
            # shutdown with one more lease request (which would look
            # like a lost coordinator).
            if accepted.get("remaining") == 0:
                return EXIT_DRAINED
