"""Fabric wire protocol: one checksummed JSON object per line.

The coordinator and its workers speak the simplest protocol that can
survive rough weather: every message is a single JSON object on a
single ``\\n``-terminated line, sealed with the same SHA-256 content
checksum the checkpoint log uses (:func:`repro.store.seal_record`), and
every exchange is **one request, one reply, one connection**.  A
connection that drops mid-exchange therefore loses at most one message
whose sender will retry or degrade — there is no session state to
corrupt, no half-open stream to time out, and the coordinator's
accept loop can be threaded trivially.

Message vocabulary (see ``docs/FABRIC.md`` for the full field tables):

==============  =======================  ==================================
direction       request ``type``         reply ``type``
==============  =======================  ==================================
worker → coord  ``lease``                ``grant`` | ``wait`` | ``drained``
worker → coord  ``heartbeat``            ``ack``
worker → coord  ``result``               ``accepted`` | ``duplicate``
any → coord     ``status``               ``status``
(error reply)                            ``error``
==============  =======================  ==================================

Every message carries ``v`` (protocol version) and ``sum`` (content
checksum); :func:`decode_line` rejects anything else with
:class:`~repro.exceptions.ProtocolError` — a corrupt or truncated
message must never be half-understood.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, Tuple

from repro.exceptions import ProtocolError
from repro.store.checkpoint import record_intact, seal_record

#: Protocol version; bump on incompatible message-shape changes.
PROTOCOL_VERSION = 1

#: Upper bound on one encoded message.  A grant carrying a full cell
#: spec is a few KiB; anything near this bound is garbage or abuse.
MAX_LINE_BYTES = 1 << 22  # 4 MiB

#: Default per-request socket timeout.  Requests are tiny; a peer that
#: cannot turn one around in this window is treated as unreachable.
REQUEST_TIMEOUT_S = 10.0


def encode_line(payload: Dict[str, Any]) -> bytes:
    """Seal ``payload`` (version + checksum) and frame it as one line."""
    sealed = seal_record({"v": PROTOCOL_VERSION, **payload})
    line = json.dumps(sealed, separators=(",", ":")) + "\n"
    data = line.encode("utf-8")
    if len(data) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"message of {len(data)} bytes exceeds the {MAX_LINE_BYTES}-byte frame limit"
        )
    return data


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse and verify one received line; raises :class:`ProtocolError`."""
    if not line.endswith(b"\n"):
        raise ProtocolError(
            "unterminated message (peer closed mid-line or frame too long)"
        )
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"message is not valid JSON: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError("message is not a JSON object")
    if message.get("v") != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {message.get('v')!r}; "
            f"expected {PROTOCOL_VERSION}"
        )
    if not record_intact(message):
        raise ProtocolError("message checksum mismatch (corrupt frame)")
    if not isinstance(message.get("type"), str):
        raise ProtocolError("message has no type")
    return message


def read_message(fh: Any) -> Dict[str, Any]:
    """Read and decode one framed message from a binary file object."""
    line = fh.readline(MAX_LINE_BYTES + 1)
    if not line:
        raise ProtocolError("connection closed before a message arrived")
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"message exceeds the {MAX_LINE_BYTES}-byte frame limit")
    result: Dict[str, Any] = decode_line(line)
    return result


def request(
    address: Tuple[str, int],
    payload: Dict[str, Any],
    *,
    timeout: float = REQUEST_TIMEOUT_S,
) -> Dict[str, Any]:
    """One round trip: connect, send ``payload``, read the reply, close.

    Raises ``OSError`` (refused/reset/timeout — the peer is
    unreachable) or :class:`~repro.exceptions.ProtocolError` (the peer
    replied garbage).  Callers decide which of those to survive.
    """
    with socket.create_connection(address, timeout=timeout) as sock:
        sock.sendall(encode_line(payload))
        with sock.makefile("rb") as fh:
            reply = read_message(fh)
    if reply.get("type") == "error":
        raise ProtocolError(f"peer rejected request: {reply.get('reason')!r}")
    return reply


def error_reply(reason: str) -> Dict[str, Any]:
    """The coordinator's standard rejection of a bad request."""
    return {"type": "error", "reason": reason}
