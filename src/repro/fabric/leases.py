"""Monotonic-deadline leases: who owns which cell, and for how long.

A lease is the fabric's unit of custody: the coordinator grants a cell
to exactly one worker for ``lease_s`` seconds, and every heartbeat
renews the full window.  All lease arithmetic runs on an injected
clock defaulting to :func:`time.monotonic` — never wall-clock time —
so an NTP step, a DST change or a suspended laptop cannot expire (or
immortalize) a lease; the determinism rules enforce this (the fabric
modules are on the wall-clock-ban scope of ``repro-mmm check --lint``,
and a test asserts zero findings).

Boundary semantics: a lease is live while ``clock() <= deadline`` —
renewal *exactly at* the deadline succeeds.  Expiry is detected by the
coordinator's periodic sweep (:meth:`LeaseTable.pop_expired`), so a
stalled worker's cell returns to the queue within one lease period.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.exceptions import ConfigurationError


@dataclass
class Lease:
    """One cell leased to one worker until a monotonic deadline."""

    key: Tuple[str, int]
    fp: str
    worker: str
    attempt: int
    granted_at: float
    deadline: float


class LeaseTable:
    """Active leases, keyed by cell fingerprint.

    One cell has at most one live lease: the queue never serves a cell
    that is already leased, and a lease must be released (result
    accepted) or expired (worker presumed dead) before the cell can be
    granted again.
    """

    def __init__(
        self,
        lease_s: float,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if lease_s <= 0:
            raise ConfigurationError(f"lease_s must be positive, got {lease_s}")
        self.lease_s = lease_s
        self.clock = clock
        self._leases: Dict[str, Lease] = {}

    def __len__(self) -> int:
        return len(self._leases)

    def get(self, fp: str) -> Optional[Lease]:
        return self._leases.get(fp)

    def grant(self, key: Tuple[str, int], fp: str, worker: str, attempt: int) -> Lease:
        """Lease cell ``fp`` to ``worker``; the cell must be unleased."""
        if fp in self._leases:
            raise ConfigurationError(
                f"cell {fp[:12]}… is already leased to "
                f"{self._leases[fp].worker!r}"
            )
        now = self.clock()
        lease = Lease(
            key=key,
            fp=fp,
            worker=worker,
            attempt=attempt,
            granted_at=now,
            deadline=now + self.lease_s,
        )
        self._leases[fp] = lease
        return lease

    def renew(self, fp: str, worker: str) -> bool:
        """Extend the lease by a full window; ``False`` when not renewable.

        A renewal is honored only while the lease is live
        (``clock() <= deadline``, deadline inclusive) *and* still held
        by the same worker — a heartbeat from a worker whose lease
        already expired (and whose cell may be re-leased) must not
        resurrect it.
        """
        lease = self._leases.get(fp)
        if lease is None or lease.worker != worker:
            return False
        now = self.clock()
        if now > lease.deadline:
            return False
        lease.deadline = now + self.lease_s
        return True

    def release(self, fp: str) -> Optional[Lease]:
        """Drop and return the lease on ``fp`` (result accepted), if any."""
        return self._leases.pop(fp, None)

    def pop_expired(self) -> List[Lease]:
        """Remove and return every lease whose deadline has passed."""
        now = self.clock()
        expired = [
            lease for lease in self._leases.values() if now > lease.deadline
        ]
        for lease in expired:
            del self._leases[lease.fp]
        return expired

    def active(self) -> List[Lease]:
        """Live leases, in grant order."""
        return list(self._leases.values())
