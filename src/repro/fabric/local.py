"""Laptop-local fabric: coordinator in-process, workers as subprocesses.

``repro-mmm fabric serve --local N`` needs the whole
coordinator/worker dance on one machine with one command — both as the
developer on-ramp and as the harness the chaos tests (worker SIGKILLs,
coordinator kill-and-restart) drive in CI.  :func:`run_local_fabric`:

* starts the coordinator's server threads in-process,
* forks ``N`` workers via ``sys.executable -m repro fabric worker``
  (each with its own scratch directory under the run dir, so salvage
  logs land next to the data they belong to),
* babysits them: a worker that dies abnormally — an injected ``die``
  fault, an OOM kill, a bug — is respawned while the sweep is
  unfinished and the respawn budget lasts,
* and, if every worker is gone with no budget left, aborts the
  remaining cells instead of serving a queue nobody will ever drain.

Worker stdout/stderr are inherited, so fault-injection noise shows up
in the parent's output where CI logs can capture it.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.model.machine import MulticoreMachine
from repro.sim.results import SweepResult
from repro.sim.sweep import Entry
from repro.fabric.coordinator import Coordinator, fabric_order_sweep

#: How often the babysitter loop reaps/respawns workers.
_POLL_S = 0.2


def _worker_command(
    host: str,
    port: int,
    worker_id: str,
    scratch: Path,
    fault_plan_path: Optional[Union[str, Path]],
    connect_grace_s: float,
) -> List[str]:
    command = [
        sys.executable,
        "-m",
        "repro",
        "fabric",
        "worker",
        "--connect",
        f"{host}:{port}",
        "--worker-id",
        worker_id,
        "--scratch",
        str(scratch),
        "--connect-grace",
        str(connect_grace_s),
    ]
    if fault_plan_path is not None:
        command += ["--fault-plan", str(fault_plan_path)]
    return command


def _worker_env() -> Dict[str, str]:
    """Subprocess environment able to ``import repro`` like the parent."""
    env = dict(os.environ)
    package_parent = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        package_parent if not existing
        else package_parent + os.pathsep + existing
    )
    return env


def spawn_worker(
    host: str,
    port: int,
    *,
    worker_id: str,
    scratch: Union[str, Path],
    fault_plan_path: Optional[Union[str, Path]] = None,
    connect_grace_s: float = 10.0,
) -> "subprocess.Popen[bytes]":
    """Fork one fabric worker subprocess against ``host:port``."""
    return subprocess.Popen(
        _worker_command(
            host, port, worker_id, Path(scratch), fault_plan_path, connect_grace_s
        ),
        env=_worker_env(),
    )


def run_local_fabric(
    entries: Iterable[Entry],
    machine: MulticoreMachine,
    orders: Sequence[int],
    *,
    run_dir: Union[str, Path],
    workers: int = 2,
    resume: bool = False,
    check: bool = False,
    inclusive: bool = False,
    policy: str = "lru",
    engine: str = "replay",
    strict_engine: bool = False,
    lease_s: float = 5.0,
    retries: int = 2,
    backoff: float = 0.1,
    fault_plan_path: Optional[Union[str, Path]] = None,
    max_respawns: Optional[int] = None,
    host: str = "127.0.0.1",
    port: int = 0,
) -> SweepResult:
    """One-command local fabric sweep; returns the assembled result.

    Semantically equivalent to
    :func:`~repro.sim.parallel.parallel_order_sweep` over the same
    entries — successful cells are bit-identical to a serial run — but
    executed by leased subprocess workers that may crash, stall or be
    SIGKILLed without losing the sweep.
    """
    coordinator = fabric_order_sweep(
        entries,
        machine,
        orders,
        run_dir=run_dir,
        resume=resume,
        check=check,
        inclusive=inclusive,
        policy=policy,
        engine=engine,
        strict_engine=strict_engine,
        lease_s=lease_s,
        retries=retries,
        backoff=backoff,
        host=host,
        port=port,
    )
    bound_host, bound_port = coordinator.start()
    budget = max_respawns if max_respawns is not None else workers * 3
    scratch_root = Path(run_dir) / "salvage"
    procs: Dict[str, "subprocess.Popen[bytes]"] = {}
    spawned = 0
    try:
        for _ in range(max(workers, 1)):
            spawned += 1
            worker_id = f"w{spawned}"
            procs[worker_id] = spawn_worker(
                bound_host,
                bound_port,
                worker_id=worker_id,
                scratch=scratch_root / worker_id,
                fault_plan_path=fault_plan_path,
            )
        while not coordinator.wait(timeout=_POLL_S):
            for worker_id in sorted(procs):
                proc = procs[worker_id]
                code = proc.poll()
                if code is None or code == 0:
                    continue
                # Abnormal death (die fault, OOM, bug): replace it
                # while the budget lasts; the lease layer already
                # requeued — or soon will requeue — its cell.
                del procs[worker_id]
                if budget > 0:
                    budget -= 1
                    spawned += 1
                    replacement = f"w{spawned}"
                    procs[replacement] = spawn_worker(
                        bound_host,
                        bound_port,
                        worker_id=replacement,
                        scratch=scratch_root / replacement,
                        fault_plan_path=fault_plan_path,
                    )
            if not any(p.poll() is None for p in procs.values()):
                coordinator.abort(
                    "every local worker exited and the respawn budget "
                    "is exhausted"
                )
                break
    finally:
        deadline = time.monotonic() + 5.0
        for proc in procs.values():
            if proc.poll() is None:
                proc.terminate()
        for proc in procs.values():
            remaining = max(0.0, deadline - time.monotonic())
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
    return coordinator.finish()
