"""The coordinator's append-only, checksummed event journal.

``journal.jsonl`` sits next to the checkpoint log in the run directory
and records the *custody history* of every cell: each grant, lease
expiry, retry, duplicate submission and terminal outcome is one sealed
line written through :class:`repro.store.CheckpointWriter` — fsynced
before the coordinator acts on the event, so a SIGKILL'd coordinator
can be restarted against the same run directory and reconstruct
exactly which cells were in flight.

The journal is a *history*, so it is read with the order-preserving,
non-deduplicating loader (:func:`repro.store.checkpoint.load_sealed_lines`)
— the checkpoint loader's per-fingerprint dedup would collapse the
very retry/re-lease story the journal exists to tell.

Event grammar (``fp`` is the cell fingerprint; lifecycle events use
``fp = "-"``):

========== ==========================================================
event      meaning
========== ==========================================================
start      coordinator began serving (``resumed`` flags a restart)
grant      cell leased to ``worker`` for attempt ``attempt``
expire     lease lapsed (worker dead/stalled/partitioned) — requeued
retry      a failed attempt was accepted and requeued with backoff
duplicate  a result arrived for an already-finalized cell (ignored)
terminal   the cell's final outcome (``status``) — exactly once per
           cell per journal, the exactly-once invariant chaos tests
           assert
stop       coordinator finished (``complete`` tells how)
========== ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Union

from repro.store.checkpoint import CheckpointWriter, load_sealed_lines

#: The non-cell fingerprint used by coordinator lifecycle events.
LIFECYCLE_FP = "-"

EVENT_START = "start"
EVENT_GRANT = "grant"
EVENT_EXPIRE = "expire"
EVENT_RETRY = "retry"
EVENT_DUPLICATE = "duplicate"
EVENT_TERMINAL = "terminal"
EVENT_STOP = "stop"


class FabricJournal:
    """Append-only journal writer (sealed, fsync-per-event)."""

    def __init__(self, path: Union[str, Path]) -> None:
        self._writer = CheckpointWriter(path)

    def event(self, event: str, fp: str = LIFECYCLE_FP, **fields: Any) -> None:
        """Durably record one event; the write is fsynced on return."""
        self._writer.append({"fp": fp, "event": event, **fields})

    def close(self) -> None:
        self._writer.close()

    def __enter__(self) -> "FabricJournal":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


@dataclass
class JournalReplay:
    """What a journal says happened, summarized for restart and audit."""

    #: Every intact event, in append order.
    events: List[Dict[str, Any]] = field(default_factory=list)
    #: Cell fingerprint → terminal status (``ok``/``failed``/``skipped``).
    terminal: Dict[str, str] = field(default_factory=dict)
    #: Cell fingerprint → number of ``terminal`` events seen (the
    #: exactly-once invariant demands every value be 1).
    terminal_events: Dict[str, int] = field(default_factory=dict)
    #: Cell fingerprint → highest attempt number ever granted.
    granted_attempts: Dict[str, int] = field(default_factory=dict)
    #: Cells with a grant but no terminal event: in flight when the
    #: journal stopped (their leases died with the coordinator).
    open_grants: Set[str] = field(default_factory=set)
    #: Event totals for telemetry reconstruction after a restart.
    grants: int = 0
    expired: int = 0
    retries: int = 0
    duplicates: int = 0
    #: Whether the final line was a torn (crash-truncated) tail.
    torn_tail: bool = False
    #: Journal lines that failed checksum/parse.
    quarantined_lines: int = 0

    def exactly_once(self) -> bool:
        """Whether no cell has more than one terminal event."""
        return all(count == 1 for count in self.terminal_events.values())


def load_journal(path: Union[str, Path]) -> JournalReplay:
    """Replay a journal file into a :class:`JournalReplay` summary.

    A missing file replays as empty (a fresh run).  Corrupt interior
    lines are counted but skipped — the journal is advisory history;
    the checkpoint log remains the source of truth for results.
    """
    log = load_sealed_lines(path)
    replay = JournalReplay(
        torn_tail=log.torn_tail,
        quarantined_lines=len(log.quarantined),
    )
    for record in log.records:
        event = record.get("event")
        fp = record.get("fp")
        if not isinstance(event, str) or not isinstance(fp, str):
            replay.quarantined_lines += 1
            continue
        replay.events.append(record)
        if fp == LIFECYCLE_FP:
            continue
        if event == EVENT_GRANT:
            replay.grants += 1
            attempt = record.get("attempt")
            if isinstance(attempt, int):
                replay.granted_attempts[fp] = max(
                    replay.granted_attempts.get(fp, 0), attempt
                )
            if fp not in replay.terminal:
                replay.open_grants.add(fp)
        elif event == EVENT_EXPIRE:
            replay.expired += 1
        elif event == EVENT_RETRY:
            replay.retries += 1
        elif event == EVENT_DUPLICATE:
            replay.duplicates += 1
        elif event == EVENT_TERMINAL:
            status = record.get("status")
            if isinstance(status, str):
                replay.terminal[fp] = status
            replay.terminal_events[fp] = replay.terminal_events.get(fp, 0) + 1
            replay.open_grants.discard(fp)
    return replay


def journal_status(replay: JournalReplay) -> Optional[str]:
    """One-line human summary for ``repro-mmm runs verify``; ``None`` if empty."""
    if not replay.events:
        return None
    return (
        f"journal: {len(replay.events)} events, "
        f"{len(replay.terminal)} terminal cells, "
        f"{replay.expired} expiries, {replay.retries} retries, "
        f"{replay.duplicates} duplicates"
    )
