"""The fabric coordinator: a durable, lease-based cell queue.

The coordinator owns everything the pool engine's dispatch loop owns —
which cells remain, which attempt each is on, when a failure retries —
but across process boundaries and through its own death:

* **Durable queue** — the cell set, fingerprints and per-cell outcomes
  live in a :class:`~repro.store.RunStore` run directory.  Every
  finalized cell is appended to the checkpoint log *before* the journal
  records its terminal event, so the checkpoint stays the source of
  truth and a crash between the two writes is healed on restart (the
  journal terminal is re-emitted, flagged ``resumed``).
* **Leases, not assignments** — a granted cell belongs to its worker
  only while heartbeats renew the monotonic-deadline lease
  (:mod:`repro.fabric.leases`).  The periodic tick re-queues expired
  leases within the retry budget, with the shared jittered backoff
  (:class:`~repro.sim.retrypolicy.BackoffPolicy`).
* **Crash-proof restart** — ``resume=True`` reloads ``ok`` *and*
  ``failed`` cells from the checkpoint (both are terminal for the
  fabric: re-running a terminally failed cell would double its journal
  terminal), replays the journal for accounting, journals an ``expire``
  for every grant that died with the previous coordinator, and serves
  only the rest.  Fingerprint dedup makes any worker-side re-execution
  idempotent.
* **At-most-one live lease per cell; exactly one terminal event** — a
  late result from a stalled worker whose cell was re-leased is either
  the first terminal (accepted; the newer lease is released unused) or
  a journaled ``duplicate`` (ignored).

The TCP layer is deliberately thin: a threaded accept loop reads one
sealed line, calls :meth:`Coordinator.handle` under the state lock and
writes one sealed line back.  Tests drive :meth:`handle` directly.
"""

from __future__ import annotations

import socketserver
import threading
import time
from collections import deque
from pathlib import Path
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.exceptions import ConfigurationError, ProtocolError
from repro.model.machine import MulticoreMachine
from repro.sim.results import ExperimentResult, SweepResult
from repro.sim.retrypolicy import BackoffPolicy
from repro.sim.runner import reset_fallback_warnings
from repro.sim.sweep import Entry, resolve_entries
from repro.sim.telemetry import (
    STATUS_FAILED,
    STATUS_OK,
    STATUS_SKIPPED,
    CellRecord,
    FabricStats,
    RunManifest,
)
from repro.store.checkpoint import CheckpointWriter, cell_fingerprint
from repro.store.rundir import (
    STATUS_COMPLETE,
    STATUS_INCOMPLETE,
    STATUS_RUNNING,
    RunStore,
)
from repro.store.serde import (
    machine_to_dict,
    result_from_dict,
    result_to_dict,
)
from repro.fabric.journal import (
    EVENT_DUPLICATE,
    EVENT_EXPIRE,
    EVENT_GRANT,
    EVENT_RETRY,
    EVENT_START,
    EVENT_STOP,
    EVENT_TERMINAL,
    FabricJournal,
    JournalReplay,
    load_journal,
)
from repro.fabric.leases import LeaseTable
from repro.fabric.protocol import encode_line, error_reply, read_message

#: One coordinator cell, pool-engine shaped:
#: (label, x-index, machine-index, m, n, z).
FabricCell = Tuple[str, int, int, int, int, int]

#: How long an idle worker is told to wait before asking again when
#: every remaining cell is leased or backing off.
_DEFAULT_WAIT_S = 0.5


class Coordinator:
    """Serve one sweep's cells over leases until every cell is terminal."""

    def __init__(
        self,
        *,
        variable: str,
        xs: Sequence[Any],
        labels: Sequence[str],
        cells: Sequence[FabricCell],
        machines: Sequence[MulticoreMachine],
        entries: Dict[str, Tuple[str, str, Dict[str, Any]]],
        run_dir: Union[str, Path],
        resume: bool = False,
        lease_s: float = 15.0,
        retries: int = 2,
        backoff: float = 0.1,
        host: str = "127.0.0.1",
        port: int = 0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if retries < 0:
            raise ConfigurationError(f"retries must be >= 0, got {retries}")
        if lease_s <= 0:
            raise ConfigurationError(f"lease_s must be positive, got {lease_s}")
        self.variable = variable
        self.xs = list(xs)
        self.labels = list(labels)
        self.cells = list(cells)
        self.machines = list(machines)
        self.entries = entries
        self.store = RunStore(run_dir)
        self.resume = resume
        self.lease_s = lease_s
        self.retries = retries
        self.backoff = backoff
        self.backoff_policy = BackoffPolicy(base_s=backoff)
        self.host = host
        self.port = port
        self.clock = clock

        self.records: Dict[Tuple[str, int], CellRecord] = {}
        self.fingerprints: Dict[Tuple[str, int], str] = {}
        self.fp_to_key: Dict[str, Tuple[str, int]] = {}
        self.machine_idx: Dict[Tuple[str, int], int] = {}
        self.dims: Dict[Tuple[str, int], Tuple[int, int, int]] = {}
        for label, index, midx, m, n, z in self.cells:
            key = (label, index)
            self.records[key] = CellRecord(
                label=label, index=index, x=self.xs[index], status=STATUS_SKIPPED
            )
            self.machine_idx[key] = midx
            self.dims[key] = (m, n, z)
            fp = self._cell_fp(key)
            self.fingerprints[key] = fp
            self.fp_to_key[fp] = key
        self.results: Dict[Tuple[str, int], ExperimentResult] = {}
        self.outstanding: Set[Tuple[str, int]] = set(self.records)
        #: Next attempt number to grant, per cell.
        self.attempts: Dict[Tuple[str, int], int] = {
            key: 1 for key in self.records
        }
        self.pending: Deque[Tuple[str, int]] = deque(
            sorted(self.records, key=lambda k: (k[0], k[1]))
        )
        #: Cells waiting out a backoff: (monotonic ready time, key).
        self.delayed: List[Tuple[float, Tuple[str, int]]] = []
        self.leases = LeaseTable(lease_s, clock=clock)

        self.manifest = RunManifest(
            variable=variable,
            xs=self.xs,
            workers=0,
            cell_timeout_s=None,
            retries=retries,
            backoff_s=backoff,
            chunksize=1,
            fabric=FabricStats(),
        )
        self.workers_seen: Set[str] = set()
        self.workers_lost: Set[str] = set()

        self.writer: Optional[CheckpointWriter] = None
        self.journal: Optional[FabricJournal] = None
        self._lock = threading.Lock()
        self._done = threading.Event()
        self._stop_ticker = threading.Event()
        self._server: Optional["_FabricServer"] = None
        self._server_thread: Optional[threading.Thread] = None
        self._ticker_thread: Optional[threading.Thread] = None
        self._started_at = 0.0

    @property
    def fabric(self) -> FabricStats:
        stats = self.manifest.fabric
        assert stats is not None
        return stats

    # -- identity -------------------------------------------------------
    def _cell_fp(self, key: Tuple[str, int]) -> str:
        """Deterministic result fingerprint of one cell (engine knobs excluded)."""
        algorithm, setting, kwargs = self.entries[key[0]]
        fp_kwargs = {k: v for k, v in kwargs.items() if k not in ("engine", "strict_engine")}
        m, n, z = self.dims[key]
        return cell_fingerprint(
            algorithm=algorithm,
            setting=setting,
            kwargs=fp_kwargs,
            machine=self.machines[self.machine_idx[key]],
            variable=self.variable,
            x=self.xs[key[1]],
            m=m,
            n=n,
            z=z,
        )

    # -- lifecycle ------------------------------------------------------
    def start(self) -> Tuple[str, int]:
        """Open the store, restore state, start serving; returns (host, port)."""
        self._started_at = time.perf_counter()
        self._prepare_store()
        with self._lock:
            if not self.outstanding:
                self._done.set()
        server = _FabricServer((self.host, self.port), self)
        self._server = server
        self.port = server.server_address[1]
        self._server_thread = threading.Thread(
            target=server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="fabric-coordinator",
            daemon=True,
        )
        self._server_thread.start()
        self._ticker_thread = threading.Thread(
            target=self._ticker, name="fabric-ticker", daemon=True
        )
        self._ticker_thread.start()
        return (self.host, self.port)

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until every cell is terminal; ``True`` when done."""
        return self._done.wait(timeout)

    def abort(self, reason: str) -> None:
        """Give up on every unfinished cell (recorded as ``skipped``)."""
        with self._lock:
            for key in sorted(self.outstanding):
                record = self.records[key]
                record.status = STATUS_SKIPPED
                if record.error_type is None:
                    record.error_type = "Aborted"
                record.error = reason
                self.outstanding.discard(key)
                self._checkpoint(key, STATUS_SKIPPED)
                self._journal_terminal(key, STATUS_SKIPPED)
            self.pending.clear()
            self.delayed = []
            self._done.set()

    def finish(self) -> SweepResult:
        """Stop serving, finalize the run directory, assemble the result.

        Unfinished cells (the coordinator was asked to stop early) are
        aborted first, so the manifest always accounts for every cell.
        """
        if self.outstanding:
            self.abort("coordinator stopped before the cell ran")
        self._stop_ticker.set()
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._server_thread is not None:
            self._server_thread.join(timeout=5.0)
            self._server_thread = None
        if self._ticker_thread is not None:
            self._ticker_thread.join(timeout=5.0)
            self._ticker_thread = None
        with self._lock:
            self.manifest.elapsed_s = time.perf_counter() - self._started_at
            self.manifest.workers = len(self.workers_seen)
            self.fabric.workers_seen = len(self.workers_seen)
            self.fabric.workers_lost = len(self.workers_lost)
            if self.journal is not None:
                self.journal.event(
                    EVENT_STOP,
                    complete=not any(
                        r.status != STATUS_OK for r in self.records.values()
                    ),
                )
                self.journal.close()
                self.journal = None
            if self.writer is not None:
                self.writer.close()
                self.writer = None
            sweep = self._assemble()
            counts = self.manifest.counts()
            self.manifest.write(self.store.manifest_path)
            if counts[STATUS_FAILED] or counts[STATUS_SKIPPED]:
                status = STATUS_INCOMPLETE
            else:
                status = STATUS_COMPLETE
            self.store.update_meta(
                status=status,
                cell_counts=counts,
                resumed_cells=self.manifest.resumed_cells,
                elapsed_s=round(self.manifest.elapsed_s, 6),
            )
        return sweep

    def _ticker(self) -> None:
        period = min(self.lease_s / 4.0, 0.25)
        while not self._stop_ticker.wait(period):
            self.tick()

    def tick(self) -> None:
        """Expire lapsed leases and requeue their cells (thread-safe)."""
        with self._lock:
            self._expire_leases()

    # -- store ----------------------------------------------------------
    def _prepare_store(self) -> None:
        config = {
            "variable": self.variable,
            "xs": self.xs,
            "labels": self.labels,
            "engine": {
                "workers": 0,
                "cell_timeout_s": None,
                "retries": self.retries,
                "backoff_s": self.backoff,
                "chunksize": 1,
            },
            "fabric": {"lease_s": self.lease_s},
        }
        resumed = False
        if self.resume and self.store.exists():
            meta = self.store.load_meta() or {}
            self.store.update_meta(
                status=STATUS_RUNNING,
                resumes=int(meta.get("resumes", 0)) + 1,
                **config,
            )
            resumed = True
        else:
            self.store.initialize(config)
        replay = load_journal(self.store.journal_path) if resumed else None
        if resumed:
            self._restore_from_checkpoint()
        # Opening the journal writer repairs any torn tail left by a
        # SIGKILL'd predecessor before new events are appended.
        self.journal = FabricJournal(self.store.journal_path)
        self.writer = self.store.checkpoint_writer()
        self.journal.event(EVENT_START, resumed=resumed, cells=len(self.records))
        if replay is not None:
            self._restore_from_journal(replay)

    def _restore_from_checkpoint(self) -> None:
        """Reload terminal (``ok`` *and* ``failed``) cells from the log.

        The pool engine re-runs failed cells on resume; the fabric does
        not — a failed cell already spent its retry budget, and
        re-opening it would emit a second terminal journal event for
        the same fingerprint, breaking the exactly-once invariant the
        chaos tests assert.
        """
        loaded = self.store.load_checkpoint()
        self.manifest.quarantined_records = len(loaded.quarantined)
        for key, fp in self.fingerprints.items():
            record = loaded.records.get(fp)
            if record is None:
                continue
            status = record.get("status")
            cell = self.records[key]
            if status == STATUS_OK:
                try:
                    result: ExperimentResult = result_from_dict(record["result"])
                except (KeyError, TypeError, ValueError):
                    self.manifest.quarantined_records += 1
                    continue
                cell.status = STATUS_OK
                cell.attempts = result.attempts
                cell.wall_s = float(record.get("wall_s", 0.0))
                cell.worker = result.worker
                cell.resumed = True
                cell.engine_fallback = result.engine_fallback
                self.results[key] = result
            elif status == STATUS_FAILED:
                cell.status = STATUS_FAILED
                cell.attempts = int(record.get("attempts", 0))
                cell.wall_s = float(record.get("wall_s", 0.0))
                error_type = record.get("error_type")
                cell.error_type = str(error_type) if error_type is not None else None
                error = record.get("error")
                cell.error = str(error) if error is not None else None
                cell.resumed = True
            else:
                continue
            self.outstanding.discard(key)
            self.pending = deque(k for k in self.pending if k != key)
            self.manifest.resumed_cells += 1

    def _restore_from_journal(self, replay: JournalReplay) -> None:
        """Reconcile the journal with the restored checkpoint state.

        * Counters (grants/expiries/retries/duplicates) carry over, so
          the final manifest tells the whole run's story, not just the
          last incarnation's.
        * A restored terminal cell missing its journal terminal (the
          predecessor died between the checkpoint append and the
          journal append) gets it now, flagged ``resumed``.
        * A journaled grant with no terminal was in flight when the
          predecessor died: its lease died too — journal the expiry and
          charge the attempt, exactly as if the lease had lapsed.
        """
        assert self.journal is not None
        stats = self.fabric
        stats.leases_granted += replay.grants
        stats.expired_leases += replay.expired
        stats.retried_failures += replay.retries
        stats.duplicate_results += replay.duplicates
        for key in sorted(self.records):
            fp = self.fingerprints[key]
            record = self.records[key]
            if record.resumed and fp not in replay.terminal_events:
                self._journal_terminal(key, record.status, resumed=True)
        for fp in sorted(replay.open_grants):
            key = self.fp_to_key.get(fp)
            if key is None or key not in self.outstanding:
                continue
            attempt = max(replay.granted_attempts.get(fp, 1), 1)
            self.journal.event(
                EVENT_EXPIRE,
                fp,
                worker="",
                attempt=attempt,
                reason="coordinator-restart",
            )
            stats.expired_leases += 1
            self._charge_lost_attempt(key, attempt, "LeaseExpired",
                                      "lease died with the previous coordinator")

    def _checkpoint(
        self,
        key: Tuple[str, int],
        status: str,
        *,
        result: Optional[ExperimentResult] = None,
    ) -> None:
        """Flush one finalized cell to the checkpoint log (durable on return)."""
        if self.writer is None:
            return
        record = self.records[key]
        payload: Dict[str, Any] = {
            "fp": self.fingerprints[key],
            "label": key[0],
            "index": key[1],
            "x": self.xs[key[1]],
            "status": status,
            "attempts": record.attempts,
            "wall_s": round(record.wall_s, 6),
        }
        if result is not None:
            payload["result"] = result_to_dict(result)
        else:
            payload["error_type"] = record.error_type
            payload["error"] = record.error
        self.writer.append(payload)

    def _journal_terminal(
        self, key: Tuple[str, int], status: str, *, resumed: bool = False
    ) -> None:
        if self.journal is None:
            return
        record = self.records[key]
        fields: Dict[str, Any] = {"status": status, "attempts": record.attempts}
        if resumed:
            fields["resumed"] = True
        self.journal.event(EVENT_TERMINAL, self.fingerprints[key], **fields)

    # -- queue mechanics (call with the lock held) ----------------------
    def _promote_delayed(self) -> None:
        now = self.clock()
        due = [key for ready, key in self.delayed if ready <= now]
        self.delayed = [(ready, key) for ready, key in self.delayed if ready > now]
        for key in due:
            self.pending.append(key)

    def _next_servable(self) -> Optional[Tuple[str, int]]:
        self._promote_delayed()
        while self.pending:
            key = self.pending.popleft()
            if key in self.outstanding and self.leases.get(self.fingerprints[key]) is None:
                return key
        return None

    def _charge_lost_attempt(
        self, key: Tuple[str, int], attempt: int, error_type: str, error: str
    ) -> None:
        """A granted attempt vanished (expiry/restart): retry or fail."""
        record = self.records[key]
        record.attempts = max(record.attempts, attempt)
        record.error_type = error_type
        record.error = error
        if attempt <= self.retries:
            self.attempts[key] = attempt + 1
            delay = self.backoff_policy.delay(attempt, key=f"{key[0]}:{key[1]}")
            self.delayed.append((self.clock() + delay, key))
        else:
            record.status = STATUS_FAILED
            self.outstanding.discard(key)
            self._checkpoint(key, STATUS_FAILED)
            self._journal_terminal(key, STATUS_FAILED)
            self._check_done()

    def _expire_leases(self) -> None:
        for lease in self.leases.pop_expired():
            self.fabric.expired_leases += 1
            self.workers_lost.add(lease.worker)
            if self.journal is not None:
                self.journal.event(
                    EVENT_EXPIRE,
                    lease.fp,
                    worker=lease.worker,
                    attempt=lease.attempt,
                    reason="lease-expired",
                )
            key = lease.key
            if key in self.outstanding:
                self._charge_lost_attempt(
                    key,
                    lease.attempt,
                    "LeaseExpired",
                    f"worker {lease.worker!r} stopped heartbeating "
                    f"(lease of {self.lease_s:.3g}s lapsed)",
                )

    def _check_done(self) -> None:
        if not self.outstanding:
            self._done.set()

    # -- protocol handling ----------------------------------------------
    def handle(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Process one request message; returns the reply message."""
        kind = message.get("type")
        with self._lock:
            worker = message.get("worker")
            if isinstance(worker, str) and worker:
                self.workers_seen.add(worker)
            if kind == "lease":
                return self._handle_lease(message)
            if kind == "heartbeat":
                return self._handle_heartbeat(message)
            if kind == "result":
                return self._handle_result(message)
            if kind == "status":
                return self._handle_status()
        return error_reply(f"unknown message type {kind!r}")

    def _handle_lease(self, message: Dict[str, Any]) -> Dict[str, Any]:
        worker = message.get("worker")
        if not isinstance(worker, str) or not worker:
            return error_reply("lease request without a worker id")
        if not self.outstanding:
            return {"type": "drained"}
        key = self._next_servable()
        if key is None:
            return {"type": "wait", "delay_s": self._wait_hint()}
        attempt = self.attempts[key]
        fp = self.fingerprints[key]
        # Journal the grant *before* the lease exists: a coordinator
        # killed between the two leaves a journaled open grant, which a
        # restart expires and requeues — never a silently lost cell.
        if self.journal is not None:
            self.journal.event(EVENT_GRANT, fp, worker=worker, attempt=attempt)
        self.leases.grant(key, fp, worker, attempt)
        self.fabric.leases_granted += 1
        algorithm, setting, kwargs = self.entries[key[0]]
        m, n, z = self.dims[key]
        return {
            "type": "grant",
            "fp": fp,
            "attempt": attempt,
            "lease_s": self.lease_s,
            # Workers sharing the coordinator's filesystem memmap
            # compiled traces from the run dir instead of recompiling
            # per process; remote workers see a nonexistent run dir and
            # ignore the hint.
            "trace_tier": str(self.store.root / "traces"),
            "cell": {
                "label": key[0],
                "index": key[1],
                "variable": self.variable,
                "x": self.xs[key[1]],
                "algorithm": algorithm,
                "setting": setting,
                "kwargs": dict(kwargs),
                "machine": machine_to_dict(self.machines[self.machine_idx[key]]),
                "m": m,
                "n": n,
                "z": z,
            },
        }

    def _wait_hint(self) -> float:
        """How long an idle worker should wait before asking again."""
        hint = min(self.lease_s / 4.0, _DEFAULT_WAIT_S)
        if self.delayed:
            now = self.clock()
            next_ready = min(ready for ready, _key in self.delayed)
            hint = min(hint, max(0.05, next_ready - now))
        return hint

    def _handle_heartbeat(self, message: Dict[str, Any]) -> Dict[str, Any]:
        worker = message.get("worker")
        fp = message.get("fp")
        if not isinstance(worker, str) or not isinstance(fp, str):
            return error_reply("heartbeat without worker id and cell fingerprint")
        self.fabric.heartbeats += 1
        renewed = self.leases.renew(fp, worker)
        return {"type": "ack", "renewed": renewed}

    def _handle_result(self, message: Dict[str, Any]) -> Dict[str, Any]:
        worker = message.get("worker")
        fp = message.get("fp")
        if not isinstance(worker, str) or not isinstance(fp, str):
            return error_reply("result without worker id and cell fingerprint")
        key = self.fp_to_key.get(fp)
        if key is None:
            return error_reply(f"result for unknown cell {fp[:12]}…")
        attempt = message.get("attempt")
        if not isinstance(attempt, int) or attempt < 1:
            return error_reply("result without a valid attempt number")
        if key not in self.outstanding:
            # The cell was finalized while this worker dawdled (its
            # lease expired and someone else finished it, or it double-
            # submitted).  Dedup makes the duplicate harmless.
            self.fabric.duplicate_results += 1
            if self.journal is not None:
                self.journal.event(
                    EVENT_DUPLICATE, fp, worker=worker, attempt=attempt
                )
            return {"type": "duplicate", "remaining": len(self.outstanding)}
        # Whoever holds the lease, this result finalizes the attempt:
        # release the (possibly re-granted) lease so expiry never fires
        # for a cell that already reported.
        self.leases.release(fp)
        self.fabric.results_accepted += 1
        record = self.records[key]
        wall = float(message.get("wall_s", 0.0))
        pid = message.get("pid")
        record.wall_s += wall
        record.attempts = max(record.attempts, attempt)
        if isinstance(pid, int):
            record.worker = pid
            self.manifest.record_execution(pid, wall)
        if message.get("ok"):
            try:
                result: ExperimentResult = result_from_dict(message["result"])
            except (KeyError, TypeError, ValueError) as exc:
                return self._accept_failure(
                    key, attempt, "CorruptResult",
                    f"result payload did not deserialize: {exc}", True,
                )
            result.attempts = max(result.attempts, attempt)
            record.status = STATUS_OK
            record.error_type = None
            record.error = None
            record.engine_fallback = result.engine_fallback
            self.results[key] = result
            self.outstanding.discard(key)
            self._checkpoint(key, STATUS_OK, result=result)
            self._journal_terminal(key, STATUS_OK)
            self._check_done()
            return {"type": "accepted", "remaining": len(self.outstanding)}
        error_type = str(message.get("error_type", "Error"))
        error = str(message.get("error", ""))
        retryable = bool(message.get("retryable", True))
        return self._accept_failure(key, attempt, error_type, error, retryable)

    def _accept_failure(
        self,
        key: Tuple[str, int],
        attempt: int,
        error_type: str,
        error: str,
        retryable: bool,
    ) -> Dict[str, Any]:
        record = self.records[key]
        record.error_type = error_type
        record.error = error
        if retryable and attempt <= self.retries:
            self.attempts[key] = attempt + 1
            delay = self.backoff_policy.delay(attempt, key=f"{key[0]}:{key[1]}")
            self.delayed.append((self.clock() + delay, key))
            self.fabric.retried_failures += 1
            if self.journal is not None:
                self.journal.event(
                    EVENT_RETRY,
                    self.fingerprints[key],
                    attempt=attempt,
                    error_type=error_type,
                )
            return {
                "type": "accepted",
                "retrying": True,
                "remaining": len(self.outstanding),
            }
        record.status = STATUS_FAILED
        self.outstanding.discard(key)
        self._checkpoint(key, STATUS_FAILED)
        self._journal_terminal(key, STATUS_FAILED)
        self._check_done()
        return {
            "type": "accepted",
            "retrying": False,
            "remaining": len(self.outstanding),
        }

    def _handle_status(self) -> Dict[str, Any]:
        counts = self.manifest.counts()
        return {
            "type": "status",
            "outstanding": len(self.outstanding),
            "leased": len(self.leases),
            "pending": len(self.pending),
            "delayed": len(self.delayed),
            "done": self._done.is_set(),
            "counts": counts,
            "fabric": self.fabric.to_dict(),
        }

    # -- assembly -------------------------------------------------------
    def _assemble(self) -> SweepResult:
        sweep = SweepResult(variable=self.variable, xs=list(self.xs))
        buckets: Dict[str, List[Optional[ExperimentResult]]] = {
            label: [None] * len(self.xs) for label in self.labels
        }
        for (label, index), result in self.results.items():
            buckets[label][index] = result
        for label in self.labels:
            sweep.add(label, buckets[label])
        self.manifest.cells = list(self.records.values())
        sweep.failures = [
            record
            for record in self.records.values()
            if record.status != STATUS_OK
        ]
        sweep.manifest = self.manifest
        return sweep


class _FabricHandler(socketserver.StreamRequestHandler):
    """One request, one reply, close — the whole TCP surface."""

    server: "_FabricServer"

    def handle(self) -> None:
        try:
            message = read_message(self.rfile)
        except ProtocolError as exc:
            self.wfile.write(encode_line(error_reply(str(exc))))
            return
        except OSError:
            return
        try:
            reply = self.server.coordinator.handle(message)
        except Exception as exc:  # noqa: BLE001 — a bad request must not kill the server
            reply = error_reply(f"{type(exc).__name__}: {exc}")
        try:
            self.wfile.write(encode_line(reply))
        except OSError:
            # The requester vanished before reading the reply; for a
            # result message the cell is already finalized and the
            # worker's re-submission will be deduplicated.
            return


class _FabricServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address: Tuple[str, int], coordinator: Coordinator) -> None:
        self.coordinator = coordinator
        super().__init__(address, _FabricHandler)


def fabric_order_sweep(
    entries: Iterable[Entry],
    machine: MulticoreMachine,
    orders: Sequence[int],
    *,
    run_dir: Union[str, Path],
    resume: bool = False,
    check: bool = False,
    inclusive: bool = False,
    policy: str = "lru",
    engine: str = "replay",
    strict_engine: bool = False,
    lease_s: float = 15.0,
    retries: int = 2,
    backoff: float = 0.1,
    host: str = "127.0.0.1",
    port: int = 0,
) -> Coordinator:
    """Build (but do not start) a coordinator for an order sweep.

    The cell grid matches :func:`repro.sim.parallel.parallel_order_sweep`
    exactly — same labels, fingerprints and checkpoint payloads — so a
    fabric run directory can be inspected, verified and even resumed by
    the pool engine, and vice versa.
    """
    reset_fallback_warnings()
    resolved = resolve_entries(entries)
    labels = [label for _a, _s, _p, label in resolved]
    entry_table: Dict[str, Tuple[str, str, Dict[str, Any]]] = {}
    cells: List[FabricCell] = []
    for algorithm, setting, params, label in resolved:
        kwargs: Dict[str, Any] = dict(
            check=check,
            inclusive=inclusive,
            policy=policy,
            engine=engine,
            strict_engine=strict_engine,
            **params,
        )
        entry_table[label] = (algorithm, setting, kwargs)
        for index, order in enumerate(orders):
            cells.append((label, index, 0, order, order, order))
    return Coordinator(
        variable="order",
        xs=list(orders),
        labels=labels,
        cells=cells,
        machines=[machine],
        entries=entry_table,
        run_dir=run_dir,
        resume=resume,
        lease_s=lease_s,
        retries=retries,
        backoff=backoff,
        host=host,
        port=port,
    )
