"""Numeric execution and verification of LU schedules.

The numeric context executes the four block kernels with numpy/scipy:
``factor`` performs an in-place Doolittle LU (unit lower / non-unit
upper, packed) of the ``q×q`` diagonal block, the two ``trsm`` kernels
are triangular solves against it, and ``update`` is the trailing GEMM.
Because blocked Doolittle without pivoting computes exactly the scalar
Doolittle factorization of the assembled matrix, verification is
simple: unpack the unit-lower ``L`` and upper ``U`` from the factored
matrix and check ``L @ U ≈ A`` for a diagonally dominant random ``A``
(dominance guarantees pivot-free stability).

The context also enforces the dependency discipline: each block's
kernels must arrive in a valid order (all updates ``k' < k`` before the
panel solve / factorization that consumes the block), every ``(i,j,k)``
update exactly once.  That catches schedule bugs that a lucky numeric
comparison could mask.
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

import numpy as np
from scipy.linalg import solve_triangular

from repro.exceptions import ScheduleError
from repro.lu.ops import LUContext
from repro.lu.schedules import LUSchedule
from repro.numerics.blockmatrix import BlockMatrix


def _factor_inplace(block: np.ndarray) -> None:
    """In-place Doolittle LU (no pivoting) of one square block."""
    q = block.shape[0]
    for r in range(q):
        pivot = block[r, r]
        if pivot == 0.0:
            raise ScheduleError("zero pivot in pivot-free LU (matrix not dominant?)")
        block[r + 1 :, r] /= pivot
        block[r + 1 :, r + 1 :] -= np.outer(block[r + 1 :, r], block[r, r + 1 :])


class LUNumericContext(LUContext):
    """Execute an LU schedule on a real block matrix, checking order."""

    def __init__(self, p: int, a: BlockMatrix) -> None:
        super().__init__(p)
        if a.rows != a.cols:
            raise ScheduleError(f"LU needs a square block matrix, got {a.shape_blocks}")
        self.a = a
        self.n = a.rows
        # dependency bookkeeping
        self._updates_done: Set[Tuple[int, int, int]] = set()
        self._factored: Set[int] = set()
        self._solved: Set[Tuple[int, int]] = set()  # off-diagonal finalized

    # -- discipline helpers --------------------------------------------
    def _require_history(self, i: int, j: int, upto_k: int) -> None:
        """Block (i, j) must have received updates for all k < upto_k."""
        for k in range(upto_k):
            if (i, j, k) not in self._updates_done:
                raise ScheduleError(
                    f"block ({i},{j}) consumed before update k={k} was applied"
                )

    def _require_panel(self, i: int, j: int) -> None:
        if (i, j) not in self._solved:
            raise ScheduleError(f"update reads unsolved panel block ({i},{j})")

    # -- kernels --------------------------------------------------------
    def factor(self, core: int, k: int) -> None:
        self._require_history(k, k, k)
        if k in self._factored:
            raise ScheduleError(f"diagonal block {k} factored twice")
        _factor_inplace(self.a.block(k, k))
        self._factored.add(k)
        self.ops.factor[core] += 1

    def trsm_u(self, core: int, k: int, j: int) -> None:
        if j <= k:
            raise ScheduleError(f"trsm_u needs j > k, got ({k},{j})")
        if k not in self._factored:
            raise ScheduleError(f"trsm_u({k},{j}) before factor({k})")
        self._require_history(k, j, k)
        if (k, j) in self._solved:
            raise ScheduleError(f"panel block ({k},{j}) solved twice")
        diag = self.a.block(k, k)
        target = self.a.block(k, j)
        target[:] = solve_triangular(diag, target, lower=True, unit_diagonal=True)
        self._solved.add((k, j))
        self.ops.trsm[core] += 1

    def trsm_l(self, core: int, i: int, k: int) -> None:
        if i <= k:
            raise ScheduleError(f"trsm_l needs i > k, got ({i},{k})")
        if k not in self._factored:
            raise ScheduleError(f"trsm_l({i},{k}) before factor({k})")
        self._require_history(i, k, k)
        if (i, k) in self._solved:
            raise ScheduleError(f"panel block ({i},{k}) solved twice")
        diag = self.a.block(k, k)
        target = self.a.block(i, k)
        # solve X · U = target  <=>  Uᵀ · Xᵀ = targetᵀ
        target[:] = solve_triangular(diag.T, target.T, lower=True).T
        self._solved.add((i, k))
        self.ops.trsm[core] += 1

    def update(self, core: int, i: int, j: int, k: int) -> None:
        if not (i > k and j > k):
            raise ScheduleError(f"update needs i,j > k, got ({i},{j},{k})")
        if (i, j, k) in self._updates_done:
            raise ScheduleError(f"update ({i},{j},{k}) emitted twice")
        self._require_panel(i, k)
        self._require_panel(k, j)
        self._require_history(i, j, k)
        self.a.block(i, j)[:] -= self.a.block(i, k) @ self.a.block(k, j)
        self._updates_done.add((i, j, k))
        self.ops.update[core] += 1

    # -- verification ----------------------------------------------------
    def assert_complete(self) -> None:
        """Every kernel instance of a full factorization was emitted."""
        n = self.n
        if len(self._factored) != n:
            raise ScheduleError(
                f"{len(self._factored)}/{n} diagonal blocks factored"
            )
        if len(self._solved) != n * (n - 1):
            raise ScheduleError(
                f"{len(self._solved)}/{n * (n - 1)} panel blocks solved"
            )
        expected_updates = n * (n - 1) * (2 * n - 1) // 6
        if len(self._updates_done) != expected_updates:
            raise ScheduleError(
                f"{len(self._updates_done)}/{expected_updates} updates applied"
            )

    def reconstruct(self) -> Tuple[np.ndarray, np.ndarray]:
        """Unpack ``(L, U)`` from the factored in-place matrix."""
        full = self.a.data
        lower = np.tril(full, -1) + np.eye(full.shape[0])
        upper = np.triu(full)
        return lower, upper


def dominant_random(n: int, q: int, seed: Optional[int] = 0) -> BlockMatrix:
    """A random diagonally dominant matrix (pivot-free LU is stable)."""
    rng = np.random.default_rng(seed)
    size = n * q
    data = rng.random((size, size)) + size * np.eye(size)
    return BlockMatrix(n, n, q, data)


def verify_lu_schedule(
    schedule: LUSchedule, q: int = 4, seed: Optional[int] = 0, rtol: float = 1e-8
) -> None:
    """Prove a schedule factors ``A`` into ``L · U`` exactly.

    Raises :class:`~repro.exceptions.ScheduleError` on any dependency
    violation, incompleteness or numeric mismatch.
    """
    a = dominant_random(schedule.n, q, seed)
    original = a.data.copy()
    ctx = LUNumericContext(schedule.machine.p, a)
    schedule.run(ctx)
    ctx.assert_complete()
    lower, upper = ctx.reconstruct()
    if not np.allclose(lower @ upper, original, rtol=rtol, atol=rtol * original.shape[0]):
        raise ScheduleError(
            f"{schedule.name} factored incorrectly for n={schedule.n}, q={q}"
        )
