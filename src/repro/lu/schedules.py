"""LU schedules: right-looking (eager) vs left-looking (lazy).

Both factor an ``n × n`` block matrix in place without pivoting,
emitting the four kernels of :mod:`repro.lu.ops` in a dependency-valid
order; they differ only in *when* trailing updates are applied:

* :class:`RightLookingLU` applies every update as soon as the panel of
  step ``k`` is ready — the whole trailing submatrix is re-touched at
  every step, the access pattern of the Outer-Product matmul baseline.
* :class:`LeftLookingLU` delays updates: each block column is processed
  once, receiving *all* its pending updates while it is hot in the
  cache — the Maximum-Reuse idea transposed to LU.

Work is dealt to cores round-robin over the independent kernel
instances of each phase (trailing rows for right-looking, update rows
within the active column for left-looking).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, ClassVar, Dict

from repro.exceptions import ConfigurationError
from repro.lu.ops import LUContext
from repro.model.machine import MulticoreMachine


class LUSchedule(ABC):
    """Base class of the blocked LU schedules."""

    name: ClassVar[str] = "abstract-lu"
    label: ClassVar[str] = "Abstract LU"

    def __init__(self, machine: MulticoreMachine, n: int) -> None:
        if n < 1:
            raise ConfigurationError(f"matrix order must be positive, got {n}")
        self.machine = machine
        self.n = n

    @abstractmethod
    def run(self, ctx: LUContext) -> None:
        """Emit the full factorization of the ``n × n`` block matrix."""

    def parameters(self) -> Dict[str, Any]:
        return {}

    @property
    def update_total(self) -> int:
        """Number of trailing-update GEMMs any correct schedule emits.

        ``Σ_k (n-1-k)² = n(n-1)(2n-1)/6``.
        """
        n = self.n
        return n * (n - 1) * (2 * n - 1) // 6

    @property
    def trsm_total(self) -> int:
        """Number of triangular solves: ``2 Σ_k (n-1-k) = n(n-1)``."""
        return self.n * (self.n - 1)


class RightLookingLU(LUSchedule):
    """Eager blocked LU: factor, solve panels, update everything."""

    name = "right-looking-lu"
    label = "Right-looking LU"

    def run(self, ctx: LUContext) -> None:
        n = self.n
        p = ctx.p
        for k in range(n):
            ctx.factor(0, k)
            for j in range(k + 1, n):
                ctx.trsm_u((j - k - 1) % p, k, j)
            for i in range(k + 1, n):
                ctx.trsm_l((i - k - 1) % p, i, k)
            # trailing updates: rows dealt to cores
            for i in range(k + 1, n):
                core = (i - k - 1) % p
                for j in range(k + 1, n):
                    ctx.update(core, i, j, k)


class LeftLookingLU(LUSchedule):
    """Lazy blocked LU: each block column absorbs all its updates at once."""

    name = "left-looking-lu"
    label = "Left-looking LU"

    def run(self, ctx: LUContext) -> None:
        n = self.n
        p = ctx.p
        for j in range(n):
            # replay history: panels k = 0 .. j-1 hit column j once each
            for k in range(j):
                ctx.trsm_u(k % p, k, j)
                for i in range(k + 1, n):
                    ctx.update((i - k - 1) % p, i, j, k)
            ctx.factor(0, j)
            for i in range(j + 1, n):
                ctx.trsm_l((i - j - 1) % p, i, j)


#: Registry of LU schedules by stable name.
LU_SCHEDULES = {cls.name: cls for cls in (RightLookingLU, LeftLookingLU)}
