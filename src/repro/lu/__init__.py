"""Blocked LU factorization on the multicore cache model (extension).

The paper's conclusion names LU factorization as the next kernel to
tackle on the two-level cache model.  This subpackage carries the
reproduction one step into that future work:

* :mod:`repro.lu.ops` — the block-operation contexts (counting and
  numeric) for the four LU block kernels: ``factor`` (diagonal LU),
  ``trsm_u`` / ``trsm_l`` (triangular solves producing a row of ``U`` /
  a column of ``L``) and ``update`` (the trailing GEMM);
* :mod:`repro.lu.schedules` — two schedules over those kernels:
  :class:`~repro.lu.schedules.RightLookingLU` (the classic eager
  variant, which re-touches the whole trailing submatrix at every step
  — the Outer-Product analogue) and
  :class:`~repro.lu.schedules.LeftLookingLU` (the lazy variant that
  pins each block column in the shared cache while every pending update
  is applied to it — the Maximum-Reuse analogue);
* :mod:`repro.lu.numeric` — numpy execution of the same schedules and
  end-to-end verification ``L · U = A`` (no pivoting; verification uses
  diagonally dominant matrices, for which pivot-free LU is stable);
* :mod:`repro.lu.runner` — one-call counting runs mirroring
  :func:`repro.sim.runner.run_experiment`.
"""

from repro.lu.ops import LUCountingContext, LUOpCounts
from repro.lu.schedules import LeftLookingLU, RightLookingLU, LU_SCHEDULES
from repro.lu.numeric import LUNumericContext, verify_lu_schedule
from repro.lu.runner import LUResult, run_lu

__all__ = [
    "LUCountingContext",
    "LUOpCounts",
    "LeftLookingLU",
    "RightLookingLU",
    "LU_SCHEDULES",
    "LUNumericContext",
    "verify_lu_schedule",
    "LUResult",
    "run_lu",
]
