"""One-call counting runs for LU schedules (mirrors repro.sim.runner)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Type, Union

from repro.cache.hierarchy import LRUHierarchy
from repro.cache.stats import HierarchyStats
from repro.exceptions import ConfigurationError
from repro.lu.ops import LUCountingContext, LUOpCounts
from repro.lu.schedules import LU_SCHEDULES, LUSchedule
from repro.model.machine import MulticoreMachine
from repro.sim.settings import Setting, get_setting


@dataclass
class LUResult:
    """Outcome of one LU counting run."""

    schedule: str
    setting: str
    machine: MulticoreMachine
    n: int
    stats: HierarchyStats
    ops: LUOpCounts

    @property
    def ms(self) -> int:
        return self.stats.ms

    @property
    def md(self) -> int:
        return self.stats.md

    @property
    def tdata(self) -> float:
        return self.stats.tdata(self.machine.sigma_s, self.machine.sigma_d)

    @property
    def ccr_s(self) -> float:
        """Shared misses per block-GEMM-equivalent of work."""
        return self.ms / self.ops.weighted_total()


def run_lu(
    schedule: Union[str, Type[LUSchedule]],
    machine: MulticoreMachine,
    n: int,
    setting: Union[str, Setting] = "lru",
    *,
    policy: str = "lru",
    inclusive: bool = False,
) -> LUResult:
    """Run one LU schedule through the LRU hierarchy and count misses.

    Only the LRU-family settings apply (the LU schedules carry no
    explicit IDEAL cache directives — they are counting/numeric
    schedules, per the extension's scope).
    """
    if isinstance(schedule, str):
        try:
            schedule = LU_SCHEDULES[schedule]
        except KeyError:
            raise ConfigurationError(
                f"unknown LU schedule {schedule!r}; valid: {sorted(LU_SCHEDULES)}"
            ) from None
    if isinstance(setting, str):
        setting = get_setting(setting)
    if setting.is_ideal:
        raise ConfigurationError(
            "LU schedules support the LRU-family settings only"
        )
    simulated = setting.simulated(machine)
    hierarchy = LRUHierarchy(
        machine.p, simulated.cs, simulated.cd, policy=policy, inclusive=inclusive
    )
    ctx = LUCountingContext(hierarchy)
    sched = schedule(setting.declared(machine), n)
    sched.run(ctx)
    return LUResult(
        schedule=sched.name,
        setting=setting.key,
        machine=machine,
        n=n,
        stats=hierarchy.snapshot(),
        ops=ctx.ops,
    )
