"""Block-operation contexts for LU schedules.

An LU schedule factors a single ``n × n`` block matrix *in place*, so
all blocks live in one matrix; block ``(i, j)`` is addressed with the
``MAT_A`` tag of :mod:`repro.cache.block`.  Four block kernels exist:

=========== ================= ====================== ==================
kernel      reads             writes                 flop weight (q³)
=========== ================= ====================== ==================
``factor``  (k,k)             (k,k)                  1/3
``trsm_u``  (k,k), (k,j)      (k,j)                  1/2
``trsm_l``  (k,k), (i,k)      (i,k)                  1/2
``update``  (i,k), (k,j)      (i,j) (read-modify)    1
=========== ================= ====================== ==================

The *flop weight* column normalizes the communication-to-computation
ratios: an ``update`` is one full block GEMM (2q³ flops, weight 1); the
triangular solves cost q³ (weight ½) and the in-place diagonal LU
2q³/3 (weight ⅓).

:class:`LUCountingContext` maps each kernel onto LRU-hierarchy touches
(the LU analogue of :class:`repro.sim.contexts.LRUContext`); numeric
execution lives in :mod:`repro.lu.numeric`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import List

from repro.cache.block import block_key, MAT_A
from repro.cache.hierarchy import LRUHierarchy
from repro.exceptions import ConfigurationError

#: Flop weights (units of q³ multiply-adds) per kernel.
FACTOR_WEIGHT = 1.0 / 3.0
TRSM_WEIGHT = 0.5
UPDATE_WEIGHT = 1.0


def lu_key(i: int, j: int) -> int:
    """Block id of the in-place matrix's block ``(i, j)``."""
    return block_key(MAT_A, i, j)


@dataclass
class LUOpCounts:
    """How many of each kernel a schedule emitted (per core)."""

    factor: List[int] = field(default_factory=list)
    trsm: List[int] = field(default_factory=list)
    update: List[int] = field(default_factory=list)

    @classmethod
    def zeros(cls, p: int) -> "LUOpCounts":
        return cls(factor=[0] * p, trsm=[0] * p, update=[0] * p)

    def weighted_total(self) -> float:
        """Total work in block-GEMM units across all cores."""
        return (
            FACTOR_WEIGHT * sum(self.factor)
            + TRSM_WEIGHT * sum(self.trsm)
            + UPDATE_WEIGHT * sum(self.update)
        )

    def totals(self) -> dict:
        return {
            "factor": sum(self.factor),
            "trsm": sum(self.trsm),
            "update": sum(self.update),
        }


class LUContext(ABC):
    """Interpreter of an LU schedule's kernel stream."""

    def __init__(self, p: int) -> None:
        if p < 1:
            raise ConfigurationError(f"need at least one core, got p={p}")
        self.p = p
        self.ops = LUOpCounts.zeros(p)

    @abstractmethod
    def factor(self, core: int, k: int) -> None:
        """In-place LU of diagonal block ``(k, k)``."""

    @abstractmethod
    def trsm_u(self, core: int, k: int, j: int) -> None:
        """``(k, j) ← L(k,k)⁻¹ · (k, j)`` — a block of ``U``."""

    @abstractmethod
    def trsm_l(self, core: int, i: int, k: int) -> None:
        """``(i, k) ← (i, k) · U(k,k)⁻¹`` — a block of ``L``."""

    @abstractmethod
    def update(self, core: int, i: int, j: int, k: int) -> None:
        """``(i, j) ← (i, j) − L(i,k) · U(k,j)`` — trailing GEMM."""


class LUCountingContext(LUContext):
    """Count cache misses of an LU schedule on an LRU hierarchy.

    Touch order per kernel follows the read-then-write convention of
    the matmul contexts: reads first, then the read-modify-write
    operand (marked dirty).
    """

    def __init__(self, hierarchy: LRUHierarchy) -> None:
        super().__init__(hierarchy.p)
        self.hierarchy = hierarchy
        self._touch = hierarchy.touch

    def factor(self, core: int, k: int) -> None:
        self._touch(core, lu_key(k, k), write=True)
        self.ops.factor[core] += 1

    def trsm_u(self, core: int, k: int, j: int) -> None:
        self._touch(core, lu_key(k, k))
        self._touch(core, lu_key(k, j), write=True)
        self.ops.trsm[core] += 1

    def trsm_l(self, core: int, i: int, k: int) -> None:
        self._touch(core, lu_key(k, k))
        self._touch(core, lu_key(i, k), write=True)
        self.ops.trsm[core] += 1

    def update(self, core: int, i: int, j: int, k: int) -> None:
        self._touch(core, lu_key(i, k))
        self._touch(core, lu_key(k, j))
        self._touch(core, lu_key(i, j), write=True)
        self.ops.update[core] += 1
