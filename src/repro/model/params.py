"""Cache-fitting parameters of the paper's §3.

The three Maximum-Reuse variants size their working sets with:

* ``λ`` — the largest integer with ``1 + λ + λ² ≤ CS`` (Algorithm 1
  stores a ``λ×λ`` block of ``C``, a ``λ`` row of ``B`` and one element
  of ``A`` in the shared cache);
* ``µ`` — the largest integer with ``1 + µ + µ² ≤ CD`` (Algorithm 2
  stores a ``µ×µ`` block of ``C``, a ``µ`` row fragment of ``B`` and one
  element of ``A`` in each distributed cache);
* ``(α, β)`` — the Tradeoff parameters with ``α² + 2αβ ≤ CS`` (an
  ``α×α`` block of ``C`` plus ``α×β`` of ``A`` and ``β×α`` of ``B`` in
  the shared cache).  The numerically optimal ``α`` given the bandwidth
  ratio is computed in :mod:`repro.analysis.tradeoff_opt`; this module
  provides the feasibility/rounding layer shared by algorithms and
  analysis.

The paper additionally constrains the *implemented* parameters: ``λ``
and ``α`` must divide the matrix order, and ``α`` must be a multiple of
``√p · µ`` so the ``α×α`` block of ``C`` tiles evenly over the core
grid.  The ``feasible_*`` helpers apply exactly that rounding, which is
also the effect the paper blames for Tradeoff's losses at q ∈ {64, 80}.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import ParameterError


def max_square_param(capacity: int) -> int:
    """Largest integer ``x ≥ 1`` with ``1 + x + x² ≤ capacity``.

    This is the generic form behind both ``λ`` (with ``capacity = CS``)
    and ``µ`` (with ``capacity = CD``).  Closed form:
    ``⌊ sqrt(capacity − 3/4) − 1/2 ⌋`` for ``capacity ≥ 3``.

    Raises
    ------
    ParameterError
        If ``capacity < 3`` — there is no room for even one block of
        each matrix.
    """
    if capacity < 3:
        raise ParameterError(
            f"capacity {capacity} cannot hold one block of each matrix (need >= 3)"
        )
    # Integer search from the closed form, guarded against float error.
    x = int(math.isqrt(4 * capacity - 3) - 1) // 2
    while 1 + (x + 1) + (x + 1) ** 2 <= capacity:
        x += 1
    while x > 1 and 1 + x + x * x > capacity:
        x -= 1
    if 1 + x + x * x > capacity:
        raise ParameterError(f"no feasible square parameter for capacity {capacity}")
    return x


def lambda_param(cs: int) -> int:
    """The paper's ``λ``: largest integer with ``1 + λ + λ² ≤ CS``."""
    return max_square_param(cs)


def mu_param(cd: int) -> int:
    """The paper's ``µ``: largest integer with ``1 + µ + µ² ≤ CD``."""
    return max_square_param(cd)


def largest_divisor_at_most(n: int, bound: int, multiple_of: int = 1) -> int:
    """Largest divisor of ``n`` that is ``≤ bound`` and a multiple of ``multiple_of``.

    Used to round the *planned* tile sides (``λ``, ``α``, ``√p·µ``) down
    to values that evenly tile the matrix, as the paper's implementation
    does.

    Raises
    ------
    ParameterError
        If no such divisor exists (e.g. ``multiple_of`` does not divide
        ``n`` at all, or ``bound < multiple_of``).
    """
    if n < 1 or bound < 1 or multiple_of < 1:
        raise ParameterError(
            f"invalid arguments n={n}, bound={bound}, multiple_of={multiple_of}"
        )
    best = 0
    d = 1
    while d * d <= n:
        if n % d == 0:
            for cand in (d, n // d):
                if cand <= bound and cand % multiple_of == 0 and cand > best:
                    best = cand
        d += 1
    if best == 0:
        raise ParameterError(
            f"no divisor of {n} is <= {bound} and a multiple of {multiple_of}"
        )
    return best


@dataclass(frozen=True)
class TradeoffParameters:
    """The (α, β) pair the Tradeoff algorithm actually runs with.

    ``alpha`` is the side of the ``C`` tile held in the shared cache,
    ``beta`` the depth of the ``A``/``B`` slabs loaded alongside it, and
    ``mu`` the side of the ``µ×µ`` sub-blocks dealt to the cores
    (normally :func:`mu_param` of ``CD``, reduced only when the minimal
    tile would overflow the shared cache).  ``alpha_num`` records the
    unrounded real-valued optimum for reporting the rounding loss.
    """

    alpha: int
    beta: int
    mu: int
    alpha_num: float

    def shared_footprint(self) -> int:
        """Blocks of shared cache used: ``α² + 2αβ``."""
        return self.alpha * self.alpha + 2 * self.alpha * self.beta


def beta_for_alpha(cs: int, alpha: int) -> int:
    """Largest ``β ≥ 1`` with ``α² + 2αβ ≤ CS`` (clamped to 1).

    The paper sets ``β = max(⌊(CS − α²) / (2α)⌋, 1)``: even when the
    ``C`` tile leaves no slack, slabs of depth one are loaded (they then
    overflow conceptually; the simulator's LRU policy absorbs this, and
    in IDEAL mode the caller must pick a smaller ``α``).
    """
    if alpha < 1:
        raise ParameterError(f"alpha must be positive, got {alpha}")
    return max((cs - alpha * alpha) // (2 * alpha), 1)


def alpha_max(cs: int) -> float:
    """Upper end of the feasible α range: ``√(CS + 1) − 1``.

    This is the largest real ``α`` with ``α² + 2α ≤ CS``, i.e. leaving
    room for slabs of depth ``β = 1``.
    """
    return math.sqrt(cs + 1.0) - 1.0


def feasible_alpha(
    m: int,
    p: int,
    mu: int,
    alpha_target: float,
    cs: int,
) -> int:
    """Round a target α down to an implementable tile side.

    The implemented ``α`` must (i) divide the matrix order ``m``,
    (ii) be a multiple of ``√p · µ`` so each core owns whole ``µ×µ``
    sub-tiles of the ``α×α`` block, and (iii) satisfy the capacity
    constraint ``α² + 2α ≤ CS``.

    Raises
    ------
    ParameterError
        If ``p`` is not a perfect square or no feasible α exists
        (typically ``√p·µ`` does not divide ``m``).
    """
    side = math.isqrt(p)
    if side * side != p:
        raise ParameterError(f"feasible_alpha requires a square core count, got p={p}")
    unit = side * mu
    bound = min(int(alpha_target), int(alpha_max(cs)))
    if bound < unit:
        bound = unit  # fall back to the minimal legal tile
    alpha = largest_divisor_at_most(m, bound, multiple_of=unit)
    if alpha * alpha + 2 * alpha > cs:
        raise ParameterError(
            f"even the smallest implementable alpha={alpha} overflows CS={cs}"
        )
    return alpha
