"""Communication lower bounds (paper §2.3).

The paper extends the Irony–Toledo–Tiskin bound, itself built on the
Loomis–Whitney inequality, to the two-level hierarchy.  For a computing
system with a cache of ``Z`` blocks, any conventional matrix-product
schedule has a communication-to-computation ratio (both in block units)

    CCR ≥ sqrt(27 / (8 Z)).

Specialized to the two levels, with ``K = mnz`` elementary block
multiply-adds overall:

* shared level:       ``MS ≥ mnz · sqrt(27 / (8 CS))``
* distributed level:  ``MD ≥ (mnz / p) · sqrt(27 / (8 CD))``
  (for algorithms whose work and misses are balanced across cores, the
  regime of every algorithm in the paper),
* data access time:   ``Tdata ≥ mnz · ( sqrt(27/(8 CS))/σS
  + sqrt(27/(8 CD))/(p σD) )``.

These are exactly the "Lower Bound" series plotted in Figs. 7–12.

Beyond the paper, this module also carries the *tight* bounds the
checker's optimality-gap certificate divides by:

* **Smith–Lowery–Langou–van de Geijn** (arXiv:1702.02017) close the
  Loomis–Whitney constant from ``√(27/8) ≈ 1.84`` to ``2``: any
  conventional matrix product on a cache of ``Z`` blocks moves at least
  ``2·mnz/√Z − 2·Z`` blocks.  Specialized to the two levels:

  - shared:       ``MS ≥ 2·mnz/√CS − 2·CS``
  - distributed:  ``MD ≥ 2·(mnz/p)/√CD − 2·CD`` — valid for the *max*
    per-core count unconditionally, because some core executes at least
    ``mnz/p`` multiply-adds and the bound is monotone in the work.

  The SLLvdG theorem counts transfers in both directions; in this
  schedule model every transferred block is a load (computes require
  residency, so a writeback is always preceded by a load) and every
  paper schedule's load traffic clears the two-term bound with margin —
  a counted value below it signals a broken counting model, exactly
  like ``cost/below-lower-bound``.

* **Al Daas–Ballard–Grigori–Kumar–Rouse** (arXiv:2205.13407) give
  memory-*independent* parallel bounds: a processor that executes ``F``
  multiply-adds touches ``≥ 3·F^(2/3)`` distinct blocks (Loomis–Whitney
  + AM–GM), each of which a cold cache must load at least once —
  ``MD ≥ 3·(mnz/p)^(2/3)`` regardless of ``CD``.

* **Compulsory traffic**: every block of ``A``, ``B`` and ``C`` enters
  the shared cache at least once, so ``MS ≥ mz + zn + mn`` whatever
  ``CS`` is.

:func:`shared_bounds` / :func:`distributed_bounds` bundle each level's
bounds; their ``best`` is what the gap certificate divides by.
"""

from __future__ import annotations

import math
from typing import NamedTuple

from repro.exceptions import ConfigurationError
from repro.model.machine import MulticoreMachine


class LoomisWhitneyOptimum(NamedTuple):
    """Solution of the paper's §2.3.1 optimization problem.

    Maximize ``k`` subject to ``k ≤ √(ηνξ)`` and ``η + ν + ξ ≤ 2``: the
    most computation ``Z`` cache misses can feed, per matrix share.
    """

    eta: float
    nu: float
    xi: float
    k: float


def loomis_whitney_optimum() -> LoomisWhitneyOptimum:
    """The closed-form optimum: ``η = ν = ξ = 2/3``, ``k = √(8/27)``.

    By AM–GM, ``ηνξ`` under ``η+ν+ξ ≤ 2`` is maximized at the symmetric
    point; :func:`loomis_whitney_optimum_numeric` cross-checks this with
    a numeric optimizer in the tests.
    """
    share = 2.0 / 3.0
    return LoomisWhitneyOptimum(share, share, share, math.sqrt(8.0 / 27.0))


def loomis_whitney_optimum_numeric() -> LoomisWhitneyOptimum:
    """Solve the §2.3.1 program numerically (scipy), as a cross-check."""
    from scipy.optimize import minimize

    def neg_k(v):
        eta, nu, xi = v
        return -math.sqrt(max(eta * nu * xi, 0.0))

    result = minimize(
        neg_k,
        x0=[0.5, 0.5, 0.5],
        bounds=[(0.0, 2.0)] * 3,
        constraints=[
            {"type": "ineq", "fun": lambda v: 2.0 - (v[0] + v[1] + v[2])}
        ],
        method="SLSQP",
    )
    eta, nu, xi = result.x
    return LoomisWhitneyOptimum(eta, nu, xi, -result.fun)


def ccr_lower_bound(z: int) -> float:
    """Lower bound on the CCR for a cache of ``z`` blocks: ``sqrt(27/(8z))``."""
    if z < 1:
        raise ConfigurationError(f"cache size must be positive, got {z}")
    return math.sqrt(27.0 / (8.0 * z))


def shared_misses_lower_bound(machine: MulticoreMachine, m: int, n: int, z: int) -> float:
    """Lower bound on shared-cache misses ``MS`` for ``C = A×B``.

    ``m``, ``n``, ``z`` are the matrix dimensions in blocks; the bound is
    ``mnz · sqrt(27 / (8 CS))``.
    """
    _check_dims(m, n, z)
    return m * n * z * ccr_lower_bound(machine.cs)


def distributed_misses_lower_bound(
    machine: MulticoreMachine, m: int, n: int, z: int
) -> float:
    """Lower bound on the max per-core distributed misses ``MD``.

    Valid for schedules whose computation and misses are balanced over
    the ``p`` cores: ``(mnz/p) · sqrt(27 / (8 CD))``.
    """
    _check_dims(m, n, z)
    return m * n * z / machine.p * ccr_lower_bound(machine.cd)


def tdata_lower_bound(machine: MulticoreMachine, m: int, n: int, z: int) -> float:
    """Lower bound on ``Tdata = MS/σS + MD/σD`` (balanced schedules)."""
    _check_dims(m, n, z)
    return (
        shared_misses_lower_bound(machine, m, n, z) / machine.sigma_s
        + distributed_misses_lower_bound(machine, m, n, z) / machine.sigma_d
    )


def tight_shared_misses_lower_bound(
    machine: MulticoreMachine, m: int, n: int, z: int
) -> float:
    """SLLvdG tight bound on ``MS``: ``max(0, 2·mnz/√CS − 2·CS)``.

    Asymptotically stronger than the Loomis–Whitney bound (constant 2
    vs ``√(27/8)``) but weaker on small problems because of the
    ``−2·CS`` boundary term — it crosses above Loomis–Whitney once
    ``mnz ≥ 2·CS^1.5 / (2 − √(27/8))``.  Consumers should take the max
    over both (:func:`shared_bounds`).
    """
    _check_dims(m, n, z)
    if machine.cs < 1:
        raise ConfigurationError(f"cache size must be positive, got {machine.cs}")
    return max(0.0, 2.0 * m * n * z / math.sqrt(machine.cs) - 2.0 * machine.cs)


def tight_distributed_misses_lower_bound(
    machine: MulticoreMachine, m: int, n: int, z: int
) -> float:
    """SLLvdG tight bound on the max per-core ``MD``.

    ``max(0, 2·(mnz/p)/√CD − 2·CD)``: some core executes at least
    ``mnz/p`` of the ``mnz`` multiply-adds, and the sequential bound is
    monotone in the work, so — unlike the balanced-schedule
    Loomis–Whitney specialization — this needs no balance assumption.
    """
    _check_dims(m, n, z)
    if machine.cd < 1:
        raise ConfigurationError(f"cache size must be positive, got {machine.cd}")
    per_core = m * n * z / machine.p
    return max(0.0, 2.0 * per_core / math.sqrt(machine.cd) - 2.0 * machine.cd)


def memory_independent_distributed_lower_bound(
    machine: MulticoreMachine, m: int, n: int, z: int
) -> float:
    """Al Daas et al. memory-independent bound: ``MD ≥ 3·(mnz/p)^(2/3)``.

    A core executing ``F`` multiply-adds touches ``|A|·|B|·|C| ≥ F²``
    distinct blocks per matrix face (Loomis–Whitney), hence
    ``|A|+|B|+|C| ≥ 3·F^(2/3)`` by AM–GM; cold distributed caches load
    each at least once.  Independent of ``CD`` — the floor a bigger
    cache can never beat.
    """
    _check_dims(m, n, z)
    return 3.0 * (m * n * z / machine.p) ** (2.0 / 3.0)


def compulsory_shared_lower_bound(
    machine: MulticoreMachine, m: int, n: int, z: int
) -> float:
    """Compulsory shared traffic: ``mz + zn + mn`` — every block once.

    Every block of ``A`` (m·z), ``B`` (z·n) and ``C`` (m·n) is an
    operand of some compute and the presence contract requires operands
    resident in the shared cache, which starts cold.
    """
    del machine  # capacity-independent; signature symmetry with the others
    _check_dims(m, n, z)
    return float(m * z + z * n + m * n)


class SharedBounds(NamedTuple):
    """Every shared-level lower bound on ``MS`` for one cell."""

    loomis_whitney: float
    tight: float
    compulsory: float

    @property
    def best(self) -> float:
        """The strongest (largest) of the shared-level bounds."""
        return max(self.loomis_whitney, self.tight, self.compulsory)

    @property
    def binding(self) -> str:
        """Name of the bound that attains :attr:`best`."""
        pairs = (
            ("loomis-whitney", self.loomis_whitney),
            ("tight", self.tight),
            ("compulsory", self.compulsory),
        )
        return max(pairs, key=lambda pair: pair[1])[0]


class DistributedBounds(NamedTuple):
    """Every distributed-level lower bound on the max per-core ``MD``."""

    loomis_whitney: float
    tight: float
    memory_independent: float

    @property
    def best(self) -> float:
        """The strongest (largest) of the distributed-level bounds."""
        return max(self.loomis_whitney, self.tight, self.memory_independent)

    @property
    def binding(self) -> str:
        """Name of the bound that attains :attr:`best`."""
        pairs = (
            ("loomis-whitney", self.loomis_whitney),
            ("tight", self.tight),
            ("memory-independent", self.memory_independent),
        )
        return max(pairs, key=lambda pair: pair[1])[0]


def shared_bounds(machine: MulticoreMachine, m: int, n: int, z: int) -> SharedBounds:
    """All shared-level bounds for one cell, ready for the gap report."""
    return SharedBounds(
        loomis_whitney=shared_misses_lower_bound(machine, m, n, z),
        tight=tight_shared_misses_lower_bound(machine, m, n, z),
        compulsory=compulsory_shared_lower_bound(machine, m, n, z),
    )


def distributed_bounds(
    machine: MulticoreMachine, m: int, n: int, z: int
) -> DistributedBounds:
    """All distributed-level bounds for one cell."""
    return DistributedBounds(
        loomis_whitney=distributed_misses_lower_bound(machine, m, n, z),
        tight=tight_distributed_misses_lower_bound(machine, m, n, z),
        memory_independent=memory_independent_distributed_lower_bound(
            machine, m, n, z
        ),
    )


def _check_dims(m: int, n: int, z: int) -> None:
    if m < 1 or n < 1 or z < 1:
        raise ConfigurationError(
            f"matrix dimensions must be positive, got m={m}, n={n}, z={z}"
        )
