"""Communication lower bounds (paper §2.3).

The paper extends the Irony–Toledo–Tiskin bound, itself built on the
Loomis–Whitney inequality, to the two-level hierarchy.  For a computing
system with a cache of ``Z`` blocks, any conventional matrix-product
schedule has a communication-to-computation ratio (both in block units)

    CCR ≥ sqrt(27 / (8 Z)).

Specialized to the two levels, with ``K = mnz`` elementary block
multiply-adds overall:

* shared level:       ``MS ≥ mnz · sqrt(27 / (8 CS))``
* distributed level:  ``MD ≥ (mnz / p) · sqrt(27 / (8 CD))``
  (for algorithms whose work and misses are balanced across cores, the
  regime of every algorithm in the paper),
* data access time:   ``Tdata ≥ mnz · ( sqrt(27/(8 CS))/σS
  + sqrt(27/(8 CD))/(p σD) )``.

These are exactly the "Lower Bound" series plotted in Figs. 7–12.
"""

from __future__ import annotations

import math
from typing import NamedTuple

from repro.exceptions import ConfigurationError
from repro.model.machine import MulticoreMachine


class LoomisWhitneyOptimum(NamedTuple):
    """Solution of the paper's §2.3.1 optimization problem.

    Maximize ``k`` subject to ``k ≤ √(ηνξ)`` and ``η + ν + ξ ≤ 2``: the
    most computation ``Z`` cache misses can feed, per matrix share.
    """

    eta: float
    nu: float
    xi: float
    k: float


def loomis_whitney_optimum() -> LoomisWhitneyOptimum:
    """The closed-form optimum: ``η = ν = ξ = 2/3``, ``k = √(8/27)``.

    By AM–GM, ``ηνξ`` under ``η+ν+ξ ≤ 2`` is maximized at the symmetric
    point; :func:`loomis_whitney_optimum_numeric` cross-checks this with
    a numeric optimizer in the tests.
    """
    share = 2.0 / 3.0
    return LoomisWhitneyOptimum(share, share, share, math.sqrt(8.0 / 27.0))


def loomis_whitney_optimum_numeric() -> LoomisWhitneyOptimum:
    """Solve the §2.3.1 program numerically (scipy), as a cross-check."""
    from scipy.optimize import minimize

    def neg_k(v):
        eta, nu, xi = v
        return -math.sqrt(max(eta * nu * xi, 0.0))

    result = minimize(
        neg_k,
        x0=[0.5, 0.5, 0.5],
        bounds=[(0.0, 2.0)] * 3,
        constraints=[
            {"type": "ineq", "fun": lambda v: 2.0 - (v[0] + v[1] + v[2])}
        ],
        method="SLSQP",
    )
    eta, nu, xi = result.x
    return LoomisWhitneyOptimum(eta, nu, xi, -result.fun)


def ccr_lower_bound(z: int) -> float:
    """Lower bound on the CCR for a cache of ``z`` blocks: ``sqrt(27/(8z))``."""
    if z < 1:
        raise ConfigurationError(f"cache size must be positive, got {z}")
    return math.sqrt(27.0 / (8.0 * z))


def shared_misses_lower_bound(machine: MulticoreMachine, m: int, n: int, z: int) -> float:
    """Lower bound on shared-cache misses ``MS`` for ``C = A×B``.

    ``m``, ``n``, ``z`` are the matrix dimensions in blocks; the bound is
    ``mnz · sqrt(27 / (8 CS))``.
    """
    _check_dims(m, n, z)
    return m * n * z * ccr_lower_bound(machine.cs)


def distributed_misses_lower_bound(
    machine: MulticoreMachine, m: int, n: int, z: int
) -> float:
    """Lower bound on the max per-core distributed misses ``MD``.

    Valid for schedules whose computation and misses are balanced over
    the ``p`` cores: ``(mnz/p) · sqrt(27 / (8 CD))``.
    """
    _check_dims(m, n, z)
    return m * n * z / machine.p * ccr_lower_bound(machine.cd)


def tdata_lower_bound(machine: MulticoreMachine, m: int, n: int, z: int) -> float:
    """Lower bound on ``Tdata = MS/σS + MD/σD`` (balanced schedules)."""
    _check_dims(m, n, z)
    return (
        shared_misses_lower_bound(machine, m, n, z) / machine.sigma_s
        + distributed_misses_lower_bound(machine, m, n, z) / machine.sigma_d
    )


def _check_dims(m: int, n: int, z: int) -> None:
    if m < 1 or n < 1 or z < 1:
        raise ConfigurationError(
            f"matrix dimensions must be positive, got m={m}, n={n}, z={z}"
        )
