"""The multicore machine model of the paper (§2.1).

A :class:`MulticoreMachine` describes the platform every algorithm and
simulation runs against:

* ``p`` identical cores;
* one *shared* cache of capacity ``cs`` blocks with bandwidth
  ``sigma_s`` (blocks per time unit, memory → shared cache);
* ``p`` *distributed* (private) caches of capacity ``cd`` blocks with
  bandwidth ``sigma_d`` each (shared → distributed);
* a block size of ``q × q`` matrix coefficients — the atomic unit of
  both data movement and computation.

Capacities are expressed in *blocks*, exactly as in the paper, so that
cache-fitting parameters (``λ``, ``µ``, ``α``, ``β``) read off directly.

The module also ships the cache configurations of the paper's §4.1
(quad-core, 8 MB shared cache, four 256 KB private caches, 8-byte
coefficients) as :data:`PRESETS`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict

from repro.exceptions import ConfigurationError

#: Bytes per matrix coefficient assumed by the paper's configurations
#: (double precision).
COEFFICIENT_BYTES = 8


@dataclass(frozen=True)
class MulticoreMachine:
    """Immutable description of a multicore platform.

    Parameters
    ----------
    p:
        Number of cores (``p >= 1``).  Algorithm 2 and Tradeoff lay the
        cores out on a ``√p × √p`` grid and therefore require a square
        ``p``; the machine itself does not.
    cs:
        Shared-cache capacity in blocks.
    cd:
        Distributed-cache capacity in blocks (per core).
    sigma_s:
        Bandwidth of the shared cache in blocks per time unit.
    sigma_d:
        Bandwidth of each distributed cache in blocks per time unit.
    q:
        Side of the square coefficient blocks (informational; every
        quantity in the simulator is already in block units).
    name:
        Optional human-readable label used in reports.
    """

    p: int
    cs: int
    cd: int
    sigma_s: float = 1.0
    sigma_d: float = 1.0
    q: int = 32
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.p < 1:
            raise ConfigurationError(f"need at least one core, got p={self.p}")
        if self.cs < 1 or self.cd < 1:
            raise ConfigurationError(
                f"cache capacities must be positive, got cs={self.cs}, cd={self.cd}"
            )
        if self.cs < self.p * self.cd:
            raise ConfigurationError(
                "inclusive hierarchy requires cs >= p*cd, got "
                f"cs={self.cs} < p*cd={self.p * self.cd}"
            )
        if self.cd < 3:
            raise ConfigurationError(
                "a distributed cache needs room for one block of each of "
                f"A, B and C (cd >= 3), got cd={self.cd}"
            )
        if self.sigma_s <= 0 or self.sigma_d <= 0:
            raise ConfigurationError(
                f"bandwidths must be positive, got sigma_s={self.sigma_s}, "
                f"sigma_d={self.sigma_d}"
            )
        if self.q < 1:
            raise ConfigurationError(f"block side must be positive, got q={self.q}")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def grid_side(self) -> int:
        """Side of the ``√p × √p`` core grid, if ``p`` is a perfect square.

        Raises
        ------
        ConfigurationError
            If ``p`` is not a perfect square (needed by Algorithm 2 and
            the Tradeoff algorithm).
        """
        side = math.isqrt(self.p)
        if side * side != self.p:
            raise ConfigurationError(
                f"a square core grid requires a perfect-square p, got p={self.p}"
            )
        return side

    @property
    def is_square_grid(self) -> bool:
        """Whether the cores can form a square ``√p × √p`` grid."""
        side = math.isqrt(self.p)
        return side * side == self.p

    @property
    def block_bytes(self) -> int:
        """Size of one ``q × q`` coefficient block in bytes."""
        return self.q * self.q * COEFFICIENT_BYTES

    @property
    def shared_bytes(self) -> int:
        """Shared-cache capacity in bytes."""
        return self.cs * self.block_bytes

    @property
    def distributed_bytes(self) -> int:
        """Per-core distributed-cache capacity in bytes."""
        return self.cd * self.block_bytes

    @property
    def r(self) -> float:
        """Bandwidth ratio ``r = σS / (σS + σD)`` used in Fig. 12."""
        return self.sigma_s / (self.sigma_s + self.sigma_d)

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    def with_bandwidth_ratio(self, r: float, total: float = 2.0) -> "MulticoreMachine":
        """Return a copy whose bandwidths realize ratio ``r``.

        ``r = σS / (σS + σD)`` with ``σS + σD = total``.  ``r`` must lie
        strictly between 0 and 1 since both bandwidths must stay
        positive.
        """
        if not 0.0 < r < 1.0:
            raise ConfigurationError(f"bandwidth ratio must be in (0, 1), got {r}")
        return replace(self, sigma_s=r * total, sigma_d=(1.0 - r) * total)

    def with_halved_caches(self) -> "MulticoreMachine":
        """Return a copy with both cache capacities halved (floor).

        This is the machine *declared to the algorithm* under the
        paper's LRU-50 setting; the simulator itself keeps the full
        capacities.
        """
        return replace(self, cs=max(1, self.cs // 2), cd=max(3, self.cd // 2))

    def with_doubled_caches(self) -> "MulticoreMachine":
        """Return a copy with both cache capacities doubled.

        Used by the LRU(2·C) experiments of Figs. 4–6, which simulate a
        double-size LRU cache while the algorithm still plans for the
        original size.
        """
        return replace(self, cs=2 * self.cs, cd=2 * self.cd)

    @staticmethod
    def from_bytes(
        p: int,
        shared_bytes: int,
        distributed_bytes: int,
        q: int,
        data_fraction: float = 1.0,
        sigma_s: float = 1.0,
        sigma_d: float = 1.0,
        name: str = "",
    ) -> "MulticoreMachine":
        """Build a machine from byte-sized caches, like the paper's §4.1.

        ``data_fraction`` models the share of the distributed cache
        available to data (the paper uses ⅔, or ½ under the pessimistic
        assumption, the rest holding instructions).  The shared cache is
        assumed fully available to data.
        """
        if not 0.0 < data_fraction <= 1.0:
            raise ConfigurationError(
                f"data_fraction must be in (0, 1], got {data_fraction}"
            )
        block = q * q * COEFFICIENT_BYTES
        cs = shared_bytes // block
        cd = int(distributed_bytes * data_fraction) // block
        return MulticoreMachine(
            p=p, cs=cs, cd=cd, sigma_s=sigma_s, sigma_d=sigma_d, q=q, name=name
        )


def _paper_machine(q: int, cs: int, cd: int, name: str) -> MulticoreMachine:
    """A §4.1 quad-core preset with the paper's stated block capacities."""
    return MulticoreMachine(p=4, cs=cs, cd=cd, sigma_s=1.0, sigma_d=1.0, q=q, name=name)


#: The six cache configurations of the paper's §4.1 (quad-core, 8 MB
#: shared cache; the distributed capacity depends on the block size
#: ``q`` and on whether data occupies two thirds — optimistic — or one
#: half — pessimistic — of each 256 KB private cache).  Keys follow the
#: figure captions: ``q32`` ↔ ``CS=977``, etc.
PRESETS: Dict[str, MulticoreMachine] = {
    "q32": _paper_machine(32, 977, 21, "q32 (CS=977, CD=21)"),
    "q32-pessimistic": _paper_machine(32, 977, 16, "q32 pessimistic (CS=977, CD=16)"),
    "q64": _paper_machine(64, 245, 6, "q64 (CS=245, CD=6)"),
    "q64-pessimistic": _paper_machine(64, 245, 4, "q64 pessimistic (CS=245, CD=4)"),
    "q80": _paper_machine(80, 157, 4, "q80 (CS=157, CD=4)"),
    "q80-pessimistic": _paper_machine(80, 157, 3, "q80 pessimistic (CS=157, CD=3)"),
}


def preset(key: str) -> MulticoreMachine:
    """Look up one of the paper's §4.1 machine presets by key.

    Raises
    ------
    ConfigurationError
        If ``key`` names no preset; the message lists valid keys.
    """
    try:
        return PRESETS[key]
    except KeyError:
        raise ConfigurationError(
            f"unknown preset {key!r}; valid presets: {sorted(PRESETS)}"
        ) from None
