"""Machine model, algorithm parameters and communication lower bounds.

This subpackage is the analytical half of the reproduction: it captures
the multicore model of the paper's §2 (:mod:`repro.model.machine`), the
cache-fitting parameters ``λ``, ``µ``, ``α``, ``β`` of §3
(:mod:`repro.model.params`) and the Loomis–Whitney communication lower
bounds of §2.3 (:mod:`repro.model.bounds`).
"""

from repro.model.machine import MulticoreMachine, PRESETS, preset
from repro.model.params import (
    lambda_param,
    mu_param,
    max_square_param,
    largest_divisor_at_most,
    feasible_alpha,
    TradeoffParameters,
)
from repro.model.bounds import (
    ccr_lower_bound,
    shared_misses_lower_bound,
    distributed_misses_lower_bound,
    tdata_lower_bound,
)

__all__ = [
    "MulticoreMachine",
    "PRESETS",
    "preset",
    "lambda_param",
    "mu_param",
    "max_square_param",
    "largest_divisor_at_most",
    "feasible_alpha",
    "TradeoffParameters",
    "ccr_lower_bound",
    "shared_misses_lower_bound",
    "distributed_misses_lower_bound",
    "tdata_lower_bound",
]
