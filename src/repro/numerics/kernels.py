"""Block-level compute kernels.

The only kernel the algorithms need is the block fused multiply-add
``C_blk += A_blk @ B_blk``; a blocked reference product built on it
serves as an independent check of :class:`BlockMatrix` plumbing.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ScheduleError
from repro.numerics.blockmatrix import BlockMatrix


def block_fma(c_blk: np.ndarray, a_blk: np.ndarray, b_blk: np.ndarray) -> None:
    """In-place ``c_blk += a_blk @ b_blk`` (the per-block DGEMM call).

    Uses :func:`numpy.matmul`'s ``out=`` path through a temporary-free
    accumulation; shapes must already agree (q×q blocks).
    """
    if a_blk.shape[1] != b_blk.shape[0] or c_blk.shape != (
        a_blk.shape[0],
        b_blk.shape[1],
    ):
        raise ScheduleError(
            f"block shape mismatch: C{c_blk.shape} += A{a_blk.shape} @ B{b_blk.shape}"
        )
    c_blk += a_blk @ b_blk


def blocked_reference_product(a: BlockMatrix, b: BlockMatrix) -> BlockMatrix:
    """Plain triple-loop blocked product (independent reference).

    Deliberately naive — it is the oracle the fancy schedules are
    compared against in tests, alongside ``a @ b`` via numpy.
    """
    if a.cols != b.rows or a.q != b.q:
        raise ScheduleError(
            f"cannot multiply {a.shape_blocks} (q={a.q}) by {b.shape_blocks} (q={b.q})"
        )
    c = BlockMatrix(a.rows, b.cols, a.q)
    for i in range(a.rows):
        for j in range(b.cols):
            c_blk = c.block(i, j)
            for k in range(a.cols):
                block_fma(c_blk, a.block(i, k), b.block(k, j))
    return c
