"""Numeric substrate: real block matrices and schedule verification.

The cache simulator counts; this subpackage *computes*.  A
:class:`~repro.numerics.blockmatrix.BlockMatrix` wraps a numpy array
partitioned into ``q×q`` blocks, and
:class:`~repro.numerics.executor.NumericContext` interprets an
algorithm's schedule as actual block arithmetic so that every schedule
can be proven to compute ``C = A·B`` exactly
(:func:`~repro.numerics.executor.verify_schedule`).
"""

from repro.numerics.blockmatrix import BlockMatrix
from repro.numerics.executor import NumericContext, execute_numeric, verify_schedule
from repro.numerics.kernels import block_fma, blocked_reference_product

__all__ = [
    "BlockMatrix",
    "NumericContext",
    "execute_numeric",
    "verify_schedule",
    "block_fma",
    "blocked_reference_product",
]
