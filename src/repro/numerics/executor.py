"""Numeric interpretation of algorithm schedules.

:class:`NumericContext` executes every ``compute`` of a schedule as real
block arithmetic on :class:`~repro.numerics.blockmatrix.BlockMatrix`
operands.  :func:`verify_schedule` is the proof obligation every
algorithm must meet: running its schedule numerically yields exactly
``A @ B``, for any machine and any (possibly ragged) dimensions.

The context also enforces the *accumulation discipline*: an elementary
compute must name blocks whose coordinates are consistent
(``C[i,j] += A[i,k] · B[k,j]``) and each ``(i, j, k)`` triple must occur
exactly once — double-emitted or skipped updates are schedule bugs that
plain numeric comparison might miss on special matrices, so they raise
:class:`~repro.exceptions.ScheduleError` immediately.
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

from repro.algorithms.base import ExecutionContext, MatmulAlgorithm
from repro.cache.block import MAT_A, MAT_B, MAT_C, decode_key, key_name
from repro.exceptions import ScheduleError
from repro.numerics.blockmatrix import BlockMatrix
from repro.numerics.kernels import block_fma


class NumericContext(ExecutionContext):
    """Interpret a schedule as actual block arithmetic."""

    explicit = False

    def __init__(
        self,
        p: int,
        a: BlockMatrix,
        b: BlockMatrix,
        c: Optional[BlockMatrix] = None,
        track_triples: bool = True,
    ) -> None:
        super().__init__(p)
        if a.cols != b.rows or a.q != b.q:
            raise ScheduleError(
                f"incompatible operands {a.shape_blocks} and {b.shape_blocks}"
            )
        self.a = a
        self.b = b
        self.c = c if c is not None else BlockMatrix(a.rows, b.cols, a.q)
        self.track_triples = track_triples
        self.seen: Set[Tuple[int, int, int]] = set()

    def compute(self, core: int, ckey: int, akey: int, bkey: int) -> None:
        mat_a, i_a, k_a = decode_key(akey)
        mat_b, k_b, j_b = decode_key(bkey)
        mat_c, i_c, j_c = decode_key(ckey)
        if (mat_a, mat_b, mat_c) != (MAT_A, MAT_B, MAT_C):
            raise ScheduleError(
                "compute expects operands from A, B and C, got "
                f"{key_name(akey)}, {key_name(bkey)}, {key_name(ckey)}"
            )
        if i_a != i_c or k_a != k_b or j_b != j_c:
            raise ScheduleError(
                f"inconsistent coordinates: C[{i_c},{j_c}] += "
                f"A[{i_a},{k_a}] · B[{k_b},{j_b}]"
            )
        if self.track_triples:
            triple = (i_c, j_c, k_a)
            if triple in self.seen:
                raise ScheduleError(
                    f"update (i={i_c}, j={j_c}, k={k_a}) emitted twice"
                )
            self.seen.add(triple)
        block_fma(self.c.block(i_c, j_c), self.a.block(i_a, k_a), self.b.block(k_b, j_b))
        self.comp[core] += 1

    def assert_complete(self) -> None:
        """Verify every (i, j, k) update was emitted exactly once."""
        if not self.track_triples:
            raise ScheduleError("completeness requires track_triples=True")
        expected = self.a.rows * self.b.cols * self.a.cols
        if len(self.seen) != expected:
            raise ScheduleError(
                f"schedule emitted {len(self.seen)} distinct updates, "
                f"expected {expected}"
            )


def execute_numeric(
    alg: MatmulAlgorithm,
    a: BlockMatrix,
    b: BlockMatrix,
    q: int = 4,
) -> BlockMatrix:
    """Run a schedule numerically and return the computed ``C``."""
    ctx = NumericContext(alg.machine.p, a, b)
    alg.run(ctx)
    ctx.assert_complete()
    return ctx.c


def verify_schedule(
    alg: MatmulAlgorithm,
    q: int = 4,
    seed: Optional[int] = 0,
    rtol: float = 1e-9,
) -> BlockMatrix:
    """Prove a schedule computes ``A @ B`` on random matrices.

    Draws random ``A`` (``m×z`` blocks) and ``B`` (``z×n``), executes
    the schedule numerically, checks completeness and compares against
    numpy's product.  Returns the computed ``C`` (handy for follow-up
    assertions).  Raises :class:`~repro.exceptions.ScheduleError` on any
    discrepancy.
    """
    a = BlockMatrix.random(alg.m, alg.z, q, seed=seed)
    b = BlockMatrix.random(alg.z, alg.n, q, None if seed is None else seed + 1)
    c = execute_numeric(alg, a, b, q)
    reference = a @ b
    if not c.allclose(reference, rtol=rtol, atol=rtol):
        raise ScheduleError(
            f"{alg.name} schedule computed a wrong product for "
            f"m={alg.m}, n={alg.n}, z={alg.z}"
        )
    return c
