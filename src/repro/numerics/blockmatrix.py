"""Block-partitioned matrices over numpy.

The paper manipulates square ``q×q`` blocks of coefficients "to harness
the power of BLAS routines"; :class:`BlockMatrix` is exactly that view:
a 2-D numpy array of shape ``(rows·q, cols·q)`` addressed in block
coordinates.  Block views are numpy slices (no copies — per the HPC
guide, views not copies), so accumulating into a block updates the
backing array in place.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError


class BlockMatrix:
    """A dense matrix addressed in ``q×q`` coefficient blocks.

    Parameters
    ----------
    rows, cols:
        Extent in blocks.
    q:
        Block side in coefficients.
    data:
        Optional backing array of shape ``(rows·q, cols·q)``; a zeroed
        array is allocated when omitted.  The array is used as-is (no
        copy), so callers can wrap existing data.
    """

    def __init__(
        self,
        rows: int,
        cols: int,
        q: int = 4,
        data: Optional[np.ndarray] = None,
    ) -> None:
        if rows < 1 or cols < 1 or q < 1:
            raise ConfigurationError(
                f"invalid block matrix shape rows={rows}, cols={cols}, q={q}"
            )
        self.rows = rows
        self.cols = cols
        self.q = q
        shape = (rows * q, cols * q)
        if data is None:
            data = np.zeros(shape, dtype=np.float64)
        else:
            if data.shape != shape:
                raise ConfigurationError(
                    f"backing array shape {data.shape} != expected {shape}"
                )
        self.data = data

    @classmethod
    def random(
        cls, rows: int, cols: int, q: int = 4, seed: Optional[int] = None
    ) -> "BlockMatrix":
        """Uniform-random matrix (deterministic for a given ``seed``)."""
        rng = np.random.default_rng(seed)
        return cls(rows, cols, q, rng.random((rows * q, cols * q)))

    @property
    def shape_blocks(self) -> Tuple[int, int]:
        """Extent in blocks: ``(rows, cols)``."""
        return self.rows, self.cols

    @property
    def shape(self) -> Tuple[int, int]:
        """Extent in coefficients."""
        return self.data.shape  # type: ignore[return-value]

    def block(self, i: int, j: int) -> np.ndarray:
        """Writable ``q×q`` view of block ``(i, j)``."""
        if not (0 <= i < self.rows and 0 <= j < self.cols):
            raise IndexError(
                f"block ({i}, {j}) out of range for {self.rows}×{self.cols} blocks"
            )
        q = self.q
        return self.data[i * q : (i + 1) * q, j * q : (j + 1) * q]

    def copy(self) -> "BlockMatrix":
        """Deep copy (fresh backing array)."""
        return BlockMatrix(self.rows, self.cols, self.q, self.data.copy())

    def allclose(self, other: "BlockMatrix", rtol: float = 1e-9, atol: float = 1e-9) -> bool:
        """Numerical equality with ``other`` (same block geometry required)."""
        return (
            self.shape_blocks == other.shape_blocks
            and self.q == other.q
            and bool(np.allclose(self.data, other.data, rtol=rtol, atol=atol))
        )

    def __matmul__(self, other: "BlockMatrix") -> "BlockMatrix":
        """Reference product via numpy (block geometry preserved)."""
        if self.cols != other.rows or self.q != other.q:
            raise ConfigurationError(
                f"cannot multiply {self.shape_blocks} (q={self.q}) by "
                f"{other.shape_blocks} (q={other.q})"
            )
        return BlockMatrix(self.rows, other.cols, self.q, self.data @ other.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BlockMatrix({self.rows}x{self.cols} blocks of {self.q}x{self.q})"
