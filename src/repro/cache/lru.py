"""Concrete replacement policies: LRU and FIFO.

Both are built on :class:`collections.OrderedDict`, whose
``move_to_end`` / ``popitem`` are C-implemented — the fastest portable
way to run an exact LRU in pure Python (per the HPC guide: keep the hot
loop inside C-implemented primitives).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, Optional, Tuple

from repro.cache.policy import ReplacementPolicy
from repro.exceptions import ConfigurationError


class LRUCache(ReplacementPolicy):
    """Exact Least-Recently-Used replacement.

    The ordered dict is kept in recency order: least recently used at
    the front, most recently used at the back.
    """

    __slots__ = ("capacity", "_data")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._data: OrderedDict[int, None] = OrderedDict()

    def access(self, key: int) -> Tuple[bool, Optional[int]]:
        data = self._data
        if key in data:
            data.move_to_end(key)
            return True, None
        victim = None
        if len(data) >= self.capacity:
            victim = data.popitem(last=False)[0]
        data[key] = None
        return False, victim

    def __contains__(self, key: int) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[int]:
        return iter(self._data)

    def discard(self, key: int) -> bool:
        if key in self._data:
            del self._data[key]
            return True
        return False

    def clear(self) -> None:
        self._data.clear()

    def mru_key(self) -> Optional[int]:
        """Most recently used key, or ``None`` if empty (test helper)."""
        return next(reversed(self._data), None)

    def lru_key(self) -> Optional[int]:
        """Least recently used key, or ``None`` if empty (test helper)."""
        return next(iter(self._data), None)


class FIFOCache(ReplacementPolicy):
    """First-In-First-Out replacement (ablation baseline).

    Identical to :class:`LRUCache` except that a hit does *not* refresh
    the key's position: eviction order is insertion order.
    """

    __slots__ = ("capacity", "_data")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._data: OrderedDict[int, None] = OrderedDict()

    def access(self, key: int) -> Tuple[bool, Optional[int]]:
        data = self._data
        if key in data:
            return True, None
        victim = None
        if len(data) >= self.capacity:
            victim = data.popitem(last=False)[0]
        data[key] = None
        return False, victim

    def __contains__(self, key: int) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[int]:
        return iter(self._data)

    def discard(self, key: int) -> bool:
        if key in self._data:
            del self._data[key]
            return True
        return False

    def clear(self) -> None:
        self._data.clear()


#: Registry mapping policy names (as accepted by the CLI and the
#: simulation settings) to constructors.
POLICIES = {
    "lru": LRUCache,
    "fifo": FIFOCache,
}


def make_policy(name: str, capacity: int) -> ReplacementPolicy:
    """Instantiate a policy from a spec string.

    Accepted specs: the registered names (``"lru"``, ``"fifo"``), plus
    ``"plru"`` (tree pseudo-LRU over the whole capacity),
    ``"assoc<W>"`` (W-way set-associative with per-set LRU) and
    ``"assoc<W>-plru"`` (W-way with per-set tree PLRU).
    """
    ctor = POLICIES.get(name)
    if ctor is not None:
        return ctor(capacity)
    # extended specs; imported lazily to avoid a module cycle
    from repro.cache.associative import SetAssociativeCache, TreePLRU

    if name == "plru":
        return TreePLRU(capacity)
    if name.startswith("assoc"):
        spec = name[len("assoc") :]
        plru = spec.endswith("-plru")
        if plru:
            spec = spec[: -len("-plru")]
        if spec.isdigit() and int(spec) >= 1:
            return SetAssociativeCache(capacity, int(spec), plru=plru)
    raise ConfigurationError(
        f"unknown replacement policy {name!r}; valid: "
        f"{sorted(POLICIES)} + ['plru', 'assoc<W>', 'assoc<W>-plru']"
    )
