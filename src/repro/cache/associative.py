"""Set-associative caches and tree pseudo-LRU — hardware-realism ablations.

The paper's model assumes *fully associative* caches ("can store any
data from main memory").  Real L1/L2 caches are set-associative with a
pseudo-LRU replacement heuristic, so a reproduction that wants to say
anything about real hardware needs both on hand:

* :class:`SetAssociativeCache` — ``sets × ways`` organization; a block
  maps to exactly one set (by a multiplicative hash of its id) and
  competes only within it.  Conflict misses appear that the fully
  associative model cannot see.
* :class:`TreePLRU` — the classic tree pseudo-LRU heuristic used per
  set (or standalone): one bit per internal node of a binary tree over
  the ways points toward the *less* recently used half; victims follow
  the bits from the root.  Exact LRU for 2 ways, an approximation
  beyond.

Both implement :class:`~repro.cache.policy.ReplacementPolicy`, so they
drop into :class:`~repro.cache.cache.Cache` and the LRU hierarchy
unchanged (the hierarchy falls back to its generic path automatically).
``make_policy`` in :mod:`repro.cache.lru` accepts the spec strings
``"plru"``, ``"assoc<W>"`` and ``"assoc<W>-plru"``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, List, Optional, Tuple

from repro.cache.policy import ReplacementPolicy
from repro.exceptions import ConfigurationError

#: Knuth's multiplicative hash constant (golden-ratio derived).
_HASH_MULT = 2654435761
_HASH_MASK = (1 << 32) - 1


def _set_index(key: int, n_sets: int) -> int:
    """Map a block id to its set (multiplicative hashing)."""
    return ((key * _HASH_MULT) & _HASH_MASK) % n_sets


class TreePLRU(ReplacementPolicy):
    """Tree pseudo-LRU over ``capacity`` ways (power of two).

    Internal nodes hold one bit each: 0 = the LRU side is the left
    subtree, 1 = the right.  An access flips the bits on its path to
    point *away* from the accessed way; a victim is found by following
    the bits from the root.
    """

    __slots__ = ("capacity", "_bits", "_ways", "_slot_of")

    def __init__(self, capacity: int) -> None:
        if capacity < 1 or capacity & (capacity - 1):
            raise ConfigurationError(
                f"tree PLRU needs a power-of-two capacity, got {capacity}"
            )
        self.capacity = capacity
        self._bits = [0] * max(capacity - 1, 1)
        self._ways: List[Optional[int]] = [None] * capacity
        self._slot_of: dict = {}

    def _touch_slot(self, slot: int) -> None:
        """Point every node on the path away from ``slot``."""
        node = 0
        lo, hi = 0, self.capacity
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if slot < mid:
                self._bits[node] = 1  # LRU side is now the right half
                node = 2 * node + 1
                hi = mid
            else:
                self._bits[node] = 0
                node = 2 * node + 2
                lo = mid
        # leaf reached

    def _victim_slot(self) -> int:
        """Follow the PLRU bits to the victim way."""
        node = 0
        lo, hi = 0, self.capacity
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if self._bits[node] == 0:
                node = 2 * node + 1
                hi = mid
            else:
                node = 2 * node + 2
                lo = mid
        return lo

    def access(self, key: int) -> Tuple[bool, Optional[int]]:
        slot = self._slot_of.get(key)
        if slot is not None:
            self._touch_slot(slot)
            return True, None
        # free way first
        for idx, resident in enumerate(self._ways):
            if resident is None:
                slot = idx
                victim = None
                break
        else:
            slot = self._victim_slot()
            victim = self._ways[slot]
            del self._slot_of[victim]
        self._ways[slot] = key
        self._slot_of[key] = slot
        self._touch_slot(slot)
        return False, victim

    def __contains__(self, key: int) -> bool:
        return key in self._slot_of

    def __len__(self) -> int:
        return len(self._slot_of)

    def __iter__(self) -> Iterator[int]:
        return iter(self._slot_of)

    def discard(self, key: int) -> bool:
        slot = self._slot_of.pop(key, None)
        if slot is None:
            return False
        self._ways[slot] = None
        return True

    def clear(self) -> None:
        self._bits = [0] * max(self.capacity - 1, 1)
        self._ways = [None] * self.capacity
        self._slot_of.clear()


class SetAssociativeCache(ReplacementPolicy):
    """``sets × ways`` cache; replacement is per-set (LRU or PLRU).

    ``capacity`` must be a multiple of ``ways``.  ``ways == capacity``
    degenerates to a single fully associative set.
    """

    __slots__ = ("capacity", "ways", "n_sets", "_sets", "_plru")

    def __init__(self, capacity: int, ways: int, plru: bool = False) -> None:
        if ways < 1 or capacity < 1:
            raise ConfigurationError(
                f"invalid geometry capacity={capacity}, ways={ways}"
            )
        if capacity % ways != 0:
            raise ConfigurationError(
                f"capacity {capacity} is not a multiple of ways {ways}"
            )
        self.capacity = capacity
        self.ways = ways
        self.n_sets = capacity // ways
        self._plru = plru
        if plru:
            self._sets: List[ReplacementPolicy] = [
                TreePLRU(ways) for _ in range(self.n_sets)
            ]
        else:
            from repro.cache.lru import LRUCache

            self._sets = [LRUCache(ways) for _ in range(self.n_sets)]

    def access(self, key: int) -> Tuple[bool, Optional[int]]:
        return self._sets[_set_index(key, self.n_sets)].access(key)

    def __contains__(self, key: int) -> bool:
        return key in self._sets[_set_index(key, self.n_sets)]

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)

    def __iter__(self) -> Iterator[int]:
        for s in self._sets:
            yield from s

    def discard(self, key: int) -> bool:
        return self._sets[_set_index(key, self.n_sets)].discard(key)

    def clear(self) -> None:
        for s in self._sets:
            s.clear()
