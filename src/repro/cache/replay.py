"""Trace-compile/replay fast path for the two-level simulator.

The step simulator (:mod:`repro.cache.hierarchy`) interprets a schedule
one reference at a time: three Python-level cache operations per
elementary multiply-add.  This module splits that work in two:

* **compile** — run the schedule once against a recording context and
  keep its block-access trace (the compute stream, and the explicit
  IDEAL directives when the schedule carries them) as a
  :class:`CompiledTrace`;
* **replay** — consume the whole trace in bulk against any simulated
  capacity/policy combination, without re-running the schedule.

Replays are *exact*: every counter of the resulting
:class:`~repro.cache.stats.HierarchyStats` (``ms``, ``md``, write-backs,
per-matrix breakdowns) is bit-identical to the step simulator's, which
the test suite proves across algorithms × policies × ragged shapes and
with hypothesis-generated traces.  The step engine stays available as
the oracle (``engine="step"`` in :func:`repro.sim.runner.run_experiment`).

Where the speed comes from (measured, see ``docs/BENCHMARKS.md``):

* the schedule runs **once** per (algorithm, declared machine, shape) —
  every additional setting/capacity/policy replays the memoized trace
  (:func:`compiled_trace_for` keeps a bounded LRU of compiled traces,
  optionally backed by an on-disk content-addressed memmap tier shared
  across processes, see :func:`configure_trace_tier`);
* :func:`replay_bulk` evaluates **many** ``(policy, CS, CD)`` cells
  over one shared trace: LRU cells share a single bounded Mattson
  stack-distance pass (the inclusion property gives every distributed
  capacity's misses *and* eviction victims from one pass), per-cell
  counters are aggregated with numpy over chunked depth arrays, and
  the shared level replays only the distributed-miss stream — orders
  of magnitude shorter than the touch stream;
* **FIFO** replay keeps the insertion-ring formulation (hits never
  mutate FIFO state; no inclusion property, so one distributed pass
  per ``CD``) with the same short shared-stream treatment;
* **IDEAL** replay is vectorized: the directive stream is lowered to
  numpy arrays once per trace and each replay is a handful of
  sorts/scans instead of four million Python method calls;
* **capacity curves** come from one bounded Mattson pass over the
  per-core streams (:func:`distributed_miss_curves`) instead of one
  full simulation per capacity point.

The write-back path is preserved exactly without per-touch dirty sets:
in this workload C blocks are touched *last* in their triple and dirtied
when the triple retires, so **every resident C block is dirty at any
eviction point and A/B blocks never are** — distributed write-backs are
exactly the C-tagged evictions, and each one emits a timestamped "mark"
event that the shared-level pass interleaves (mark before the miss that
caused it) to reproduce the dirty-victim → shared-copy propagation.
"""

from __future__ import annotations

import os
from array import array
from collections import OrderedDict
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np
from numpy.typing import NDArray

from repro.algorithms.base import ExecutionContext, MatmulAlgorithm
from repro.cache.block import MAT_C, MAT_SHIFT
from repro.cache.stats import CacheStats, HierarchyStats
from repro.exceptions import ConfigurationError

#: Directive opcodes in a compiled trace's directive stream.
OP_LOAD_SHARED = 0
OP_EVICT_SHARED = 1
OP_LOAD_DIST = 2
OP_EVICT_DIST = 3

#: Replacement policies the replay engine can reproduce exactly.  The
#: associative/PLRU ablation policies and inclusive hierarchies fall
#: back to the step engine (see :func:`supports`).
REPLAY_POLICIES = frozenset({"lru", "fifo"})

#: Sentinel insertion index meaning "never inserted" in the FIFO pass;
#: must compare below ``miss_count - capacity`` for every reachable
#: state (a plain ``-1`` collides with the cold-start window).
_NEVER = -(1 << 62)

#: Saturated stack depth for keys absent from a bounded recency stack
#: (cold or deeper than the bound) — compares ``>=`` every capacity the
#: pass distinguishes.
_ABSENT = 1 << 30

#: FMAs per kernel chunk: the Python transition loop hands counters to
#: numpy in chunks this size, bounding intermediate-array memory even
#: on memmapped paper-scale traces.
_CHUNK_FMAS = 1 << 16

#: Keys at or above this value are C blocks (tags are A=0 < B=1 < C=2,
#: so one compare replaces shift-and-equal in the hot eviction check).
_C_BASE = MAT_C << MAT_SHIFT


class _Recorder(ExecutionContext):
    """Execution context that records the schedule instead of simulating.

    The compute stream is appended to a flat ``array('q')`` buffer as
    ``(core, akey, bkey, ckey)`` quadruples — the exact touch order of
    the step simulator (A, B, then the written C) — and lowered to one
    ``(n, 4)`` int64 array at compile time.  With ``explicit=True`` the
    schedule's IDEAL directives are recorded too, as four parallel int
    lists timestamped with the number of computes already emitted
    (directive ``t`` sorts before compute ``t``).
    """

    def __init__(self, p: int, explicit: bool) -> None:
        super().__init__(p)
        self.explicit = explicit
        self._buf: "array[int]" = array("q")
        self._n_fmas = 0
        self.dir_op: List[int] = []
        self.dir_t: List[int] = []
        self.dir_core: List[int] = []
        self.dir_key: List[int] = []

    def _record(self, op: int, core: int, key: int) -> None:
        self.dir_op.append(op)
        self.dir_t.append(self._n_fmas)
        self.dir_core.append(core)
        self.dir_key.append(key)

    def load_shared(self, key: int) -> None:
        self._record(OP_LOAD_SHARED, -1, key)

    def evict_shared(self, key: int) -> None:
        self._record(OP_EVICT_SHARED, -1, key)

    def load_dist(self, core: int, key: int) -> None:
        self._record(OP_LOAD_DIST, core, key)

    def evict_dist(self, core: int, key: int) -> None:
        self._record(OP_EVICT_DIST, core, key)

    def compute(self, core: int, ckey: int, akey: int, bkey: int) -> None:
        self._buf.extend((core, akey, bkey, ckey))
        self._n_fmas += 1
        self.comp[core] += 1

    def fma_array(self) -> NDArray[np.int64]:
        if self._n_fmas == 0:
            return np.empty((0, 4), dtype=np.int64)
        return np.frombuffer(self._buf, dtype=np.int64).reshape(-1, 4).copy()


def _as_fma_array(fmas: Any) -> NDArray[np.int64]:
    """Coerce a compute stream (array or tuple list) to ``(n, 4)`` int64."""
    if isinstance(fmas, np.ndarray):
        if fmas.ndim != 2 or fmas.shape[1] != 4:
            raise ConfigurationError(
                f"fma array must have shape (n, 4), got {fmas.shape}"
            )
        return fmas
    return np.asarray(list(fmas), dtype=np.int64).reshape(-1, 4)


class CompiledTrace:
    """One schedule's recorded access trace, ready for bulk replay.

    The compute stream lives in :attr:`fma_array` — an ``(n, 4)`` int64
    array of ``(core, akey, bkey, ckey)`` rows, either owned in memory
    or memmapped read-only from the on-disk trace tier (the kernels only
    ever slice it in chunks, so a memmap streams from the page cache and
    is shared across processes).  ``origin`` is telemetry: where this
    process got the trace (``"compiled"``, ``"memory"``, ``"disk"``).
    """

    __slots__ = (
        "p",
        "fma_array",
        "comp",
        "has_directives",
        "origin",
        "_dir_lists",
        "_ideal_arrays",
        "_replays",
    )

    def __init__(
        self,
        p: int,
        fmas: Any,
        comp: List[int],
        directives: Optional[Tuple[Any, Any, Any, Any]],
    ) -> None:
        self.p = p
        self.fma_array = _as_fma_array(fmas)
        self.comp = comp
        self.has_directives = directives is not None
        self.origin = "compiled"
        self._dir_lists = directives
        self._ideal_arrays: Optional[Tuple[NDArray[np.int64], ...]] = None
        # Replay results are pure functions of (trace, policy, cs, cd) —
        # IDEAL counters of the trace alone — so each trace memoizes
        # them: re-evaluating a cell (sweep reruns, conformance checks,
        # figure regeneration) costs a dict probe instead of a pass.
        self._replays: Dict[Tuple[str, int, int], HierarchyStats] = {}

    def __len__(self) -> int:
        return int(self.fma_array.shape[0])

    @property
    def fmas(self) -> List[Tuple[int, int, int, int]]:
        """The compute stream as ``(core, akey, bkey, ckey)`` tuples.

        Compatibility view (tests, external consumers); the kernels use
        :attr:`fma_array` directly.
        """
        return [
            (int(r[0]), int(r[1]), int(r[2]), int(r[3]))
            for r in self.fma_array.tolist()
        ]

    @property
    def comp_total(self) -> int:
        return sum(self.comp)

    def ideal_arrays(self) -> Tuple[NDArray[np.int64], ...]:
        """The directive/compute streams as int64 arrays (built once).

        Returns ``(op, t, core, key, fma_core, fma_ckey)``; the numpy
        lowering is the expensive part of an IDEAL replay and is cached
        on the trace so repeated replays (sweep families, benchmark
        reruns, conformance checks) pay it once.
        """
        if self._ideal_arrays is None:
            if self._dir_lists is None:
                raise ConfigurationError(
                    "trace was compiled without IDEAL directives; "
                    "recompile with directives=True"
                )
            op, t, core, key = self._dir_lists
            self._ideal_arrays = (
                np.asarray(op, dtype=np.int64),
                np.asarray(t, dtype=np.int64),
                np.asarray(core, dtype=np.int64),
                np.asarray(key, dtype=np.int64),
                np.ascontiguousarray(self.fma_array[:, 0]),
                np.ascontiguousarray(self.fma_array[:, 3]),
            )
        return self._ideal_arrays


def compile_trace(
    algorithm: MatmulAlgorithm, *, directives: bool = True
) -> CompiledTrace:
    """Run ``algorithm`` once and record its trace.

    ``directives=True`` records the explicit IDEAL directives too
    (needed by :func:`replay_ideal`); compute-only replays can skip them
    to avoid paying the recording cost.
    """
    recorder = _Recorder(algorithm.machine.p, explicit=directives)
    algorithm.run(recorder)
    dirs = (
        (recorder.dir_op, recorder.dir_t, recorder.dir_core, recorder.dir_key)
        if directives
        else None
    )
    return CompiledTrace(
        recorder.p, recorder.fma_array(), list(recorder.comp), dirs
    )


def supports(mode: str, policy: str, inclusive: bool, check: bool) -> bool:
    """Whether the replay engine reproduces this configuration exactly.

    IDEAL replays carry no capacity/inclusion/presence verification, so
    checked runs use the step oracle; LRU-mode replays cover the plain
    ``lru``/``fifo`` policies on non-inclusive hierarchies (the
    associative and PLRU ablations keep their per-touch policy state).
    """
    if mode == "ideal":
        return not check
    return policy in REPLAY_POLICIES and not inclusive


def _copy_stats(stats: HierarchyStats) -> HierarchyStats:
    """Independent copy of a memoized result (callers may mutate)."""
    return HierarchyStats(
        shared=CacheStats(
            stats.shared.hits,
            stats.shared.misses,
            stats.shared.writebacks,
            list(stats.shared.misses_by_matrix),
        ),
        distributed=[
            CacheStats(d.hits, d.misses, d.writebacks, list(d.misses_by_matrix))
            for d in stats.distributed
        ],
    )


def _memoized(
    trace: CompiledTrace, policy: str, cs: int, cd: int
) -> Optional[HierarchyStats]:
    cached = trace._replays.get((policy, cs, cd))
    return _copy_stats(cached) if cached is not None else None


def _memoize(
    trace: CompiledTrace, policy: str, cs: int, cd: int, stats: HierarchyStats
) -> HierarchyStats:
    trace._replays[(policy, cs, cd)] = _copy_stats(stats)
    return stats


# ----------------------------------------------------------------------
# Batched LRU/FIFO replay
# ----------------------------------------------------------------------
class _SharedLRU:
    """One shared LRU cache replayed over the distributed-miss stream.

    The shared level only ever sees distributed misses — a stream one
    to two orders of magnitude shorter than the touch stream — so each
    requested ``CS`` keeps its own ``OrderedDict`` recency state with
    O(1) membership/promotion/eviction (C-speed dict operations beat a
    Mattson stack scan at shared capacities of several hundred blocks).
    The interleaved dirty-victim marks reproduce the write-back path:
    a mark lands on the block's shared copy iff it is resident, exactly
    the step simulator's victim-then-propagate order.
    """

    __slots__ = ("cs", "data", "dirty", "hits", "miss", "wb", "mbm")

    def __init__(self, cs: int) -> None:
        self.cs = cs
        self.data: "OrderedDict[int, None]" = OrderedDict()
        self.dirty: set[int] = set()
        self.hits = 0
        self.miss = 0
        self.wb = 0
        self.mbm = [0, 0, 0]

    def feed(
        self,
        ref_times: List[int],
        ref_keys: List[int],
        mark_times: List[int],
        mark_keys: List[int],
    ) -> None:
        """Advance over one chunk's references and dirty-victim marks.

        Both streams are time-sorted; a mark at time ``t`` (the dirty
        distributed victim of the miss at touch ``t``) is applied
        *before* the same touch's shared reference.
        """
        data = self.data
        move = data.move_to_end
        dirty = self.dirty
        cs = self.cs
        mbm = self.mbm
        i = j = 0
        n_r = len(ref_times)
        n_m = len(mark_times)
        while i < n_r or j < n_m:
            if j < n_m and (i >= n_r or mark_times[j] <= ref_times[i]):
                v = mark_keys[j]
                j += 1
                if v in data:
                    dirty.add(v)
                continue
            key = ref_keys[i]
            i += 1
            if key in data:
                move(key)
                self.hits += 1
                continue
            self.miss += 1
            mbm[key >> MAT_SHIFT] += 1
            if len(data) >= cs:
                victim, _ = data.popitem(last=False)
                if victim in dirty:
                    dirty.discard(victim)
                    self.wb += 1
            data[key] = None

    def stats(self) -> CacheStats:
        return CacheStats(self.hits, self.miss, self.wb, list(self.mbm))


class _LRUPass:
    """Streaming state of the batched LRU kernel.

    One bounded recency-stack pass over the global touch stream (bound =
    the largest ``CD``) serves every distributed capacity at once —
    Mattson's inclusion property makes the depth array and the stack
    positions ``cd - 1`` exact misses and victims for *all* ``cd`` —
    and each ``CD``'s shared level replays only its distributed-miss
    stream through one :class:`_SharedLRU` state per requested ``CS``.

    The state is chunk-incremental on purpose: :meth:`process` consumes
    one ``(k, 4)`` slice of the compute stream at a time, so the same
    kernel serves materialized traces (:func:`_bulk_lru`) and the
    streaming path (:func:`replay_bulk_streaming`), where the schedule
    feeds chunks directly and the full trace never exists in memory.
    """

    __slots__ = (
        "p",
        "pairs",
        "cds",
        "css_by_cd",
        "bound",
        "cd_list",
        "stacks",
        "dmiss",
        "dmbm",
        "dwb",
        "touches",
        "shared",
        "_fmas_seen",
        "_single",
    )

    def __init__(self, p: int, pairs: Sequence[Tuple[int, int]]) -> None:
        self.p = p
        self.pairs = list(pairs)
        cds = sorted({cd for _, cd in pairs})
        self.cds = cds
        self.css_by_cd = {
            cd: sorted({cs for cs, cd2 in pairs if cd2 == cd}) for cd in cds
        }
        self.bound = cds[-1]
        self.cd_list = list(enumerate(cds))
        self.stacks: List[List[int]] = [[] for _ in range(p)]
        n_cd = len(cds)
        self.dmiss = np.zeros((n_cd, p), dtype=np.int64)
        self.dmbm = np.zeros((n_cd, p, 3), dtype=np.int64)
        self.dwb = [[0] * p for _ in range(n_cd)]
        self.touches = np.zeros(p, dtype=np.int64)
        self.shared = {
            (cd, cs): _SharedLRU(cs)
            for cd in cds
            for cs in self.css_by_cd[cd]
        }
        self._fmas_seen = 0
        self._single: Optional[List["OrderedDict[int, None]"]] = (
            [OrderedDict() for _ in range(p)] if len(cds) == 1 else None
        )

    def process(self, chunk: NDArray[np.int64]) -> None:
        """Advance every cell's counters over one compute-stream slice."""
        if self._single is not None:
            self._process_single(chunk)
            return
        p = self.p
        cds = self.cds
        cd_list = self.cd_list
        bound = self.bound
        stacks = self.stacks
        dwb = self.dwb
        rows = chunk.tolist()
        t0 = 3 * self._fmas_seen
        self._fmas_seen += len(rows)
        t = t0
        depths: List[int] = []
        dappend = depths.append
        marks: Dict[int, Tuple[List[int], List[int]]] = {
            cd: ([], []) for cd in cds
        }
        for core, akey, bkey, ckey in rows:
            stack = stacks[core]
            for key in (akey, bkey, ckey):
                # membership scan instead of try/except around .index():
                # deep/cold touches dominate at paper scale and a raised
                # ValueError per miss would double the pass cost
                if key in stack:
                    d = stack.index(key)
                    dappend(d)
                    if d:
                        length = len(stack)
                        for i, cd in cd_list:
                            if cd <= d and cd <= length:
                                victim = stack[cd - 1]
                                if victim >= _C_BASE:
                                    # resident C blocks are always
                                    # dirty: eviction == write-back ==
                                    # shared mark
                                    dwb[i][core] += 1
                                    mt, mk = marks[cd]
                                    mt.append(t)
                                    mk.append(victim)
                        del stack[d]
                        stack.insert(0, key)
                else:
                    dappend(_ABSENT)
                    length = len(stack)
                    for i, cd in cd_list:
                        if cd <= length:
                            victim = stack[cd - 1]
                            if victim >= _C_BASE:
                                dwb[i][core] += 1
                                mt, mk = marks[cd]
                                mt.append(t)
                                mk.append(victim)
                    stack.insert(0, key)
                    if length >= bound:
                        stack.pop()
                t += 1
        dep = np.asarray(depths, dtype=np.int64)
        keys = np.ascontiguousarray(chunk[:, 1:4]).reshape(-1)
        cores3 = np.repeat(np.ascontiguousarray(chunk[:, 0]), 3)
        tags = keys >> MAT_SHIFT
        self.touches += np.bincount(cores3, minlength=p)
        for i, cd in cd_list:
            miss = dep >= cd
            self.dmiss[i] += np.bincount(cores3[miss], minlength=p)
            self.dmbm[i] += np.bincount(
                cores3[miss] * 3 + tags[miss], minlength=3 * p
            ).reshape(p, 3)
            ref_t = (np.nonzero(miss)[0] + t0).tolist()
            ref_k = keys[miss].tolist()
            mt, mk = marks[cd]
            for cs in self.css_by_cd[cd]:
                self.shared[(cd, cs)].feed(ref_t, ref_k, mt, mk)

    def _process_single(self, chunk: NDArray[np.int64]) -> None:
        """Single-``CD`` fast path over one compute-stream slice.

        With one distributed capacity there is nothing for the Mattson
        stack to amortize, so each core's cache is simulated directly as
        a capacity-``cd`` ``OrderedDict`` — O(1) hit/promotion/eviction
        instead of two O(cd) list scans per touch.  Inclusion puts a
        miss's LRU victim exactly at stack position ``cd - 1``, so the
        marks and the distributed-miss stream fed to the shared level
        are identical to the general pass.
        """
        cd = self.cds[0]
        caches = self._single
        assert caches is not None
        dwb_row = self.dwb[0]
        p = self.p
        rows = chunk.tolist()
        t = 3 * self._fmas_seen
        self._fmas_seen += len(rows)
        touch_add = [0] * p
        miss_add = [0] * p
        mbm_add = [[0, 0, 0] for _ in range(p)]
        ref_t: List[int] = []
        ref_k: List[int] = []
        mt: List[int] = []
        mk: List[int] = []
        for core, akey, bkey, ckey in rows:
            cache = caches[core]
            move = cache.move_to_end
            for key in (akey, bkey, ckey):
                if key in cache:
                    move(key)
                else:
                    miss_add[core] += 1
                    mbm_add[core][key >> MAT_SHIFT] += 1
                    if len(cache) >= cd:
                        victim, _ = cache.popitem(last=False)
                        if victim >= _C_BASE:
                            dwb_row[core] += 1
                            mt.append(t)
                            mk.append(victim)
                    cache[key] = None
                    ref_t.append(t)
                    ref_k.append(key)
                t += 1
            touch_add[core] += 3
        self.touches += np.asarray(touch_add, dtype=np.int64)
        self.dmiss[0] += np.asarray(miss_add, dtype=np.int64)
        self.dmbm[0] += np.asarray(mbm_add, dtype=np.int64)
        for cs in self.css_by_cd[cd]:
            self.shared[(cd, cs)].feed(ref_t, ref_k, mt, mk)

    def finalize(self) -> Dict[Tuple[int, int], HierarchyStats]:
        """Assemble every requested cell's final hierarchy counters."""
        out: Dict[Tuple[int, int], HierarchyStats] = {}
        for cs, cd in self.pairs:
            i = self.cds.index(cd)
            out[(cs, cd)] = HierarchyStats(
                shared=self.shared[(cd, cs)].stats(),
                distributed=[
                    CacheStats(
                        int(self.touches[c] - self.dmiss[i, c]),
                        int(self.dmiss[i, c]),
                        self.dwb[i][c],
                        [int(x) for x in self.dmbm[i, c]],
                    )
                    for c in range(self.p)
                ],
            )
        return out


def _bulk_lru(
    trace: CompiledTrace, pairs: Sequence[Tuple[int, int]]
) -> Dict[Tuple[int, int], HierarchyStats]:
    """Exact LRU counters for every ``(cs, cd)`` from one shared pass."""
    kernel = _LRUPass(trace.p, pairs)
    arr = trace.fma_array
    for start in range(0, int(arr.shape[0]), _CHUNK_FMAS):
        kernel.process(arr[start : start + _CHUNK_FMAS])
    return kernel.finalize()


class _SharedFIFO:
    """One shared FIFO cache replayed over the distributed-miss stream.

    FIFO has no inclusion property, so each ``(cd, cs)`` keeps its own
    insertion-window state; the stream it consumes is the short
    distributed-miss stream, not the touch stream.
    """

    __slots__ = ("cs", "ins", "ring", "m", "hits", "miss", "wb", "mbm", "dirty")

    def __init__(self, cs: int) -> None:
        self.cs = cs
        self.ins: Dict[int, int] = {}
        self.ring: List[int] = []
        self.m = 0
        self.hits = 0
        self.miss = 0
        self.wb = 0
        self.mbm = [0, 0, 0]
        self.dirty: set[int] = set()

    def feed(
        self,
        ref_times: List[int],
        ref_keys: List[int],
        mark_times: List[int],
        mark_keys: List[int],
    ) -> None:
        ins = self.ins
        ring = self.ring
        cs = self.cs
        dirty = self.dirty
        mbm = self.mbm
        m = self.m
        i = j = 0
        n_r = len(ref_times)
        n_m = len(mark_times)
        while i < n_r or j < n_m:
            if j < n_m and (i >= n_r or mark_times[j] <= ref_times[i]):
                v = mark_keys[j]
                j += 1
                # dirty victim lands in its shared copy, if resident
                if ins.get(v, _NEVER) >= m - cs:
                    dirty.add(v)
                continue
            key = ref_keys[i]
            i += 1
            if ins.get(key, _NEVER) >= m - cs:
                self.hits += 1
                continue
            self.miss += 1
            mbm[key >> MAT_SHIFT] += 1
            if m >= cs:
                victim = ring[m - cs]
                if victim in dirty:
                    dirty.discard(victim)
                    self.wb += 1
            ins[key] = m
            ring.append(key)
            m += 1
        self.m = m

    def stats(self) -> CacheStats:
        return CacheStats(self.hits, self.miss, self.wb, list(self.mbm))


class _FIFOPass:
    """Streaming state of the batched FIFO kernel for one ``CD``.

    One insertion-window pass over the touch stream (hits never mutate
    FIFO state: a key is resident iff its latest insertion is among the
    last ``cd`` misses, and miss ``M``'s victim is the key inserted at
    ``M - cd``); the dirty-victim marks and the distributed-miss stream
    feed one :class:`_SharedFIFO` per shared capacity.  Like
    :class:`_LRUPass` the state is chunk-incremental, serving both the
    materialized and the streaming replay paths.
    """

    __slots__ = (
        "p",
        "cd",
        "ins",
        "rings",
        "miss_m",
        "dmbm",
        "dwb",
        "touches",
        "shared_states",
        "_t",
    )

    def __init__(self, p: int, cd: int, css: Sequence[int]) -> None:
        self.p = p
        self.cd = cd
        self.ins: List[Dict[int, int]] = [dict() for _ in range(p)]
        self.rings: List[List[int]] = [[] for _ in range(p)]
        self.miss_m = [0] * p
        self.dmbm = [[0, 0, 0] for _ in range(p)]
        self.dwb = [0] * p
        self.touches = np.zeros(p, dtype=np.int64)
        self.shared_states = [_SharedFIFO(cs) for cs in css]
        self._t = 0

    def process(self, chunk: NDArray[np.int64]) -> None:
        """Advance every shared capacity over one compute-stream slice."""
        cd = self.cd
        ins = self.ins
        rings = self.rings
        miss_m = self.miss_m
        dmbm = self.dmbm
        dwb = self.dwb
        rows = chunk.tolist()
        t = self._t
        ref_t: List[int] = []
        ref_k: List[int] = []
        mark_t: List[int] = []
        mark_k: List[int] = []
        for core, akey, bkey, ckey in rows:
            d_ins = ins[core]
            ring = rings[core]
            mbm = dmbm[core]
            m = miss_m[core]
            for key in (akey, bkey, ckey):
                if d_ins.get(key, _NEVER) >= m - cd:
                    t += 1
                    continue
                mbm[key >> MAT_SHIFT] += 1
                if m >= cd:
                    victim = ring[m - cd]
                    if victim >= _C_BASE:
                        # resident C blocks are always dirty under FIFO
                        # too (dirtied on insertion and on every hit)
                        dwb[core] += 1
                        mark_t.append(t)
                        mark_k.append(victim)
                d_ins[key] = m
                ring.append(key)
                m += 1
                ref_t.append(t)
                ref_k.append(key)
                t += 1
            miss_m[core] = m
        self._t = t
        self.touches += 3 * np.bincount(
            np.ascontiguousarray(chunk[:, 0]), minlength=self.p
        )
        for state in self.shared_states:
            state.feed(ref_t, ref_k, mark_t, mark_k)

    def finalize(self) -> Dict[Tuple[int, int], HierarchyStats]:
        """Assemble every requested ``(cs, cd)`` cell's final counters."""
        out: Dict[Tuple[int, int], HierarchyStats] = {}
        for state in self.shared_states:
            out[(state.cs, self.cd)] = HierarchyStats(
                shared=state.stats(),
                distributed=[
                    CacheStats(
                        int(self.touches[c]) - self.miss_m[c],
                        self.miss_m[c],
                        self.dwb[c],
                        list(self.dmbm[c]),
                    )
                    for c in range(self.p)
                ],
            )
        return out


def _bulk_fifo_cd(
    trace: CompiledTrace, cd: int, css: Sequence[int]
) -> Dict[Tuple[int, int], HierarchyStats]:
    """Exact FIFO counters for one ``CD`` and every requested ``CS``."""
    kernel = _FIFOPass(trace.p, cd, css)
    arr = trace.fma_array
    for start in range(0, int(arr.shape[0]), _CHUNK_FMAS):
        kernel.process(arr[start : start + _CHUNK_FMAS])
    return kernel.finalize()


def _bulk_fifo(
    trace: CompiledTrace, pairs: Sequence[Tuple[int, int]]
) -> Dict[Tuple[int, int], HierarchyStats]:
    by_cd: Dict[int, List[int]] = {}
    for cs, cd in pairs:
        by_cd.setdefault(cd, []).append(cs)
    out: Dict[Tuple[int, int], HierarchyStats] = {}
    for cd in sorted(by_cd):
        out.update(_bulk_fifo_cd(trace, cd, sorted(set(by_cd[cd]))))
    return out


def replay_bulk(
    trace: CompiledTrace, cells: Sequence[Tuple[str, int, int]]
) -> List[HierarchyStats]:
    """Exact hierarchy counters for many ``(policy, cs, cd)`` cells.

    The batched entry point: all LRU cells share one bounded
    stack-distance pass over the touch stream (:func:`_bulk_lru`), FIFO
    cells share one insertion-ring pass per distinct ``CD``
    (:func:`_bulk_fifo`), and every cell's shared level replays only
    the distributed-miss stream.  Counters are bit-identical to
    ``engine="step"`` (property-tested), write-backs and per-matrix
    splits included.  Results are memoized on the trace, so
    re-evaluating a cell costs a dict probe; each returned object is an
    independent copy (callers may mutate).
    """
    memo_hits: Dict[int, HierarchyStats] = {}
    todo_lru: set[Tuple[int, int]] = set()
    todo_fifo: set[Tuple[int, int]] = set()
    for idx, (policy, cs, cd) in enumerate(cells):
        if policy not in REPLAY_POLICIES:
            raise ConfigurationError(
                f"replay_bulk cannot replay policy {policy!r}; "
                f"supported: {sorted(REPLAY_POLICIES)}"
            )
        if cs < 1 or cd < 1:
            raise ConfigurationError(
                f"capacities must be positive, got cs={cs} cd={cd}"
            )
        cached = _memoized(trace, policy, cs, cd)
        if cached is not None:
            memo_hits[idx] = cached
        elif policy == "fifo":
            todo_fifo.add((cs, cd))
        else:
            todo_lru.add((cs, cd))

    computed: Dict[Tuple[str, int, int], HierarchyStats] = {}
    if todo_lru:
        for (cs, cd), stats in _bulk_lru(trace, sorted(todo_lru)).items():
            computed[("lru", cs, cd)] = stats
    if todo_fifo:
        for (cs, cd), stats in _bulk_fifo(trace, sorted(todo_fifo)).items():
            computed[("fifo", cs, cd)] = stats
    for (policy, cs, cd), stats in computed.items():
        _memoize(trace, policy, cs, cd, stats)

    out: List[HierarchyStats] = []
    for idx, (policy, cs, cd) in enumerate(cells):
        hit = memo_hits.get(idx)
        if hit is not None:
            out.append(hit)
        else:
            out.append(_copy_stats(computed[(policy, cs, cd)]))
    return out


def replay_lru(
    trace: CompiledTrace, configs: Sequence[Tuple[int, int]]
) -> List[HierarchyStats]:
    """Exact LRU hierarchy counters for each ``(cs, cd)`` configuration.

    Thin wrapper over :func:`replay_bulk`.
    """
    return replay_bulk(trace, [("lru", cs, cd) for cs, cd in configs])


def replay_fifo(
    trace: CompiledTrace, configs: Sequence[Tuple[int, int]]
) -> List[HierarchyStats]:
    """Exact FIFO hierarchy counters for each ``(cs, cd)`` configuration.

    Thin wrapper over :func:`replay_bulk`.
    """
    return replay_bulk(trace, [("fifo", cs, cd) for cs, cd in configs])


# ----------------------------------------------------------------------
# Streaming replay (paper-scale traces that must never materialize)
# ----------------------------------------------------------------------
#: Above this many FMAs a compiled trace stops being materialized and
#: the LRU/FIFO kernels stream directly off the running schedule
#: (an order-1100 trace is 1.33e9 rows = ~40 GiB — far beyond CI
#: runners).  Override with ``REPRO_STREAM_FMAS`` (positive int).
STREAM_FMAS_DEFAULT = 64_000_000

_STREAM_ENV = "REPRO_STREAM_FMAS"


def stream_threshold() -> int:
    """The FMA count above which replay streams instead of compiling."""
    raw = os.environ.get(_STREAM_ENV)
    if raw:
        try:
            value = int(raw)
        except ValueError:
            raise ConfigurationError(
                f"{_STREAM_ENV} must be a positive integer, got {raw!r}"
            )
        if value <= 0:
            raise ConfigurationError(
                f"{_STREAM_ENV} must be a positive integer, got {raw!r}"
            )
        return value
    return STREAM_FMAS_DEFAULT


def should_stream(n_fmas: int) -> bool:
    """Whether a schedule of ``n_fmas`` multiply-adds must stream."""
    return n_fmas > stream_threshold()


class _StreamRecorder(ExecutionContext):
    """Compute-only context that feeds kernel passes chunk by chunk.

    The schedule's compute stream is buffered into the same flat
    ``array('q')`` layout as :class:`_Recorder`, but every
    ``_CHUNK_FMAS`` rows the buffer is lowered to one ``(k, 4)`` array,
    pushed through every attached pass and dropped — peak memory is one
    chunk plus the passes' bounded state, independent of trace length.
    IDEAL directives are ignored: streaming serves only the LRU/FIFO
    kernels (IDEAL replay needs the whole timeline at once).
    """

    def __init__(self, p: int, passes: Sequence[Any]) -> None:
        super().__init__(p)
        self._passes = list(passes)
        self._buf: "array[int]" = array("q")
        self._rows = 0
        self.n_fmas = 0

    def compute(self, core: int, ckey: int, akey: int, bkey: int) -> None:
        self._buf.extend((core, akey, bkey, ckey))
        self.comp[core] += 1
        self.n_fmas += 1
        self._rows += 1
        if self._rows >= _CHUNK_FMAS:
            self.flush()

    def flush(self) -> None:
        """Push the buffered rows through every pass and reset the buffer."""
        if not self._rows:
            return
        chunk = np.frombuffer(self._buf, dtype=np.int64).reshape(-1, 4)
        for kernel in self._passes:
            kernel.process(chunk)
        self._buf = array("q")
        self._rows = 0


def replay_bulk_streaming(
    algorithm: MatmulAlgorithm, cells: Sequence[Tuple[str, int, int]]
) -> Tuple[List[HierarchyStats], List[int]]:
    """Exact counters for many cells without materializing the trace.

    Runs ``algorithm`` once against a chunk-flushing recorder that feeds
    the same :class:`_LRUPass`/:class:`_FIFOPass` kernels as
    :func:`replay_bulk`, so the counters are bit-identical to both the
    materialized path and the step oracle — but peak memory is one
    64Ki-row chunk plus the kernels' bounded state, which is what makes
    the paper's order-1100 sweeps feasible on CI runners.  The price is
    that nothing is retained: no trace, no memoization, every call
    re-runs the schedule.  Returns ``(stats, comp)`` with ``stats`` in
    input-cell order and ``comp`` the per-core multiply-add counts.
    """
    todo_lru: set[Tuple[int, int]] = set()
    todo_fifo: set[Tuple[int, int]] = set()
    for policy, cs, cd in cells:
        if policy not in REPLAY_POLICIES:
            raise ConfigurationError(
                f"replay_bulk_streaming cannot replay policy {policy!r}; "
                f"supported: {sorted(REPLAY_POLICIES)}"
            )
        if cs < 1 or cd < 1:
            raise ConfigurationError(
                f"capacities must be positive, got cs={cs} cd={cd}"
            )
        if policy == "fifo":
            todo_fifo.add((cs, cd))
        else:
            todo_lru.add((cs, cd))

    p = algorithm.machine.p
    passes: List[Any] = []
    if todo_lru:
        passes.append(_LRUPass(p, sorted(todo_lru)))
    fifo_by_cd: Dict[int, List[int]] = {}
    for cs, cd in todo_fifo:
        fifo_by_cd.setdefault(cd, []).append(cs)
    for cd in sorted(fifo_by_cd):
        passes.append(_FIFOPass(p, cd, sorted(set(fifo_by_cd[cd]))))

    recorder = _StreamRecorder(p, passes)
    algorithm.run(recorder)
    recorder.flush()

    computed: Dict[Tuple[str, int, int], HierarchyStats] = {}
    for kernel in passes:
        policy = "lru" if isinstance(kernel, _LRUPass) else "fifo"
        for (cs, cd), stats in kernel.finalize().items():
            computed[(policy, cs, cd)] = stats
    out = [
        _copy_stats(computed[(policy, cs, cd)]) for policy, cs, cd in cells
    ]
    return out, list(recorder.comp)


# ----------------------------------------------------------------------
# IDEAL-mode replay (vectorized)
# ----------------------------------------------------------------------
def _last_before(
    mask: NDArray[np.bool_],
    idx: NDArray[np.int64],
    seg_first: NDArray[np.int64],
) -> NDArray[np.int64]:
    """Per element: index of the latest earlier element with ``mask`` set
    inside the same segment, or ``-1``."""
    last = np.maximum.accumulate(np.where(mask, idx, np.int64(-1)))
    excl = np.empty_like(last)
    excl[0] = -1
    excl[1:] = last[:-1]
    return np.where(excl >= seg_first, excl, np.int64(-1))


def _group_sort(group: NDArray[np.int64]) -> NDArray[np.int64]:
    """Stable argsort by group id (elements already in time order).

    Packs ``group`` and position into one int64 and sorts it — a single
    ``np.sort`` of scalars is ~10× cheaper than a stable ``argsort``
    here.  Falls back to the stable argsort when packing would overflow.
    """
    n = len(group)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if n < (1 << 31) and int(group.max()) < (1 << 31):
        packed = (group << np.int64(31)) | np.arange(n, dtype=np.int64)
        packed.sort()
        return packed & np.int64((1 << 31) - 1)
    return np.argsort(group, kind="stable").astype(np.int64)


def _dense_block_ids(key: NDArray[np.int64]) -> NDArray[np.int64]:
    """Map block keys to small dense ids using their (tag, row, col)
    structure — no sort needed, unlike ``np.unique``."""
    if len(key) == 0:
        return key
    mask = np.int64((1 << 28) - 1)
    tag = key >> np.int64(MAT_SHIFT)
    row = (key >> np.int64(28)) & mask
    col = key & mask
    n_row = np.int64(int(row.max()) + 1)
    n_col = np.int64(int(col.max()) + 1)
    return (tag * n_row + row) * n_col + col


def _time_ordered(
    seq: NDArray[np.int64], n_slots: int
) -> NDArray[np.int64]:
    """Indices that sort ``seq`` ascending, via scatter.

    ``seq`` holds unique interleave ranks ``< n_slots``, so scattering
    into a rank-indexed table and compacting replaces an argsort with
    two elementwise passes.
    """
    table = np.full(n_slots, -1, dtype=np.int64)
    table[seq] = np.arange(len(seq), dtype=np.int64)
    return table[table >= 0]


def replay_ideal(trace: CompiledTrace) -> HierarchyStats:
    """Exact IDEAL-mode counters from one vectorized pass.

    Replays the recorded load/evict directives and compute-writes with
    the semantics of :class:`~repro.cache.hierarchy.IdealHierarchy`
    (``check=False``): redundant loads don't count misses, dirty
    distributed evictions update the shared copy (which becomes dirty),
    dirty shared evictions write back to memory.  Instead of a Python
    call per directive, events are sorted per (cache, block) and the
    per-block state machines are evaluated with cumulative scans.

    IDEAL counters are capacity-independent — a pure function of the
    trace — so the result is memoized on the trace: every replay after
    the first costs a dict probe.
    """
    cached = _memoized(trace, "ideal", 0, 0)
    if cached is not None:
        return cached
    p = trace.p
    op, t, core, key, fma_core, fma_ckey = trace.ideal_arrays()
    n_dir = len(op)
    n_fma = len(fma_core)

    # Global interleave rank: directive d (timestamp t_d) precedes
    # compute i iff t_d <= i, so rank(directive d) = d + t_d and
    # rank(compute i) = i + |{d : t_d <= i}|.
    dir_seq = np.arange(n_dir, dtype=np.int64) + t
    if n_fma:
        d_before = np.cumsum(np.bincount(t, minlength=n_fma + 1)[:n_fma])
        fma_seq = np.arange(n_fma, dtype=np.int64) + d_before
    else:
        fma_seq = np.empty(0, dtype=np.int64)

    # ---------------- distributed level ----------------
    # Events per (core, key): explicit loads/evicts + dirtying writes.
    dl = (op == OP_LOAD_DIST) | (op == OP_EVICT_DIST)
    e_core = np.concatenate([core[dl], fma_core])
    e_key = np.concatenate([key[dl], fma_ckey])
    e_seq = np.concatenate([dir_seq[dl], fma_seq])
    # kinds: 0 = load, 1 = evict, 2 = write
    e_kind = np.concatenate(
        [
            np.where(op[dl] == OP_LOAD_DIST, np.int64(0), np.int64(1)),
            np.full(n_fma, 2, dtype=np.int64),
        ]
    )
    n_slots = n_dir + n_fma
    time_order = _time_ordered(e_seq, n_slots)
    e_core = e_core[time_order]
    e_key = e_key[time_order]
    e_kind = e_kind[time_order]
    e_seq = e_seq[time_order]

    md = [0] * p
    md_by_matrix = [[0, 0, 0] for _ in range(p)]
    dist_updates = [0] * p
    mark_keys = np.empty(0, dtype=np.int64)
    mark_seq = np.empty(0, dtype=np.int64)
    n_ev = len(e_kind)
    if n_ev:
        group = _dense_block_ids(e_key) * np.int64(p) + e_core
        order = _group_sort(group)
        g = group[order]
        k = e_key[order]
        c = e_core[order]
        kind = e_kind[order]
        idx = np.arange(n_ev, dtype=np.int64)
        new = np.empty(n_ev, dtype=bool)
        new[0] = True
        new[1:] = g[1:] != g[:-1]
        seg_first = np.maximum.accumulate(np.where(new, idx, np.int64(0)))
        last_load = _last_before(kind == 0, idx, seg_first)
        last_evict = _last_before(kind == 1, idx, seg_first)
        last_write = _last_before(kind == 2, idx, seg_first)
        resident = last_load > last_evict
        miss = (kind == 0) & ~resident
        mdc = np.bincount(c[miss], minlength=p)
        tags = k >> np.int64(MAT_SHIFT)
        mdm = np.bincount(
            c[miss] * np.int64(3) + tags[miss], minlength=3 * p
        ).reshape(p, 3)
        dirty_evict = (kind == 1) & (last_write > last_evict)
        duc = np.bincount(c[dirty_evict], minlength=p)
        md = [int(x) for x in mdc]
        md_by_matrix = [[int(x) for x in row] for row in mdm]
        dist_updates = [int(x) for x in duc]
        # dirty distributed evictions mark the shared copy dirty
        mark_keys = k[dirty_evict]
        mark_seq = e_seq[order][dirty_evict]

    # ---------------- shared level ----------------
    sl = (op == OP_LOAD_SHARED) | (op == OP_EVICT_SHARED)
    s_key = np.concatenate([key[sl], mark_keys])
    s_seq = np.concatenate([dir_seq[sl], mark_seq])
    # kinds: 0 = load, 1 = evict, 2 = dirty mark
    s_kind = np.concatenate(
        [
            np.where(op[sl] == OP_LOAD_SHARED, np.int64(0), np.int64(1)),
            np.full(len(mark_keys), 2, dtype=np.int64),
        ]
    )
    ms = 0
    ms_by_matrix = [0, 0, 0]
    shared_writebacks = 0
    n_sev = len(s_kind)
    if n_sev:
        time_order = _time_ordered(s_seq, n_slots)
        s_key = s_key[time_order]
        s_kind = s_kind[time_order]
        group = _dense_block_ids(s_key)
        order = _group_sort(group)
        g = group[order]
        k = s_key[order]
        kind = s_kind[order]
        idx = np.arange(n_sev, dtype=np.int64)
        new = np.empty(n_sev, dtype=bool)
        new[0] = True
        new[1:] = g[1:] != g[:-1]
        seg_first = np.maximum.accumulate(np.where(new, idx, np.int64(0)))
        last_load = _last_before(kind == 0, idx, seg_first)
        last_evict = _last_before(kind == 1, idx, seg_first)
        last_mark = _last_before(kind == 2, idx, seg_first)
        resident = last_load > last_evict
        miss = (kind == 0) & ~resident
        ms = int(miss.sum())
        tags = k >> np.int64(MAT_SHIFT)
        ms_by_matrix = [
            int(x) for x in np.bincount(tags[miss], minlength=3)
        ]
        dirty_evict = (kind == 1) & (last_mark > last_evict)
        shared_writebacks = int(dirty_evict.sum())

    stats = HierarchyStats(
        shared=CacheStats(0, ms, shared_writebacks, ms_by_matrix),
        distributed=[
            CacheStats(0, md[c], dist_updates[c], md_by_matrix[c])
            for c in range(p)
        ],
    )
    return _memoize(trace, "ideal", 0, 0, stats)


# ----------------------------------------------------------------------
# Capacity curves: one pass, every capacity
# ----------------------------------------------------------------------
def distributed_miss_curves(
    trace: CompiledTrace, capacities: Sequence[int]
) -> Dict[int, List[int]]:
    """Per-core distributed LRU miss counts for *every* capacity at once.

    One bounded Mattson stack-distance pass per core (Mattson's
    inclusion property: an LRU cache of capacity ``Z`` hits iff the
    stack distance is ``< Z``) replaces one full hierarchy simulation
    per capacity point — the asymptotic win of the replay engine for
    the capacity-ablation workloads.  Returns ``{capacity: [md per
    core]}``; counts equal ``engine="step"`` distributed misses exactly.
    """
    from repro.cache.stackdist import miss_counts_multi

    if not capacities:
        return {}
    p = trace.p
    arr = trace.fma_array
    cores = np.ascontiguousarray(arr[:, 0])
    curves: Dict[int, List[int]] = {cap: [0] * p for cap in capacities}
    for c in range(p):
        # per-core touch stream in (A, B, C) order
        stream = np.ascontiguousarray(arr[cores == c, 1:4]).reshape(-1)
        counts = miss_counts_multi(stream.tolist(), capacities)
        for cap in capacities:
            curves[cap][c] = counts[cap]
    return curves


# ----------------------------------------------------------------------
# Trace memoization (in-memory LRU + optional on-disk memmap tier)
# ----------------------------------------------------------------------
#: Bounded LRU of compiled traces, keyed by schedule fingerprint.  The
#: budget is in recorded multiply-adds (the dominant memory term) so a
#: few small traces or one big one stay resident.
_TRACE_CACHE: "OrderedDict[Hashable, CompiledTrace]" = OrderedDict()
_TRACE_CACHE_BUDGET = 4_000_000

#: Root of the on-disk content-addressed trace tier, or ``None`` when
#: disabled (see :func:`configure_trace_tier`).
_TRACE_TIER: Optional[str] = None


def configure_trace_tier(root: Optional[str]) -> None:
    """Enable (or disable, with ``None``) the on-disk trace tier.

    When set, :func:`compiled_trace_for` consults
    :mod:`repro.cache.tracestore` under ``root`` before compiling and
    stores freshly compiled traces there — parallel-sweep and fabric
    workers then memmap one shared on-disk trace instead of recompiling
    per process.
    """
    global _TRACE_TIER
    _TRACE_TIER = root


def trace_tier_root() -> Optional[str]:
    """The configured on-disk trace tier root (``None`` when disabled)."""
    return _TRACE_TIER


def trace_fingerprint(algorithm: MatmulAlgorithm) -> Hashable:
    """Memoization key: everything the emitted trace can depend on.

    The *declared* machine (the one the schedule plans its tiles
    against) plus the shape and the resolved tile parameters — so a
    bandwidth-adaptive schedule that re-plans (Tradeoff under ratio
    sweeps) fingerprints differently per plan, while ``lru`` and
    ``lru-2x`` (same declared machine, different simulated capacities)
    share one trace.
    """
    return (
        type(algorithm).name,
        algorithm.machine,
        algorithm.m,
        algorithm.n,
        algorithm.z,
        tuple(sorted(algorithm.parameters().items())),
    )


def compiled_trace_for(
    algorithm: MatmulAlgorithm, *, directives: bool = True
) -> CompiledTrace:
    """Compile ``algorithm``'s trace, memoized on its fingerprint.

    Lookup order: in-memory LRU, then the on-disk memmap tier (when
    configured), then compile — freshly compiled traces are stored to
    the tier so sibling processes memmap them instead of recompiling.
    A cached compute-only trace is upgraded (recompiled with
    directives) when an IDEAL replay needs it; a directive-bearing
    trace serves compute-only replays as-is.  ``trace.origin`` records
    where this call got the trace (telemetry).
    """
    from repro.cache import tracestore

    fp = trace_fingerprint(algorithm)
    cached = _TRACE_CACHE.get(fp)
    if cached is not None and (cached.has_directives or not directives):
        _TRACE_CACHE.move_to_end(fp)
        cached.origin = "memory"
        return cached
    trace: Optional[CompiledTrace] = None
    if _TRACE_TIER is not None:
        loaded = tracestore.load(_TRACE_TIER, fp)
        if loaded is not None and (loaded.has_directives or not directives):
            loaded.origin = "disk"
            trace = loaded
    if trace is None:
        trace = compile_trace(algorithm, directives=directives)
        trace.origin = "compiled"
        if _TRACE_TIER is not None:
            tracestore.store(_TRACE_TIER, fp, trace)
    _TRACE_CACHE[fp] = trace
    _TRACE_CACHE.move_to_end(fp)
    total = sum(len(tr) for tr in _TRACE_CACHE.values())
    while total > _TRACE_CACHE_BUDGET and len(_TRACE_CACHE) > 1:
        _, evicted = _TRACE_CACHE.popitem(last=False)
        total -= len(evicted)
    return trace


def clear_trace_cache() -> None:
    """Drop every memoized trace (tests, memory pressure)."""
    _TRACE_CACHE.clear()


def trace_cache_info() -> Dict[str, int]:
    """Introspection: entries and recorded multiply-adds held."""
    return {
        "entries": len(_TRACE_CACHE),
        "fmas": sum(len(tr) for tr in _TRACE_CACHE.values()),
    }
