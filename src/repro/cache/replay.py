"""Trace-compile/replay fast path for the two-level simulator.

The step simulator (:mod:`repro.cache.hierarchy`) interprets a schedule
one reference at a time: three Python-level cache operations per
elementary multiply-add.  This module splits that work in two:

* **compile** — run the schedule once against a recording context and
  keep its block-access trace (the compute stream, and the explicit
  IDEAL directives when the schedule carries them) as a
  :class:`CompiledTrace`;
* **replay** — consume the whole trace in bulk against any simulated
  capacity/policy combination, without re-running the schedule.

Replays are *exact*: every counter of the resulting
:class:`~repro.cache.stats.HierarchyStats` (``ms``, ``md``, write-backs,
per-matrix breakdowns) is bit-identical to the step simulator's, which
the test suite proves across algorithms × policies × ragged shapes and
with hypothesis-generated traces.  The step engine stays available as
the oracle (``engine="step"`` in :func:`repro.sim.runner.run_experiment`).

Where the speed comes from (measured, see ``docs/BENCHMARKS.md``):

* the schedule runs **once** per (algorithm, declared machine, shape) —
  every additional setting/capacity/policy replays the memoized trace
  (:func:`compiled_trace_for` keeps a bounded LRU of compiled traces);
* **FIFO** replay replaces the generic per-touch policy path with an
  insertion-ring pass (hits never mutate FIFO state), ~6× faster;
* **IDEAL** replay is vectorized: the directive stream is lowered to
  numpy arrays once per trace and each replay is a handful of
  sorts/scans instead of four million Python method calls;
* **capacity curves** come from one bounded Mattson pass over the
  per-core streams (:func:`distributed_miss_curves`) instead of one
  full simulation per capacity point.

Exact-LRU replay of a *single* capacity point is inherently sequential
(every reference permutes the recency order), so :func:`replay_lru` is
the same ``OrderedDict`` loop as the step fast path minus the schedule
and context dispatch — parity-to-modest gains, documented rather than
oversold.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np
from numpy.typing import NDArray

from repro.algorithms.base import ExecutionContext, MatmulAlgorithm
from repro.cache.block import MAT_SHIFT
from repro.cache.stats import CacheStats, HierarchyStats
from repro.exceptions import ConfigurationError

#: Directive opcodes in a compiled trace's directive stream.
OP_LOAD_SHARED = 0
OP_EVICT_SHARED = 1
OP_LOAD_DIST = 2
OP_EVICT_DIST = 3

#: Replacement policies the replay engine can reproduce exactly.  The
#: associative/PLRU ablation policies and inclusive hierarchies fall
#: back to the step engine (see :func:`supports`).
REPLAY_POLICIES = frozenset({"lru", "fifo"})

#: Sentinel insertion index meaning "never inserted" in the FIFO pass;
#: must compare below ``miss_count - capacity`` for every reachable
#: state (a plain ``-1`` collides with the cold-start window).
_NEVER = -(1 << 62)


class _Recorder(ExecutionContext):
    """Execution context that records the schedule instead of simulating.

    The compute stream is kept as ``(core, akey, bkey, ckey)`` tuples —
    the exact touch order of the step simulator (A, B, then the written
    C).  With ``explicit=True`` the schedule's IDEAL directives are
    recorded too, as four parallel int lists timestamped with the number
    of computes already emitted (directive ``t`` sorts before compute
    ``t``).
    """

    def __init__(self, p: int, explicit: bool) -> None:
        super().__init__(p)
        self.explicit = explicit
        self.fmas: List[Tuple[int, int, int, int]] = []
        self.dir_op: List[int] = []
        self.dir_t: List[int] = []
        self.dir_core: List[int] = []
        self.dir_key: List[int] = []

    def _record(self, op: int, core: int, key: int) -> None:
        self.dir_op.append(op)
        self.dir_t.append(len(self.fmas))
        self.dir_core.append(core)
        self.dir_key.append(key)

    def load_shared(self, key: int) -> None:
        self._record(OP_LOAD_SHARED, -1, key)

    def evict_shared(self, key: int) -> None:
        self._record(OP_EVICT_SHARED, -1, key)

    def load_dist(self, core: int, key: int) -> None:
        self._record(OP_LOAD_DIST, core, key)

    def evict_dist(self, core: int, key: int) -> None:
        self._record(OP_EVICT_DIST, core, key)

    def compute(self, core: int, ckey: int, akey: int, bkey: int) -> None:
        self.fmas.append((core, akey, bkey, ckey))
        self.comp[core] += 1


class CompiledTrace:
    """One schedule's recorded access trace, ready for bulk replay."""

    __slots__ = (
        "p",
        "fmas",
        "comp",
        "has_directives",
        "_dir_lists",
        "_ideal_arrays",
        "_replays",
    )

    def __init__(
        self,
        p: int,
        fmas: List[Tuple[int, int, int, int]],
        comp: List[int],
        directives: Optional[Tuple[List[int], List[int], List[int], List[int]]],
    ) -> None:
        self.p = p
        self.fmas = fmas
        self.comp = comp
        self.has_directives = directives is not None
        self._dir_lists = directives
        self._ideal_arrays: Optional[Tuple[NDArray[np.int64], ...]] = None
        # Replay results are pure functions of (trace, policy, cs, cd) —
        # IDEAL counters of the trace alone — so each trace memoizes
        # them: re-evaluating a cell (sweep reruns, conformance checks,
        # figure regeneration) costs a dict probe instead of a pass.
        self._replays: Dict[Tuple[str, int, int], HierarchyStats] = {}

    def __len__(self) -> int:
        return len(self.fmas)

    @property
    def comp_total(self) -> int:
        return sum(self.comp)

    def ideal_arrays(self) -> Tuple[NDArray[np.int64], ...]:
        """The directive/compute streams as int64 arrays (built once).

        Returns ``(op, t, core, key, fma_core, fma_ckey)``; the numpy
        lowering is the expensive part of an IDEAL replay and is cached
        on the trace so repeated replays (sweep families, benchmark
        reruns, conformance checks) pay it once.
        """
        if self._ideal_arrays is None:
            if self._dir_lists is None:
                raise ConfigurationError(
                    "trace was compiled without IDEAL directives; "
                    "recompile with directives=True"
                )
            op, t, core, key = self._dir_lists
            fma_core = np.fromiter(
                (f[0] for f in self.fmas), np.int64, count=len(self.fmas)
            )
            fma_ckey = np.fromiter(
                (f[3] for f in self.fmas), np.int64, count=len(self.fmas)
            )
            self._ideal_arrays = (
                np.asarray(op, dtype=np.int64),
                np.asarray(t, dtype=np.int64),
                np.asarray(core, dtype=np.int64),
                np.asarray(key, dtype=np.int64),
                fma_core,
                fma_ckey,
            )
        return self._ideal_arrays


def compile_trace(
    algorithm: MatmulAlgorithm, *, directives: bool = True
) -> CompiledTrace:
    """Run ``algorithm`` once and record its trace.

    ``directives=True`` records the explicit IDEAL directives too
    (needed by :func:`replay_ideal`); compute-only replays can skip them
    to avoid paying the recording cost.
    """
    recorder = _Recorder(algorithm.machine.p, explicit=directives)
    algorithm.run(recorder)
    dirs = (
        (recorder.dir_op, recorder.dir_t, recorder.dir_core, recorder.dir_key)
        if directives
        else None
    )
    return CompiledTrace(recorder.p, recorder.fmas, list(recorder.comp), dirs)


def supports(mode: str, policy: str, inclusive: bool, check: bool) -> bool:
    """Whether the replay engine reproduces this configuration exactly.

    IDEAL replays carry no capacity/inclusion/presence verification, so
    checked runs use the step oracle; LRU-mode replays cover the plain
    ``lru``/``fifo`` policies on non-inclusive hierarchies (the
    associative and PLRU ablations keep their per-touch policy state).
    """
    if mode == "ideal":
        return not check
    return policy in REPLAY_POLICIES and not inclusive


def _copy_stats(stats: HierarchyStats) -> HierarchyStats:
    """Independent copy of a memoized result (callers may mutate)."""
    return HierarchyStats(
        shared=CacheStats(
            stats.shared.hits,
            stats.shared.misses,
            stats.shared.writebacks,
            list(stats.shared.misses_by_matrix),
        ),
        distributed=[
            CacheStats(d.hits, d.misses, d.writebacks, list(d.misses_by_matrix))
            for d in stats.distributed
        ],
    )


def _memoized(
    trace: CompiledTrace, policy: str, cs: int, cd: int
) -> Optional[HierarchyStats]:
    cached = trace._replays.get((policy, cs, cd))
    return _copy_stats(cached) if cached is not None else None


def _memoize(
    trace: CompiledTrace, policy: str, cs: int, cd: int, stats: HierarchyStats
) -> HierarchyStats:
    trace._replays[(policy, cs, cd)] = _copy_stats(stats)
    return stats


# ----------------------------------------------------------------------
# LRU-mode replay
# ----------------------------------------------------------------------
def replay_lru(
    trace: CompiledTrace, configs: Sequence[Tuple[int, int]]
) -> List[HierarchyStats]:
    """Exact LRU hierarchy counters for each ``(cs, cd)`` configuration.

    One pass per configuration, with the step fast path's logic
    (:meth:`~repro.cache.hierarchy.LRUHierarchy.compute_touches`) run
    over the pre-compiled compute stream: same ``OrderedDict``
    recency/eviction/dirty transitions, so the counters are identical
    by construction — without re-running the schedule or the context
    dispatch.  Results are memoized on the trace (they are a pure
    function of ``(trace, cs, cd)``), so re-evaluating a configuration
    costs a dict probe.
    """
    out: List[HierarchyStats] = []
    for cs, cd in configs:
        cached = _memoized(trace, "lru", cs, cd)
        if cached is None:
            cached = _memoize(trace, "lru", cs, cd, _replay_lru_one(trace, cs, cd))
        out.append(cached)
    return out


def _replay_lru_one(trace: CompiledTrace, cs: int, cd: int) -> HierarchyStats:
    p = trace.p
    ddata: List[OrderedDict[int, None]] = [OrderedDict() for _ in range(p)]
    ddirty: List[set[int]] = [set() for _ in range(p)]
    dhits = [0] * p
    dmiss = [0] * p
    dwb = [0] * p
    dmbm = [[0, 0, 0] for _ in range(p)]
    sdata: OrderedDict[int, None] = OrderedDict()
    sdirty: set[int] = set()
    shits = smiss = swb = 0
    smbm = [0, 0, 0]

    for core, akey, bkey, ckey in trace.fmas:
        dd = ddata[core]
        ddirt = ddirty[core]
        mbm = dmbm[core]
        for key in (akey, bkey, ckey):
            if key in dd:
                dd.move_to_end(key)
                dhits[core] += 1
            else:
                dmiss[core] += 1
                mbm[key >> MAT_SHIFT] += 1
                if len(dd) >= cd:
                    victim = dd.popitem(last=False)[0]
                    if victim in ddirt:
                        ddirt.discard(victim)
                        dwb[core] += 1
                        if victim in sdata:
                            sdirty.add(victim)
                dd[key] = None
                # propagate to shared
                if key in sdata:
                    sdata.move_to_end(key)
                    shits += 1
                else:
                    smiss += 1
                    smbm[key >> MAT_SHIFT] += 1
                    if len(sdata) >= cs:
                        s_victim = sdata.popitem(last=False)[0]
                        if s_victim in sdirty:
                            sdirty.discard(s_victim)
                            swb += 1
                    sdata[key] = None
        ddirt.add(ckey)

    return HierarchyStats(
        shared=CacheStats(shits, smiss, swb, smbm),
        distributed=[
            CacheStats(dhits[c], dmiss[c], dwb[c], dmbm[c]) for c in range(p)
        ],
    )


def replay_fifo(
    trace: CompiledTrace, configs: Sequence[Tuple[int, int]]
) -> List[HierarchyStats]:
    """Exact FIFO hierarchy counters for each ``(cs, cd)`` configuration.

    FIFO hits never mutate replacement state, so residency reduces to a
    sliding window over insertion indices: a key is resident iff its
    latest insertion is among the last ``capacity`` misses, and the
    victim of miss ``M`` is the key inserted at miss ``M - capacity``.
    One dict probe per reference replaces the step engine's generic
    policy path (~2× as measured on real schedule traces, more on
    hit-heavy ones), with identical counters.  Results are memoized on
    the trace, so re-evaluating a configuration costs a dict probe.
    """
    out: List[HierarchyStats] = []
    for cs, cd in configs:
        cached = _memoized(trace, "fifo", cs, cd)
        if cached is None:
            cached = _memoize(
                trace, "fifo", cs, cd, _replay_fifo_one(trace, cs, cd)
            )
        out.append(cached)
    return out


def _replay_fifo_one(trace: CompiledTrace, cs: int, cd: int) -> HierarchyStats:
    p = trace.p
    dins: List[Dict[int, int]] = [dict() for _ in range(p)]
    drings: List[List[int]] = [[] for _ in range(p)]
    dmisses = [0] * p
    dhits = [0] * p
    dwb = [0] * p
    dmbm = [[0, 0, 0] for _ in range(p)]
    ddirty: List[set[int]] = [set() for _ in range(p)]
    sins: Dict[int, int] = {}
    sring: List[int] = []
    s_m = 0
    shits = smiss = swb = 0
    smbm = [0, 0, 0]
    sdirty: set[int] = set()

    for core, akey, bkey, ckey in trace.fmas:
        ins = dins[core]
        ring = drings[core]
        ddirt = ddirty[core]
        m = dmisses[core]
        for key in (akey, bkey, ckey):
            if ins.get(key, _NEVER) >= m - cd:
                dhits[core] += 1
                if key is ckey:
                    ddirt.add(key)
                continue
            dmbm[core][key >> MAT_SHIFT] += 1
            if m >= cd:
                victim = ring[m - cd]
                if victim in ddirt:
                    ddirt.discard(victim)
                    dwb[core] += 1
                    # dirty victim lands in its shared copy, if resident
                    if sins.get(victim, _NEVER) >= s_m - cs:
                        sdirty.add(victim)
            ins[key] = m
            ring.append(key)
            m += 1
            if key is ckey:
                ddirt.add(key)
            # propagate the distributed miss to the shared cache
            if sins.get(key, _NEVER) >= s_m - cs:
                shits += 1
            else:
                smiss += 1
                smbm[key >> MAT_SHIFT] += 1
                if s_m >= cs:
                    s_victim = sring[s_m - cs]
                    if s_victim in sdirty:
                        sdirty.discard(s_victim)
                        swb += 1
                sins[key] = s_m
                sring.append(key)
                s_m += 1
        dmisses[core] = m

    return HierarchyStats(
        shared=CacheStats(shits, smiss, swb, smbm),
        distributed=[
            CacheStats(dhits[c], dmisses[c], dwb[c], dmbm[c]) for c in range(p)
        ],
    )


# ----------------------------------------------------------------------
# IDEAL-mode replay (vectorized)
# ----------------------------------------------------------------------
def _last_before(
    mask: NDArray[np.bool_],
    idx: NDArray[np.int64],
    seg_first: NDArray[np.int64],
) -> NDArray[np.int64]:
    """Per element: index of the latest earlier element with ``mask`` set
    inside the same segment, or ``-1``."""
    last = np.maximum.accumulate(np.where(mask, idx, np.int64(-1)))
    excl = np.empty_like(last)
    excl[0] = -1
    excl[1:] = last[:-1]
    return np.where(excl >= seg_first, excl, np.int64(-1))


def _group_sort(group: NDArray[np.int64]) -> NDArray[np.int64]:
    """Stable argsort by group id (elements already in time order).

    Packs ``group`` and position into one int64 and sorts it — a single
    ``np.sort`` of scalars is ~10× cheaper than a stable ``argsort``
    here.  Falls back to the stable argsort when packing would overflow.
    """
    n = len(group)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if n < (1 << 31) and int(group.max()) < (1 << 31):
        packed = (group << np.int64(31)) | np.arange(n, dtype=np.int64)
        packed.sort()
        return packed & np.int64((1 << 31) - 1)
    return np.argsort(group, kind="stable").astype(np.int64)


def _dense_block_ids(key: NDArray[np.int64]) -> NDArray[np.int64]:
    """Map block keys to small dense ids using their (tag, row, col)
    structure — no sort needed, unlike ``np.unique``."""
    if len(key) == 0:
        return key
    mask = np.int64((1 << 28) - 1)
    tag = key >> np.int64(MAT_SHIFT)
    row = (key >> np.int64(28)) & mask
    col = key & mask
    n_row = np.int64(int(row.max()) + 1)
    n_col = np.int64(int(col.max()) + 1)
    return (tag * n_row + row) * n_col + col


def _time_ordered(
    seq: NDArray[np.int64], n_slots: int
) -> NDArray[np.int64]:
    """Indices that sort ``seq`` ascending, via scatter.

    ``seq`` holds unique interleave ranks ``< n_slots``, so scattering
    into a rank-indexed table and compacting replaces an argsort with
    two elementwise passes.
    """
    table = np.full(n_slots, -1, dtype=np.int64)
    table[seq] = np.arange(len(seq), dtype=np.int64)
    return table[table >= 0]


def replay_ideal(trace: CompiledTrace) -> HierarchyStats:
    """Exact IDEAL-mode counters from one vectorized pass.

    Replays the recorded load/evict directives and compute-writes with
    the semantics of :class:`~repro.cache.hierarchy.IdealHierarchy`
    (``check=False``): redundant loads don't count misses, dirty
    distributed evictions update the shared copy (which becomes dirty),
    dirty shared evictions write back to memory.  Instead of a Python
    call per directive, events are sorted per (cache, block) and the
    per-block state machines are evaluated with cumulative scans.

    IDEAL counters are capacity-independent — a pure function of the
    trace — so the result is memoized on the trace: every replay after
    the first costs a dict probe.
    """
    cached = _memoized(trace, "ideal", 0, 0)
    if cached is not None:
        return cached
    p = trace.p
    op, t, core, key, fma_core, fma_ckey = trace.ideal_arrays()
    n_dir = len(op)
    n_fma = len(fma_core)

    # Global interleave rank: directive d (timestamp t_d) precedes
    # compute i iff t_d <= i, so rank(directive d) = d + t_d and
    # rank(compute i) = i + |{d : t_d <= i}|.
    dir_seq = np.arange(n_dir, dtype=np.int64) + t
    if n_fma:
        d_before = np.cumsum(np.bincount(t, minlength=n_fma + 1)[:n_fma])
        fma_seq = np.arange(n_fma, dtype=np.int64) + d_before
    else:
        fma_seq = np.empty(0, dtype=np.int64)

    # ---------------- distributed level ----------------
    # Events per (core, key): explicit loads/evicts + dirtying writes.
    dl = (op == OP_LOAD_DIST) | (op == OP_EVICT_DIST)
    e_core = np.concatenate([core[dl], fma_core])
    e_key = np.concatenate([key[dl], fma_ckey])
    e_seq = np.concatenate([dir_seq[dl], fma_seq])
    # kinds: 0 = load, 1 = evict, 2 = write
    e_kind = np.concatenate(
        [
            np.where(op[dl] == OP_LOAD_DIST, np.int64(0), np.int64(1)),
            np.full(n_fma, 2, dtype=np.int64),
        ]
    )
    n_slots = n_dir + n_fma
    time_order = _time_ordered(e_seq, n_slots)
    e_core = e_core[time_order]
    e_key = e_key[time_order]
    e_kind = e_kind[time_order]
    e_seq = e_seq[time_order]

    md = [0] * p
    md_by_matrix = [[0, 0, 0] for _ in range(p)]
    dist_updates = [0] * p
    mark_keys = np.empty(0, dtype=np.int64)
    mark_seq = np.empty(0, dtype=np.int64)
    n_ev = len(e_kind)
    if n_ev:
        group = _dense_block_ids(e_key) * np.int64(p) + e_core
        order = _group_sort(group)
        g = group[order]
        k = e_key[order]
        c = e_core[order]
        kind = e_kind[order]
        idx = np.arange(n_ev, dtype=np.int64)
        new = np.empty(n_ev, dtype=bool)
        new[0] = True
        new[1:] = g[1:] != g[:-1]
        seg_first = np.maximum.accumulate(np.where(new, idx, np.int64(0)))
        last_load = _last_before(kind == 0, idx, seg_first)
        last_evict = _last_before(kind == 1, idx, seg_first)
        last_write = _last_before(kind == 2, idx, seg_first)
        resident = last_load > last_evict
        miss = (kind == 0) & ~resident
        mdc = np.bincount(c[miss], minlength=p)
        tags = k >> np.int64(MAT_SHIFT)
        mdm = np.bincount(
            c[miss] * np.int64(3) + tags[miss], minlength=3 * p
        ).reshape(p, 3)
        dirty_evict = (kind == 1) & (last_write > last_evict)
        duc = np.bincount(c[dirty_evict], minlength=p)
        md = [int(x) for x in mdc]
        md_by_matrix = [[int(x) for x in row] for row in mdm]
        dist_updates = [int(x) for x in duc]
        # dirty distributed evictions mark the shared copy dirty
        mark_keys = k[dirty_evict]
        mark_seq = e_seq[order][dirty_evict]

    # ---------------- shared level ----------------
    sl = (op == OP_LOAD_SHARED) | (op == OP_EVICT_SHARED)
    s_key = np.concatenate([key[sl], mark_keys])
    s_seq = np.concatenate([dir_seq[sl], mark_seq])
    # kinds: 0 = load, 1 = evict, 2 = dirty mark
    s_kind = np.concatenate(
        [
            np.where(op[sl] == OP_LOAD_SHARED, np.int64(0), np.int64(1)),
            np.full(len(mark_keys), 2, dtype=np.int64),
        ]
    )
    ms = 0
    ms_by_matrix = [0, 0, 0]
    shared_writebacks = 0
    n_sev = len(s_kind)
    if n_sev:
        time_order = _time_ordered(s_seq, n_slots)
        s_key = s_key[time_order]
        s_kind = s_kind[time_order]
        group = _dense_block_ids(s_key)
        order = _group_sort(group)
        g = group[order]
        k = s_key[order]
        kind = s_kind[order]
        idx = np.arange(n_sev, dtype=np.int64)
        new = np.empty(n_sev, dtype=bool)
        new[0] = True
        new[1:] = g[1:] != g[:-1]
        seg_first = np.maximum.accumulate(np.where(new, idx, np.int64(0)))
        last_load = _last_before(kind == 0, idx, seg_first)
        last_evict = _last_before(kind == 1, idx, seg_first)
        last_mark = _last_before(kind == 2, idx, seg_first)
        resident = last_load > last_evict
        miss = (kind == 0) & ~resident
        ms = int(miss.sum())
        tags = k >> np.int64(MAT_SHIFT)
        ms_by_matrix = [
            int(x) for x in np.bincount(tags[miss], minlength=3)
        ]
        dirty_evict = (kind == 1) & (last_mark > last_evict)
        shared_writebacks = int(dirty_evict.sum())

    stats = HierarchyStats(
        shared=CacheStats(0, ms, shared_writebacks, ms_by_matrix),
        distributed=[
            CacheStats(0, md[c], dist_updates[c], md_by_matrix[c])
            for c in range(p)
        ],
    )
    return _memoize(trace, "ideal", 0, 0, stats)


# ----------------------------------------------------------------------
# Capacity curves: one pass, every capacity
# ----------------------------------------------------------------------
def distributed_miss_curves(
    trace: CompiledTrace, capacities: Sequence[int]
) -> Dict[int, List[int]]:
    """Per-core distributed LRU miss counts for *every* capacity at once.

    One bounded Mattson stack-distance pass per core (Mattson's
    inclusion property: an LRU cache of capacity ``Z`` hits iff the
    stack distance is ``< Z``) replaces one full hierarchy simulation
    per capacity point — the asymptotic win of the replay engine for
    the capacity-ablation workloads.  Returns ``{capacity: [md per
    core]}``; counts equal ``engine="step"`` distributed misses exactly.
    """
    from repro.cache.stackdist import miss_counts_multi

    if not capacities:
        return {}
    p = trace.p
    streams: List[List[int]] = [[] for _ in range(p)]
    for c_core, akey, bkey, ckey in trace.fmas:
        stream = streams[c_core]
        stream.append(akey)
        stream.append(bkey)
        stream.append(ckey)
    curves: Dict[int, List[int]] = {cap: [0] * p for cap in capacities}
    for c in range(p):
        counts = miss_counts_multi(streams[c], capacities)
        for cap in capacities:
            curves[cap][c] = counts[cap]
    return curves


# ----------------------------------------------------------------------
# Trace memoization
# ----------------------------------------------------------------------
#: Bounded LRU of compiled traces, keyed by schedule fingerprint.  The
#: budget is in recorded multiply-adds (the dominant memory term) so a
#: few small traces or one big one stay resident.
_TRACE_CACHE: "OrderedDict[Hashable, CompiledTrace]" = OrderedDict()
_TRACE_CACHE_BUDGET = 4_000_000


def trace_fingerprint(algorithm: MatmulAlgorithm) -> Hashable:
    """Memoization key: everything the emitted trace can depend on.

    The *declared* machine (the one the schedule plans its tiles
    against) plus the shape and the resolved tile parameters — so a
    bandwidth-adaptive schedule that re-plans (Tradeoff under ratio
    sweeps) fingerprints differently per plan, while ``lru`` and
    ``lru-2x`` (same declared machine, different simulated capacities)
    share one trace.
    """
    return (
        type(algorithm).name,
        algorithm.machine,
        algorithm.m,
        algorithm.n,
        algorithm.z,
        tuple(sorted(algorithm.parameters().items())),
    )


def compiled_trace_for(
    algorithm: MatmulAlgorithm, *, directives: bool = True
) -> CompiledTrace:
    """Compile ``algorithm``'s trace, memoized on its fingerprint.

    A cached compute-only trace is upgraded (recompiled with
    directives) when an IDEAL replay needs it; a directive-bearing
    trace serves compute-only replays as-is.
    """
    fp = trace_fingerprint(algorithm)
    cached = _TRACE_CACHE.get(fp)
    if cached is not None and (cached.has_directives or not directives):
        _TRACE_CACHE.move_to_end(fp)
        return cached
    trace = compile_trace(algorithm, directives=directives)
    _TRACE_CACHE[fp] = trace
    _TRACE_CACHE.move_to_end(fp)
    total = sum(len(tr) for tr in _TRACE_CACHE.values())
    while total > _TRACE_CACHE_BUDGET and len(_TRACE_CACHE) > 1:
        _, evicted = _TRACE_CACHE.popitem(last=False)
        total -= len(evicted)
    return trace


def clear_trace_cache() -> None:
    """Drop every memoized trace (tests, memory pressure)."""
    _TRACE_CACHE.clear()


def trace_cache_info() -> Dict[str, int]:
    """Introspection: entries and recorded multiply-adds held."""
    return {
        "entries": len(_TRACE_CACHE),
        "fmas": sum(len(tr) for tr in _TRACE_CACHE.values()),
    }
