"""Replacement-policy interface.

The paper's simulator offers LRU and IDEAL modes.  LRU (and the FIFO
extension used in ablations) are *reactive* policies implementing this
interface; IDEAL is not a policy at all — replacement decisions come
from the algorithm — and lives in
:class:`repro.cache.hierarchy.IdealHierarchy` instead.

A policy is a bounded container of block keys.  ``access`` is the single
hot-path operation: it records a reference and reports whether it hit.
On a miss the policy inserts the key, evicting a victim if full, and
reports the victim so the owning :class:`repro.cache.cache.Cache` can
account write-backs and (optionally) back-invalidate inner caches.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator, Optional, Tuple


class ReplacementPolicy(ABC):
    """Bounded key container with a replacement discipline."""

    #: Capacity in blocks; set by concrete constructors.
    capacity: int

    @abstractmethod
    def access(self, key: int) -> Tuple[bool, Optional[int]]:
        """Reference ``key``; return ``(hit, evicted_key_or_None)``.

        On a hit the policy updates its recency metadata and returns
        ``(True, None)``.  On a miss it inserts ``key``; if the
        container was full it evicts and returns the victim.
        """

    @abstractmethod
    def __contains__(self, key: int) -> bool:
        """Whether ``key`` currently resides in the container."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of resident keys."""

    @abstractmethod
    def __iter__(self) -> Iterator[int]:
        """Iterate over resident keys (eviction order unspecified)."""

    @abstractmethod
    def discard(self, key: int) -> bool:
        """Remove ``key`` if present; return whether it was resident.

        Used for back-invalidation when an outer cache enforces
        inclusivity.
        """

    @abstractmethod
    def clear(self) -> None:
        """Empty the container (statistics live in the owning cache)."""
