"""The two-level cache hierarchy of the paper, in both simulator modes.

Two classes mirror the two modes of the paper's simulator (§4.1):

* :class:`LRUHierarchy` — "read and write operations are made at the
  distributed cache level (top of hierarchy); if a miss occurs,
  operations are propagated throughout the hierarchy until a cache hit
  happens."  Replacement is automatic (LRU by default, FIFO available
  for ablations).  Explicit load/evict directives from algorithms are
  ignored in this mode.

* :class:`IdealHierarchy` — "the user manually decides which data needs
  to be loaded/unloaded in a given cache; I/O operations are not
  propagated throughout the hierarchy in case of a cache miss: it is the
  user responsibility to guarantee that a given data is present in every
  cache below the target cache."  With ``check=True`` the hierarchy
  *verifies* that responsibility: capacity overflows, inclusion
  violations and computes on absent blocks raise instead of being
  silently miscounted.

Both expose the same statistics surface
(:class:`repro.cache.stats.HierarchyStats`) so the simulation engine is
mode-agnostic.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.cache.block import MAT_SHIFT, key_name
from repro.cache.cache import Cache
from repro.cache.lru import LRUCache
from repro.cache.stats import CacheStats, HierarchyStats
from repro.exceptions import (
    CapacityError,
    ConfigurationError,
    InclusionError,
    PresenceError,
)


class LRUHierarchy:
    """Shared cache + ``p`` distributed caches with automatic replacement.

    Parameters
    ----------
    p:
        Number of cores (and distributed caches).
    cs, cd:
        Capacities (in blocks) of the shared and of each distributed
        cache.
    policy:
        Replacement policy name (``"lru"`` or ``"fifo"``).
    inclusive:
        When ``True``, evicting a block from the shared cache
        back-invalidates any distributed copy, enforcing the paper's
        inclusivity assumption.  When ``False`` (default, and what a
        straightforward two-level LRU does), inner copies may outlive
        the shared one.
    """

    def __init__(
        self,
        p: int,
        cs: int,
        cd: int,
        policy: str = "lru",
        inclusive: bool = False,
    ) -> None:
        if p < 1:
            raise ConfigurationError(f"need at least one core, got p={p}")
        self.p = p
        self.policy_name = policy
        self.inclusive = inclusive
        self.shared = Cache("shared", cs, policy)
        self.distributed = [Cache(f"distributed[{c}]", cd, policy) for c in range(p)]
        # The specialized fast path manipulates the LRU OrderedDicts
        # directly; it is only valid for plain non-inclusive LRU.
        self._fast = policy == "lru" and not inclusive

    # ------------------------------------------------------------------
    # Generic (policy-agnostic) access path
    # ------------------------------------------------------------------
    def touch(self, core: int, key: int, write: bool = False) -> bool:
        """One reference by ``core`` to ``key``; returns distributed-hit.

        A distributed miss is propagated to the shared cache; a shared
        miss loads from memory.  Writes mark the block dirty at the
        distributed level.  A dirty victim evicted from the distributed
        cache is written back into its shared copy, which becomes dirty
        (mirroring :meth:`IdealHierarchy.evict_distributed`); if the
        shared cache no longer holds the block, the write-back goes
        straight to memory and was already counted at the distributed
        level.
        """
        hit, victim, victim_dirty = self.distributed[core].access(key, write)
        if victim is not None and victim_dirty and victim in self.shared:
            self.shared.dirty.add(victim)
        if hit:
            return True
        s_hit, s_victim, _ = self.shared.access(key)
        if s_victim is not None and self.inclusive:
            for dc in self.distributed:
                dc.invalidate(s_victim)
        return False

    def compute_touches(self, core: int, akey: int, bkey: int, ckey: int) -> None:
        """The three references of one block multiply-add ``C += A·B``.

        This is the innermost simulator operation.  When the hierarchy
        runs plain non-inclusive LRU, the logic of :meth:`touch` is
        inlined over the ``OrderedDict`` internals; tests assert that
        this fast path and three :meth:`touch` calls produce identical
        statistics.
        """
        if not self._fast:
            self.touch(core, akey)
            self.touch(core, bkey)
            self.touch(core, ckey, write=True)
            return

        dc = self.distributed[core]
        ddata = dc.policy._data  # type: ignore[attr-defined]
        dcap = dc.capacity
        ddirty = dc.dirty
        dmbm = dc.misses_by_matrix
        sc = self.shared
        sdata = sc.policy._data  # type: ignore[attr-defined]
        scap = sc.capacity
        sdirty = sc.dirty
        smbm = sc.misses_by_matrix

        for key in (akey, bkey, ckey):
            if key in ddata:
                ddata.move_to_end(key)
                dc.hits += 1
            else:
                dc.misses += 1
                dmbm[key >> MAT_SHIFT] += 1
                if len(ddata) >= dcap:
                    victim = ddata.popitem(last=False)[0]
                    if victim in ddirty:
                        ddirty.discard(victim)
                        dc.writebacks += 1
                        if victim in sdata:
                            sdirty.add(victim)
                ddata[key] = None
                # propagate to shared
                if key in sdata:
                    sdata.move_to_end(key)
                    sc.hits += 1
                else:
                    sc.misses += 1
                    smbm[key >> MAT_SHIFT] += 1
                    if len(sdata) >= scap:
                        s_victim = sdata.popitem(last=False)[0]
                        if s_victim in sdirty:
                            sdirty.discard(s_victim)
                            sc.writebacks += 1
                    sdata[key] = None
        ddirty.add(ckey)

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def snapshot(self) -> HierarchyStats:
        """Snapshot all counters into a :class:`HierarchyStats`."""
        return HierarchyStats(
            shared=self.shared.stats(),
            distributed=[dc.stats() for dc in self.distributed],
        )

    def reset(self) -> None:
        """Empty every cache and zero all counters."""
        self.shared.reset()
        for dc in self.distributed:
            dc.reset()

    def check_inclusion(self) -> bool:
        """Whether every distributed-resident block is shared-resident."""
        return all(
            key in self.shared for dc in self.distributed for key in dc.policy
        )


class IdealHierarchy:
    """Explicitly controlled hierarchy for the ideal cache model.

    Every data movement is an explicit call:

    * :meth:`load_shared` — memory → shared: counts one shared miss;
    * :meth:`load_distributed` — shared → distributed cache of one core:
      counts one distributed miss for that core;
    * :meth:`evict_shared` / :meth:`evict_distributed` — frees capacity;
      dirty blocks count a write-back;
    * :meth:`mark_dirty` — flags a resident block as modified.

    With ``check=True`` (the default — disable only in throughput
    benchmarks) the hierarchy raises
    :class:`~repro.exceptions.CapacityError` on overflow,
    :class:`~repro.exceptions.InclusionError` when the inclusive-cache
    invariant would break, and :meth:`assert_present` raises
    :class:`~repro.exceptions.PresenceError` for computes on absent
    blocks.
    """

    def __init__(self, p: int, cs: int, cd: int, check: bool = True) -> None:
        if p < 1:
            raise ConfigurationError(f"need at least one core, got p={p}")
        self.p = p
        self.cs = cs
        self.cd = cd
        self.check = check
        self.shared_set: Set[int] = set()
        self.dist_sets: List[Set[int]] = [set() for _ in range(p)]
        self.shared_dirty: Set[int] = set()
        self.dist_dirty: List[Set[int]] = [set() for _ in range(p)]
        # counters
        self.ms = 0
        self.ms_by_matrix = [0, 0, 0]
        self.md = [0] * p
        self.md_by_matrix = [[0, 0, 0] for _ in range(p)]
        self.shared_writebacks = 0
        self.dist_updates = [0] * p
        self.redundant_loads = 0
        self.peak_shared = 0
        self.peak_dist = [0] * p

    # ------------------------------------------------------------------
    # Shared level
    # ------------------------------------------------------------------
    def load_shared(self, key: int) -> None:
        """Load one block from memory into the shared cache (one MS)."""
        sset = self.shared_set
        if key in sset:
            self.redundant_loads += 1
            return
        if self.check and len(sset) >= self.cs:
            raise CapacityError(
                f"shared cache overflow loading {key_name(key)}: "
                f"{len(sset)}/{self.cs} blocks resident"
            )
        sset.add(key)
        self.ms += 1
        self.ms_by_matrix[key >> MAT_SHIFT] += 1
        if len(sset) > self.peak_shared:
            self.peak_shared = len(sset)

    def evict_shared(self, key: int) -> None:
        """Remove a block from the shared cache.

        Dirty blocks count one write-back to memory.  In checked mode,
        evicting a block still held by a distributed cache violates
        inclusivity and raises.
        """
        if self.check:
            for c, dset in enumerate(self.dist_sets):
                if key in dset:
                    raise InclusionError(
                        f"evicting {key_name(key)} from shared cache while "
                        f"core {c} still holds it"
                    )
        if key in self.shared_dirty:
            self.shared_dirty.discard(key)
            self.shared_writebacks += 1
        self.shared_set.discard(key)

    def mark_shared_dirty(self, key: int) -> None:
        """Flag a shared-resident block as modified."""
        if self.check and key not in self.shared_set:
            raise PresenceError(f"{key_name(key)} not in shared cache")
        self.shared_dirty.add(key)

    # ------------------------------------------------------------------
    # Distributed level
    # ------------------------------------------------------------------
    def load_distributed(self, core: int, key: int) -> None:
        """Load one block from shared into ``core``'s cache (one MD)."""
        dset = self.dist_sets[core]
        if key in dset:
            self.redundant_loads += 1
            return
        if self.check:
            if key not in self.shared_set:
                raise InclusionError(
                    f"core {core} loads {key_name(key)} absent from shared cache"
                )
            if len(dset) >= self.cd:
                raise CapacityError(
                    f"distributed cache of core {core} overflow loading "
                    f"{key_name(key)}: {len(dset)}/{self.cd} blocks resident"
                )
        dset.add(key)
        self.md[core] += 1
        self.md_by_matrix[core][key >> MAT_SHIFT] += 1
        if len(dset) > self.peak_dist[core]:
            self.peak_dist[core] = len(dset)

    def evict_distributed(self, core: int, key: int) -> None:
        """Remove a block from ``core``'s cache.

        A dirty block is pushed back into the shared copy (counted in
        ``dist_updates``; the shared copy becomes dirty).
        """
        if key in self.dist_dirty[core]:
            self.dist_dirty[core].discard(key)
            self.dist_updates[core] += 1
            self.shared_dirty.add(key)
        self.dist_sets[core].discard(key)

    def mark_distributed_dirty(self, core: int, key: int) -> None:
        """Flag a block in ``core``'s cache as modified."""
        if self.check and key not in self.dist_sets[core]:
            raise PresenceError(
                f"{key_name(key)} not in distributed cache of core {core}"
            )
        self.dist_dirty[core].add(key)

    def assert_present(self, core: int, akey: int, bkey: int, ckey: int) -> None:
        """Verify the three operands of a multiply-add are core-resident."""
        dset = self.dist_sets[core]
        for key in (akey, bkey, ckey):
            if key not in dset:
                raise PresenceError(
                    f"compute on core {core} touches {key_name(key)} which was "
                    "never loaded into its distributed cache"
                )

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def snapshot(self) -> HierarchyStats:
        """Snapshot all counters into a :class:`HierarchyStats`.

        Hits are meaningless under explicit control and reported as 0.
        """
        shared = CacheStats(
            hits=0,
            misses=self.ms,
            writebacks=self.shared_writebacks,
            misses_by_matrix=list(self.ms_by_matrix),
        )
        distributed = [
            CacheStats(
                hits=0,
                misses=self.md[c],
                writebacks=self.dist_updates[c],
                misses_by_matrix=list(self.md_by_matrix[c]),
            )
            for c in range(self.p)
        ]
        return HierarchyStats(shared=shared, distributed=distributed)

    def reset(self) -> None:
        """Empty both levels and zero every counter."""
        self.shared_set.clear()
        self.shared_dirty.clear()
        for dset in self.dist_sets:
            dset.clear()
        for ddirty in self.dist_dirty:
            ddirty.clear()
        self.ms = 0
        self.ms_by_matrix = [0, 0, 0]
        self.md = [0] * self.p
        self.md_by_matrix = [[0, 0, 0] for _ in range(self.p)]
        self.shared_writebacks = 0
        self.dist_updates = [0] * self.p
        self.redundant_loads = 0
        self.peak_shared = 0
        self.peak_dist = [0] * self.p

    def check_inclusion(self) -> bool:
        """Whether every distributed-resident block is shared-resident."""
        return all(
            key in self.shared_set for dset in self.dist_sets for key in dset
        )

    def resident_shared(self) -> int:
        """Blocks currently resident in the shared cache."""
        return len(self.shared_set)

    def resident_distributed(self, core: int) -> int:
        """Blocks currently resident in ``core``'s distributed cache."""
        return len(self.dist_sets[core])
