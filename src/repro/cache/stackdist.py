"""Reuse (LRU stack) distance analysis — one pass, all cache sizes.

Mattson's classic result: under LRU, a reference hits in a cache of
capacity ``Z`` iff its *stack distance* (number of distinct blocks
referenced since the previous reference to the same block) is ``< Z``.
Computing the stack-distance histogram of a trace therefore yields the
exact LRU miss count for *every* capacity simultaneously — the tool the
paper's "LRU(C) vs LRU(2C)" experiments implicitly rely on.

The implementation keeps the LRU stack as a list with a position index
and is ``O(N·D)`` in the worst case (``D`` = mean distance); for the
cache-friendly traces this project produces, distances are short and it
is effectively linear.  Property tests cross-validate it against direct
:class:`~repro.cache.lru.LRUCache` simulation.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Sequence

import numpy as np

#: Histogram key for first references (infinite distance / cold misses).
COLD = -1

#: Saturated distance reported by :func:`bounded_stack_distances` for
#: reuses deeper than the requested bound (they miss in every capacity
#: ``<= bound``, which is all a bounded analysis distinguishes).
DEEP = -2


def stack_distances(keys: Iterable[int]) -> List[int]:
    """Per-reference LRU stack distances (``COLD`` for first touches)."""
    stack: List[int] = []  # MRU at the end
    position: Dict[int, int] = {}
    out: List[int] = []
    for key in keys:
        pos = position.get(key)
        if pos is None:
            out.append(COLD)
        else:
            # distance = number of distinct keys above `key` in the stack
            depth = len(stack) - 1 - pos
            out.append(depth)
            stack.pop(pos)
            for k in stack[pos:]:
                position[k] -= 1
        position[key] = len(stack)
        stack.append(key)
    return out


def distance_histogram(keys: Iterable[int]) -> Counter:
    """Histogram of stack distances (``COLD`` bin = compulsory misses)."""
    return Counter(stack_distances(keys))


def misses_for_capacity(histogram: Counter, capacity: int) -> int:
    """Exact LRU miss count for one capacity, from the histogram.

    A reference misses iff its distance is ``COLD`` or ``>= capacity``.
    """
    if capacity < 1:
        raise ValueError(f"capacity must be positive, got {capacity}")
    return sum(
        count
        for distance, count in histogram.items()
        if distance == COLD or distance >= capacity
    )


def miss_curve(keys: Iterable[int], capacities: Iterable[int]) -> Dict[int, int]:
    """LRU miss counts for many capacities from a single trace pass."""
    histogram = distance_histogram(keys)
    return {z: misses_for_capacity(histogram, z) for z in capacities}


# ----------------------------------------------------------------------
# Bulk passes for the replay engine
# ----------------------------------------------------------------------
class FenwickTree:
    """Binary-indexed tree over ``n`` slots (prefix sums in ``O(log n)``).

    The classic accelerator for Mattson's algorithm: keep a ``1`` at the
    position of each block's most recent reference; the stack distance
    of a reuse is then the count of ones *after* the block's previous
    position — a suffix sum — and each reference updates two positions.
    Guarantees ``O(T log T)`` regardless of the trace's reuse profile,
    where the list-based :func:`stack_distances` is ``O(T·D)``.
    """

    __slots__ = ("n", "_tree")

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError(f"tree size must be positive, got {n}")
        self.n = n
        self._tree = [0] * (n + 1)

    def add(self, index: int, delta: int) -> None:
        """Add ``delta`` at ``index`` (0-based)."""
        i = index + 1
        tree = self._tree
        while i <= self.n:
            tree[i] += delta
            i += i & -i

    def prefix_sum(self, index: int) -> int:
        """Sum of slots ``0..index`` inclusive (0-based)."""
        i = index + 1
        tree = self._tree
        total = 0
        while i > 0:
            total += tree[i]
            i -= i & -i
        return total

    def total(self) -> int:
        """Sum over all slots."""
        return self.prefix_sum(self.n - 1)


def stack_distances_fenwick(keys: Sequence[int]) -> List[int]:
    """Per-reference LRU stack distances via a Fenwick tree.

    Same results as :func:`stack_distances` (property-tested), with a
    guaranteed ``O(T log T)`` bound — the variant to use on hostile
    traces whose mean reuse distance is large.
    """
    n = len(keys)
    if n == 0:
        return []
    tree = FenwickTree(n)
    last_pos: Dict[int, int] = {}
    out: List[int] = []
    for pos, key in enumerate(keys):
        prev = last_pos.get(key)
        if prev is None:
            out.append(COLD)
        else:
            # distinct blocks referenced strictly after `prev`
            out.append(tree.total() - tree.prefix_sum(prev))
            tree.add(prev, -1)
        tree.add(pos, 1)
        last_pos[key] = pos
    return out


def bounded_stack_distances(keys: Iterable[int], bound: int) -> List[int]:
    """Stack distances saturated at ``bound`` (:data:`DEEP` beyond it).

    Keeps only the ``bound`` most recently used distinct blocks, so the
    pass is ``O(T·bound)`` worst case with a tiny constant (one C-level
    list scan per reference) — the fast exact path when only capacities
    ``<= bound`` matter, as in a distributed-cache capacity sweep.
    """
    if bound < 1:
        raise ValueError(f"bound must be positive, got {bound}")
    stack: List[int] = []  # MRU first
    out: List[int] = []
    for key in keys:
        if stack and stack[0] == key:
            out.append(0)
            continue
        if key in stack:
            depth = stack.index(key)
            out.append(depth)
            del stack[depth]
        else:
            # beyond the bound we cannot tell evicted from cold, and no
            # capacity <= bound cares
            out.append(DEEP)
        stack.insert(0, key)
        if len(stack) > bound:
            stack.pop()
    return out


def misses_from_depths(
    depths: "np.ndarray", capacities: Sequence[int]
) -> Dict[int, int]:
    """Vectorized miss counts from a per-reference stack-depth array.

    ``depths`` holds one stack distance per reference; negative entries
    (``COLD``/``DEEP`` sentinels) miss at *every* capacity, non-negative
    entries miss at capacity ``z`` iff ``depth >= z``.  One sort plus a
    binary search per capacity replaces the per-capacity histogram scan
    — this is the aggregation kernel behind :func:`miss_counts_multi`
    and the bulk replay's depth arrays.
    """
    if not capacities:
        return {}
    if min(capacities) < 1:
        raise ValueError(f"capacities must be positive, got {sorted(capacities)}")
    dep = np.asarray(depths, dtype=np.int64)
    n = int(dep.size)
    neg = int((dep < 0).sum())
    srt = np.sort(dep)
    out: Dict[int, int] = {}
    for z in capacities:
        # misses = all-negative + depths >= z
        out[z] = neg + n - int(np.searchsorted(srt, z, side="left"))
    return out


def miss_counts_multi(
    keys: Sequence[int], capacities: Sequence[int]
) -> Dict[int, int]:
    """Exact LRU miss counts for several capacities in one bounded pass.

    Equivalent to running one :class:`~repro.cache.lru.LRUCache`
    simulation per capacity, at the cost of a single pass bounded by
    ``max(capacities)`` plus one vectorized aggregation
    (:func:`misses_from_depths`).
    """
    if not capacities:
        return {}
    if min(capacities) < 1:
        raise ValueError(f"capacities must be positive, got {sorted(capacities)}")
    bound = max(capacities)
    depths = np.asarray(bounded_stack_distances(keys, bound), dtype=np.int64)
    return misses_from_depths(depths, capacities)
