"""Reuse (LRU stack) distance analysis — one pass, all cache sizes.

Mattson's classic result: under LRU, a reference hits in a cache of
capacity ``Z`` iff its *stack distance* (number of distinct blocks
referenced since the previous reference to the same block) is ``< Z``.
Computing the stack-distance histogram of a trace therefore yields the
exact LRU miss count for *every* capacity simultaneously — the tool the
paper's "LRU(C) vs LRU(2C)" experiments implicitly rely on.

The implementation keeps the LRU stack as a list with a position index
and is ``O(N·D)`` in the worst case (``D`` = mean distance); for the
cache-friendly traces this project produces, distances are short and it
is effectively linear.  Property tests cross-validate it against direct
:class:`~repro.cache.lru.LRUCache` simulation.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List

#: Histogram key for first references (infinite distance / cold misses).
COLD = -1


def stack_distances(keys: Iterable[int]) -> List[int]:
    """Per-reference LRU stack distances (``COLD`` for first touches)."""
    stack: List[int] = []  # MRU at the end
    position: Dict[int, int] = {}
    out: List[int] = []
    for key in keys:
        pos = position.get(key)
        if pos is None:
            out.append(COLD)
        else:
            # distance = number of distinct keys above `key` in the stack
            depth = len(stack) - 1 - pos
            out.append(depth)
            stack.pop(pos)
            for k in stack[pos:]:
                position[k] -= 1
        position[key] = len(stack)
        stack.append(key)
    return out


def distance_histogram(keys: Iterable[int]) -> Counter:
    """Histogram of stack distances (``COLD`` bin = compulsory misses)."""
    return Counter(stack_distances(keys))


def misses_for_capacity(histogram: Counter, capacity: int) -> int:
    """Exact LRU miss count for one capacity, from the histogram.

    A reference misses iff its distance is ``COLD`` or ``>= capacity``.
    """
    if capacity < 1:
        raise ValueError(f"capacity must be positive, got {capacity}")
    return sum(
        count
        for distance, count in histogram.items()
        if distance == COLD or distance >= capacity
    )


def miss_curve(keys: Iterable[int], capacities: Iterable[int]) -> Dict[int, int]:
    """LRU miss counts for many capacities from a single trace pass."""
    histogram = distance_histogram(keys)
    return {z: misses_for_capacity(histogram, z) for z in capacities}
