"""A single simulated cache: bounded block container + statistics.

:class:`Cache` couples a replacement policy with hit/miss/write-back
accounting and dirty-block tracking.  It is the building brick of the
LRU-mode hierarchy; IDEAL mode uses explicit sets instead (see
:mod:`repro.cache.hierarchy`).

Counters are plain ``int`` attributes rather than a stats object so the
hot path pays a single attribute increment; :meth:`Cache.stats`
materializes a :class:`repro.cache.stats.CacheStats` snapshot on demand.
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

from repro.cache.block import MAT_SHIFT
from repro.cache.lru import make_policy
from repro.cache.policy import ReplacementPolicy
from repro.cache.stats import CacheStats


class Cache:
    """A bounded, policy-driven cache of matrix blocks.

    Parameters
    ----------
    name:
        Label used in error messages and reports (e.g. ``"shared"``,
        ``"distributed[2]"``).
    capacity:
        Capacity in blocks.
    policy:
        Either a policy name registered in
        :data:`repro.cache.lru.POLICIES` or a ready
        :class:`~repro.cache.policy.ReplacementPolicy` instance.
    """

    __slots__ = (
        "name",
        "capacity",
        "policy",
        "hits",
        "misses",
        "writebacks",
        "misses_by_matrix",
        "dirty",
    )

    def __init__(self, name: str, capacity: int, policy="lru") -> None:
        self.name = name
        self.capacity = capacity
        if isinstance(policy, ReplacementPolicy):
            self.policy = policy
        else:
            self.policy = make_policy(policy, capacity)
        self.hits = 0
        self.misses = 0
        self.writebacks = 0
        self.misses_by_matrix = [0, 0, 0]
        self.dirty: Set[int] = set()

    def access(
        self, key: int, write: bool = False
    ) -> Tuple[bool, Optional[int], bool]:
        """Reference ``key``; return ``(hit, victim_or_None, victim_was_dirty)``.

        A miss inserts the key (evicting per policy); ``write`` marks it
        dirty.  Evicting a dirty victim counts one write-back and cleans
        it; the caller learns about it through ``victim_was_dirty`` so a
        hierarchy can land the written-back contents in the level below
        (see :meth:`repro.cache.hierarchy.LRUHierarchy.touch`).
        """
        hit, victim = self.policy.access(key)
        if hit:
            self.hits += 1
        else:
            self.misses += 1
            self.misses_by_matrix[key >> MAT_SHIFT] += 1
        if write:
            self.dirty.add(key)
        victim_was_dirty = victim is not None and victim in self.dirty
        if victim_was_dirty:
            self.dirty.discard(victim)
            self.writebacks += 1
        return hit, victim, victim_was_dirty

    def invalidate(self, key: int) -> bool:
        """Drop ``key`` without statistics impact (back-invalidation).

        Dirty invalidated blocks still count a write-back — their
        contents must survive somewhere below.
        """
        if key in self.dirty:
            self.dirty.discard(key)
            self.writebacks += 1
        return self.policy.discard(key)

    def __contains__(self, key: int) -> bool:
        return key in self.policy

    def __len__(self) -> int:
        return len(self.policy)

    def stats(self) -> CacheStats:
        """Snapshot the counters into a :class:`CacheStats`."""
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            writebacks=self.writebacks,
            misses_by_matrix=list(self.misses_by_matrix),
        )

    def reset(self) -> None:
        """Empty the cache and zero every counter."""
        self.policy.clear()
        self.dirty.clear()
        self.hits = 0
        self.misses = 0
        self.writebacks = 0
        self.misses_by_matrix = [0, 0, 0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cache({self.name!r}, capacity={self.capacity}, "
            f"resident={len(self)}, hits={self.hits}, misses={self.misses})"
        )
