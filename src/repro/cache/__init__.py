"""Two-level cache simulator substrate.

This subpackage implements the paper's simulator (§4): block-granular
caches with pluggable replacement (:mod:`repro.cache.policy`,
:mod:`repro.cache.lru`), single-cache bookkeeping
(:mod:`repro.cache.cache`, :mod:`repro.cache.stats`), the shared +
distributed hierarchy in both LRU and IDEAL modes
(:mod:`repro.cache.hierarchy`), block addressing
(:mod:`repro.cache.block`) and access-trace utilities
(:mod:`repro.cache.trace`).
"""

from repro.cache.block import (
    MAT_A,
    MAT_B,
    MAT_C,
    MATRIX_NAMES,
    block_key,
    decode_key,
    matrix_of,
)
from repro.cache.policy import ReplacementPolicy
from repro.cache.lru import LRUCache, FIFOCache
from repro.cache.cache import Cache
from repro.cache.stats import CacheStats, HierarchyStats
from repro.cache.hierarchy import LRUHierarchy, IdealHierarchy
from repro.cache.trace import AccessTrace, coalesce
from repro.cache.multilevel import LevelSpec, MultiLevelHierarchy, two_level
from repro.cache.associative import SetAssociativeCache, TreePLRU
from repro.cache.stackdist import (
    distance_histogram,
    miss_curve,
    misses_for_capacity,
    stack_distances,
)

__all__ = [
    "MAT_A",
    "MAT_B",
    "MAT_C",
    "MATRIX_NAMES",
    "block_key",
    "decode_key",
    "matrix_of",
    "ReplacementPolicy",
    "LRUCache",
    "FIFOCache",
    "Cache",
    "CacheStats",
    "HierarchyStats",
    "LRUHierarchy",
    "IdealHierarchy",
    "AccessTrace",
    "coalesce",
    "LevelSpec",
    "MultiLevelHierarchy",
    "two_level",
    "SetAssociativeCache",
    "TreePLRU",
    "distance_histogram",
    "miss_curve",
    "misses_for_capacity",
    "stack_distances",
]
