"""On-disk content-addressed tier for compiled traces (memmap-shared).

The in-memory trace LRU in :mod:`repro.cache.replay` is per-process:
every parallel-sweep or fabric worker recompiles the same schedule.
This module gives :func:`repro.cache.replay.compiled_trace_for` a
second, cross-process tier — a content-addressed directory of
``np.save`` artifacts under the run dir:

.. code-block:: text

    <root>/<key[:2]>/<key>/fmas.npy   # (n, 4) int64 compute stream
    <root>/<key[:2]>/<key>/dirs.npy   # (4, d) int64 directives (optional)
    <root>/<key[:2]>/<key>/meta.json  # format version, p, comp, counts

``key`` is the SHA-256 of the schedule fingerprint (the same key the
in-memory LRU uses), so identical schedules hash to identical entries
no matter which process compiled them.  Readers memmap ``fmas.npy``
read-only — the replay kernels only ever slice it in chunks, so N
workers share one page-cache copy of a trace instead of N private
recompilations.

Crash consistency without locks: every file is written through
:func:`repro.store.atomic_write_bytes` (tmp + fsync + rename), and
``meta.json`` is written *last* — a reader that finds no valid
``meta.json`` treats the entry as absent, so a torn store (crash
between files) is a cache miss, never a corrupt trace.  Concurrent
stores of the same entry are idempotent races: both writers produce
byte-identical content, and the atomic renames make either winner
valid.  Overwrites (the directive-upgrade path) atomically replace the
files; existing memmaps keep their old inodes alive until unmapped.
"""

from __future__ import annotations

import hashlib
import io
import json
from pathlib import Path
from typing import Any, Dict, Hashable, Optional, Union

import numpy as np

from repro.store import atomic_write_bytes, atomic_write_text

#: Bump when the on-disk layout changes; readers reject other versions
#: (a stale cache directory degrades to misses, never to bad data).
FORMAT_VERSION = 1

_META_NAME = "meta.json"
_FMAS_NAME = "fmas.npy"
_DIRS_NAME = "dirs.npy"

#: Per-process tier telemetry, surfaced in CI's cache-efficacy step and
#: the `repro-mmm traces stats` subcommand.
_COUNTERS = {"hits": 0, "misses": 0, "stores": 0, "errors": 0}


def content_key(fingerprint: Hashable) -> str:
    """Stable content address of a schedule fingerprint.

    The fingerprint tuple (algorithm name, declared machine, shape,
    resolved parameters) has a deterministic ``repr`` — dataclasses and
    sorted parameter tuples — so hashing it gives the same key in every
    process and across runs, which is what lets CI cache the tier
    across workflow runs keyed on content.
    """
    digest = hashlib.sha256(
        f"v{FORMAT_VERSION}:{fingerprint!r}".encode("utf-8")
    )
    return digest.hexdigest()


def entry_dir(root: Union[str, Path], fingerprint: Hashable) -> Path:
    """Directory holding ``fingerprint``'s trace (may not exist)."""
    key = content_key(fingerprint)
    return Path(root) / key[:2] / key


def _save_array(path: Path, arr: "np.ndarray") -> None:
    buf = io.BytesIO()
    np.save(buf, np.ascontiguousarray(arr))
    atomic_write_bytes(path, buf.getvalue())


def store(root: Union[str, Path], fingerprint: Hashable, trace: Any) -> bool:
    """Persist a compiled trace under its content address.

    ``trace`` is a :class:`repro.cache.replay.CompiledTrace` (typed as
    ``Any`` to keep this module import-light).  Write order is arrays
    first, ``meta.json`` last — the entry only becomes visible to
    readers once every byte of it is durably in place.  Best-effort:
    returns ``False`` (and counts an error) instead of raising, so a
    full disk degrades the tier to a no-op rather than failing sweeps.
    """
    entry = entry_dir(root, fingerprint)
    try:
        entry.mkdir(parents=True, exist_ok=True)
        _save_array(entry / _FMAS_NAME, trace.fma_array)
        dir_lists = trace._dir_lists
        has_dirs = dir_lists is not None
        if has_dirs:
            dirs = np.asarray(dir_lists, dtype=np.int64).reshape(4, -1)
            _save_array(entry / _DIRS_NAME, dirs)
        meta = {
            "format": FORMAT_VERSION,
            "p": trace.p,
            "comp": list(trace.comp),
            "n_fmas": int(trace.fma_array.shape[0]),
            "has_directives": has_dirs,
        }
        atomic_write_text(
            entry / _META_NAME, json.dumps(meta, sort_keys=True)
        )
    except OSError:
        _COUNTERS["errors"] += 1
        return False
    _COUNTERS["stores"] += 1
    return True


def load(root: Union[str, Path], fingerprint: Hashable) -> Optional[Any]:
    """Load ``fingerprint``'s trace from the tier, or ``None`` on miss.

    The compute stream comes back as a read-only memmap — the kernels
    stream it in chunks, so page cache (shared across processes) backs
    the replay instead of private heap copies.  Any inconsistency
    (missing/invalid ``meta.json``, wrong format version, shape
    mismatch from a torn write) is a miss, never an exception.
    """
    from repro.cache.replay import CompiledTrace

    entry = entry_dir(root, fingerprint)
    meta_path = entry / _META_NAME
    try:
        meta = json.loads(meta_path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        _COUNTERS["misses"] += 1
        return None
    try:
        if meta.get("format") != FORMAT_VERSION:
            raise ValueError(f"unsupported trace format {meta.get('format')!r}")
        fmas = np.load(entry / _FMAS_NAME, mmap_mode="r")
        if fmas.ndim != 2 or fmas.shape[1] != 4 or fmas.dtype != np.int64:
            raise ValueError(f"bad fma array {fmas.dtype} {fmas.shape}")
        if int(fmas.shape[0]) != int(meta["n_fmas"]):
            raise ValueError(
                f"fma count mismatch: meta says {meta['n_fmas']}, "
                f"array has {fmas.shape[0]}"
            )
        directives = None
        if meta.get("has_directives"):
            dirs = np.load(entry / _DIRS_NAME, mmap_mode="r")
            if dirs.ndim != 2 or dirs.shape[0] != 4 or dirs.dtype != np.int64:
                raise ValueError(f"bad directive array {dirs.dtype} {dirs.shape}")
            directives = (dirs[0], dirs[1], dirs[2], dirs[3])
        comp = [int(x) for x in meta["comp"]]
        trace = CompiledTrace(int(meta["p"]), fmas, comp, directives)
    except (OSError, ValueError, KeyError, TypeError):
        _COUNTERS["errors"] += 1
        _COUNTERS["misses"] += 1
        return None
    _COUNTERS["hits"] += 1
    return trace


def tier_counters() -> Dict[str, int]:
    """This process's tier telemetry: hits/misses/stores/errors."""
    return dict(_COUNTERS)


def reset_tier_counters() -> None:
    for k in _COUNTERS:
        _COUNTERS[k] = 0


def tier_info(root: Union[str, Path]) -> Dict[str, int]:
    """Scan a tier directory: entries, recorded fmas, bytes on disk.

    Powers ``repro-mmm traces stats`` and the CI cache-efficacy step.
    """
    entries = 0
    fmas = 0
    n_bytes = 0
    directive_entries = 0
    root_path = Path(root)
    if not root_path.is_dir():
        return {"entries": 0, "fmas": 0, "bytes": 0, "directive_entries": 0}
    for meta_path in sorted(root_path.glob(f"*/*/{_META_NAME}")):
        try:
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            continue
        if meta.get("format") != FORMAT_VERSION:
            continue
        entries += 1
        fmas += int(meta.get("n_fmas", 0))
        if meta.get("has_directives"):
            directive_entries += 1
        for sibling in sorted(meta_path.parent.iterdir()):
            try:
                n_bytes += sibling.stat().st_size
            except OSError:
                continue
    return {
        "entries": entries,
        "fmas": fmas,
        "bytes": n_bytes,
        "directive_entries": directive_entries,
    }
