"""Compact addressing of matrix blocks.

The simulator manipulates ``q × q`` coefficient blocks, identified by
the matrix they belong to (``A``, ``B`` or ``C``) and their block
coordinates.  To keep the hot path fast, a block id is a single Python
``int``::

    key = (matrix << 56) | (row << 28) | col

which is hashable, comparable and avoids tuple allocation in the inner
simulation loops.  Rows and columns must fit in 28 bits — ample for any
realistic block count (the paper stops at order 1100).

Row/column conventions follow the paper: ``A`` is ``m × z`` (block of
``A`` at ``(i, k)``), ``B`` is ``z × n`` (block at ``(k, j)``) and ``C``
is ``m × n`` (block at ``(i, j)``).
"""

from __future__ import annotations

from typing import Tuple

#: Matrix tags embedded in block keys.
MAT_A = 0
MAT_B = 1
MAT_C = 2

#: Human-readable names indexed by matrix tag.
MATRIX_NAMES = ("A", "B", "C")

_ROW_SHIFT = 28
_MAT_SHIFT = 56
_COORD_MASK = (1 << 28) - 1
_MAX_COORD = _COORD_MASK


def block_key(matrix: int, row: int, col: int) -> int:
    """Encode ``(matrix, row, col)`` into a single integer key.

    ``matrix`` must be one of :data:`MAT_A`, :data:`MAT_B`,
    :data:`MAT_C`; coordinates must be non-negative and fit in 28 bits.
    """
    if not 0 <= matrix <= 2:
        raise ValueError(f"matrix tag must be 0 (A), 1 (B) or 2 (C), got {matrix}")
    if not (0 <= row <= _MAX_COORD and 0 <= col <= _MAX_COORD):
        raise ValueError(f"block coordinates out of range: ({row}, {col})")
    return (matrix << _MAT_SHIFT) | (row << _ROW_SHIFT) | col


def decode_key(key: int) -> Tuple[int, int, int]:
    """Invert :func:`block_key`, returning ``(matrix, row, col)``."""
    return key >> _MAT_SHIFT, (key >> _ROW_SHIFT) & _COORD_MASK, key & _COORD_MASK


def matrix_of(key: int) -> int:
    """Matrix tag of a block key (0 = A, 1 = B, 2 = C)."""
    return key >> _MAT_SHIFT


def key_name(key: int) -> str:
    """Debug-friendly rendering, e.g. ``'B[3,7]'``."""
    mat, row, col = decode_key(key)
    return f"{MATRIX_NAMES[mat]}[{row},{col}]"


# Pre-shifted matrix tags so call sites can build keys with pure integer
# arithmetic (``A_BASE | (i << ROW_SHIFT) | k``) without a function call
# in the innermost loops.
A_BASE = MAT_A << _MAT_SHIFT
B_BASE = MAT_B << _MAT_SHIFT
C_BASE = MAT_C << _MAT_SHIFT
ROW_SHIFT = _ROW_SHIFT
MAT_SHIFT = _MAT_SHIFT
