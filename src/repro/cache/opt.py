"""Belady's OPT: offline-optimal replacement over a recorded trace.

The paper's IDEAL mode is *omniscient and explicit* — the algorithm
plans every movement.  Belady's MIN/OPT is the reactive counterpart:
demand-fetch like LRU, but evict the block whose next use is farthest
in the future.  OPT is the provably optimal reactive policy, so it
separates how much of the LRU-vs-IDEAL gap is the *replacement
heuristic* (recoverable by a smarter policy) from how much is the
demand-fetch discipline itself (recoverable only by explicit planning,
i.e. the paper's IDEAL mode).

OPT needs the whole future, so it is a trace analysis, not a
:class:`~repro.cache.policy.ReplacementPolicy`: record a trace (or take
any key sequence), call :func:`opt_misses`.

Implementation: the classic two-pass algorithm — precompute next-use
indices, then simulate keeping the resident set with a max-heap of
(next use, key); lazily invalidated heap entries keep it
``O(N log N)``.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Sequence

from repro.exceptions import ConfigurationError

#: Next-use sentinel for "never referenced again".
_NEVER = float("inf")


def next_use_indices(keys: Sequence[int]) -> List[float]:
    """For each position, the index of the key's next reference.

    ``inf`` when the key never occurs again.  (First pass of OPT.)
    """
    next_use: List[float] = [_NEVER] * len(keys)
    last_seen: Dict[int, int] = {}
    for idx in range(len(keys) - 1, -1, -1):
        key = keys[idx]
        next_use[idx] = last_seen.get(key, _NEVER)
        last_seen[key] = idx
    return next_use


def opt_misses(keys: Iterable[int], capacity: int) -> int:
    """Miss count of Belady's optimal replacement on a key sequence."""
    if capacity < 1:
        raise ConfigurationError(f"capacity must be positive, got {capacity}")
    trace = list(keys)
    next_use = next_use_indices(trace)
    resident: Dict[int, float] = {}  # key -> its current next-use
    heap: List[tuple] = []  # (-next_use, key), lazily invalidated
    misses = 0
    for idx, key in enumerate(trace):
        future = next_use[idx]
        if key in resident:
            resident[key] = future
            heapq.heappush(heap, (-future, key))
            continue
        misses += 1
        if len(resident) >= capacity:
            # evict the resident block used farthest in the future
            while True:
                neg_use, victim = heapq.heappop(heap)
                if resident.get(victim) == -neg_use:
                    del resident[victim]
                    break
        resident[key] = future
        heapq.heappush(heap, (-future, key))
    return misses


def opt_miss_curve(keys: Iterable[int], capacities: Iterable[int]) -> Dict[int, int]:
    """OPT miss counts for several capacities (one simulation each)."""
    trace = list(keys)
    return {z: opt_misses(trace, z) for z in capacities}
