"""Access traces: recording, replay and coalescing.

An :class:`AccessTrace` is a flat sequence of ``(core, key, write)``
references — the raw material of LRU simulation.  Traces let us:

* replay the exact same reference stream against different hierarchies
  (policies, capacities, inclusive or not) for ablations;
* *coalesce* adjacent duplicate references, a pure speed optimization:
  re-referencing the most recently used block is a guaranteed hit under
  LRU and leaves the cache state unchanged, so dropping immediate
  repeats preserves every miss count (proved by
  ``tests/cache/test_trace.py`` property tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Tuple

from repro.cache.hierarchy import LRUHierarchy

#: One reference: (core, block key, is-write).
TraceEntry = Tuple[int, int, bool]


@dataclass
class AccessTrace:
    """A recorded stream of cache references."""

    entries: List[TraceEntry] = field(default_factory=list)

    def record(self, core: int, key: int, write: bool = False) -> None:
        """Append one reference."""
        self.entries.append((core, key, write))

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self.entries)

    def replay(self, hierarchy: LRUHierarchy) -> None:
        """Feed every reference to ``hierarchy`` in order."""
        touch = hierarchy.touch
        for core, key, write in self.entries:
            touch(core, key, write)

    def per_core(self) -> List["AccessTrace"]:
        """Split into one trace per core (order preserved within cores)."""
        ncores = max((core for core, _, _ in self.entries), default=-1) + 1
        split: List[AccessTrace] = [AccessTrace() for _ in range(ncores)]
        for core, key, write in self.entries:
            split[core].entries.append((core, key, write))
        return split

    def coalesced(self) -> "AccessTrace":
        """Return a copy with per-core adjacent duplicates removed.

        A reference is dropped when the same core's *immediately
        preceding* reference (ignoring interleaved references by other
        cores, which touch other distributed caches) named the same
        block; a dropped write keeps the surviving entry's write flag
        sticky so dirtiness is preserved.
        """
        out = AccessTrace()
        last_by_core: Dict[int, int] = {}
        last_index_by_core: Dict[int, int] = {}
        for core, key, write in self.entries:
            if last_by_core.get(core) == key:
                if write:
                    idx = last_index_by_core[core]
                    c, k, w = out.entries[idx]
                    if not w:
                        out.entries[idx] = (c, k, True)
                continue
            last_by_core[core] = key
            last_index_by_core[core] = len(out.entries)
            out.entries.append((core, key, write))
        return out


def coalesce(entries: Iterable[TraceEntry]) -> List[TraceEntry]:
    """Functional form of :meth:`AccessTrace.coalesced` over any iterable."""
    trace = AccessTrace(list(entries))
    return trace.coalesced().entries
