"""Statistics collected by the cache simulator.

:class:`CacheStats` aggregates one cache's counters; the per-matrix
breakdown (misses attributable to ``A``, ``B`` or ``C`` blocks) is the
one the paper's analysis reasons about.  :class:`HierarchyStats`
combines the shared cache's stats with the ``p`` distributed caches' and
exposes the paper's headline quantities ``MS``, ``MD`` and
``Tdata = MS/σS + MD/σD``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.cache.block import MATRIX_NAMES


@dataclass
class CacheStats:
    """Counters for a single cache.

    ``misses_by_matrix[t]`` breaks misses down by the matrix tag ``t``
    (0 = A, 1 = B, 2 = C).  ``writebacks`` counts dirty evictions.
    """

    hits: int = 0
    misses: int = 0
    writebacks: int = 0
    misses_by_matrix: List[int] = field(default_factory=lambda: [0, 0, 0])

    @property
    def accesses(self) -> int:
        """Total references seen by the cache."""
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Fraction of references that missed (0 if never accessed)."""
        total = self.accesses
        return self.misses / total if total else 0.0

    def as_dict(self) -> Dict[str, object]:
        """Serializable snapshot (for CSV/JSON reporting)."""
        d: Dict[str, object] = {
            "hits": self.hits,
            "misses": self.misses,
            "writebacks": self.writebacks,
            "miss_rate": self.miss_rate,
        }
        for tag, name in enumerate(MATRIX_NAMES):
            d[f"misses_{name}"] = self.misses_by_matrix[tag]
        return d

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.writebacks = 0
        self.misses_by_matrix = [0, 0, 0]


@dataclass
class HierarchyStats:
    """Combined statistics of the two-level hierarchy.

    Attributes
    ----------
    shared:
        Stats of the shared cache; ``shared.misses`` is the paper's
        ``MS``.
    distributed:
        Per-core stats; the paper's ``MD`` is the *maximum* of the
        per-core miss counts (accesses to different distributed caches
        are concurrent).
    """

    shared: CacheStats
    distributed: List[CacheStats]

    @property
    def ms(self) -> int:
        """Shared-cache misses ``MS``."""
        return self.shared.misses

    @property
    def md(self) -> int:
        """Distributed-cache misses ``MD = max_c M_D^(c)``."""
        return max((c.misses for c in self.distributed), default=0)

    @property
    def md_per_core(self) -> List[int]:
        """Miss count of each distributed cache, in core order."""
        return [c.misses for c in self.distributed]

    @property
    def md_total(self) -> int:
        """Sum of all distributed-cache misses (load-balance metric)."""
        return sum(c.misses for c in self.distributed)

    def tdata(self, sigma_s: float, sigma_d: float) -> float:
        """Data access time ``Tdata = MS/σS + MD/σD`` (paper §2.2)."""
        return self.ms / sigma_s + self.md / sigma_d

    def imbalance(self) -> float:
        """``max/mean`` ratio of per-core distributed misses (1.0 = balanced)."""
        per_core = self.md_per_core
        if not per_core or sum(per_core) == 0:
            return 1.0
        mean = sum(per_core) / len(per_core)
        return max(per_core) / mean

    def as_dict(self) -> Dict[str, object]:
        """Serializable snapshot of the headline quantities."""
        return {
            "MS": self.ms,
            "MD": self.md,
            "MD_total": self.md_total,
            "MD_per_core": self.md_per_core,
            "writebacks_shared": self.shared.writebacks,
            "imbalance": self.imbalance(),
        }
