"""N-level cache hierarchies — the paper's "clusters of multicores" outlook.

The paper's conclusion anticipates "yet another level of hierarchy (or
tiling)" for clusters of multicore processors.  This module generalizes
the two-level LRU hierarchy to an arbitrary *tree* of caches: a root
(backed by memory) whose leaves are the per-core private caches, with
any number of intermediate levels (e.g. memory → node cache → socket
cache → core cache).

Topology is described by a :class:`LevelSpec` list, root first.  Each
level divides the cores evenly among its caches, so level ``i`` with
``count`` caches serves ``p / count`` cores per cache; counts must
divide ``p`` and grow down the tree (every child cache has exactly one
parent).

Semantics mirror :class:`repro.cache.hierarchy.LRUHierarchy`: a core's
reference walks up from its leaf cache until it hits, loading the block
into every cache on the path back down (inclusive fill).  Statistics
are kept per cache and per level; the two-level special case is
bit-for-bit equivalent to ``LRUHierarchy`` (property-tested).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.cache.cache import Cache
from repro.cache.stats import CacheStats
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class LevelSpec:
    """One level of the tree: how many caches, how big, how fast.

    ``count`` caches of ``capacity`` blocks each; ``bandwidth`` is used
    by :meth:`MultiLevelHierarchy.tdata` to weigh this level's misses
    (the fill cost of loading *into* this level from above).
    """

    count: int
    capacity: int
    bandwidth: float = 1.0
    name: str = ""

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ConfigurationError(f"level needs >= 1 cache, got {self.count}")
        if self.capacity < 1:
            raise ConfigurationError(
                f"cache capacity must be positive, got {self.capacity}"
            )
        if self.bandwidth <= 0:
            raise ConfigurationError(
                f"bandwidth must be positive, got {self.bandwidth}"
            )


class MultiLevelHierarchy:
    """A tree of LRU caches serving ``p`` cores.

    Parameters
    ----------
    p:
        Number of cores.  The last level must have exactly ``p`` caches
        (one private cache per core).
    levels:
        Root-first level specs.  ``levels[0]`` faces memory; each
        ``count`` must divide ``p`` and divide the next level's count.
    policy:
        Replacement policy name for every cache.
    """

    def __init__(
        self, p: int, levels: Sequence[LevelSpec], policy: str = "lru"
    ) -> None:
        if p < 1:
            raise ConfigurationError(f"need at least one core, got p={p}")
        if not levels:
            raise ConfigurationError("need at least one cache level")
        if levels[-1].count != p:
            raise ConfigurationError(
                f"the leaf level must have one cache per core: "
                f"{levels[-1].count} != p={p}"
            )
        prev = 1
        for idx, spec in enumerate(levels):
            if spec.count % prev != 0:
                raise ConfigurationError(
                    f"level {idx} count {spec.count} must be a multiple of "
                    f"its parent level's count {prev}"
                )
            if p % spec.count != 0:
                raise ConfigurationError(
                    f"level {idx} count {spec.count} must divide p={p}"
                )
            prev = spec.count
        self.p = p
        self.levels = list(levels)
        self.caches: List[List[Cache]] = [
            [
                Cache(f"{spec.name or f'L{idx}'}[{c}]", spec.capacity, policy)
                for c in range(spec.count)
            ]
            for idx, spec in enumerate(self.levels)
        ]
        # cores_per_cache[idx]: how many cores each cache at level idx serves
        self._cores_per_cache = [p // spec.count for spec in self.levels]

    def cache_of(self, level: int, core: int) -> Cache:
        """The cache at ``level`` on ``core``'s path to memory."""
        return self.caches[level][core // self._cores_per_cache[level]]

    def touch(self, core: int, key: int, write: bool = False) -> int:
        """One reference by ``core``; returns the number of levels missed.

        0 means a hit in the core's private cache; ``len(levels)`` means
        the block came all the way from memory.
        """
        missed = 0
        for level in range(len(self.levels) - 1, -1, -1):
            cache = self.cache_of(level, core)
            hit, _, _ = cache.access(
                key, write=(write and level == len(self.levels) - 1)
            )
            if hit:
                return missed
            missed += 1
        return missed

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def level_stats(self, level: int) -> List[CacheStats]:
        """Per-cache stats snapshot of one level."""
        return [c.stats() for c in self.caches[level]]

    def level_misses(self, level: int) -> int:
        """Max misses across the caches of one level (concurrent fills)."""
        return max(c.misses for c in self.caches[level])

    def total_misses(self, level: int) -> int:
        """Sum of misses across the caches of one level."""
        return sum(c.misses for c in self.caches[level])

    def tdata(self) -> float:
        """Generalized data access time: Σ_level max-misses / bandwidth."""
        return sum(
            self.level_misses(idx) / spec.bandwidth
            for idx, spec in enumerate(self.levels)
        )

    def check_inclusion(self) -> bool:
        """Every block in a child cache is present in its parent."""
        for level in range(1, len(self.levels)):
            ratio = self.levels[level].count // self.levels[level - 1].count
            for c, cache in enumerate(self.caches[level]):
                parent = self.caches[level - 1][c // ratio]
                for key in cache.policy:
                    if key not in parent:
                        return False
        return True

    def reset(self) -> None:
        for row in self.caches:
            for cache in row:
                cache.reset()


def two_level(p: int, cs: int, cd: int, policy: str = "lru") -> MultiLevelHierarchy:
    """The paper's topology as a tree: shared root + p private leaves."""
    return MultiLevelHierarchy(
        p,
        [LevelSpec(1, cs, name="shared"), LevelSpec(p, cd, name="distributed")],
        policy=policy,
    )
