"""Shared retry/backoff policy for the pool engine and the fabric.

Both execution engines — the in-process pool
(:mod:`repro.sim.parallel`) and the coordinator/worker fabric
(:mod:`repro.fabric`) — retry failed cells with exponential backoff.
Before this module each grew its own inline formula; now one
:class:`BackoffPolicy` owns the schedule, and both engines share the
same classification of which errors are worth retrying at all
(:data:`PERMANENT_ERRORS` / :func:`is_retryable`).

Jitter is *deterministic*: a purely exponential schedule makes every
worker that failed at the same attempt retry at the same instant
(thundering herd on the coordinator), but the usual fix —
``random.uniform`` — is banned on the determinism scope (the engine's
retry timing would differ between two runs of the same sweep for no
reproducible reason).  Instead the jitter fraction is derived from a
SHA-256 hash of ``(key, attempt)``: distinct cells decorrelate, while
the same cell retries on the same schedule in every run of the sweep.
The jittered delay never *exceeds* the deterministic envelope — it is
scaled into ``[(1 - jitter) · raw, raw]`` — so timeout budgets
calibrated against ``base · factor^(attempt-1)`` stay valid.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.exceptions import (
    ConfigurationError,
    ParameterError,
    ScheduleError,
)

#: Errors that re-running cannot fix: bad configuration, infeasible
#: parameters, or a deterministic schedule bug.  A cell failing with one
#: of these is finalized as ``failed`` on its first attempt.
PERMANENT_ERRORS = (ConfigurationError, ParameterError, ScheduleError)


def is_retryable(exc: BaseException) -> bool:
    """Whether another attempt at the failed cell could succeed."""
    return not isinstance(exc, PERMANENT_ERRORS)


def _unit_interval(token: str) -> float:
    """Deterministic hash of ``token`` mapped into ``[0, 1)``."""
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff with a cap and deterministic decorrelation.

    Parameters
    ----------
    base_s:
        Delay before the second attempt (attempt 1's retry).
    factor:
        Exponential growth per attempt; 2.0 doubles each time.
    cap_s:
        Upper bound on the undecorated delay, so a deep retry budget
        cannot produce hour-long sleeps.
    jitter:
        Fraction of the delay eligible for decorrelation: the final
        delay lies in ``[(1 - jitter) · raw, raw]``, scaled by a hash
        of ``(key, attempt)``.  0 disables jitter entirely.
    """

    base_s: float = 0.1
    factor: float = 2.0
    cap_s: float = 60.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.base_s < 0:
            raise ConfigurationError(f"base_s must be >= 0, got {self.base_s}")
        if self.factor < 1.0:
            raise ConfigurationError(f"factor must be >= 1, got {self.factor}")
        if self.cap_s <= 0:
            raise ConfigurationError(f"cap_s must be positive, got {self.cap_s}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError(
                f"jitter must be within [0, 1], got {self.jitter}"
            )

    def delay(self, attempt: int, *, key: str = "") -> float:
        """Seconds to wait before re-dispatching after ``attempt`` failed.

        ``attempt`` is 1-based (the attempt that just failed); ``key``
        identifies the retrying unit (e.g. ``"label:index"``) so that
        distinct cells spread out instead of retrying in lockstep.
        """
        if attempt < 1:
            raise ConfigurationError(f"attempt must be >= 1, got {attempt}")
        raw = min(self.cap_s, self.base_s * self.factor ** (attempt - 1))
        if self.jitter == 0.0 or raw == 0.0:
            return raw
        scale = 1.0 - self.jitter * _unit_interval(f"{key}|{attempt}")
        return raw * scale
