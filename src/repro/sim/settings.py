"""The paper's simulation settings (§4.2).

A *setting* decides (i) which machine the algorithm is told about (the
*declared* machine it sizes its tiles against) and (ii) which hierarchy
the references actually hit (the *simulated* capacities and mode):

* ``ideal``  — IDEAL mode with the full capacities ("the omniscient
  IDEAL data replacement policy assumed in the theoretical model").
* ``lru``    — LRU caches of the declared (full) sizes; the LRU(C)
  curves of Figs. 4–6.
* ``lru-2x`` — the algorithm plans for size ``C`` but the LRU caches
  have size ``2C``; the LRU(2C) curves validating the factor-of-two
  bound of Frigo et al.
* ``lru-50`` — "relies on a LRU cache data replacement policy, but
  declares only one half of cache sizes to the algorithms.  The other
  half is thus used by the LRU policy as kind of an automatic
  prefetching buffer."  The workhorse setting of Figs. 7–11.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.exceptions import ConfigurationError
from repro.model.machine import MulticoreMachine


@dataclass(frozen=True)
class Setting:
    """One simulation setting.

    Attributes
    ----------
    key:
        Stable identifier (CLI / experiment harness).
    mode:
        ``"ideal"`` or ``"lru"`` — which hierarchy type runs.
    declared:
        Maps the physical machine to what the algorithm is told.
    simulated:
        Maps the physical machine to the capacities actually simulated.
    """

    key: str
    mode: str
    declared: Callable[[MulticoreMachine], MulticoreMachine]
    simulated: Callable[[MulticoreMachine], MulticoreMachine]

    @property
    def is_ideal(self) -> bool:
        return self.mode == "ideal"


def _identity(machine: MulticoreMachine) -> MulticoreMachine:
    return machine


SETTINGS: Dict[str, Setting] = {
    "ideal": Setting("ideal", "ideal", _identity, _identity),
    "lru": Setting("lru", "lru", _identity, _identity),
    "lru-2x": Setting(
        "lru-2x", "lru", _identity, MulticoreMachine.with_doubled_caches
    ),
    "lru-50": Setting(
        "lru-50", "lru", MulticoreMachine.with_halved_caches, _identity
    ),
}


def get_setting(key: str) -> Setting:
    """Look a setting up by key, with a helpful error."""
    try:
        return SETTINGS[key]
    except KeyError:
        raise ConfigurationError(
            f"unknown setting {key!r}; valid settings: {sorted(SETTINGS)}"
        ) from None
