"""Execution contexts binding algorithm schedules to simulated hierarchies.

See :mod:`repro.algorithms.base` for the contract.  The two counting
contexts mirror the paper simulator's two modes; :class:`ChainContext`
fans one schedule out to several interpreters at once (used by tests to
run numeric execution and checked-IDEAL simulation simultaneously).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.algorithms.base import ExecutionContext
from repro.cache.hierarchy import IdealHierarchy, LRUHierarchy
from repro.cache.multilevel import MultiLevelHierarchy
from repro.cache.trace import AccessTrace


class LRUContext(ExecutionContext):
    """LRU simulator mode: only compute touches reach the caches.

    Explicit directives are ignored ("in the LRU mode, read and write
    operations are made at the distributed cache level; if a miss
    occurs, operations are propagated throughout the hierarchy").
    """

    explicit = False

    def __init__(self, hierarchy: LRUHierarchy) -> None:
        super().__init__(hierarchy.p)
        self.hierarchy = hierarchy
        # Bound method caching shaves a dict lookup off the hot path.
        self._touches = hierarchy.compute_touches

    def compute(self, core: int, ckey: int, akey: int, bkey: int) -> None:
        self._touches(core, akey, bkey, ckey)
        self.comp[core] += 1


class IdealContext(ExecutionContext):
    """IDEAL simulator mode: the schedule controls every cache movement."""

    explicit = True

    def __init__(self, hierarchy: IdealHierarchy) -> None:
        super().__init__(hierarchy.p)
        self.hierarchy = hierarchy
        self.load_shared = hierarchy.load_shared  # type: ignore[method-assign]
        self.evict_shared = hierarchy.evict_shared  # type: ignore[method-assign]
        self.load_dist = hierarchy.load_distributed  # type: ignore[method-assign]
        self.evict_dist = hierarchy.evict_distributed  # type: ignore[method-assign]
        self._check = hierarchy.check
        self._dist_dirty = hierarchy.dist_dirty
        self._assert = hierarchy.assert_present

    def compute(self, core: int, ckey: int, akey: int, bkey: int) -> None:
        if self._check:
            self._assert(core, akey, bkey, ckey)
        self._dist_dirty[core].add(ckey)
        self.comp[core] += 1


class MultiLevelContext(ExecutionContext):
    """LRU counting against an N-level cache tree.

    The multi-level analogue of :class:`LRUContext`: explicit
    directives are ignored, every compute touches the tree (A, B, then
    the written C) through the issuing core's leaf cache.
    """

    explicit = False

    def __init__(self, tree: MultiLevelHierarchy) -> None:
        super().__init__(tree.p)
        self.tree = tree
        self._touch = tree.touch

    def compute(self, core: int, ckey: int, akey: int, bkey: int) -> None:
        touch = self._touch
        touch(core, akey)
        touch(core, bkey)
        touch(core, ckey, True)
        self.comp[core] += 1


class RecordingContext(ExecutionContext):
    """Record the reference stream instead of simulating it.

    Each compute appends its three touches (A, B, then the written C)
    to an :class:`~repro.cache.trace.AccessTrace`, which can then be
    replayed against arbitrary hierarchies, fed to the stack-distance
    analyzer (:mod:`repro.cache.stackdist`) for whole-miss-curve
    analysis, or to Belady's OPT (:mod:`repro.cache.opt`).
    """

    explicit = False

    def __init__(self, p: int) -> None:
        super().__init__(p)
        self.trace = AccessTrace()

    def compute(self, core: int, ckey: int, akey: int, bkey: int) -> None:
        record = self.trace.record
        record(core, akey)
        record(core, bkey)
        record(core, ckey, True)
        self.comp[core] += 1

    def keys(self) -> List[int]:
        """The flat key sequence (core-agnostic), for trace analyses."""
        return [key for _, key, _ in self.trace]


class ChainContext(ExecutionContext):
    """Fan a schedule out to several contexts (they must agree on ``p``).

    ``explicit`` is the OR of the children's: explicit directives are
    forwarded only to children that honour them.
    """

    def __init__(self, contexts: Sequence[ExecutionContext]) -> None:
        if not contexts:
            raise ValueError("ChainContext needs at least one child context")
        p = contexts[0].p
        if any(c.p != p for c in contexts):
            raise ValueError("chained contexts disagree on the core count")
        super().__init__(p)
        self.contexts = list(contexts)
        self.explicit = any(c.explicit for c in contexts)
        self._explicit_children = [c for c in contexts if c.explicit]

    def load_shared(self, key: int) -> None:
        for c in self._explicit_children:
            c.load_shared(key)

    def evict_shared(self, key: int) -> None:
        for c in self._explicit_children:
            c.evict_shared(key)

    def load_dist(self, core: int, key: int) -> None:
        for c in self._explicit_children:
            c.load_dist(core, key)

    def evict_dist(self, core: int, key: int) -> None:
        for c in self._explicit_children:
            c.evict_dist(core, key)

    def compute(self, core: int, ckey: int, akey: int, bkey: int) -> None:
        for c in self.contexts:
            c.compute(core, ckey, akey, bkey)
        self.comp[core] += 1
