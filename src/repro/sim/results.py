"""Result containers for experiments and sweeps."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.analysis.formulas import PredictedCounts
from repro.cache.stats import HierarchyStats
from repro.model.machine import MulticoreMachine


@dataclass
class ExperimentResult:
    """Outcome of one algorithm run under one setting.

    ``ms``, ``md`` and ``tdata`` are the simulated values; ``predicted``
    carries the closed-form counts for the *declared* machine (what the
    algorithm planned against), when a formula is registered.
    """

    algorithm: str
    setting: str
    machine: MulticoreMachine
    m: int
    n: int
    z: int
    parameters: Dict[str, Any]
    stats: HierarchyStats
    comp: List[int]
    predicted: Optional[PredictedCounts] = None
    elapsed_s: float = 0.0

    @property
    def ms(self) -> int:
        """Simulated shared-cache misses."""
        return self.stats.ms

    @property
    def md(self) -> int:
        """Simulated max per-core distributed misses."""
        return self.stats.md

    @property
    def tdata(self) -> float:
        """Simulated data access time under the machine's bandwidths."""
        return self.stats.tdata(self.machine.sigma_s, self.machine.sigma_d)

    @property
    def comp_total(self) -> int:
        """Total elementary block multiply-adds executed."""
        return sum(self.comp)

    @property
    def ccr_s(self) -> float:
        """Simulated shared CCR: ``MS / comp_total``."""
        return self.ms / self.comp_total if self.comp_total else float("inf")

    @property
    def ccr_d(self) -> float:
        """Simulated distributed CCR: ``MD / (comp_total / p)``."""
        per_core = self.comp_total / self.machine.p
        return self.md / per_core if per_core else float("inf")

    def to_row(self) -> Dict[str, Any]:
        """Flat dict suitable for CSV writing / tabulation."""
        row: Dict[str, Any] = {
            "algorithm": self.algorithm,
            "setting": self.setting,
            "m": self.m,
            "n": self.n,
            "z": self.z,
            "MS": self.ms,
            "MD": self.md,
            "Tdata": self.tdata,
            "CCR_S": self.ccr_s,
            "CCR_D": self.ccr_d,
            "comp_total": self.comp_total,
            "imbalance": self.stats.imbalance(),
        }
        if self.predicted is not None:
            row["MS_pred"] = self.predicted.ms
            row["MD_pred"] = self.predicted.md
            row["Tdata_pred"] = self.predicted.tdata(self.machine)
        for k, v in self.parameters.items():
            row[f"param_{k}"] = v
        return row


@dataclass
class SweepResult:
    """A family of experiment series over a swept variable.

    ``series`` maps a label (typically ``"<algorithm> <setting>"``) to
    the list of results in sweep order; ``xs`` are the swept values.
    """

    variable: str
    xs: List[Any]
    series: Dict[str, List[ExperimentResult]] = field(default_factory=dict)

    def add(self, label: str, results: List[ExperimentResult]) -> None:
        if len(results) != len(self.xs):
            raise ValueError(
                f"series {label!r} has {len(results)} points, expected {len(self.xs)}"
            )
        self.series[label] = results

    def values(self, label: str, metric: str) -> List[float]:
        """Extract one metric (``"ms"``, ``"md"``, ``"tdata"``, …) of a series."""
        return [getattr(r, metric) for r in self.series[label]]

    def labels(self) -> List[str]:
        return list(self.series)
