"""Result containers for experiments and sweeps."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.analysis.formulas import PredictedCounts
from repro.cache.stats import HierarchyStats
from repro.model.machine import MulticoreMachine
from repro.sim.telemetry import (
    STATUS_FAILED,
    STATUS_SKIPPED,
    CellRecord,
    RunManifest,
)


@dataclass
class ExperimentResult:
    """Outcome of one algorithm run under one setting.

    ``ms``, ``md`` and ``tdata`` are the simulated values; ``predicted``
    carries the closed-form counts for the *declared* machine (what the
    algorithm planned against), when a formula is registered.
    """

    algorithm: str
    setting: str
    machine: MulticoreMachine
    m: int
    n: int
    z: int
    parameters: Dict[str, Any]
    stats: HierarchyStats
    comp: List[int]
    predicted: Optional[PredictedCounts] = None
    elapsed_s: float = 0.0
    #: Telemetry: how many sweep-engine attempts this result took (1 for
    #: serial runs) and the pid of the process that produced it.
    attempts: int = 1
    worker: Optional[int] = None
    #: Which engine actually simulated the cell (``"replay"``/``"step"``;
    #: empty on results predating the field) and whether a requested
    #: replay was silently degraded to the step engine.
    engine: str = ""
    engine_fallback: bool = False
    #: Replay-engine telemetry: which kernel evaluated the cell
    #: (``"bulk-lru"``/``"bulk-fifo"``/``"ideal"``/``"step"``) and where
    #: its compiled trace came from (``"compiled"``/``"memory"``/
    #: ``"disk"``, or ``"streamed"`` when the kernels ran off the live
    #: schedule with no materialized trace).  Empty on step-engine
    #: results predating the fields;
    #: like ``engine``, never part of resume identity.
    kernel: str = ""
    trace_source: str = ""

    @property
    def ms(self) -> int:
        """Simulated shared-cache misses."""
        return self.stats.ms

    @property
    def md(self) -> int:
        """Simulated max per-core distributed misses."""
        return self.stats.md

    @property
    def tdata(self) -> float:
        """Simulated data access time under the machine's bandwidths."""
        return self.stats.tdata(self.machine.sigma_s, self.machine.sigma_d)

    @property
    def comp_total(self) -> int:
        """Total elementary block multiply-adds executed."""
        return sum(self.comp)

    @property
    def ccr_s(self) -> float:
        """Simulated shared CCR: ``MS / comp_total``."""
        return self.ms / self.comp_total if self.comp_total else float("inf")

    @property
    def ccr_d(self) -> float:
        """Simulated distributed CCR: ``MD / (comp_total / p)``."""
        per_core = self.comp_total / self.machine.p
        return self.md / per_core if per_core else float("inf")

    def to_row(self) -> Dict[str, Any]:
        """Flat dict suitable for CSV writing / tabulation."""
        row: Dict[str, Any] = {
            "algorithm": self.algorithm,
            "setting": self.setting,
            "m": self.m,
            "n": self.n,
            "z": self.z,
            "MS": self.ms,
            "MD": self.md,
            "Tdata": self.tdata,
            "CCR_S": self.ccr_s,
            "CCR_D": self.ccr_d,
            "comp_total": self.comp_total,
            "imbalance": self.stats.imbalance(),
        }
        if self.predicted is not None:
            row["MS_pred"] = self.predicted.ms
            row["MD_pred"] = self.predicted.md
            row["Tdata_pred"] = self.predicted.tdata(self.machine)
        for k, v in self.parameters.items():
            row[f"param_{k}"] = v
        return row


@dataclass
class SweepResult:
    """A family of experiment series over a swept variable.

    ``series`` maps a label (typically ``"<algorithm> <setting>"``) to
    the list of results in sweep order; ``xs`` are the swept values.

    A series slot holds ``None`` when that cell never produced a result
    — the sweep engine degraded it to an explicit :class:`CellRecord`
    in ``failures`` instead of aborting the sweep.  ``failures`` and
    ``cell_counts`` let downstream consumers (figures, conformance
    checks) distinguish "ran and measured" from "never ran"; a serial
    sweep always has ``failures == []``.
    """

    variable: str
    xs: List[Any]
    series: Dict[str, List[Optional[ExperimentResult]]] = field(default_factory=dict)
    #: Per-cell failure/skip records from the sweep engine.
    failures: List[CellRecord] = field(default_factory=list)
    #: Run manifest of the engine execution that produced this sweep
    #: (``None`` for serial sweeps).
    manifest: Optional[RunManifest] = None
    #: Signal name when a store-backed run was interrupted and drained
    #: (``"SIGINT"``/``"SIGTERM"``); ``None`` for runs that finished.
    interrupted: Optional[str] = None

    def add(self, label: str, results: List[Optional[ExperimentResult]]) -> None:
        if len(results) != len(self.xs):
            raise ValueError(
                f"series {label!r} has {len(results)} points, expected {len(self.xs)}"
            )
        self.series[label] = results

    def values(self, label: str, metric: str) -> List[float]:
        """Extract one metric (``"ms"``, ``"md"``, ``"tdata"``, …) of a series.

        Raises :class:`ValueError` when the series has holes — callers
        that tolerate failed cells should consult :attr:`failures` and
        :meth:`result` instead of assuming a dense series.
        """
        out: List[float] = []
        for index, result in enumerate(self.series[label]):
            if result is None:
                record = self._record_for(label, index)
                detail = (
                    f" ({record.status}: {record.error_type}: {record.error})"
                    if record is not None
                    else ""
                )
                raise ValueError(
                    f"series {label!r} has no result at "
                    f"{self.variable}={self.xs[index]}{detail}; "
                    "inspect SweepResult.failures"
                )
            out.append(getattr(result, metric))
        return out

    def result(self, label: str, index: int) -> Optional[ExperimentResult]:
        """One cell's result, or ``None`` if it failed / was skipped."""
        return self.series[label][index]

    def labels(self) -> List[str]:
        return list(self.series)

    def _record_for(self, label: str, index: int) -> Optional[CellRecord]:
        for record in self.failures:
            if record.label == label and record.index == index:
                return record
        return None

    @property
    def complete(self) -> bool:
        """Whether every cell of every series produced a result."""
        return not self.failures and all(
            result is not None for results in self.series.values() for result in results
        )

    def failed_cells(self) -> List[CellRecord]:
        """Cells that ran (possibly several times) and never succeeded."""
        return [r for r in self.failures if r.status == STATUS_FAILED]

    def skipped_cells(self) -> List[CellRecord]:
        """Cells the engine never (re)ran — e.g. suspected worker-killers."""
        return [r for r in self.failures if r.status == STATUS_SKIPPED]

    def cell_counts(self) -> Dict[str, int]:
        """Cell totals: ``{"ok": …, "failed": …, "skipped": …}``."""
        ok = sum(
            1 for results in self.series.values() for r in results if r is not None
        )
        return {
            "ok": ok,
            "failed": len(self.failed_cells()),
            "skipped": len(self.skipped_cells()),
        }
